//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on a handful of plain
//! data types but never serializes through serde (the observability layer
//! has its own dependency-free JSON, see `icn-obs`). This stub keeps those
//! derives compiling without network access: the traits are markers and the
//! derive macros emit empty impls.

/// Marker for types that would be serializable under real serde.
pub trait Serialize {}

/// Marker for types that would be deserializable under real serde.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
