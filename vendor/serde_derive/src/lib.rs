//! Inert `Serialize`/`Deserialize` derives for the offline serde stand-in.
//!
//! Each derive emits a marker-trait impl for the annotated type (no
//! methods — the stand-in traits are empty). Written against `proc_macro`
//! only; no `syn`/`quote`, so it parses just enough of the item header to
//! recover the type name and generic parameter names.

use proc_macro::{TokenStream, TokenTree};

/// Extracts `(name, generic_params)` from a struct/enum definition.
/// Generics are returned as the raw parameter names (lifetimes included),
/// good enough for the repo's derived types (which are generic-free today,
/// but cheap to future-proof).
fn parse_item(input: TokenStream) -> (String, Vec<String>) {
    let mut iter = input.into_iter().peekable();
    // Skip attributes (#[...]) and visibility/keywords until `struct`/`enum`.
    for tt in iter.by_ref() {
        match &tt {
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    break;
                }
            }
            _ => continue,
        }
    }
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive: expected type name, found {other:?}"),
    };
    // Collect generic parameter names if a `<...>` group follows.
    let mut generics = Vec::new();
    if matches!(&iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        iter.next();
        let mut depth = 1usize;
        let mut expect_param = true;
        while let Some(tt) = iter.next() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => expect_param = true,
                TokenTree::Punct(p) if p.as_char() == '\'' && depth == 1 && expect_param => {
                    if let Some(TokenTree::Ident(id)) = iter.next() {
                        generics.push(format!("'{id}"));
                    }
                    expect_param = false;
                }
                TokenTree::Ident(id) if depth == 1 && expect_param => {
                    let s = id.to_string();
                    if s != "const" {
                        generics.push(s);
                        expect_param = false;
                    }
                }
                _ => {}
            }
        }
    }
    (name, generics)
}

fn impl_for(trait_path: &str, input: TokenStream) -> TokenStream {
    let (name, generics) = parse_item(input);
    let code = if generics.is_empty() {
        if trait_path.contains("Deserialize") {
            format!("impl<'de> {trait_path}<'de> for {name} {{}}")
        } else {
            format!("impl {trait_path} for {name} {{}}")
        }
    } else {
        let params = generics.join(", ");
        if trait_path.contains("Deserialize") {
            format!("impl<'de, {params}> {trait_path}<'de> for {name}<{params}> {{}}")
        } else {
            format!("impl<{params}> {trait_path} for {name}<{params}> {{}}")
        }
    };
    code.parse().expect("derive: generated impl must parse")
}

/// Emits `impl serde::Serialize for T {}`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    impl_for("::serde::Serialize", input)
}

/// Emits `impl<'de> serde::Deserialize<'de> for T {}`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    impl_for("::serde::Deserialize", input)
}
