//! Offline stand-in for `proptest`.
//!
//! Supports the subset this workspace's property tests use: the
//! [`proptest!`] macro (with an optional `#![proptest_config(...)]`
//! header), numeric-range / `Just` / tuple / `prop_oneof!` /
//! `prop::collection::vec` / `.prop_map` strategies, and the
//! `prop_assert*` macros. Generation is deterministic (seeded from the
//! test name) and there is **no shrinking** — a failing case panics with
//! the assertion message directly.

/// Per-test configuration (case count only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test body runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Deterministic value source for strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name so every run of a given test
    /// replays the same cases.
    pub fn deterministic(name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x100_0000_01b3);
        }
        Self { state: seed }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty choice");
        self.next_u64() % n
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        (**self).new_value(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Uniform choice among boxed strategies (built by [`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A uniform union over `options` (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].new_value(rng)
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u128) - (start as u128) + 1;
                start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

float_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+)),*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    )*};
}

tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D));

/// Strategy namespace mirrored from real proptest (`prop::collection::vec`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};

        /// A strategy producing vectors with lengths drawn from `len`.
        pub struct VecStrategy<S> {
            elem: S,
            len: core::ops::Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let span = (self.len.end - self.len.start).max(1);
                let n = self.len.start + rng.below(span as u64) as usize;
                (0..n).map(|_| self.elem.new_value(rng)).collect()
            }
        }

        /// Vectors of `elem` values with length in `len`.
        pub fn vec<S: Strategy>(elem: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { elem, len }
        }
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy,
        Just, ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property test (panics on failure; this
/// stand-in does not shrink).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Uniform choice among strategies yielding one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..config.cases {
                    let _ = __case;
                    $(let $arg = $crate::Strategy::new_value(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, Copy, PartialEq)]
    enum Pick {
        A,
        B(u64),
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(
            x in 0u64..10,
            f in 0.25f64..0.75,
            pair in (0usize..3, 1u32..=2),
        ) {
            prop_assert!(x < 10);
            prop_assert!((0.25..0.75).contains(&f));
            prop_assert!(pair.0 < 3 && (1..=2).contains(&pair.1));
        }

        #[test]
        fn oneof_map_and_vec(
            v in prop::collection::vec(
                prop_oneof![Just(Pick::A), (5u64..9).prop_map(Pick::B)],
                0..20,
            ),
        ) {
            prop_assert!(v.len() < 20);
            for p in v {
                match p {
                    Pick::A => {}
                    Pick::B(n) => prop_assert!((5..9).contains(&n), "{n}"),
                }
            }
        }
    }

    #[test]
    fn deterministic_rng() {
        let mut a = crate::TestRng::deterministic("t");
        let mut b = crate::TestRng::deterministic("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
