//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no vendored registry, so
//! the workspace ships the small slice of the `rand 0.8` API it actually
//! uses: [`RngCore`], [`Rng`], [`SeedableRng`], and [`rngs::StdRng`]. The
//! generator is xoshiro256++ seeded through SplitMix64 — deterministic for a
//! given seed (which is all the simulator requires; it never promises
//! bit-compatibility with upstream `rand`).

/// Low-level generator interface: raw 32/64-bit output and byte filling.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Types that can be sampled uniformly from a generator (the `Standard`
/// distribution in upstream `rand`).
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u32 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types [`Rng::gen_range`] can sample uniformly between two bounds
/// (the `SampleUniform` role in upstream `rand`).
pub trait SampleUniform: Sized {
    /// Draws uniformly from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                assert!(if inclusive { lo <= hi } else { lo < hi }, "empty range in gen_range");
                let span = (hi as u128).wrapping_sub(lo as u128) + inclusive as u128;
                // Modulo bias is < span / 2^64 — irrelevant for simulation use.
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                _inclusive: bool,
            ) -> Self {
                assert!(lo < hi, "empty range in gen_range");
                let u = <$t as Standard>::sample_from(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

float_uniform!(f32, f64);

/// A range argument accepted by [`Rng::gen_range`].
///
/// The single generic impl per range shape (rather than one impl per
/// element type) is what lets unsuffixed literals like `0.7..1.3` infer
/// their element type from surrounding code, as with upstream `rand`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, *self.start(), *self.end(), true)
    }
}

/// Convenience sampling methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T` (`f64` in `[0, 1)`, full-width
    /// integers).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_from(self)
    }

    /// Draws uniformly from a (half-open or inclusive) range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_one(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as Standard>::sample_from(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators (mirrors `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// A generator seeded from wall-clock entropy (doc examples only; the
/// simulator always seeds explicitly for reproducibility).
pub fn thread_rng() -> rngs::StdRng {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5eed);
    rngs::StdRng::seed_from_u64(nanos ^ (std::process::id() as u64) << 32)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn ranges_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v = rng.gen_range(3u32..=4);
            assert!((3..=4).contains(&v));
            let f = rng.gen_range(0.7f64..1.3);
            assert!((0.7..1.3).contains(&f));
        }
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
