//! Offline stand-in for `parking_lot`.
//!
//! Wraps the std locks behind parking_lot's no-poisoning API (`lock()` /
//! `read()` / `write()` return guards directly). A poisoned std lock is
//! recovered by taking the inner guard — matching parking_lot's semantics
//! of simply not having poisoning.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex guarding `value`.
    pub fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose accessors never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock guarding `value`.
    pub fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
