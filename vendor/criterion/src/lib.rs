//! Offline stand-in for `criterion`.
//!
//! Implements the API subset the workspace's benches use — groups,
//! `sample_size`, `throughput`, `bench_function`, `iter`, the
//! `criterion_group!`/`criterion_main!` macros, and `black_box` — over a
//! plain wall-clock harness: each benchmark is auto-calibrated so one
//! sample takes a few milliseconds, then `sample_size` samples are timed
//! and the per-iteration mean / min / max are printed. No statistics
//! beyond that, no HTML reports, no saved baselines.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Units for reported throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Items processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level handle passed to benchmark functions.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("\n== {name}");
        BenchmarkGroup {
            group: name.to_string(),
            sample_size: 10,
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing sample count and throughput.
pub struct BenchmarkGroup {
    group: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark. Like upstream criterion, the id can be any
    /// string-ish value (`&str`, `String`, ...).
    pub fn bench_function<N, F>(&mut self, name: N, mut f: F) -> &mut Self
    where
        N: Into<String>,
        F: FnMut(&mut Bencher),
    {
        let name: String = name.into();
        // Calibrate: grow the iteration count until one sample costs ≥ 2 ms
        // (or a single iteration is already slower than that).
        let mut iters: u64 = 1;
        loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if b.elapsed >= Duration::from_millis(2) || iters >= 1 << 24 {
                break;
            }
            iters = iters.saturating_mul(4);
        }

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
        }
        samples_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let min = samples_ns[0];
        let max = *samples_ns.last().unwrap();
        let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;

        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  thrpt: {:>12.0} elem/s", n as f64 / (mean / 1e9))
            }
            Some(Throughput::Bytes(n)) => {
                format!(
                    "  thrpt: {:>12.0} MiB/s",
                    n as f64 / (mean / 1e9) / (1 << 20) as f64
                )
            }
            None => String::new(),
        };
        println!(
            "{}/{name:<28} time: [{:>10.1} {:>10.1} {:>10.1}] ns/iter{rate}",
            self.group, min, mean, max
        );
        self
    }

    /// Ends the group (printing nothing extra; kept for API parity).
    pub fn finish(&mut self) {}
}

/// Passed to the closure of [`BenchmarkGroup::bench_function`]; runs and
/// times the measured routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over this sample's iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declares a function that runs the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        g.throughput(Throughput::Elements(1));
        let mut count = 0u64;
        g.bench_function("noop", |b| {
            b.iter(|| {
                count = count.wrapping_add(1);
                count
            })
        });
        g.finish();
        assert!(count > 0);
    }
}
