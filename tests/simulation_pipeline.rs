//! Integration tests: the full simulation pipeline across crates
//! (topology + workload + cache + core).

use icn_core::config::ExperimentConfig;
use icn_core::design::DesignKind;
use icn_core::sim::Simulator;
use icn_core::sweep::Scenario;
use icn_topology::{pop, AccessTree, Network};
use icn_workload::origin::{assign_origins, OriginPolicy};
use icn_workload::trace::{Trace, TraceConfig};

fn small_cfg() -> TraceConfig {
    TraceConfig {
        requests: 30_000,
        objects: 3_000,
        alpha: 1.04,
        skew: 0.0,
        locality: None,
        sizes: icn_workload::sizes::SizeModel::Unit,
        seed: 99,
        dynamics: None,
    }
}

#[test]
fn conservation_of_requests() {
    // Every request is served exactly once: cache hits + origin hits ==
    // total, for every design.
    let s = Scenario::build(
        pop::abilene(),
        AccessTree::new(2, 3),
        small_cfg(),
        OriginPolicy::PopulationProportional,
    );
    for design in [
        DesignKind::NoCache,
        DesignKind::Edge,
        DesignKind::EdgeCoop,
        DesignKind::EdgeNorm,
        DesignKind::TwoLevels,
        DesignKind::TwoLevelsCoop,
        DesignKind::IcnSp,
        DesignKind::IcnNr,
    ] {
        let m = s.run_design(design);
        assert_eq!(m.requests, 30_000, "{}", design.name());
        assert_eq!(
            m.cache_hits + m.origin_hits,
            m.requests,
            "{} leaked requests",
            design.name()
        );
        let level_sum: u64 = m.hits_by_level.iter().sum();
        assert_eq!(level_sum, m.cache_hits, "{} hit levels", design.name());
    }
}

#[test]
fn origin_load_equals_origin_hits() {
    let s = Scenario::build(
        pop::abilene(),
        AccessTree::new(2, 3),
        small_cfg(),
        OriginPolicy::Uniform,
    );
    for design in [DesignKind::NoCache, DesignKind::Edge, DesignKind::IcnNr] {
        let m = s.run_design(design);
        let origin_total: u64 = m.origin_served.iter().sum();
        assert_eq!(origin_total, m.origin_hits, "{}", design.name());
    }
}

#[test]
fn nocache_latency_matches_direct_distance() {
    // With no caches, the measured average latency must equal the average
    // leaf-to-origin distance + 1, computed independently.
    let net = Network::new(pop::abilene(), AccessTree::new(2, 3));
    let cfg = small_cfg();
    let trace = Trace::synthesize(cfg, &net.core.populations, net.leaves_per_pop());
    let origins = assign_origins(
        OriginPolicy::PopulationProportional,
        trace.config.objects,
        &net.core.populations,
        5,
    );
    let mut sim = Simulator::new(
        &net,
        ExperimentConfig::baseline(DesignKind::NoCache),
        &origins,
        &trace.object_sizes,
    );
    sim.run(&trace.requests);
    let measured = sim.metrics().avg_latency();

    let expected: f64 = trace
        .requests
        .iter()
        .map(|r| {
            let leaf = net.leaf(r.pop as u32, r.leaf as u32);
            let origin_root = net.pop_root(origins[r.object as usize] as u32);
            net.distance(leaf, origin_root) as f64 + 1.0
        })
        .sum::<f64>()
        / trace.len() as f64;
    assert!((measured - expected).abs() < 1e-9);
}

#[test]
fn infinite_budget_dominates_finite() {
    let s = Scenario::build(
        pop::geant(),
        AccessTree::new(2, 3),
        small_cfg(),
        OriginPolicy::PopulationProportional,
    );
    let finite = s.improvement(ExperimentConfig::baseline(DesignKind::Edge));
    let infinite = s.improvement(ExperimentConfig::baseline(DesignKind::InfiniteEdge));
    assert!(
        infinite.latency_pct >= finite.latency_pct - 1e-9,
        "infinite cache can't be worse: {infinite:?} vs {finite:?}"
    );
    let sp = s.improvement(ExperimentConfig::baseline(DesignKind::IcnSp));
    let inf_nr = s.improvement(ExperimentConfig::baseline(DesignKind::InfiniteIcnNr));
    assert!(inf_nr.latency_pct >= sp.latency_pct - 1e-9);
}

#[test]
fn bigger_budget_cannot_hurt_edge() {
    let s = Scenario::build(
        pop::abilene(),
        AccessTree::new(2, 3),
        small_cfg(),
        OriginPolicy::PopulationProportional,
    );
    let mut small = ExperimentConfig::baseline(DesignKind::Edge);
    small.f_fraction = 0.01;
    let mut big = ExperimentConfig::baseline(DesignKind::Edge);
    big.f_fraction = 0.2;
    let si = s.improvement(small);
    let bi = s.improvement(big);
    assert!(
        bi.latency_pct >= si.latency_pct - 0.5,
        "bigger caches should help: {bi:?} vs {si:?}"
    );
}

#[test]
fn weight_by_size_changes_congestion_only() {
    let mut cfg = small_cfg();
    cfg.sizes = icn_workload::sizes::SizeModel::web_default();
    let s = Scenario::build(
        pop::abilene(),
        AccessTree::new(2, 3),
        cfg,
        OriginPolicy::PopulationProportional,
    );
    let mut unweighted = ExperimentConfig::baseline(DesignKind::Edge);
    let mut weighted = unweighted.clone();
    weighted.weight_by_size = true;
    unweighted.weight_by_size = false;
    let mu = s.run_config(unweighted);
    let mw = s.run_config(weighted);
    // Latency identical; congestion counts differ (bytes vs transfers).
    assert_eq!(mu.avg_latency(), mw.avg_latency());
    assert!(mw.max_congestion() > mu.max_congestion());
}

#[test]
fn serving_capacity_pushes_load_to_origin() {
    let s = Scenario::build(
        pop::abilene(),
        AccessTree::new(2, 3),
        small_cfg(),
        OriginPolicy::PopulationProportional,
    );
    let unlimited = s.run_config(ExperimentConfig::baseline(DesignKind::Edge));
    let mut capped_cfg = ExperimentConfig::baseline(DesignKind::Edge);
    capped_cfg.capacity = Some(icn_core::capacity::ServingCapacity {
        per_node: 5,
        window: 1_000,
    });
    let capped = s.run_config(capped_cfg);
    assert!(capped.cache_hits < unlimited.cache_hits);
    assert!(capped.origin_hits > unlimited.origin_hits);
    assert_eq!(capped.cache_hits + capped.origin_hits, capped.requests);
}

#[test]
fn lfu_is_qualitatively_like_lru() {
    // §3: "We also tried LFU, which yielded qualitatively similar results."
    let s = Scenario::build(
        pop::abilene(),
        AccessTree::new(2, 3),
        small_cfg(),
        OriginPolicy::PopulationProportional,
    );
    let lru = s.improvement(ExperimentConfig::baseline(DesignKind::Edge));
    let mut lfu_cfg = ExperimentConfig::baseline(DesignKind::Edge);
    lfu_cfg.policy = icn_cache::policy::PolicyKind::Lfu;
    let lfu = s.improvement(lfu_cfg);
    assert!(
        (lru.latency_pct - lfu.latency_pct).abs() < 10.0,
        "LRU {lru:?} vs LFU {lfu:?}"
    );
}
