//! Integration tests pinning the paper's headline claims at test scale.
//!
//! These are the "shape" assertions: orderings, directions, and coarse
//! magnitudes from §4–§5. The figure binaries in `crates/bench` produce
//! the full-scale numbers recorded in EXPERIMENTS.md.

use icn_analysis::tree_opt::{interior_cache_benefit, optimal_levels};
use icn_cache::budget::BudgetPolicy;
use icn_core::config::ExperimentConfig;
use icn_core::design::DesignKind;
use icn_core::metrics::Improvement;
use icn_core::sweep::Scenario;
use icn_topology::{pop, AccessTree};
use icn_workload::origin::OriginPolicy;
use icn_workload::trace::Region;
use icn_workload::zipf::Zipf;

/// A reduced-scale Asia baseline on Abilene (fast enough for CI).
fn abilene_scenario() -> Scenario {
    Scenario::build(
        pop::abilene(),
        AccessTree::baseline(),
        Region::Asia.config(0.02), // 36k requests
        OriginPolicy::PopulationProportional,
    )
}

#[test]
fn claim_design_ordering_and_small_gap() {
    // §4.2: ICN-NR >= ICN-SP >= EDGE on latency; cooperation helps; and
    // the NR-vs-EDGE latency gap is modest.
    let s = abilene_scenario();
    let nr = s.improvement(ExperimentConfig::baseline(DesignKind::IcnNr));
    let sp = s.improvement(ExperimentConfig::baseline(DesignKind::IcnSp));
    let edge = s.improvement(ExperimentConfig::baseline(DesignKind::Edge));
    let coop = s.improvement(ExperimentConfig::baseline(DesignKind::EdgeCoop));

    assert!(
        nr.latency_pct >= sp.latency_pct - 0.5,
        "nr {nr:?} sp {sp:?}"
    );
    assert!(
        sp.latency_pct >= edge.latency_pct - 0.5,
        "sp {sp:?} edge {edge:?}"
    );
    assert!(
        coop.latency_pct >= edge.latency_pct,
        "coop {coop:?} edge {edge:?}"
    );
    let gap = nr.latency_pct - edge.latency_pct;
    assert!(
        gap > 0.0 && gap < 15.0,
        "NR-EDGE latency gap should be modest, got {gap:.2}"
    );
}

#[test]
fn claim_nr_adds_little_over_sp() {
    // §4.3: "nearest-replica routing adds marginal value over pervasive
    // caching" (≤ ~2% at paper scale; allow slack at test scale).
    let s = abilene_scenario();
    let nr = s.improvement(ExperimentConfig::baseline(DesignKind::IcnNr));
    let sp = s.improvement(ExperimentConfig::baseline(DesignKind::IcnSp));
    assert!(
        (nr.latency_pct - sp.latency_pct).abs() < 4.0,
        "nr {nr:?} vs sp {sp:?}"
    );
}

#[test]
fn claim_gap_shrinks_with_alpha() {
    // Figure 8(a) direction: higher α ⇒ smaller NR-vs-EDGE gap. Tested on
    // the IRM workload (the paper's §5 sensitivity uses pure synthetic
    // traces), where the direction is structural over the whole range; the
    // locality-calibrated workload reproduces it on the α ≥ 1 side (see
    // EXPERIMENTS.md, fig8a).
    let gap_at = |alpha: f64| {
        let mut cfg = Region::Asia.config(0.02);
        cfg.alpha = alpha;
        cfg.locality = None;
        let s = Scenario::build(
            pop::abilene(),
            AccessTree::baseline(),
            cfg,
            OriginPolicy::PopulationProportional,
        );
        s.nr_vs_edge_gap(&ExperimentConfig::baseline(DesignKind::Edge))
            .latency_pct
    };
    let low = gap_at(0.5);
    let high = gap_at(1.5);
    assert!(
        low > high,
        "gap should shrink with alpha: alpha=0.5 -> {low:.2}, alpha=1.5 -> {high:.2}"
    );
}

#[test]
fn claim_gap_grows_with_spatial_skew() {
    // Figure 8(c) direction: skewed regional popularity favors ICN-NR
    // (IRM workload; see claim_gap_shrinks_with_alpha for why).
    // The per-seed effect is ~0.2pp against ~0.5pp of seed noise at test
    // scale, so average a few trace seeds to test the claim rather than
    // one RNG stream.
    let gap_at = |skew: f64| {
        let seeds = [42u64, 43, 44];
        let total: f64 = seeds
            .iter()
            .map(|&seed| {
                let mut cfg = Region::Asia.config(0.02);
                cfg.skew = skew;
                cfg.locality = None;
                cfg.seed = seed;
                let s = Scenario::build(
                    pop::abilene(),
                    AccessTree::baseline(),
                    cfg,
                    OriginPolicy::PopulationProportional,
                );
                s.nr_vs_edge_gap(&ExperimentConfig::baseline(DesignKind::Edge))
                    .latency_pct
            })
            .sum();
        total / seeds.len() as f64
    };
    let none = gap_at(0.0);
    let full = gap_at(1.0);
    assert!(
        full > none,
        "gap should grow with skew: 0 -> {none:.2}, 1 -> {full:.2}"
    );
}

#[test]
fn claim_gap_shrinks_with_arity() {
    // Table 4 direction: higher arity (leaves fixed) ⇒ smaller gap.
    let gap_at = |arity: u32| {
        let s = Scenario::build(
            pop::abilene(),
            AccessTree::with_fixed_leaves(arity, 64),
            Region::Asia.config(0.02),
            OriginPolicy::PopulationProportional,
        );
        s.nr_vs_edge_gap(&ExperimentConfig::baseline(DesignKind::Edge))
            .latency_pct
    };
    let binary = gap_at(2);
    let flat = gap_at(64);
    // Direction only: our workload keeps a pop-root aggregation advantage
    // that arity cannot remove, so the gap declines less steeply than the
    // paper's Table 4 (see EXPERIMENTS.md for the full-scale numbers and
    // discussion).
    assert!(
        flat <= binary + 0.5,
        "gap should not grow with arity: arity 2 -> {binary:.2}, arity 64 -> {flat:.2}"
    );
}

#[test]
fn claim_edge_extensions_bridge_the_gap() {
    // §5.2 / Figure 10: Norm-Coop narrows the gap; Double-Budget-Coop can
    // make EDGE competitive with (or better than) ICN-NR.
    let s = abilene_scenario();
    let nr = s.improvement(ExperimentConfig::baseline(DesignKind::IcnNr));
    let edge = s.improvement(ExperimentConfig::baseline(DesignKind::Edge));
    let norm_coop = s.improvement(ExperimentConfig::baseline(DesignKind::NormCoop));
    let dbl = s.improvement(ExperimentConfig::baseline(DesignKind::DoubleBudgetCoop));

    let gap_plain = Improvement::gap(&nr, &edge).latency_pct;
    let gap_norm_coop = Improvement::gap(&nr, &norm_coop).latency_pct;
    let gap_dbl = Improvement::gap(&nr, &dbl).latency_pct;
    assert!(
        gap_norm_coop <= gap_plain,
        "Norm-Coop should narrow the gap: {gap_norm_coop:.2} vs {gap_plain:.2}"
    );
    assert!(
        gap_dbl <= gap_norm_coop + 0.5,
        "doubling the budget should narrow it further: {gap_dbl:.2} vs {gap_norm_coop:.2}"
    );
}

#[test]
fn claim_budget_policy_does_not_change_ordering() {
    // §4.3: provisioning (population-based vs uniform) does not affect the
    // relative performance of the designs.
    for budget in [BudgetPolicy::PopulationProportional, BudgetPolicy::Uniform] {
        let s = abilene_scenario();
        let imp = |d: DesignKind| {
            let mut c = ExperimentConfig::baseline(d);
            c.budget_policy = budget;
            s.improvement(c).latency_pct
        };
        let nr = imp(DesignKind::IcnNr);
        let sp = imp(DesignKind::IcnSp);
        let edge = imp(DesignKind::Edge);
        assert!(
            nr >= sp - 0.5 && sp >= edge - 0.5,
            "{budget:?}: {nr} {sp} {edge}"
        );
    }
}

#[test]
fn claim_tree_model_worked_example() {
    // §2.2: on the 6-level binary tree at α = 0.7 with 5% caches, the edge
    // serves ~0.4 of requests and interior caching buys only ~25%.
    let zipf = Zipf::new(100_000, 0.7);
    let p = optimal_levels(6, 5_000, &zipf);
    assert!(
        (p.served[0] - 0.4).abs() < 0.1,
        "edge share {}",
        p.served[0]
    );
    assert!(
        (p.expected_hops - 3.0).abs() < 0.5,
        "hops {}",
        p.expected_hops
    );
    let benefit = interior_cache_benefit(&p);
    assert!(
        benefit < 0.30,
        "interior caching buys ~25% at most, got {benefit:.2}"
    );
}

#[test]
fn claim_zipf_fits_match_table2() {
    // Table 2 loop: generate at the paper's α, recover it by MLE.
    let populations = pop::abilene().populations.clone();
    for region in Region::all() {
        let trace = icn_workload::trace::Trace::synthesize(region.config(0.05), &populations, 32);
        let fit = icn_workload::fit::fit_zipf(&trace.object_counts()).unwrap();
        assert!(
            (fit.alpha_mle - region.paper_alpha()).abs() < 0.1,
            "{}: fitted {} vs paper {}",
            region.name(),
            fit.alpha_mle,
            region.paper_alpha()
        );
    }
}
