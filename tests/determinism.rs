//! Integration tests: every stochastic component is seed-deterministic, so
//! EXPERIMENTS.md is reproducible bit-for-bit.

use icn_core::config::ExperimentConfig;
use icn_core::design::DesignKind;
use icn_core::sweep::Scenario;
use icn_topology::{pop, AccessTree};
use icn_workload::origin::{assign_origins, OriginPolicy};
use icn_workload::trace::{Region, Trace};

#[test]
fn scenario_runs_are_bitwise_reproducible() {
    let run = || {
        let s = Scenario::build(
            pop::sprint(),
            AccessTree::new(2, 3),
            Region::Asia.config(0.01),
            OriginPolicy::PopulationProportional,
        );
        let m = s.run_design(DesignKind::IcnNr);
        (
            m.total_latency,
            m.max_congestion(),
            m.max_origin_load(),
            m.cache_hits,
            m.link_transfers.clone(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn different_seeds_give_different_traces() {
    let populations = pop::abilene().populations.clone();
    let mut cfg_a = Region::Us.config(0.01);
    let mut cfg_b = cfg_a.clone();
    cfg_a.seed = 1;
    cfg_b.seed = 2;
    let a = Trace::synthesize(cfg_a, &populations, 8);
    let b = Trace::synthesize(cfg_b, &populations, 8);
    assert_ne!(a.requests, b.requests);
}

#[test]
fn synthetic_topologies_are_stable() {
    // The Rocketfuel-class generators are seeded: the same graph every
    // build, so topology-dependent results don't drift.
    let a = pop::level3();
    let b = pop::level3();
    assert_eq!(a.edges(), b.edges());
    assert_eq!(a.populations, b.populations);
}

#[test]
fn origin_assignment_is_seeded() {
    let pops = [10u64, 20, 30];
    let a = assign_origins(OriginPolicy::PopulationProportional, 1_000, &pops, 7);
    let b = assign_origins(OriginPolicy::PopulationProportional, 1_000, &pops, 7);
    let c = assign_origins(OriginPolicy::PopulationProportional, 1_000, &pops, 8);
    assert_eq!(a, b);
    assert_ne!(a, c);
}

#[test]
fn improvement_is_invariant_to_rerun_order() {
    // Running designs in different orders must not change any result
    // (no shared mutable state leaks between runs).
    let s = Scenario::build(
        pop::abilene(),
        AccessTree::new(2, 3),
        Region::Asia.config(0.01),
        OriginPolicy::PopulationProportional,
    );
    let edge_first = {
        let e = s.improvement(ExperimentConfig::baseline(DesignKind::Edge));
        let n = s.improvement(ExperimentConfig::baseline(DesignKind::IcnNr));
        (e, n)
    };
    let nr_first = {
        let n = s.improvement(ExperimentConfig::baseline(DesignKind::IcnNr));
        let e = s.improvement(ExperimentConfig::baseline(DesignKind::Edge));
        (e, n)
    };
    assert_eq!(edge_first.0, nr_first.0);
    assert_eq!(edge_first.1, nr_first.1);
}
