//! Integration tests: statistical properties of the workload layer that
//! the simulation results rest on.

use icn_analysis::stats;
use icn_topology::pop;
use icn_workload::fit::fit_zipf;
use icn_workload::skew::SpatialModel;
use icn_workload::trace::{Locality, Region, Trace, TraceConfig};

#[test]
fn per_pop_request_shares_track_population() {
    // §4.1: "requests at each PoP are proportional to its population".
    let core = pop::geant();
    let trace = Trace::synthesize(Region::Europe.config(0.02), &core.populations, 32);
    let total_pop: u64 = core.populations.iter().sum();
    let mut counts = vec![0u64; core.len()];
    for r in &trace.requests {
        counts[r.pop as usize] += 1;
    }
    let n = trace.len() as f64;
    let mut errs = Vec::new();
    for (i, &c) in counts.iter().enumerate() {
        let expected = core.populations[i] as f64 / total_pop as f64;
        errs.push((c as f64 / n - expected).abs());
    }
    assert!(
        stats::max(&errs).unwrap() < 0.01,
        "worst PoP share error {:?}",
        stats::max(&errs)
    );
}

#[test]
fn locality_does_not_break_region_fits() {
    // The Table 2 loop must hold *with* the calibrated locality component.
    let populations = pop::abilene().populations.clone();
    for region in Region::all() {
        let cfg = region.config(0.05);
        assert!(
            cfg.locality.is_some(),
            "regions default to calibrated locality"
        );
        let trace = Trace::synthesize(cfg, &populations, 32);
        let fit = fit_zipf(&trace.object_counts()).unwrap();
        assert!(
            (fit.alpha_mle - region.paper_alpha()).abs() < 0.12,
            "{}: {} vs {}",
            region.name(),
            fit.alpha_mle,
            region.paper_alpha()
        );
        assert!(
            fit.r_squared > 0.75,
            "{}: R^2 {}",
            region.name(),
            fit.r_squared
        );
    }
}

#[test]
fn skew_metric_is_monotone_in_parameter() {
    // The paper's skew metric (§5.1 fn. 5) should increase with our
    // generator's skew parameter across the whole range.
    let mut last = -1.0;
    for s in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let measured = SpatialModel::new(2_000, 11, s, 42).measured_skew();
        assert!(
            measured >= last,
            "skew metric not monotone: param {s} gave {measured} after {last}"
        );
        last = measured;
    }
    assert!(
        last > 0.15,
        "full skew should approach the uniform-rank stdev"
    );
}

#[test]
fn locality_window_bounds_reuse_distance() {
    // Replays come only from the last `window` requests at a leaf: objects
    // never repeat with a leaf-local reuse distance beyond window unless
    // redrawn by the IRM component. Statistical check: with a tiny window
    // most repeats are near.
    let cfg = TraceConfig {
        requests: 40_000,
        objects: 200_000, // IRM repeats essentially never happen
        alpha: 0.8,
        skew: 0.0,
        locality: Some(Locality { q: 0.7, window: 16 }),
        sizes: icn_workload::sizes::SizeModel::Unit,
        seed: 5,
        dynamics: None,
    };
    let trace = Trace::synthesize(cfg, &[1_000], 1); // single leaf
    let mut last_seen: std::collections::HashMap<u32, usize> = Default::default();
    let mut near = 0usize;
    let mut far = 0usize;
    for (i, r) in trace.requests.iter().enumerate() {
        if let Some(&prev) = last_seen.get(&r.object) {
            if i - prev <= 64 {
                near += 1;
            } else {
                far += 1;
            }
        }
        last_seen.insert(r.object, i);
    }
    // Replay chains can resurface an object later (a replayed object
    // re-enters the window), so some far repeats are expected; locality
    // still concentrates reuse heavily near the window.
    assert!(
        near > 5 * far.max(1),
        "repeats should be overwhelmingly near: near={near} far={far}"
    );
}

#[test]
fn object_sizes_are_popularity_independent() {
    // §5.1: "we do not see a strong correlation between an object's size
    // and its popularity" — our generator draws sizes independent of rank.
    let sizes = icn_workload::sizes::SizeModel::web_default().generate(20_000, 3);
    let head: Vec<f64> = sizes[..1_000].iter().map(|&s| s as f64).collect();
    let tail: Vec<f64> = sizes[19_000..].iter().map(|&s| s as f64).collect();
    let (mh, mt) = (stats::mean(&head), stats::mean(&tail));
    // Means of heavy-tailed samples are noisy; just require same order of
    // magnitude.
    let ratio = mh.max(mt) / mh.min(mt);
    assert!(ratio < 5.0, "head/tail mean size ratio {ratio}");
}
