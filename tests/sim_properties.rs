//! Property tests over the simulator: invariants that must hold for every
//! design, topology shape, and workload drawn by proptest.

use icn_core::config::ExperimentConfig;
use icn_core::design::DesignKind;
use icn_core::sim::Simulator;
use icn_topology::{pop::PopGraph, AccessTree, Network};
use icn_workload::origin::{assign_origins, OriginPolicy};
use icn_workload::trace::{Locality, Trace, TraceConfig};
use proptest::prelude::*;

fn any_design() -> impl Strategy<Value = DesignKind> {
    prop_oneof![
        Just(DesignKind::NoCache),
        Just(DesignKind::Edge),
        Just(DesignKind::EdgeCoop),
        Just(DesignKind::EdgeNorm),
        Just(DesignKind::TwoLevels),
        Just(DesignKind::TwoLevelsCoop),
        Just(DesignKind::NormCoop),
        Just(DesignKind::DoubleBudgetCoop),
        Just(DesignKind::IcnSp),
        Just(DesignKind::IcnNr),
        Just(DesignKind::InfiniteEdge),
        Just(DesignKind::InfiniteIcnNr),
    ]
}

/// A small random connected PoP graph (ring + chords keeps it connected).
fn any_core(pops: usize, chords: &[(usize, usize)]) -> PopGraph {
    let labels: Vec<String> = (0..pops).map(|i| format!("p{i}")).collect();
    let populations: Vec<u64> = (0..pops).map(|i| 1_000 + 500 * i as u64).collect();
    let mut edges: Vec<(u32, u32)> = (0..pops)
        .map(|i| (i as u32, ((i + 1) % pops) as u32))
        .collect();
    for &(a, b) in chords {
        let (a, b) = (a % pops, b % pops);
        if a != b {
            edges.push((a as u32, b as u32));
        }
    }
    PopGraph::new("prop", labels, populations, edges)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_request_served_exactly_once(
        design in any_design(),
        pops in 3usize..7,
        arity in 1u32..4,
        depth in 1u32..4,
        alpha in 0.3f64..1.5,
        f_fraction in 0.0f64..0.3,
        locality_q in 0.0f64..0.9,
        seed in 0u64..1_000,
        chords in prop::collection::vec((0usize..8, 0usize..8), 0..4),
    ) {
        let core = any_core(pops, &chords);
        let net = Network::new(core, AccessTree::new(arity, depth));
        let cfg = TraceConfig {
            requests: 2_000,
            objects: 300,
            alpha,
            skew: 0.0,
            locality: if locality_q > 0.0 {
                Some(Locality { q: locality_q, window: 32 })
            } else {
                None
            },
            sizes: icn_workload::sizes::SizeModel::Unit,
            seed,
            dynamics: None,
        };
        let trace = Trace::synthesize(cfg, &net.core.populations, net.leaves_per_pop());
        let origins = assign_origins(
            OriginPolicy::PopulationProportional,
            trace.config.objects,
            &net.core.populations,
            seed ^ 1,
        );
        let mut exp = ExperimentConfig::baseline(design);
        exp.f_fraction = f_fraction;
        let mut sim = Simulator::new(&net, exp, &origins, &trace.object_sizes);
        sim.run(&trace.requests);
        let m = sim.metrics();

        // 1. Conservation.
        prop_assert_eq!(m.requests, 2_000);
        prop_assert_eq!(m.cache_hits + m.origin_hits, m.requests);
        // 2. Hit levels account for all cache hits.
        prop_assert_eq!(m.hits_by_level.iter().sum::<u64>(), m.cache_hits);
        // 3. Latency bounds: at least 1 per request; at most the network
        //    diameter + 1 per request.
        prop_assert!(m.total_latency >= m.requests as f64);
        let diameter_bound = (2 * depth
            + net.core.len() as u32) as f64 + 3.0;
        prop_assert!(
            m.avg_latency() <= diameter_bound,
            "avg latency {} exceeds bound {}", m.avg_latency(), diameter_bound
        );
        // 4. Origin counters are consistent.
        prop_assert_eq!(m.origin_served.iter().sum::<u64>(), m.origin_hits);
        // 5. NoCache means no cache hits.
        if design == DesignKind::NoCache {
            prop_assert_eq!(m.cache_hits, 0);
        }
        // 6. Congestion totals: every transfer crosses >= 0 links; the
        //    per-link totals are bounded by requests x max path length.
        let total_transfers: u64 = m.link_transfers.iter().sum();
        prop_assert!(total_transfers <= m.requests * diameter_bound as u64);
    }

    #[test]
    fn improvements_are_bounded(
        design in any_design(),
        alpha in 0.5f64..1.3,
        seed in 0u64..100,
    ) {
        let core = any_core(4, &[]);
        let net_tree = AccessTree::new(2, 2);
        let cfg = TraceConfig {
            requests: 3_000,
            objects: 400,
            alpha,
            skew: 0.0,
            locality: None,
            sizes: icn_workload::sizes::SizeModel::Unit,
            seed,
            dynamics: None,
        };
        let s = icn_core::sweep::Scenario::build(
            core,
            net_tree,
            cfg,
            OriginPolicy::PopulationProportional,
        );
        let imp = s.improvement(ExperimentConfig::baseline(design));
        // Improvement over no caching is within [-5, 100] percent: caching
        // never makes latency worse than ~no caching (small negatives can
        // appear only from coop detours).
        for v in [imp.latency_pct, imp.congestion_pct, imp.origin_pct] {
            prop_assert!(v <= 100.0, "{design:?}: {v}");
            prop_assert!(v >= -5.0, "{design:?}: improvement suspiciously negative: {v}");
        }
    }
}
