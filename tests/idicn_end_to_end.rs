//! Integration tests: the complete idICN overlay over loopback sockets —
//! Figure 11 end to end, plus the qualitative properties of Table 1.

use idicn::crypto::mss::Identity;
use idicn::name::ContentName;
use idicn::origin::OriginServer;
use idicn::proxy::{fetch_verified, EdgeProxy};
use idicn::resolver::{Resolver, ResolverClient};
use idicn::reverse_proxy::ReverseProxy;
use idicn::wpad::{discover_pac, PacFile, ProxyDecision, WpadService};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct World {
    origin: OriginServer,
    _origin_srv: idicn::http::HttpServer,
    _resolver_srv: idicn::http::HttpServer,
    resolver_client: ResolverClient,
    rp: ReverseProxy,
    _rp_srv: idicn::http::HttpServer,
    proxy: EdgeProxy,
    proxy_srv: idicn::http::HttpServer,
}

fn world(seed: u64) -> World {
    let origin = OriginServer::new();
    let origin_srv = origin.serve().unwrap();
    let resolver = Resolver::new();
    let resolver_srv = resolver.serve().unwrap();
    let resolver_client = ResolverClient::new(resolver_srv.addr());
    let identity = Identity::generate(&mut StdRng::seed_from_u64(seed), 4);
    let rp = ReverseProxy::new(identity, origin_srv.addr(), resolver_client);
    let rp_srv = rp.serve().unwrap();
    let proxy = EdgeProxy::new(resolver_client, 64);
    let proxy_srv = proxy.serve().unwrap();
    World {
        origin,
        _origin_srv: origin_srv,
        _resolver_srv: resolver_srv,
        resolver_client,
        rp,
        _rp_srv: rp_srv,
        proxy,
        proxy_srv,
    }
}

#[test]
fn figure11_pipeline_with_wpad() {
    let w = world(1);
    w.origin
        .add_content("index", b"hello information-centric world".to_vec());
    let name = w.rp.publish("index").unwrap();

    // Step 1: WPAD auto-configuration.
    let wpad = WpadService::start(PacFile::idicn_default(w.proxy_srv.addr())).unwrap();
    let pac = discover_pac(wpad.discovery_addr()).unwrap();
    let fqdn = name.to_fqdn();
    let proxy_addr = match pac.find_proxy_for_url(&format!("http://{fqdn}/"), &fqdn) {
        ProxyDecision::Proxy(a) => a,
        ProxyDecision::Direct => panic!("expected proxying for idicn.org"),
    };
    assert_eq!(proxy_addr, w.proxy_srv.addr());
    // Legacy hosts bypass the proxy entirely.
    assert_eq!(
        pac.find_proxy_for_url("http://example.com/", "example.com"),
        ProxyDecision::Direct
    );

    // Steps 2-7: two fetches; the second is an edge cache hit.
    let (body, meta, hit1) = fetch_verified(proxy_addr, &name).unwrap();
    assert_eq!(body, b"hello information-centric world");
    assert!(!hit1);
    assert_eq!(meta.name, name);
    let (_, _, hit2) = fetch_verified(proxy_addr, &name).unwrap();
    assert!(hit2);
    let stats = w.proxy.stats();
    assert_eq!((stats.hits, stats.misses), (1, 1));
    assert_eq!(stats.verify_failures, 0);
    // The proxy's telemetry snapshot timed both requests.
    assert_eq!(w.proxy.telemetry().timers["proxy.request"].count, 2);
}

#[test]
fn content_integrity_is_end_to_end() {
    // Table 1: security comes from the name binding, not the channel or
    // the server identity.
    let w = world(2);
    w.origin.add_content("article", b"authentic".to_vec());
    let name = w.rp.publish("article").unwrap();

    // A second publisher cannot register content under the first's name:
    // same label, different principal => different name entirely.
    let identity2 = Identity::generate(&mut StdRng::seed_from_u64(3), 2);
    let rp2 = ReverseProxy::new(identity2, w._origin_srv.addr(), w.resolver_client);
    let _rp2_srv = rp2.serve().unwrap();
    let name2 = rp2.publish("article").unwrap();
    assert_ne!(name, name2, "names are publisher-scoped");

    // Both resolve and verify independently.
    let (b1, _, _) = fetch_verified(w.proxy_srv.addr(), &name).unwrap();
    let (b2, _, _) = fetch_verified(w.proxy_srv.addr(), &name2).unwrap();
    assert_eq!(b1, b"authentic");
    assert_eq!(b2, b"authentic");

    // Tampering after publish is caught when the cache is cold.
    w.origin.add_content("article", b"tampered!".to_vec());
    w.rp.evict("article");
    rp2.evict("article");
    let cold_proxy = EdgeProxy::new(w.resolver_client, 8);
    let cold_srv = cold_proxy.serve().unwrap();
    assert!(fetch_verified(cold_srv.addr(), &name).is_err());
}

#[test]
fn provider_side_failure_does_not_break_cached_content() {
    // The incremental-deployment benefit: the edge keeps working when the
    // provider is unreachable.
    let w = world(4);
    w.origin.add_content("vod", vec![7u8; 100_000]);
    let name = w.rp.publish("vod").unwrap();
    fetch_verified(w.proxy_srv.addr(), &name).unwrap();
    drop(w._rp_srv);
    drop(w._origin_srv);
    let (body, _, hit) = fetch_verified(w.proxy_srv.addr(), &name).unwrap();
    assert!(hit);
    assert_eq!(body.len(), 100_000);
}

#[test]
fn multiple_objects_share_one_identity() {
    // The MSS identity signs many objects under one principal P.
    let w = world(5);
    let mut names: Vec<ContentName> = Vec::new();
    for i in 0..5 {
        let label = format!("episode-{i}");
        w.origin
            .add_content(&label, format!("content of {label}").into_bytes());
        names.push(w.rp.publish(&label).unwrap());
    }
    let p = names[0].principal;
    assert!(names.iter().all(|n| n.principal == p));
    for (i, name) in names.iter().enumerate() {
        let (body, _, _) = fetch_verified(w.proxy_srv.addr(), name).unwrap();
        assert_eq!(body, format!("content of episode-{i}").into_bytes());
    }
}

#[test]
fn proxy_range_requests_resume_partial_transfers() {
    // Mobility-style session resumption straight through the edge proxy.
    let w = world(6);
    let blob: Vec<u8> = (0..50_000u32).map(|i| (i % 199) as u8).collect();
    w.origin.add_content("movie", blob.clone());
    let name = w.rp.publish("movie").unwrap();
    fetch_verified(w.proxy_srv.addr(), &name).unwrap(); // warm the cache

    let mut assembled = Vec::new();
    let chunk = 16_384;
    while assembled.len() < blob.len() {
        let start = assembled.len();
        let end = (start + chunk).min(blob.len()) - 1;
        let resp = idicn::http::http_get(
            w.proxy_srv.addr(),
            &format!("http://{}/", name.to_fqdn()),
            &[("Range", &format!("bytes={start}-{end}"))],
        )
        .unwrap();
        assert_eq!(resp.status, 206);
        assembled.extend_from_slice(&resp.body);
    }
    assert_eq!(assembled, blob);
}
