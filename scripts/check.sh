#!/usr/bin/env bash
# Full repo health check: build, tests, lints, formatting, and a telemetry
# smoke test (fig6 --telemetry must emit a sidecar that parses back).
set -eu
cd "$(dirname "$0")/.."

echo "=== cargo build --release"
cargo build --release --workspace

echo "=== cargo test"
cargo test -q --workspace

echo "=== cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "=== icn-lint (panic paths, determinism, feature gates)"
cargo run -q -p icn-lint -- --workspace

echo "=== cargo fmt --check"
cargo fmt --check --all

echo "=== --no-default-features builds"
cargo build --release --workspace --no-default-features

echo "=== telemetry smoke (fig6 --telemetry)"
sidecar="$(mktemp /tmp/fig6-telemetry.XXXXXX.json)"
trap 'rm -f "$sidecar"' EXIT
SCALE="${SCALE:-0.02}" cargo run --release -p icn-bench --bin fig6 -- \
    --telemetry "$sidecar" >/dev/null
cargo run --release -p icn-bench --bin telemetry_check -- "$sidecar" >/dev/null
echo "telemetry sidecar OK: $sidecar"

echo "all checks passed"
