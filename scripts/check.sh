#!/usr/bin/env bash
# Full repo health check: build, tests, lints, formatting, and a telemetry
# smoke test (fig6 --telemetry must emit a sidecar that parses back).
set -eu
cd "$(dirname "$0")/.."

echo "=== cargo build --release"
cargo build --release --workspace

echo "=== cargo test"
cargo test -q --workspace

echo "=== cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "=== icn-lint (panic paths, determinism, feature gates)"
cargo run -q -p icn-lint -- --workspace

echo "=== cargo fmt --check"
cargo fmt --check --all

echo "=== --no-default-features builds"
cargo build --release --workspace --no-default-features

echo "=== release-profile boundary tests (saturating latency arithmetic)"
cargo test -q --release -p icn-core --lib latency::

echo "=== telemetry smoke (fig6 --telemetry)"
sidecar="$(mktemp /tmp/fig6-telemetry.XXXXXX.json)"
out1="$(mktemp /tmp/fig6-jobs1.XXXXXX.txt)"
out4="$(mktemp /tmp/fig6-jobs4.XXXXXX.txt)"
outref="$(mktemp /tmp/fig6-reference.XXXXXX.txt)"
fail1="$(mktemp /tmp/failures-jobs1.XXXXXX.txt)"
fail4="$(mktemp /tmp/failures-jobs4.XXXXXX.txt)"
benchjson="$(mktemp /tmp/bench-sim.XXXXXX.json)"
trap 'rm -f "$sidecar" "$out1" "$out4" "$outref" "$fail1" "$fail4" "$benchjson"' EXIT
SCALE="${SCALE:-0.02}" cargo run --release -p icn-bench --bin fig6 -- \
    --telemetry "$sidecar" >/dev/null
cargo run --release -p icn-bench --bin telemetry_check -- "$sidecar" >/dev/null
echo "telemetry sidecar OK: $sidecar"

echo "=== parallel determinism cross-check (fig6 JOBS=1 vs JOBS=4)"
SCALE="${SCALE:-0.02}" JOBS=1 cargo run --release -p icn-bench --bin fig6 \
    >"$out1" 2>/dev/null
SCALE="${SCALE:-0.02}" JOBS=4 cargo run --release -p icn-bench --bin fig6 \
    >"$out4" 2>/dev/null
cmp "$out1" "$out4"
echo "JOBS=1 and JOBS=4 stdout byte-identical"

echo "=== flat-vs-reference cross-check (fig6 with ICN_SIM_REFERENCE=1)"
# The flat hot path (CostTable, bitmask replica directory, select-min)
# must reproduce the reference implementation byte-for-byte.
SCALE="${SCALE:-0.02}" JOBS=1 ICN_SIM_REFERENCE=1 \
    cargo run --release -p icn-bench --bin fig6 >"$outref" 2>/dev/null
cmp "$out1" "$outref"
echo "flat and reference stdout byte-identical"

echo "=== perf benchmark smoke (perf --smoke emits parseable BENCH_sim.json)"
cargo run --release -p icn-bench --bin perf -- --smoke --out "$benchjson" >/dev/null
grep -q '"bench": "sim"' "$benchjson"
grep -q '"requests_per_sec"' "$benchjson"
echo "perf smoke OK: $benchjson"

echo "=== fault-injection smoke (failures JOBS=1 vs JOBS=4)"
SCALE="${SCALE:-0.02}" JOBS=1 cargo run --release -p icn-bench --bin failures \
    >"$fail1" 2>/dev/null
SCALE="${SCALE:-0.02}" JOBS=4 cargo run --release -p icn-bench --bin failures \
    >"$fail4" 2>/dev/null
cmp "$fail1" "$fail4"
echo "faulted sweep JOBS=1 and JOBS=4 stdout byte-identical"

echo "all checks passed"
