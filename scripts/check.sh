#!/usr/bin/env bash
# Full repo health check: build, tests, lints, formatting, and a telemetry
# smoke test (fig6 --telemetry must emit a sidecar that parses back).
set -eu
cd "$(dirname "$0")/.."

echo "=== cargo build --release"
cargo build --release --workspace

echo "=== cargo test"
# Includes the idICN chaos soak (crates/idicn/tests/chaos_soak.rs):
# thousands of requests through the overlay with deterministic resets,
# stalls, truncation, and content corruption on the wire.
cargo test -q --workspace

echo "=== cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "=== icn-lint (panic paths, determinism, reach/unsafe/hot-path audits)"
# --budget-ms keeps the scan a developer-loop tool: if the interprocedural
# analysis ever gets slow, this fails loudly instead of silently taxing
# every check.sh run (per-rule breakdown: icn-lint --workspace --json).
cargo run -q -p icn-lint -- --workspace --budget-ms 2000

echo "=== sanitizers (advisory; skipped without a nightly toolchain)"
scripts/sanitize.sh || echo "warning: sanitizer run reported issues (advisory only)" >&2

echo "=== cargo fmt --check"
cargo fmt --check --all

echo "=== --no-default-features builds"
cargo build --release --workspace --no-default-features

echo "=== release-profile boundary tests (saturating latency arithmetic)"
cargo test -q --release -p icn-core --lib latency::

echo "=== telemetry smoke (fig6 --telemetry)"
sidecar="$(mktemp /tmp/fig6-telemetry.XXXXXX.json)"
out1="$(mktemp /tmp/fig6-jobs1.XXXXXX.txt)"
out4="$(mktemp /tmp/fig6-jobs4.XXXXXX.txt)"
outref="$(mktemp /tmp/fig6-reference.XXXXXX.txt)"
fail1="$(mktemp /tmp/failures-jobs1.XXXXXX.txt)"
fail4="$(mktemp /tmp/failures-jobs4.XXXXXX.txt)"
dis1="$(mktemp /tmp/disasters-jobs1.XXXXXX.txt)"
dis4="$(mktemp /tmp/disasters-jobs4.XXXXXX.txt)"
dyn1="$(mktemp /tmp/dynamics-jobs1.XXXXXX.txt)"
dyn4="$(mktemp /tmp/dynamics-jobs4.XXXXXX.txt)"
benchjson="$(mktemp /tmp/bench-sim.XXXXXX.json)"
benchjson2="$(mktemp /tmp/bench-sim2.XXXXXX.json)"
outprof="$(mktemp /tmp/fig6-profiled.XXXXXX.txt)"
shard1="$(mktemp /tmp/fig6-shards1.XXXXXX.txt)"
shard4="$(mktemp /tmp/fig6-shards4.XXXXXX.txt)"
shardref="$(mktemp /tmp/fig6-shardsref.XXXXXX.txt)"
trap 'rm -f "$sidecar" "$out1" "$out4" "$outref" "$fail1" "$fail4" "$dis1" "$dis4" "$dyn1" "$dyn4" "$benchjson" "$benchjson2" "$outprof" "$shard1" "$shard4" "$shardref"' EXIT
SCALE="${SCALE:-0.02}" cargo run --release -p icn-bench --bin fig6 -- \
    --telemetry "$sidecar" >/dev/null
cargo run --release -p icn-bench --bin telemetry_check -- "$sidecar" >/dev/null
echo "telemetry sidecar OK: $sidecar"

echo "=== parallel determinism cross-check (fig6 JOBS=1 vs JOBS=4)"
SCALE="${SCALE:-0.02}" JOBS=1 cargo run --release -p icn-bench --bin fig6 \
    >"$out1" 2>/dev/null
SCALE="${SCALE:-0.02}" JOBS=4 cargo run --release -p icn-bench --bin fig6 \
    >"$out4" 2>/dev/null
cmp "$out1" "$out4"
echo "JOBS=1 and JOBS=4 stdout byte-identical"

echo "=== flat-vs-reference cross-check (fig6 with ICN_SIM_REFERENCE=1)"
# The flat hot path (CostTable, bitmask replica directory, select-min)
# must reproduce the reference implementation byte-for-byte.
SCALE="${SCALE:-0.02}" JOBS=1 ICN_SIM_REFERENCE=1 \
    cargo run --release -p icn-bench --bin fig6 >"$outref" 2>/dev/null
cmp "$out1" "$outref"
echo "flat and reference stdout byte-identical"

echo "=== intra-cell shard determinism (fig6 CELL_SHARDS=1 vs 4, vs reference)"
# The epoch-sharded engine defines its semantics per-PoP, so the worker
# count is pure mechanics: CELL_SHARDS=1 and CELL_SHARDS=4 must print the
# same bytes, and both must match the reference (non-SoA) lane kernels.
# Cell-level JOBS composes with intra-cell shards; stacking both must not
# move a byte either.
SCALE="${SCALE:-0.02}" JOBS=1 CELL_SHARDS=1 \
    cargo run --release -p icn-bench --bin fig6 >"$shard1" 2>/dev/null
SCALE="${SCALE:-0.02}" JOBS=4 CELL_SHARDS=4 \
    cargo run --release -p icn-bench --bin fig6 >"$shard4" 2>/dev/null
SCALE="${SCALE:-0.02}" JOBS=1 CELL_SHARDS=4 ICN_SIM_REFERENCE=1 \
    cargo run --release -p icn-bench --bin fig6 >"$shardref" 2>/dev/null
cmp "$shard1" "$shard4"
cmp "$shard1" "$shardref"
echo "CELL_SHARDS=1 and CELL_SHARDS=4 (with JOBS=4 and reference mode) byte-identical"

echo "=== profiler determinism cross-check (fig6 ICN_PROFILE=1)"
# Profiling is pure observation: enabling it must not move a single digit
# of the printed figures (spans time phases but never steer the sweep).
SCALE="${SCALE:-0.02}" JOBS=4 ICN_PROFILE=1 \
    cargo run --release -p icn-bench --bin fig6 >"$outprof" 2>/dev/null
cmp "$out4" "$outprof"
echo "profiled and unprofiled stdout byte-identical"

echo "=== perf benchmark smoke (perf --smoke emits parseable BENCH_sim.json)"
cargo run --release -p icn-bench --bin perf -- --smoke --out "$benchjson" >/dev/null 2>&1
grep -q '"bench": "sim"' "$benchjson"
grep -q '"requests_per_sec"' "$benchjson"
grep -q '"profile"' "$benchjson"
grep -q '"jobs"' "$benchjson"
grep -q '"shards"' "$benchjson"
grep -q '"reconcile_pct"' "$benchjson"
cargo run --release -p icn-bench --bin telemetry_check -- --profile "$benchjson" >/dev/null
echo "perf smoke OK (profile section validates): $benchjson"

echo "=== live /metrics exposition (idICN pipeline scraped in-process)"
cargo run --release -p icn-bench --bin telemetry_check -- --live-metrics

echo "=== bench throughput comparison (advisory: two smoke runs)"
# Back-to-back smoke runs on a shared machine are noisy, so a regression
# here warns instead of failing; compare against a saved baseline for a
# strict gate (see scripts/bench_compare.sh).
cargo run --release -p icn-bench --bin perf -- --smoke --out "$benchjson2" >/dev/null 2>&1
if ! scripts/bench_compare.sh "$benchjson" "$benchjson2"; then
    echo "warning: smoke-run throughput drifted beyond tolerance (advisory only)" >&2
fi

echo "=== fault-injection smoke (failures JOBS=1 vs JOBS=4)"
SCALE="${SCALE:-0.02}" JOBS=1 cargo run --release -p icn-bench --bin failures \
    >"$fail1" 2>/dev/null
SCALE="${SCALE:-0.02}" JOBS=4 cargo run --release -p icn-bench --bin failures \
    >"$fail4" 2>/dev/null
cmp "$fail1" "$fail4"
echo "faulted sweep JOBS=1 and JOBS=4 stdout byte-identical"

echo "=== correlated-disaster smoke (disasters --smoke, JOBS=1 vs JOBS=4)"
# Shared-risk groups, geometric repair, cascading overload, and content
# corruption are all pure functions of (seed, entity, window); routing a
# disaster sweep through the parallel batch path must not move a byte.
JOBS=1 cargo run --release -p icn-bench --bin disasters -- --smoke \
    >"$dis1" 2>/dev/null
JOBS=4 cargo run --release -p icn-bench --bin disasters -- --smoke \
    >"$dis4" 2>/dev/null
cmp "$dis1" "$dis4"
echo "disaster sweep JOBS=1 and JOBS=4 stdout byte-identical"

echo "=== workload-dynamics smoke (dynamics --smoke, JOBS=1 vs JOBS=4)"
# Exercises the streaming dynamics (diurnal/flash/churn), the TTL expiry
# queue, and TinyLFU admission through the parallel sweep path; dynamics
# are pure functions of the trace seed, so stdout must not move a byte.
JOBS=1 cargo run --release -p icn-bench --bin dynamics -- --smoke \
    >"$dyn1" 2>/dev/null
JOBS=4 cargo run --release -p icn-bench --bin dynamics -- --smoke \
    >"$dyn4" 2>/dev/null
cmp "$dyn1" "$dyn4"
echo "dynamics sweep JOBS=1 and JOBS=4 stdout byte-identical"

echo "all checks passed"
