#!/usr/bin/env bash
# Regenerates every table and figure; outputs land in results/.
# SCALE defaults to 0.25 of the paper's trace volume (see README).
set -u
cd "$(dirname "$0")/.."
SCALE="${SCALE:-0.25}"
export SCALE
mkdir -p results
for exp in fig1 table2 fig2 fig6 fig7 table3 fig8a fig8b fig8c table4 fig9 fig10 ablations dos_resilience; do
    echo "=== running $exp (SCALE=$SCALE)"
    cargo run --release -p icn-bench --bin "$exp" >"results/$exp.txt" 2>"results/$exp.log" \
        || { echo "FAILED: $exp (see results/$exp.log)"; exit 1; }
done
echo "all experiments complete; outputs in results/"
