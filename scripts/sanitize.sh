#!/usr/bin/env bash
# Advisory sanitizer pass over the sweep engine's concurrency tests.
#
# ThreadSanitizer and AddressSanitizer need a nightly toolchain with the
# rust-src component (-Zsanitizer requires -Zbuild-std). The determinism
# story does not depend on them — the byte-compare cross-checks in
# check.sh are the gate — so this script is advisory by design: when no
# suitable nightly is installed it says so and exits 0, and check.sh
# treats a non-zero exit as a warning, never a failure.
#
# Run explicitly with a nightly toolchain installed:
#   scripts/sanitize.sh            # both sanitizers
#   SAN=thread scripts/sanitize.sh # just TSan
set -u
cd "$(dirname "$0")/.."

if ! cargo +nightly --version >/dev/null 2>&1; then
    echo "sanitize: no nightly toolchain installed — skipping (advisory)"
    exit 0
fi
sysroot="$(rustc +nightly --print sysroot 2>/dev/null || true)"
if [ -z "$sysroot" ] || [ ! -d "$sysroot/lib/rustlib/src/rust/library" ]; then
    echo "sanitize: nightly lacks the rust-src component — skipping (advisory)"
    echo "  (rustup component add rust-src --toolchain nightly)"
    exit 0
fi

host="$(rustc +nightly -vV | sed -n 's/^host: //p')"
status=0
for san in ${SAN:-thread address}; do
    echo "=== ${san} sanitizer: sweep + fault determinism tests"
    # The sweep engine owns the only sanctioned thread spawn; its tests
    # (submission-order merge, JOBS-invariance) are where a data race or
    # a stray unsafe would surface.
    if ! RUSTFLAGS="-Zsanitizer=${san}" \
        cargo +nightly test -Zbuild-std --target "$host" \
        -p icn-core --lib sweep:: fault:: 2>&1 | tail -20; then
        echo "sanitize: ${san} sanitizer run FAILED (advisory)" >&2
        status=1
    fi
done
exit "$status"
