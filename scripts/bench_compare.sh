#!/usr/bin/env bash
# Compares two BENCH_sim.json files written by `perf --out` and fails when
# the candidate's throughput regresses below the baseline by more than the
# tolerance — overall or for any single design.
#
#   usage: bench_compare.sh <baseline.json> <candidate.json> [tolerance_pct]
#
# The tolerance defaults to $TOLERANCE or 15 (percent). Exit codes:
#   0  no regression beyond tolerance
#   1  at least one regression
#   2  usage / unreadable or unparseable input
#
# scripts/check.sh runs this advisorily (two back-to-back smoke runs):
# machine noise means a red result there is a hint, not a gate. Comparing a
# committed baseline against a fresh run is the intended strict use.
set -eu

if [ "$#" -lt 2 ] || [ "$#" -gt 3 ]; then
    echo "usage: bench_compare.sh <baseline.json> <candidate.json> [tolerance_pct]" >&2
    exit 2
fi
baseline="$1"
candidate="$2"
tolerance="${3:-${TOLERANCE:-15}}"

for f in "$baseline" "$candidate"; do
    if [ ! -r "$f" ]; then
        echo "bench_compare: cannot read $f" >&2
        exit 2
    fi
    # Every section perf emits must be present in both files; a silent
    # partial comparison would report "ok" while skipping whole sections
    # (e.g. a baseline written before the shard sweep existed).
    for section in '"total"' '"profile"' '"designs"' '"shards"'; do
        if ! grep -q "$section" "$f"; then
            echo "bench_compare: $f is missing the $section section" \
                "(stale baseline? regenerate with: perf --out)" >&2
            exit 2
        fi
    done
done

# Emits "<key> <requests_per_sec>" lines: one TOTAL plus one per design.
# BENCH_sim.json keeps each design entry on its own line and the total
# block's requests_per_sec appears before any design line.
extract() {
    awk '
        /"design":/ {
            name = $0
            sub(/.*"design": *"/, "", name); sub(/".*/, "", name)
            rps = $0
            sub(/.*"requests_per_sec": */, "", rps); sub(/[^0-9].*/, "", rps)
            if (name != "" && rps != "") print name, rps
            next
        }
        /"requests_per_sec":/ && !seen_total {
            rps = $0
            sub(/.*"requests_per_sec": */, "", rps); sub(/[^0-9].*/, "", rps)
            if (rps != "") { print "TOTAL", rps; seen_total = 1 }
        }
    ' "$1"
}

base_rows="$(extract "$baseline")"
cand_rows="$(extract "$candidate")"
if [ -z "$base_rows" ] || [ -z "$cand_rows" ]; then
    echo "bench_compare: no requests_per_sec rows found (not a perf --out file?)" >&2
    exit 2
fi

printf '%-12s %14s %14s %9s\n' "key" "baseline" "candidate" "delta%"
status=0
while read -r key base_rps; do
    cand_rps="$(printf '%s\n' "$cand_rows" | awk -v k="$key" '$1 == k { print $2 }')"
    if [ -z "$cand_rps" ]; then
        echo "bench_compare: $key present in baseline but missing from candidate" >&2
        status=1
        continue
    fi
    verdict="$(awk -v b="$base_rps" -v c="$cand_rps" -v tol="$tolerance" 'BEGIN {
        delta = (c - b) * 100.0 / b
        printf "%+.1f %s", delta, (delta < -tol ? "REGRESSION" : "ok")
    }')"
    delta="${verdict% *}"
    flag="${verdict#* }"
    printf '%-12s %14s %14s %9s %s\n' "$key" "$base_rps" "$cand_rps" "$delta" \
        "$([ "$flag" = REGRESSION ] && echo "<-- beyond ${tolerance}% tolerance" || true)"
    if [ "$flag" = REGRESSION ]; then
        status=1
    fi
done <<EOF
$base_rows
EOF

if [ "$status" -ne 0 ]; then
    echo "bench_compare: throughput regression beyond ${tolerance}%" >&2
fi
exit "$status"
