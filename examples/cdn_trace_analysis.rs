//! CDN trace analysis: synthesize, export, re-import, and fit a trace.
//!
//! Mirrors the paper's §2.2 measurement methodology: take a request log,
//! compute the rank-frequency distribution, fit a Zipf exponent, and check
//! linearity on the log-log plot. Also demonstrates the CSV trace format
//! for bringing your own logs.
//!
//! Run with: `cargo run --release --example cdn_trace_analysis`

use icn_workload::fit::{fit_zipf, rank_frequency};
use icn_workload::trace::{Region, Trace};

fn main() {
    let populations = icn_topology::pop::geant().populations.clone();

    for region in Region::all() {
        let cfg = region.config(0.05);
        let trace = Trace::synthesize(cfg, &populations, 32);

        // Round-trip through the CSV interchange format, as you would with
        // a real log.
        let mut csv = Vec::new();
        trace.write_csv(&mut csv).expect("in-memory write");
        let reloaded = Trace::read_csv(std::io::BufReader::new(&csv[..])).expect("well-formed CSV");
        assert_eq!(reloaded.len(), trace.len());

        let counts = reloaded.object_counts();
        let fit = fit_zipf(&counts).expect("non-trivial trace");
        println!("=== {} ===", region.name());
        println!(
            "requests: {}   distinct objects: {}   CSV size: {} KiB",
            reloaded.len(),
            fit.support,
            csv.len() / 1024
        );
        println!(
            "alpha: MLE {:.3}, log-log regression {:.3} (R^2 = {:.3}); paper fit {:.2}",
            fit.alpha_mle,
            fit.alpha_regression,
            fit.r_squared,
            region.paper_alpha()
        );
        println!("top of the rank-frequency curve:");
        for (rank, freq) in rank_frequency(&counts, 8).into_iter().take(8) {
            let bar_len = (freq as f64).log2().max(0.0) as usize;
            println!("  rank {rank:>6}: {freq:>8}  {}", "#".repeat(bar_len));
        }
        println!();
    }
    println!(
        "All three regions are heavy-tailed with alpha near 1 — the regime where\n\
         the paper shows edge caching already captures most of the benefit."
    );
}
