//! Ad hoc content sharing (§6.2): Alice & Bob on a plane.
//!
//! No DHCP, no DNS, no internet. Alice has CNN headlines in her browser
//! cache; Bob wants them. Alice's ad hoc proxy publishes `cnn.com` over the
//! mDNS stand-in; Bob's name lookup falls back to mDNS, resolves to Alice's
//! machine, and fetches over HTTP. Also demonstrates the paper's noted
//! limitation — only one peer can own a domain name — and how flat idICN
//! names avoid it.
//!
//! Run with: `cargo run --release --example adhoc_sharing`

use idicn::adhoc::{AdhocNode, Link};

fn main() {
    // The emulated link-local segment (in a real deployment this is the
    // 224.0.0.251 multicast group; see DESIGN.md for the substitution).
    let link = Link::new();

    let alice = AdhocNode::start("alice", &link).expect("alice joins");
    let bob = AdhocNode::start("bob", &link).expect("bob joins");
    let carol = AdhocNode::start("carol", &link).expect("carol joins");
    println!("link-local peers: alice, bob, carol (no infrastructure)");

    // Alice's browser cache has the CNN front page.
    alice.publish("cnn.com", b"<h1>CNN: ICN debate continues</h1>".to_vec());
    println!("[alice] published cnn.com from her browser cache");

    // Bob types cnn.com; his resolver falls back to mDNS.
    let page = bob.fetch("cnn.com").expect("bob resolves via mDNS");
    println!(
        "[bob]   fetched cnn.com -> {:?}",
        String::from_utf8_lossy(&page)
    );

    // Nobody has nytimes.com: the lookup simply fails.
    assert!(bob.fetch("nytimes.com").is_none());
    println!("[bob]   nytimes.com -> no peer has it (lookup times out)");

    // The domain-name collision limitation: Carol also has a cnn.com copy.
    carol.publish("cnn.com", b"<h1>CNN via carol</h1>".to_vec());
    let copy = bob.fetch("cnn.com").expect("one of them answers");
    println!(
        "[bob]   cnn.com again -> first answer wins ({} bytes) — the paper's\n        \
         'only one of them will be able to publish it' limitation",
        copy.len()
    );

    // Flat self-certifying names don't collide: each publisher's P differs.
    alice.publish("headlines.alice-p", b"alice edition".to_vec());
    carol.publish("headlines.carol-p", b"carol edition".to_vec());
    let a = bob.fetch("headlines.alice-p").expect("alice's flat name");
    let c = bob.fetch("headlines.carol-p").expect("carol's flat name");
    println!(
        "[bob]   flat names disambiguate publishers: {:?} vs {:?}",
        String::from_utf8_lossy(&a),
        String::from_utf8_lossy(&c)
    );

    alice.shutdown();
    bob.shutdown();
    carol.shutdown();
    println!("\nAd hoc mode needs only Zeroconf-style primitives — no new network.");
}
