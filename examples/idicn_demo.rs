//! End-to-end idICN walkthrough: the complete Figure 11 pipeline over real
//! loopback sockets.
//!
//! Brings up an origin server, a name resolver, a publisher's reverse
//! proxy, an edge proxy, and a WPAD service; publishes content under a
//! self-certifying name; auto-configures a client via WPAD; fetches twice
//! (miss, then cache hit) with end-to-end signature verification; and shows
//! that a tampering origin is caught.
//!
//! Run with: `cargo run --release --example idicn_demo`

use idicn::crypto::mss::Identity;
use idicn::origin::OriginServer;
use idicn::proxy::{fetch_verified, EdgeProxy};
use idicn::resolver::{Resolver, ResolverClient};
use idicn::reverse_proxy::ReverseProxy;
use idicn::wpad::{discover_pac, PacFile, ProxyDecision, WpadService};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // --- Provider side -----------------------------------------------------
    let origin = OriginServer::new();
    origin.add_content(
        "sigcomm13-paper",
        b"Less Pain, Most of the Gain: Incrementally Deployable ICN".to_vec(),
    );
    let origin_srv = origin.serve().expect("origin server");
    println!("[origin]        serving at {}", origin_srv.addr());

    let resolver = Resolver::new();
    let resolver_srv = resolver.serve().expect("resolver");
    let resolver_client = ResolverClient::new(resolver_srv.addr());
    println!("[resolver]      serving at {}", resolver_srv.addr());

    // The publisher identity: a Merkle tree over one-time keys; the hash of
    // its root *is* the principal P in every name it publishes.
    let identity = Identity::generate(&mut StdRng::seed_from_u64(2013), 4);
    let reverse_proxy = ReverseProxy::new(identity, origin_srv.addr(), resolver_client);
    let rp_srv = reverse_proxy.serve().expect("reverse proxy");
    println!("[reverse proxy] serving at {}", rp_srv.addr());

    // Steps P1/P2: publish and register.
    let name = reverse_proxy.publish("sigcomm13-paper").expect("publish");
    println!("[publish]       name = {}", name.to_fqdn());

    // --- Edge side ----------------------------------------------------------
    let edge_proxy = EdgeProxy::new(resolver_client, 128);
    let proxy_srv = edge_proxy.serve().expect("edge proxy");
    let wpad = WpadService::start(PacFile::idicn_default(proxy_srv.addr())).expect("wpad");
    println!("[edge proxy]    serving at {}", proxy_srv.addr());

    // Step 1: the client discovers its proxy automatically.
    let pac = discover_pac(wpad.discovery_addr()).expect("wpad discovery");
    let decision = pac.find_proxy_for_url(&format!("http://{}/", name.to_fqdn()), &name.to_fqdn());
    let proxy_addr = match decision {
        ProxyDecision::Proxy(addr) => addr,
        ProxyDecision::Direct => panic!("idicn names must route via the proxy"),
    };
    println!("[client]        WPAD says: use proxy {proxy_addr}");

    // Steps 2-7: fetch by name; the proxy resolves, fetches, verifies.
    let (body, meta, hit) = fetch_verified(proxy_addr, &name).expect("first fetch");
    println!(
        "[fetch #1]      {} bytes, cache {}, {} pieces, signature OK",
        body.len(),
        if hit { "HIT" } else { "MISS" },
        meta.digests.num_pieces()
    );
    let (_, _, hit2) = fetch_verified(proxy_addr, &name).expect("second fetch");
    println!(
        "[fetch #2]      cache {}",
        if hit2 { "HIT" } else { "MISS" }
    );
    assert!(!hit && hit2, "expected miss then hit");

    // --- The security model in action ---------------------------------------
    // The origin silently replaces the bytes. The reverse proxy refuses to
    // serve content that no longer matches the published signature, so an
    // uncached fetch fails closed rather than delivering tampered data.
    origin.add_content("sigcomm13-paper", b"TAMPERED".to_vec());
    reverse_proxy.evict("sigcomm13-paper");
    let fresh_proxy = EdgeProxy::new(resolver_client, 8);
    let fresh_srv = fresh_proxy.serve().expect("fresh proxy");
    match fetch_verified(fresh_srv.addr(), &name) {
        Err(e) => println!("[tamper check]  rejected as expected: {e}"),
        Ok(_) => panic!("tampered content must not verify"),
    }

    println!(
        "\nidICN end-to-end: security from names + signatures, caching at the\n\
              edge, zero-touch client configuration — no router changes anywhere."
    );
}
