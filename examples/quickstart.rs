//! Quickstart: simulate caching architectures on a real backbone.
//!
//! Builds the Abilene backbone with the paper's baseline access trees,
//! synthesizes an Asia-like CDN workload, and compares edge caching against
//! a full ICN deployment (pervasive caches + nearest-replica routing) on
//! the paper's three metrics.
//!
//! Run with: `cargo run --release --example quickstart`

use icn_core::config::ExperimentConfig;
use icn_core::design::DesignKind;
use icn_core::sweep::Scenario;
use icn_topology::{pop, AccessTree};
use icn_workload::origin::OriginPolicy;
use icn_workload::trace::Region;

fn main() {
    // 1. A PoP-level core topology with metro populations, plus a binary
    //    access tree of depth 5 rooted at every PoP (§4.1 of the paper).
    let core = pop::abilene();
    let tree = AccessTree::baseline();
    println!(
        "topology: {} ({} PoPs, {} routers total)",
        core.name,
        core.len(),
        core.len() * tree.nodes() as usize
    );

    // 2. A synthetic CDN trace: Zipf popularity fitted to the paper's Asia
    //    log (alpha = 1.04), with calibrated temporal locality.
    let trace_cfg = Region::Asia.config(0.05); // 90k requests
    println!(
        "workload: {} requests over {} objects (alpha = {})",
        trace_cfg.requests, trace_cfg.objects, trace_cfg.alpha
    );

    // 3. Bundle network + trace + origin assignment into a scenario.
    let scenario = Scenario::build(core, tree, trace_cfg, OriginPolicy::PopulationProportional);

    // 4. Evaluate designs. Improvements are relative to running the same
    //    trace with no caches at all.
    println!(
        "\n{:<12} {:>10} {:>12} {:>12}",
        "design", "latency%", "congestion%", "origin%"
    );
    for design in [
        DesignKind::Edge,
        DesignKind::EdgeCoop,
        DesignKind::IcnSp,
        DesignKind::IcnNr,
    ] {
        let imp = scenario.improvement(ExperimentConfig::baseline(design));
        println!(
            "{:<12} {:>10.1} {:>12.1} {:>12.1}",
            design.name(),
            imp.latency_pct,
            imp.congestion_pct,
            imp.origin_pct
        );
    }

    let nr = scenario.improvement(ExperimentConfig::baseline(DesignKind::IcnNr));
    let edge = scenario.improvement(ExperimentConfig::baseline(DesignKind::Edge));
    println!(
        "\nICN-NR buys only {:.1}% latency over plain edge caching — the paper's\n\
         \"less pain, most of the gain\" argument in one number.",
        nr.latency_pct - edge.latency_pct
    );
}
