//! Mobility (§6.3): a server moves mid-download; the client resumes.
//!
//! A mobile content server re-binds to a new port (standing in for a new
//! network attachment) and re-registers its location with the resolver
//! (the dynamic-DNS stand-in). The client downloads with HTTP Range
//! requests; on connection loss it re-resolves the name and resumes from
//! the last byte, then verifies the whole object against the published
//! piece digests.
//!
//! Run with: `cargo run --release --example mobility_handoff`

use idicn::crypto::mss::Identity;
use idicn::mobility::{resume_download, MobileServer};
use idicn::resolver::{Resolver, ResolverClient};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn main() {
    let resolver = Resolver::new();
    let resolver_srv = resolver.serve().expect("resolver");
    let rc = ResolverClient::new(resolver_srv.addr());

    // A 2 MiB object served by a mobile node.
    let content: Vec<u8> = (0..2 * 1024 * 1024u32).map(|i| (i % 241) as u8).collect();
    let identity = Identity::generate(&mut StdRng::seed_from_u64(77), 4);
    let server = MobileServer::start(identity, rc, "road-movie", content.clone(), 256 * 1024)
        .expect("mobile server");
    println!(
        "[server] {} online at {} ({} bytes, {} pieces)",
        server.name().to_fqdn(),
        server.addr().unwrap(),
        content.len(),
        server.digests().num_pieces()
    );

    // A background thread plays the mobile user: disconnect, wander, and
    // reattach at a new address twice during the download.
    let mover = server.clone();
    let mover_thread = std::thread::spawn(move || {
        for hop in 1..=2 {
            std::thread::sleep(Duration::from_millis(60));
            mover.detach();
            std::thread::sleep(Duration::from_millis(120));
            mover.relocate().expect("re-register at the new address");
            println!(
                "[server] moved (hop {hop}) -> now at {}",
                mover.addr().unwrap()
            );
        }
    });

    // The client: ranged fetches with re-resolution on failure.
    let (bytes, resumes) = resume_download(
        &rc,
        server.name(),
        content.len(),
        128 * 1024, // 128 KiB ranges
        server.digests(),
        100,
    )
    .expect("download completes across moves");
    mover_thread.join().unwrap();

    assert_eq!(bytes, content, "content integrity across handoffs");
    println!(
        "[client] downloaded {} bytes with {} resume(s); digest verified",
        bytes.len(),
        resumes
    );
    println!(
        "\nMobility over plain HTTP: session resumption (Range) + dynamic\n\
         re-registration — 'traditional problems with handoffs simply go away'."
    );
}
