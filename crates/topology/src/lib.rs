//! PoP-level ISP topologies and k-ary access trees for ICN simulation.
//!
//! This crate provides the network substrate used by the simulator in
//! `icn-core`, mirroring the setup of Fayazbakhsh et al. (SIGCOMM 2013), §4.1:
//!
//! * a **core graph** of Points of Presence ([`PopGraph`]) annotated with
//!   metro populations — embedded educational backbones (Abilene, Géant) and
//!   seeded Rocketfuel-class synthetic topologies with the published PoP
//!   counts ([`pop::telstra`], [`pop::att`], ...);
//! * a **complete k-ary access tree** rooted at every PoP ([`AccessTree`]);
//! * the **combined router-level network** ([`Network`]) with global node
//!   ids, hop distances between arbitrary routers, and link-level path
//!   enumeration used for congestion accounting.

#![warn(missing_docs)]

pub mod net;
pub mod pop;
pub mod tree;

pub use net::{LinkId, Network, NodeId};
pub use pop::{PopGraph, PopId};
pub use tree::AccessTree;
