//! The combined router-level network: a core PoP graph with one complete
//! k-ary access tree hanging off every PoP.
//!
//! This is the structure the simulator routes requests over. Every router in
//! the network (tree nodes and PoP roots alike) has a global [`NodeId`];
//! every physical link (tree edges and core edges) has a global [`LinkId`]
//! used for congestion accounting. The PoP itself is the *root* (tree index
//! 0) of its access tree, and doubles as the origin server for the objects
//! it owns (§4.1).

use crate::pop::{PopGraph, PopId};
use crate::tree::AccessTree;

/// Global router identifier: `pop * tree.nodes() + tree_index`.
pub type NodeId = u32;

/// Global link identifier; see [`Network::link_count`] for the id space.
pub type LinkId = u32;

/// A core PoP graph combined with identical access trees at every PoP.
///
/// Construction precomputes flat lookup tables for every per-node and
/// per-PoP-pair query the simulator's request loop makes — node → (pop,
/// tree index, level, uplink id) and PoP pair → (link id, shortest core
/// path) — so the accessors below are array loads, not div/mod chains,
/// BFS-parent walks, or map probes. Total table memory is O(nodes +
/// pops² × core diameter): a few hundred KB for the largest paper
/// topology.
#[derive(Debug, Clone)]
pub struct Network {
    /// The PoP-level core graph.
    pub core: PopGraph,
    /// The shape of the access tree rooted at every PoP.
    pub tree: AccessTree,
    core_dist: Vec<Vec<u32>>,
    tree_nodes: u32,
    tree_links_total: u32,
    first_leaf: u32,
    /// `node_pop[n]` = owning PoP of router `n`.
    node_pop: Vec<PopId>,
    /// `node_tree[n]` = within-tree index of router `n`.
    node_tree: Vec<u32>,
    /// `tree_level[t]` = level of tree index `t` (0 = root).
    tree_level: Vec<u32>,
    /// `node_tree_link[n]` = link id of `n`'s uplink tree edge
    /// (`LinkId::MAX` for PoP roots, which have none).
    node_tree_link: Vec<LinkId>,
    /// Dense `pops × pops` core link ids (`LinkId::MAX` when the PoPs are
    /// not adjacent); replaces a per-hop map probe.
    core_link_mat: Vec<LinkId>,
    /// CSR of all-pairs shortest core paths: the path from `a` to `b`
    /// (both endpoints included, in forward order) lives at
    /// `core_path_data[core_path_off[a*P+b]..core_path_off[a*P+b+1]]`.
    core_path_off: Vec<u32>,
    core_path_data: Vec<PopId>,
    /// CSR of tree climb paths: tree index `t` → `[t, parent(t), …, 0]`.
    root_path_off: Vec<u32>,
    root_path_data: Vec<u32>,
}

impl Network {
    /// Builds the combined network and precomputes core all-pairs shortest
    /// paths plus the flat per-node / per-PoP-pair lookup tables.
    pub fn new(core: PopGraph, tree: AccessTree) -> Self {
        let core_dist = core.apsp();
        let core_parents = core.apsp_parents();
        let tree_nodes = tree.nodes();
        let pops = core.len() as u32;
        let tree_links_total = (tree_nodes - 1) * pops;

        let tree_level: Vec<u32> = (0..tree_nodes).map(|t| tree.level_of(t)).collect();
        let n_nodes = (pops * tree_nodes) as usize;
        let mut node_pop = Vec::with_capacity(n_nodes);
        let mut node_tree = Vec::with_capacity(n_nodes);
        let mut node_tree_link = Vec::with_capacity(n_nodes);
        for p in 0..pops {
            for t in 0..tree_nodes {
                node_pop.push(p);
                node_tree.push(t);
                node_tree_link.push(if t == 0 {
                    LinkId::MAX
                } else {
                    p * (tree_nodes - 1) + (t - 1)
                });
            }
        }

        let mut core_link_mat = vec![LinkId::MAX; (pops * pops) as usize];
        for (i, &(a, b)) in core.edges().iter().enumerate() {
            let id = tree_links_total + i as LinkId;
            core_link_mat[(a * pops + b) as usize] = id;
            core_link_mat[(b * pops + a) as usize] = id;
        }

        // All-pairs core paths, emitted forward (a → b) by reversing the
        // BFS-parent walk from b back toward a.
        let mut core_path_off = Vec::with_capacity((pops * pops) as usize + 1);
        let mut core_path_data = Vec::new();
        core_path_off.push(0u32);
        let mut rev: Vec<PopId> = Vec::new();
        for a in 0..pops {
            let parents = &core_parents[a as usize];
            for b in 0..pops {
                rev.clear();
                let mut cur = b;
                loop {
                    rev.push(cur);
                    if cur == a {
                        break;
                    }
                    cur = parents[cur as usize];
                }
                core_path_data.extend(rev.iter().rev());
                core_path_off.push(core_path_data.len() as u32);
            }
        }

        let mut root_path_off = Vec::with_capacity(tree_nodes as usize + 1);
        let mut root_path_data = Vec::new();
        root_path_off.push(0u32);
        for t in 0..tree_nodes {
            root_path_data.extend(tree.path_to_root(t));
            root_path_off.push(root_path_data.len() as u32);
        }

        Self {
            core,
            first_leaf: tree.first_leaf(),
            tree,
            core_dist,
            tree_nodes,
            tree_links_total,
            node_pop,
            node_tree,
            tree_level,
            node_tree_link,
            core_link_mat,
            core_path_off,
            core_path_data,
            root_path_off,
            root_path_data,
        }
    }

    /// The shortest core path from `a` to `b`, both endpoints included, in
    /// forward order.
    #[inline]
    fn core_path(&self, a: PopId, b: PopId) -> &[PopId] {
        let i = (a * self.pops() + b) as usize;
        &self.core_path_data[self.core_path_off[i] as usize..self.core_path_off[i + 1] as usize]
    }

    /// The climb path of tree index `t`: `[t, parent(t), …, 0]`.
    #[inline]
    fn root_path(&self, t: u32) -> &[u32] {
        &self.root_path_data
            [self.root_path_off[t as usize] as usize..self.root_path_off[t as usize + 1] as usize]
    }

    /// Number of PoPs.
    pub fn pops(&self) -> u32 {
        self.core.len() as u32
    }

    /// Number of routers per access tree (including the PoP root).
    pub fn nodes_per_pop(&self) -> u32 {
        self.tree_nodes
    }

    /// Total number of routers in the network.
    pub fn node_count(&self) -> u32 {
        self.pops() * self.tree_nodes
    }

    /// Total number of links: all tree edges followed by all core edges.
    pub fn link_count(&self) -> u32 {
        self.tree_links_total + self.core.edges().len() as u32
    }

    /// Leaves per access tree.
    pub fn leaves_per_pop(&self) -> u32 {
        self.tree.leaves()
    }

    /// The PoP that router `n` belongs to.
    #[inline]
    pub fn pop_of(&self, n: NodeId) -> PopId {
        self.node_pop[n as usize]
    }

    /// The within-tree index of router `n` (0 = the PoP root).
    #[inline]
    pub fn tree_index(&self, n: NodeId) -> u32 {
        self.node_tree[n as usize]
    }

    /// Global id of a router given its PoP and within-tree index.
    #[inline]
    pub fn node(&self, pop: PopId, tree_index: u32) -> NodeId {
        debug_assert!(tree_index < self.tree_nodes);
        pop * self.tree_nodes + tree_index
    }

    /// Global id of the root router (the PoP itself).
    #[inline]
    pub fn pop_root(&self, pop: PopId) -> NodeId {
        self.node(pop, 0)
    }

    /// Global id of the `i`-th leaf (0-based) of `pop`'s access tree.
    #[inline]
    pub fn leaf(&self, pop: PopId, i: u32) -> NodeId {
        debug_assert!(i < self.tree.leaves());
        self.node(pop, self.first_leaf + i)
    }

    /// True when router `n` is a leaf of its access tree.
    #[inline]
    pub fn is_leaf(&self, n: NodeId) -> bool {
        self.tree_index(n) >= self.first_leaf
    }

    /// Tree level of router `n` (0 = PoP root, `depth` = leaf).
    #[inline]
    pub fn level_of(&self, n: NodeId) -> u32 {
        self.tree_level[self.tree_index(n) as usize]
    }

    /// Core hop distance between two PoPs.
    #[inline]
    pub fn core_distance(&self, a: PopId, b: PopId) -> u32 {
        self.core_dist[a as usize][b as usize]
    }

    /// Hop distance between two arbitrary routers.
    ///
    /// Within a PoP the tree path is used; across PoPs the path climbs to
    /// the local root, crosses the core on a shortest path, and descends.
    pub fn distance(&self, a: NodeId, b: NodeId) -> u32 {
        let (pa, pb) = (self.pop_of(a), self.pop_of(b));
        let (ta, tb) = (self.tree_index(a), self.tree_index(b));
        if pa == pb {
            self.tree.distance(ta, tb)
        } else {
            self.tree.level_of(ta) + self.core_distance(pa, pb) + self.tree.level_of(tb)
        }
    }

    /// Link id of the tree edge between router `n` (tree index ≥ 1) and its
    /// parent.
    #[inline]
    pub fn tree_link(&self, n: NodeId) -> LinkId {
        let id = self.node_tree_link[n as usize];
        debug_assert!(id != LinkId::MAX, "root has no parent link");
        id
    }

    /// Link id of the core edge between adjacent PoPs `a` and `b`.
    #[inline]
    pub fn core_link(&self, a: PopId, b: PopId) -> LinkId {
        match self.core_link_mat[(a * self.pops() + b) as usize] {
            LinkId::MAX => {
                // lint:allow(no-panic-in-lib): adjacency is validated at construction; non-adjacent args are a caller bug worth failing fast on
                panic!("PoPs {a} and {b} are not adjacent")
            }
            id => id,
        }
    }

    /// Invokes `f` for every PoP on the shortest core path from `a` to `b`,
    /// in order, including both endpoints.
    pub fn for_each_core_hop(&self, a: PopId, b: PopId, mut f: impl FnMut(PopId)) {
        for &p in self.core_path(a, b) {
            f(p);
        }
    }

    /// Appends to `out` the routers on the shortest path from `from`
    /// (typically a leaf) to the root of `origin_pop`, in order, including
    /// both endpoints. This is the request path for shortest-path-to-origin
    /// routing: the climb to the local root, then the core PoP roots.
    pub fn sp_path_nodes_into(&self, from: NodeId, origin_pop: PopId, out: &mut Vec<NodeId>) {
        out.clear();
        let pop = self.pop_of(from);
        let base = pop * self.tree_nodes;
        for &t in self.root_path(self.tree_index(from)) {
            out.push(base + t);
        }
        if pop != origin_pop {
            // Skip the first hop: the local root is already pushed.
            for &p in &self.core_path(pop, origin_pop)[1..] {
                out.push(p * self.tree_nodes);
            }
        }
    }

    /// Appends to `out` the routers on the shortest path from `a` to `b`,
    /// in order, including both endpoints. This is the response path the
    /// simulator caches objects along ("each node on the response path ...
    /// stores the object", §4.1).
    pub fn path_nodes_into(&self, a: NodeId, b: NodeId, out: &mut Vec<NodeId>) {
        let (pa, pb) = (self.pop_of(a), self.pop_of(b));
        if pa == pb {
            let (ta, tb) = (self.tree_index(a), self.tree_index(b));
            let lca = self.tree.lca(ta, tb);
            // Climb a -> lca, then descend lca -> b (collected in reverse).
            let mut t = ta;
            loop {
                out.push(self.node(pa, t));
                if t == lca {
                    break;
                }
                t = self.tree.up(t);
            }
            let start = out.len();
            let mut t = tb;
            while t != lca {
                out.push(self.node(pa, t));
                t = self.tree.up(t);
            }
            out[start..].reverse();
        } else {
            // a up to its root, across the core, down from b's root to b.
            let base_a = pa * self.tree_nodes;
            for &t in self.root_path(self.tree_index(a)) {
                out.push(base_a + t);
            }
            for &p in &self.core_path(pa, pb)[1..] {
                out.push(p * self.tree_nodes);
            }
            // b's climb path is [tb, …, 0]; emit it root-first without the
            // root (just pushed as the last core hop).
            let base_b = pb * self.tree_nodes;
            let climb = self.root_path(self.tree_index(b));
            for &t in climb[..climb.len() - 1].iter().rev() {
                out.push(base_b + t);
            }
        }
    }

    /// Appends to `out` the link ids on the (unique shortest) path between
    /// routers `a` and `b`. The order is unspecified; congestion accounting
    /// only needs the multiset of links.
    pub fn path_links_into(&self, a: NodeId, b: NodeId, out: &mut Vec<LinkId>) {
        let (pa, pb) = (self.pop_of(a), self.pop_of(b));
        if pa == pb {
            self.tree_path_links(pa, self.tree_index(a), self.tree_index(b), out);
        } else {
            // a up to its root, core crossing, b up to its root.
            self.tree_path_links(pa, self.tree_index(a), 0, out);
            self.tree_path_links(pb, self.tree_index(b), 0, out);
            let path = self.core_path(pa, pb);
            let pops = self.pops();
            for w in path.windows(2) {
                out.push(self.core_link_mat[(w[0] * pops + w[1]) as usize]);
            }
        }
    }

    /// Appends the tree links on the path between tree indices `x` and `y`
    /// within `pop`'s access tree (via their LCA).
    fn tree_path_links(&self, pop: PopId, x: u32, y: u32, out: &mut Vec<LinkId>) {
        let link_base = pop * (self.tree_nodes - 1);
        let (mut x, mut y) = (x, y);
        let (mut lx, mut ly) = (self.tree_level[x as usize], self.tree_level[y as usize]);
        while lx > ly {
            out.push(link_base + x - 1);
            x = self.tree.up(x);
            lx -= 1;
        }
        while ly > lx {
            out.push(link_base + y - 1);
            y = self.tree.up(y);
            ly -= 1;
        }
        while x != y {
            out.push(link_base + x - 1);
            out.push(link_base + y - 1);
            x = self.tree.up(x);
            y = self.tree.up(y);
        }
    }

    /// Global sibling routers of `n` within its access tree.
    pub fn siblings(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        let pop = self.pop_of(n);
        self.tree
            .siblings(self.tree_index(n))
            .map(move |t| self.node(pop, t))
    }

    /// Global parent router of `n`, if any.
    pub fn parent(&self, n: NodeId) -> Option<NodeId> {
        let pop = self.pop_of(n);
        self.tree
            .parent(self.tree_index(n))
            .map(|t| self.node(pop, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pop;

    fn tiny() -> Network {
        // Abilene core with tiny binary trees: 11 pops x 7 nodes.
        Network::new(pop::abilene(), AccessTree::new(2, 2))
    }

    #[test]
    fn id_roundtrip() {
        let net = tiny();
        for p in 0..net.pops() {
            for t in 0..net.nodes_per_pop() {
                let n = net.node(p, t);
                assert_eq!(net.pop_of(n), p);
                assert_eq!(net.tree_index(n), t);
            }
        }
        assert_eq!(net.node_count(), 11 * 7);
    }

    #[test]
    fn leaves_and_levels() {
        let net = tiny();
        let l = net.leaf(3, 0);
        assert!(net.is_leaf(l));
        assert_eq!(net.level_of(l), 2);
        assert_eq!(net.level_of(net.pop_root(3)), 0);
        assert_eq!(net.leaves_per_pop(), 4);
    }

    #[test]
    fn distances_within_and_across_pops() {
        let net = tiny();
        let a = net.leaf(0, 0);
        // Leaf to own root: 2 hops.
        assert_eq!(net.distance(a, net.pop_root(0)), 2);
        // Leaf to sibling leaf: 2 hops via parent.
        assert_eq!(net.distance(a, net.leaf(0, 1)), 2);
        // Across pops: Seattle(0)-Sunnyvale(1) adjacent -> 2 + 1 + 2.
        assert_eq!(net.distance(a, net.leaf(1, 0)), 5);
        // Symmetry.
        assert_eq!(
            net.distance(net.leaf(1, 0), a),
            net.distance(a, net.leaf(1, 0))
        );
    }

    #[test]
    fn sp_path_nodes_structure() {
        let net = tiny();
        let leaf = net.leaf(0, 2);
        let mut path = Vec::new();
        // Seattle(0) -> New York(10): core distance is > 1.
        net.sp_path_nodes_into(leaf, 10, &mut path);
        assert_eq!(path[0], leaf);
        assert_eq!(path[1], net.parent(leaf).unwrap());
        assert_eq!(path[2], net.pop_root(0));
        assert_eq!(*path.last().unwrap(), net.pop_root(10));
        // Path length = leaf level + core distance + 1 nodes.
        assert_eq!(
            path.len() as u32,
            net.level_of(leaf) + net.core_distance(0, 10) + 1
        );
        // Same-pop origin: just the climb.
        net.sp_path_nodes_into(leaf, 0, &mut path);
        assert_eq!(path.len(), 3);
    }

    #[test]
    fn path_links_count_matches_distance() {
        let net = tiny();
        let mut links = Vec::new();
        let cases = [
            (net.leaf(0, 0), net.leaf(0, 3)),
            (net.leaf(0, 0), net.pop_root(0)),
            (net.leaf(2, 1), net.leaf(9, 2)),
            (net.pop_root(4), net.pop_root(5)),
            (net.leaf(7, 0), net.node(7, 2)),
        ];
        for (a, b) in cases {
            net.path_links_into(a, b, &mut links);
            assert_eq!(
                links.len() as u32,
                net.distance(a, b),
                "link path length != distance for {a}->{b}"
            );
            // No duplicate links on a simple path.
            let mut sorted = links.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), links.len());
            links.clear();
        }
    }

    #[test]
    fn path_nodes_consistent_with_distance() {
        let net = tiny();
        let mut nodes = Vec::new();
        let cases = [
            (net.leaf(0, 0), net.leaf(0, 3)),  // same pop, across root
            (net.leaf(0, 0), net.leaf(0, 1)),  // siblings
            (net.leaf(0, 0), net.node(0, 1)),  // ancestor
            (net.node(0, 1), net.leaf(0, 0)),  // descendant
            (net.leaf(2, 1), net.leaf(9, 2)),  // cross pop
            (net.pop_root(4), net.leaf(5, 0)), // root to remote leaf
            (net.leaf(3, 2), net.leaf(3, 2)),  // self
        ];
        for (a, b) in cases {
            nodes.clear();
            net.path_nodes_into(a, b, &mut nodes);
            assert_eq!(*nodes.first().unwrap(), a);
            assert_eq!(*nodes.last().unwrap(), b);
            assert_eq!(
                nodes.len() as u32,
                net.distance(a, b) + 1,
                "node path {a}->{b}: {nodes:?}"
            );
            // Consecutive nodes are exactly one hop apart.
            for w in nodes.windows(2) {
                assert_eq!(
                    net.distance(w[0], w[1]),
                    1,
                    "non-adjacent step in {nodes:?}"
                );
            }
        }
    }

    #[test]
    fn zero_length_path() {
        let net = tiny();
        let mut links = vec![99];
        net.path_links_into(net.leaf(0, 0), net.leaf(0, 0), &mut links);
        assert_eq!(links, vec![99], "appends nothing for a==b");
    }

    #[test]
    fn link_ids_are_unique_and_dense() {
        let net = tiny();
        let mut seen = vec![false; net.link_count() as usize];
        for p in 0..net.pops() {
            for t in 1..net.nodes_per_pop() {
                let id = net.tree_link(net.node(p, t)) as usize;
                assert!(!seen[id]);
                seen[id] = true;
            }
        }
        for &(a, b) in net.core.edges() {
            let id = net.core_link(a, b) as usize;
            assert!(!seen[id]);
            seen[id] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn core_hop_enumeration_endpoints() {
        let net = tiny();
        let mut hops = Vec::new();
        net.for_each_core_hop(0, 10, |p| hops.push(p));
        assert_eq!(*hops.first().unwrap(), 0);
        assert_eq!(*hops.last().unwrap(), 10);
        assert_eq!(hops.len() as u32, net.core_distance(0, 10) + 1);
        // Consecutive hops are adjacent in the core.
        for w in hops.windows(2) {
            assert!(net.core.neighbors(w[0]).contains(&w[1]));
        }
        // Degenerate path.
        hops.clear();
        net.for_each_core_hop(4, 4, |p| hops.push(p));
        assert_eq!(hops, vec![4]);
    }
}
