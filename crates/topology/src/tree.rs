//! Complete k-ary access trees addressed by heap index.
//!
//! Each PoP is the root of a complete k-ary tree of routers (§4.1 of the
//! paper; the baseline uses arity `k = 2` and depth 5). Nodes are addressed
//! by their index in level order: node 0 is the root (the PoP itself), and
//! the children of node `i` are `k*i + 1 ..= k*i + k`.
//!
//! Levels are counted from the root: the root is level 0 and the leaves are
//! level `depth`. "Depth" is the number of edges on a root→leaf path, so a
//! binary tree of depth 5 has 32 leaves and 63 nodes.

use serde::{Deserialize, Serialize};

/// Shape of a complete k-ary access tree.
///
/// # Examples
/// ```
/// use icn_topology::AccessTree;
///
/// let tree = AccessTree::baseline(); // binary, depth 5 (the paper's §4.1)
/// assert_eq!(tree.nodes(), 63);
/// assert_eq!(tree.leaves(), 32);
/// assert_eq!(tree.level_of(0), 0);          // the PoP root
/// assert_eq!(tree.distance(31, 32), 2);     // sibling leaves via parent
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessTree {
    /// Arity (children per interior node); ≥ 1.
    pub arity: u32,
    /// Edges on a root→leaf path; ≥ 1 (so there is at least one edge level).
    pub depth: u32,
}

impl AccessTree {
    /// Creates a tree shape, validating the parameters.
    ///
    /// # Panics
    /// Panics if `arity == 0` or `depth == 0`, or if the node count would
    /// overflow `u32`.
    pub fn new(arity: u32, depth: u32) -> Self {
        assert!(arity >= 1, "arity must be >= 1");
        assert!(depth >= 1, "depth must be >= 1");
        let t = Self { arity, depth };
        assert!(
            t.checked_nodes().is_some(),
            "tree too large for u32 indexing"
        );
        t
    }

    /// The paper's baseline access tree: binary, depth 5 (32 leaves).
    pub fn baseline() -> Self {
        Self::new(2, 5)
    }

    /// A tree of the given arity with exactly `leaves` leaves, as used by
    /// the arity sensitivity analysis (Table 4: leaves fixed at 64 while
    /// arity ranges over 2, 4, 8, 64).
    ///
    /// # Panics
    /// Panics unless `leaves` is an exact power of `arity`.
    pub fn with_fixed_leaves(arity: u32, leaves: u32) -> Self {
        let mut depth = 0u32;
        let mut n = 1u64;
        while n < leaves as u64 {
            n *= arity as u64;
            depth += 1;
        }
        assert_eq!(n, leaves as u64, "{leaves} is not a power of arity {arity}");
        Self::new(arity, depth)
    }

    fn checked_nodes(&self) -> Option<u32> {
        // nodes = (k^(d+1) - 1) / (k - 1) for k > 1, d+1 for k == 1.
        let k = self.arity as u64;
        let mut total: u64 = 0;
        let mut level = 1u64;
        for _ in 0..=self.depth {
            total = total.checked_add(level)?;
            level = level.checked_mul(k)?;
        }
        u32::try_from(total).ok()
    }

    /// Total number of nodes, including the root.
    pub fn nodes(&self) -> u32 {
        // lint:allow(no-panic-in-lib): shape validated in `new`; overflow means a struct literal bypassed construction
        self.checked_nodes().expect("validated at construction")
    }

    /// Number of leaves (`arity^depth`).
    pub fn leaves(&self) -> u32 {
        (self.arity as u64).pow(self.depth) as u32
    }

    /// Index of the first leaf; leaves occupy `first_leaf()..nodes()`.
    pub fn first_leaf(&self) -> u32 {
        self.nodes() - self.leaves()
    }

    /// Level of node `i` (root = 0, leaves = `depth`).
    pub fn level_of(&self, i: u32) -> u32 {
        debug_assert!(i < self.nodes());
        if self.arity == 1 {
            return i;
        }
        // Smallest l such that i < (k^(l+1) - 1)/(k - 1).
        let k = self.arity as u64;
        let mut bound = 1u64; // number of nodes in levels 0..=l
        let mut level_size = 1u64;
        let mut l = 0u32;
        while (i as u64) >= bound {
            level_size *= k;
            bound += level_size;
            l += 1;
        }
        l
    }

    /// Parent of node `i` (the root has no parent).
    pub fn parent(&self, i: u32) -> Option<u32> {
        if i == 0 {
            None
        } else {
            Some((i - 1) / self.arity)
        }
    }

    /// Panic-free parent step: the parent of `i`, or the root for the root.
    /// Level-guarded walks (`distance`, `lca`) never take the root branch,
    /// so this is equivalent to `parent(i).unwrap()` there without the
    /// panic path.
    pub(crate) fn up(&self, i: u32) -> u32 {
        i.saturating_sub(1) / self.arity
    }

    /// Children of node `i` (empty for leaves).
    pub fn children(&self, i: u32) -> std::ops::Range<u32> {
        let first = i * self.arity + 1;
        if first >= self.nodes() {
            0..0
        } else {
            first..(first + self.arity).min(self.nodes())
        }
    }

    /// True when `i` is a leaf.
    pub fn is_leaf(&self, i: u32) -> bool {
        i >= self.first_leaf()
    }

    /// Siblings of `i`: the other children of its parent.
    pub fn siblings(&self, i: u32) -> impl Iterator<Item = u32> + '_ {
        let range = match self.parent(i) {
            Some(p) => self.children(p),
            None => 0..0,
        };
        range.filter(move |&s| s != i)
    }

    /// Hop distance between two nodes of the same tree (via their LCA).
    pub fn distance(&self, a: u32, b: u32) -> u32 {
        let (mut a, mut b) = (a, b);
        let (mut la, mut lb) = (self.level_of(a), self.level_of(b));
        let mut hops = 0;
        while la > lb {
            a = self.up(a);
            la -= 1;
            hops += 1;
        }
        while lb > la {
            b = self.up(b);
            lb -= 1;
            hops += 1;
        }
        while a != b {
            a = self.up(a);
            b = self.up(b);
            hops += 2;
        }
        hops
    }

    /// Lowest common ancestor of `a` and `b`.
    pub fn lca(&self, a: u32, b: u32) -> u32 {
        let (mut a, mut b) = (a, b);
        let (mut la, mut lb) = (self.level_of(a), self.level_of(b));
        while la > lb {
            a = self.up(a);
            la -= 1;
        }
        while lb > la {
            b = self.up(b);
            lb -= 1;
        }
        while a != b {
            a = self.up(a);
            b = self.up(b);
        }
        a
    }

    /// The ancestors of `i` from `i` itself up to and including the root.
    pub fn path_to_root(&self, i: u32) -> PathToRoot<'_> {
        PathToRoot {
            tree: self,
            cur: Some(i),
        }
    }
}

/// Iterator over a node's ancestor chain (inclusive of both endpoints).
pub struct PathToRoot<'a> {
    tree: &'a AccessTree,
    cur: Option<u32>,
}

impl Iterator for PathToRoot<'_> {
    type Item = u32;
    fn next(&mut self) -> Option<u32> {
        let i = self.cur?;
        self.cur = self.tree.parent(i);
        Some(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn baseline_counts() {
        let t = AccessTree::baseline();
        assert_eq!(t.nodes(), 63);
        assert_eq!(t.leaves(), 32);
        assert_eq!(t.first_leaf(), 31);
    }

    #[test]
    fn fixed_leaves_shapes() {
        // Table 4: arities 2/4/8/64 with 64 leaves.
        assert_eq!(AccessTree::with_fixed_leaves(2, 64).depth, 6);
        assert_eq!(AccessTree::with_fixed_leaves(4, 64).depth, 3);
        assert_eq!(AccessTree::with_fixed_leaves(8, 64).depth, 2);
        assert_eq!(AccessTree::with_fixed_leaves(64, 64).depth, 1);
        for k in [2u32, 4, 8, 64] {
            assert_eq!(AccessTree::with_fixed_leaves(k, 64).leaves(), 64);
        }
    }

    #[test]
    #[should_panic(expected = "not a power")]
    fn fixed_leaves_rejects_non_power() {
        AccessTree::with_fixed_leaves(3, 64);
    }

    #[test]
    fn levels_and_parents_binary() {
        let t = AccessTree::new(2, 3);
        assert_eq!(t.nodes(), 15);
        assert_eq!(t.level_of(0), 0);
        assert_eq!(t.level_of(1), 1);
        assert_eq!(t.level_of(2), 1);
        assert_eq!(t.level_of(3), 2);
        assert_eq!(t.level_of(7), 3);
        assert_eq!(t.level_of(14), 3);
        assert_eq!(t.parent(0), None);
        assert_eq!(t.parent(1), Some(0));
        assert_eq!(t.parent(6), Some(2));
        assert_eq!(t.children(0), 1..3);
        assert_eq!(t.children(7), 0..0);
        assert!(t.is_leaf(7) && t.is_leaf(14) && !t.is_leaf(6));
    }

    #[test]
    fn sibling_enumeration() {
        let t = AccessTree::new(2, 2);
        let sibs: Vec<u32> = t.siblings(3).collect();
        assert_eq!(sibs, vec![4]);
        let t4 = AccessTree::new(4, 1);
        let sibs: Vec<u32> = t4.siblings(2).collect();
        assert_eq!(sibs, vec![1, 3, 4]);
        assert_eq!(t.siblings(0).count(), 0);
    }

    #[test]
    fn lca_examples() {
        let t = AccessTree::new(2, 3);
        assert_eq!(t.lca(7, 8), 3);
        assert_eq!(t.lca(7, 14), 0);
        assert_eq!(t.lca(7, 3), 3);
        assert_eq!(t.lca(5, 5), 5);
        // Distance decomposes through the LCA.
        for (a, b) in [(7u32, 8u32), (7, 14), (9, 10), (3, 12)] {
            let l = t.lca(a, b);
            assert_eq!(
                t.distance(a, b),
                (t.level_of(a) - t.level_of(l)) + (t.level_of(b) - t.level_of(l))
            );
        }
    }

    #[test]
    fn distance_examples() {
        let t = AccessTree::new(2, 3);
        assert_eq!(t.distance(7, 7), 0);
        assert_eq!(t.distance(7, 3), 1);
        assert_eq!(t.distance(7, 8), 2); // siblings via parent
        assert_eq!(t.distance(7, 14), 6); // across the root
        assert_eq!(t.distance(0, 7), 3);
    }

    #[test]
    fn unary_tree() {
        let t = AccessTree::new(1, 4);
        assert_eq!(t.nodes(), 5);
        assert_eq!(t.leaves(), 1);
        assert_eq!(t.level_of(3), 3);
        assert_eq!(t.distance(0, 4), 4);
    }

    proptest! {
        #[test]
        fn prop_parent_child_inverse(arity in 1u32..6, depth in 1u32..5, seed in 0u32..10_000) {
            let t = AccessTree::new(arity, depth);
            let i = seed % t.nodes();
            for c in t.children(i) {
                prop_assert_eq!(t.parent(c), Some(i));
                prop_assert_eq!(t.level_of(c), t.level_of(i) + 1);
            }
        }

        #[test]
        fn prop_distance_metric(arity in 1u32..5, depth in 1u32..5, sa in 0u32..10_000, sb in 0u32..10_000) {
            let t = AccessTree::new(arity, depth);
            let a = sa % t.nodes();
            let b = sb % t.nodes();
            prop_assert_eq!(t.distance(a, b), t.distance(b, a));
            prop_assert_eq!(t.distance(a, a), 0);
            // Distance bounded by going through the root.
            prop_assert!(t.distance(a, b) <= t.level_of(a) + t.level_of(b));
        }

        #[test]
        fn prop_path_to_root_length(arity in 1u32..5, depth in 1u32..5, s in 0u32..10_000) {
            let t = AccessTree::new(arity, depth);
            let i = s % t.nodes();
            let path: Vec<u32> = t.path_to_root(i).collect();
            prop_assert_eq!(path.len() as u32, t.level_of(i) + 1);
            prop_assert_eq!(path[0], i);
            prop_assert_eq!(*path.last().unwrap(), 0);
        }

        #[test]
        fn prop_level_counts(arity in 2u32..5, depth in 1u32..5) {
            let t = AccessTree::new(arity, depth);
            let mut per_level = vec![0u32; depth as usize + 1];
            for i in 0..t.nodes() {
                per_level[t.level_of(i) as usize] += 1;
            }
            for (l, &count) in per_level.iter().enumerate() {
                prop_assert_eq!(count as u64, (arity as u64).pow(l as u32));
            }
        }
    }
}
