//! PoP-level core graphs with metro-population annotations.
//!
//! A [`PopGraph`] is an undirected, connected graph whose nodes are Points of
//! Presence. Each PoP carries the population of its metro region; the paper
//! uses populations to weight request arrival rates, cache budgets, and
//! origin-server assignment (§4.1).
//!
//! Two families of topologies are provided:
//!
//! * embedded public backbones: [`abilene`] (11 PoPs) and [`geant`]
//!   (22 PoPs), transcribed from their published maps;
//! * Rocketfuel-class ISP topologies ([`telstra`], [`sprint`], [`verio`],
//!   [`tiscali`], [`level3`], [`att`]) synthesized with the PoP counts of
//!   the Rocketfuel dataset using a seeded generator (see `DESIGN.md` for
//!   the substitution rationale — the analysis depends only on PoP count,
//!   core path lengths, and population weights).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Index of a PoP within a [`PopGraph`].
pub type PopId = u32;

/// An undirected PoP-level core graph with metro populations.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PopGraph {
    /// Human-readable topology name (e.g. `"Abilene"`).
    pub name: String,
    /// PoP labels, indexed by [`PopId`].
    pub labels: Vec<String>,
    /// Metro population served by each PoP.
    pub populations: Vec<u64>,
    /// Adjacency lists; every edge appears in both endpoints' lists.
    adj: Vec<Vec<PopId>>,
    /// Flat undirected edge list `(a, b)` with `a < b`.
    edges: Vec<(PopId, PopId)>,
}

impl PopGraph {
    /// Creates a graph from labels, populations, and an undirected edge list.
    ///
    /// # Panics
    /// Panics if the inputs are inconsistent (length mismatch, out-of-range
    /// or duplicate edges, self-loops) or the graph is not connected.
    pub fn new(
        name: impl Into<String>,
        labels: Vec<String>,
        populations: Vec<u64>,
        mut edges: Vec<(PopId, PopId)>,
    ) -> Self {
        let n = labels.len();
        assert_eq!(n, populations.len(), "labels/populations length mismatch");
        assert!(n > 0, "graph must have at least one PoP");
        for e in edges.iter_mut() {
            assert_ne!(e.0, e.1, "self-loop at PoP {}", e.0);
            assert!(
                (e.0 as usize) < n && (e.1 as usize) < n,
                "edge out of range"
            );
            if e.0 > e.1 {
                *e = (e.1, e.0);
            }
        }
        edges.sort_unstable();
        edges.dedup();
        let mut adj = vec![Vec::new(); n];
        for &(a, b) in &edges {
            adj[a as usize].push(b);
            adj[b as usize].push(a);
        }
        let g = Self {
            name: name.into(),
            labels,
            populations,
            adj,
            edges,
        };
        assert!(g.is_connected(), "PoP graph {:?} is not connected", g.name);
        g
    }

    /// Number of PoPs.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when the graph has no PoPs (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Neighbors of `p`.
    pub fn neighbors(&self, p: PopId) -> &[PopId] {
        &self.adj[p as usize]
    }

    /// Undirected edges `(a, b)` with `a < b`.
    pub fn edges(&self) -> &[(PopId, PopId)] {
        &self.edges
    }

    /// Total population across all PoPs.
    pub fn total_population(&self) -> u64 {
        self.populations.iter().sum()
    }

    fn is_connected(&self) -> bool {
        let mut seen = vec![false; self.len()];
        let mut stack = vec![0u32];
        seen[0] = true;
        let mut count = 1;
        while let Some(p) = stack.pop() {
            for &q in self.neighbors(p) {
                if !seen[q as usize] {
                    seen[q as usize] = true;
                    count += 1;
                    stack.push(q);
                }
            }
        }
        count == self.len()
    }

    /// Breadth-first hop distances from `src` to every PoP.
    pub fn bfs_distances(&self, src: PopId) -> Vec<u32> {
        let (dist, _) = self.bfs_with_parents(src);
        dist
    }

    /// BFS distances plus a parent pointer per node (parent of `src` is `src`).
    pub fn bfs_with_parents(&self, src: PopId) -> (Vec<u32>, Vec<PopId>) {
        let n = self.len();
        let mut dist = vec![u32::MAX; n];
        let mut parent = vec![u32::MAX; n];
        let mut queue = std::collections::VecDeque::new();
        dist[src as usize] = 0;
        parent[src as usize] = src;
        queue.push_back(src);
        while let Some(p) = queue.pop_front() {
            for &q in self.neighbors(p) {
                if dist[q as usize] == u32::MAX {
                    dist[q as usize] = dist[p as usize] + 1;
                    parent[q as usize] = p;
                    queue.push_back(q);
                }
            }
        }
        (dist, parent)
    }

    /// All-pairs shortest-path hop distances (`apsp[a][b]`).
    pub fn apsp(&self) -> Vec<Vec<u32>> {
        (0..self.len() as u32)
            .map(|p| self.bfs_distances(p))
            .collect()
    }

    /// Per-source BFS parent tables used to reconstruct shortest paths.
    pub fn apsp_parents(&self) -> Vec<Vec<PopId>> {
        (0..self.len() as u32)
            .map(|p| self.bfs_with_parents(p).1)
            .collect()
    }
}

fn named(labels: &[&str]) -> Vec<String> {
    labels.iter().map(|s| s.to_string()).collect()
}

/// The Abilene (Internet2) backbone: 11 PoPs, 14 links, with 2010-census-era
/// metro populations (in thousands, scaled ×1000).
pub fn abilene() -> PopGraph {
    let labels = named(&[
        "Seattle",      // 0
        "Sunnyvale",    // 1
        "Los Angeles",  // 2
        "Denver",       // 3
        "Kansas City",  // 4
        "Houston",      // 5
        "Chicago",      // 6
        "Indianapolis", // 7
        "Atlanta",      // 8
        "Washington",   // 9
        "New York",     // 10
    ]);
    let populations = vec![
        3_439_000, 1_837_000, 12_828_000, 2_543_000, 2_035_000, 5_920_000, 9_461_000, 1_756_000,
        5_268_000, 5_582_000, 18_897_000,
    ];
    let edges = vec![
        (0, 1),
        (0, 3),
        (1, 2),
        (1, 3),
        (2, 5),
        (3, 4),
        (4, 5),
        (4, 6),
        (5, 8),
        (6, 7),
        (6, 10),
        (7, 8),
        (8, 9),
        (9, 10),
    ];
    PopGraph::new("Abilene", labels, populations, edges)
}

/// The Géant European research backbone (2004-era map): 22 PoPs.
pub fn geant() -> PopGraph {
    let labels = named(&[
        "London",     // 0
        "Paris",      // 1
        "Madrid",     // 2
        "Lisbon",     // 3
        "Geneva",     // 4
        "Milan",      // 5
        "Frankfurt",  // 6
        "Amsterdam",  // 7
        "Brussels",   // 8
        "Dublin",     // 9
        "Copenhagen", // 10
        "Stockholm",  // 11
        "Oslo",       // 12
        "Helsinki",   // 13
        "Warsaw",     // 14
        "Prague",     // 15
        "Vienna",     // 16
        "Budapest",   // 17
        "Zagreb",     // 18
        "Athens",     // 19
        "Bucharest",  // 20
        "Rome",       // 21
    ]);
    let populations = vec![
        13_709_000, 12_405_000, 6_489_000, 2_821_000, 1_000_000, 4_336_000, 2_500_000, 2_480_000,
        2_120_000, 1_904_000, 2_057_000, 2_308_000, 1_588_000, 1_495_000, 3_100_000, 2_156_000,
        2_600_000, 3_303_000, 1_228_000, 3_753_000, 2_272_000, 4_342_000,
    ];
    let edges = vec![
        (0, 1),
        (0, 7),
        (0, 9),
        (1, 2),
        (1, 4),
        (1, 8),
        (2, 3),
        (2, 21),
        (3, 0),
        (4, 5),
        (4, 6),
        (5, 16),
        (5, 21),
        (6, 7),
        (6, 10),
        (6, 15),
        (7, 8),
        (8, 9),
        (10, 11),
        (11, 12),
        (11, 13),
        (13, 14),
        (14, 15),
        (15, 16),
        (16, 17),
        (17, 18),
        (17, 20),
        (18, 21),
        (19, 20),
        (19, 21),
    ];
    PopGraph::new("Geant", labels, populations, edges)
}

/// Configuration for the seeded Rocketfuel-class topology generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SynthConfig {
    /// Number of PoPs.
    pub pops: usize,
    /// Extra non-tree edges added per PoP on average (controls mesh-ness;
    /// Rocketfuel PoP maps have average degree roughly 2.5–3.5).
    pub extra_edge_ratio: f64,
    /// Zipf-like skew of metro populations (larger ⇒ few dominant metros).
    pub population_skew: f64,
    /// Seed for reproducibility.
    pub seed: u64,
}

/// Generates a connected Rocketfuel-class PoP graph: a random
/// preferential-attachment tree backbone plus extra shortcut edges, with
/// heavy-tailed metro populations.
pub fn synthesize(name: &str, cfg: &SynthConfig) -> PopGraph {
    assert!(cfg.pops >= 2, "need at least 2 PoPs");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = cfg.pops;
    let labels: Vec<String> = (0..n).map(|i| format!("{name}-pop{i}")).collect();

    // Heavy-tailed populations: rank-based Zipf with multiplicative noise.
    let mut populations: Vec<u64> = (0..n)
        .map(|i| {
            let base = 20_000_000.0 / ((i + 1) as f64).powf(cfg.population_skew);
            let noise = rng.gen_range(0.7..1.3);
            (base * noise).max(50_000.0) as u64
        })
        .collect();
    // Shuffle so PoP index does not encode rank.
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        populations.swap(i, j);
    }

    // Preferential-attachment tree: node i attaches to an endpoint of a
    // uniformly chosen existing edge slot, biasing toward high-degree hubs
    // (the classic Barabási–Albert trick using an endpoint pool).
    let mut endpoint_pool: Vec<PopId> = vec![0];
    let mut edges: Vec<(PopId, PopId)> = Vec::new();
    for i in 1..n as u32 {
        let target = endpoint_pool[rng.gen_range(0..endpoint_pool.len())];
        edges.push((target.min(i), target.max(i)));
        endpoint_pool.push(target);
        endpoint_pool.push(i);
    }
    // Extra shortcut edges for mesh-ness.
    let extra = ((n as f64) * cfg.extra_edge_ratio).round() as usize;
    let mut attempts = 0;
    let mut added = 0;
    let mut have: std::collections::HashSet<(PopId, PopId)> = edges.iter().copied().collect();
    while added < extra && attempts < extra * 20 {
        attempts += 1;
        let a = rng.gen_range(0..n as u32);
        let b = endpoint_pool[rng.gen_range(0..endpoint_pool.len())];
        if a == b {
            continue;
        }
        let e = (a.min(b), a.max(b));
        if have.insert(e) {
            edges.push(e);
            added += 1;
        }
    }
    PopGraph::new(name, labels, populations, edges)
}

macro_rules! rocketfuel {
    ($(#[$doc:meta] $fn_name:ident => ($name:expr, $pops:expr, $seed:expr);)*) => {
        $(
            #[$doc]
            pub fn $fn_name() -> PopGraph {
                synthesize(
                    $name,
                    &SynthConfig {
                        pops: $pops,
                        extra_edge_ratio: 0.5,
                        population_skew: 0.9,
                        seed: $seed,
                    },
                )
            }
        )*
    };
}

rocketfuel! {
    /// Telstra (AS1221), Rocketfuel-class: 44 PoPs.
    telstra => ("Telstra", 44, 0x7e15_7a01);
    /// Sprint (AS1239), Rocketfuel-class: 32 PoPs.
    sprint => ("Sprint", 32, 0x5011_1239);
    /// Verio (AS2914), Rocketfuel-class: 50 PoPs.
    verio => ("Verio", 50, 0x0ee1_2914);
    /// Tiscali (AS3257), Rocketfuel-class: 41 PoPs.
    tiscali => ("Tiscali", 41, 0x7150_3257);
    /// Level 3 (AS3356), Rocketfuel-class: 46 PoPs.
    level3 => ("Level3", 46, 0x1ee1_3356);
    /// AT&T (AS7018), Rocketfuel-class: 108 PoPs (the paper's largest).
    att => ("ATT", 108, 0xa771_7018);
}

/// The eight topologies evaluated in Figures 6 and 7, in paper order.
pub fn paper_topologies() -> Vec<PopGraph> {
    vec![
        abilene(),
        geant(),
        telstra(),
        sprint(),
        verio(),
        tiscali(),
        level3(),
        att(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abilene_shape() {
        let g = abilene();
        assert_eq!(g.len(), 11);
        assert_eq!(g.edges().len(), 14);
        assert!(g.total_population() > 60_000_000);
    }

    #[test]
    fn geant_shape() {
        let g = geant();
        assert_eq!(g.len(), 22);
        assert!(g.edges().len() >= 22); // meshier than a tree
    }

    #[test]
    fn rocketfuel_pop_counts() {
        assert_eq!(telstra().len(), 44);
        assert_eq!(sprint().len(), 32);
        assert_eq!(verio().len(), 50);
        assert_eq!(tiscali().len(), 41);
        assert_eq!(level3().len(), 46);
        assert_eq!(att().len(), 108);
    }

    #[test]
    fn synthesis_is_deterministic() {
        let a = att();
        let b = att();
        assert_eq!(a.edges(), b.edges());
        assert_eq!(a.populations, b.populations);
    }

    #[test]
    fn bfs_distances_are_symmetric_and_triangle() {
        let g = sprint();
        let d = g.apsp();
        let n = g.len();
        for a in 0..n {
            assert_eq!(d[a][a], 0);
            for b in 0..n {
                assert_eq!(d[a][b], d[b][a], "asymmetric {a}->{b}");
                for c in 0..n {
                    assert!(d[a][c] <= d[a][b] + d[b][c], "triangle violated");
                }
            }
        }
    }

    #[test]
    fn parents_reconstruct_shortest_paths() {
        let g = geant();
        let d = g.apsp();
        let parents = g.apsp_parents();
        for src in 0..g.len() as u32 {
            for dst in 0..g.len() as u32 {
                // Walk parent pointers from dst back to src and count hops.
                let mut hops = 0;
                let mut cur = dst;
                while cur != src {
                    cur = parents[src as usize][cur as usize];
                    hops += 1;
                    assert!(hops <= g.len() as u32, "parent cycle");
                }
                assert_eq!(hops, d[src as usize][dst as usize]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "not connected")]
    fn disconnected_graph_rejected() {
        PopGraph::new("bad", named(&["a", "b", "c"]), vec![1, 1, 1], vec![(0, 1)]);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_rejected() {
        PopGraph::new("bad", named(&["a", "b"]), vec![1, 1], vec![(0, 0), (0, 1)]);
    }

    #[test]
    fn edge_normalization_dedups() {
        let g = PopGraph::new("dup", named(&["a", "b"]), vec![1, 1], vec![(0, 1), (1, 0)]);
        assert_eq!(g.edges().len(), 1);
    }
}
