//! Property tests pinning the new admission/expiry policies against
//! naive, obviously-correct reference models: a Vec-based TTL cache
//! driven in lockstep logical time, and a TinyLFU mirror built on
//! unpacked byte counters plus a Vec LRU. Any divergence in membership,
//! lengths, or evictions fails the property.

use icn_cache::policy::CachePolicy;
use icn_cache::{TinyLfu, Ttl};
use proptest::prelude::*;

/// Naive TTL cache: a Vec of `(key, lease_end)` in insertion order.
struct NaiveTtl {
    entries: Vec<(u64, u64)>,
    capacity: usize,
    ttl: u64,
}

impl NaiveTtl {
    fn new(capacity: usize, ttl: u64) -> Self {
        Self {
            entries: Vec::new(),
            capacity,
            ttl,
        }
    }

    fn purge(&mut self, now: u64) {
        self.entries.retain(|&(_, exp)| exp > now);
    }

    fn insert_at(&mut self, key: u64, now: u64) -> Option<u64> {
        self.purge(now);
        if self.capacity == 0 {
            return None;
        }
        if let Some(pos) = self.entries.iter().position(|&(k, _)| k == key) {
            // Renew: move to the back with a fresh lease.
            self.entries.remove(pos);
            self.entries.push((key, now + self.ttl));
            return None;
        }
        let evicted = if self.entries.len() == self.capacity {
            // Entries are kept in insertion order and every lease is
            // `insertion + ttl`, so the front is the earliest lease.
            Some(self.entries.remove(0).0)
        } else {
            None
        };
        self.entries.push((key, now + self.ttl));
        evicted
    }

    fn contains(&self, key: u64) -> bool {
        self.entries.iter().any(|&(k, _)| k == key)
    }
}

const ROWS: usize = 4;
const SEEDS: [u64; ROWS] = [
    0x9e37_79b9_7f4a_7c15,
    0xc2b2_ae3d_27d4_eb4f,
    0x1656_67b1_9e37_79f9,
    0x2545_f491_4f6c_dd1d,
];

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Naive TinyLFU: unpacked u8 counters (vs the packed nibbles of the
/// real one) and a Vec-based LRU (front = MRU), same hash functions,
/// same saturation/halving/admission rules.
struct NaiveTinyLfu {
    order: Vec<u64>,
    counters: Vec<u8>, // ROWS * width, one byte per 4-bit counter
    width: usize,
    increments: u64,
    halve_at: u64,
    capacity: usize,
}

impl NaiveTinyLfu {
    fn new(capacity: usize) -> Self {
        let width = (capacity * 4).next_power_of_two().max(64);
        Self {
            order: Vec::new(),
            counters: vec![0; ROWS * width],
            width,
            increments: 0,
            halve_at: (capacity as u64 * 16).max(64),
            capacity,
        }
    }

    fn slot(&self, row: usize, key: u64) -> usize {
        row * self.width + ((splitmix64(key ^ SEEDS[row]) as usize) & (self.width - 1))
    }

    fn record(&mut self, key: u64) {
        for row in 0..ROWS {
            let s = self.slot(row, key);
            if self.counters[s] < 15 {
                self.counters[s] += 1;
            }
        }
        self.increments += 1;
        if self.increments >= self.halve_at {
            for c in &mut self.counters {
                *c /= 2;
            }
            self.increments /= 2;
        }
    }

    fn estimate(&self, key: u64) -> u8 {
        (0..ROWS)
            .map(|row| self.counters[self.slot(row, key)])
            .min()
            .unwrap_or(0)
    }

    fn touch(&mut self, key: u64) {
        self.record(key);
        if let Some(pos) = self.order.iter().position(|&k| k == key) {
            let k = self.order.remove(pos);
            self.order.insert(0, k);
        }
    }

    fn insert(&mut self, key: u64) -> Option<u64> {
        if self.capacity == 0 {
            return None;
        }
        self.record(key);
        if self.order.contains(&key) {
            self.touch_without_record(key);
            return None;
        }
        if self.order.len() < self.capacity {
            self.order.insert(0, key);
            return None;
        }
        let victim = *self.order.last().expect("full cache has a victim");
        if self.estimate(key) > self.estimate(victim) {
            self.order.pop();
            self.order.insert(0, key);
            Some(victim)
        } else {
            None
        }
    }

    fn touch_without_record(&mut self, key: u64) {
        if let Some(pos) = self.order.iter().position(|&k| k == key) {
            let k = self.order.remove(pos);
            self.order.insert(0, k);
        }
    }
}

proptest! {
    #[test]
    fn ttl_matches_naive_model(
        capacity in 0usize..8,
        ttl in 1u64..20,
        script in prop::collection::vec((0u64..12, 0u64..4), 0..300),
    ) {
        // Logical time advances by 0–3 ticks per op (repeats and jumps).
        let mut naive = NaiveTtl::new(capacity, ttl);
        let mut real = Ttl::new(capacity, ttl);
        let mut now = 0u64;
        for (key, dt) in script {
            now += dt;
            prop_assert_eq!(
                naive.insert_at(key, now),
                real.insert_at(key, now),
                "insert({}) @ {} diverged", key, now
            );
            prop_assert_eq!(naive.entries.len(), real.len(), "len @ {}", now);
            for probe in 0..12u64 {
                prop_assert_eq!(
                    naive.contains(probe),
                    real.contains(probe),
                    "contains({}) @ {}", probe, now
                );
            }
        }
    }

    #[test]
    fn ttl_trait_mode_matches_naive_model(
        capacity in 0usize..8,
        ttl in 1u64..20,
        script in prop::collection::vec(0u64..12, 0..300),
    ) {
        // Trait mode: the internal clock ticks once per insert.
        let mut naive = NaiveTtl::new(capacity, ttl);
        let mut real = Ttl::new(capacity, ttl);
        let mut now = 0u64;
        for key in script {
            now += 1;
            prop_assert_eq!(naive.insert_at(key, now), real.insert(key));
            prop_assert_eq!(naive.entries.len(), real.len());
        }
    }

    #[test]
    fn tinylfu_matches_naive_model(
        capacity in 0usize..8,
        script in prop::collection::vec((0u64..20, 0u8..3), 0..400),
    ) {
        let mut naive = NaiveTinyLfu::new(capacity);
        let mut real = TinyLfu::new(capacity);
        for (key, op) in script {
            match op {
                0 => {
                    prop_assert_eq!(
                        naive.insert(key),
                        real.insert(key),
                        "insert({}) diverged", key
                    );
                }
                1 => {
                    naive.touch(key);
                    real.touch(key);
                }
                _ => {
                    prop_assert_eq!(naive.estimate(key), real.estimate(key));
                }
            }
            prop_assert_eq!(naive.order.len(), real.len());
            prop_assert_eq!(naive.order.contains(&key), real.contains(key));
        }
    }
}
