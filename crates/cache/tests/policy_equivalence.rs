//! Property tests: `CompactLru` behaves exactly like the generic `Lru` and
//! like a naive reference model, under arbitrary operation scripts.

use icn_cache::policy::CachePolicy;
use icn_cache::{CompactLru, Fifo, Lfu, Lru};
use proptest::prelude::*;

/// A naive, obviously-correct LRU: a Vec ordered most-recent-first.
struct NaiveLru {
    order: Vec<u64>,
    capacity: usize,
}

impl NaiveLru {
    fn new(capacity: usize) -> Self {
        Self {
            order: Vec::new(),
            capacity,
        }
    }

    fn touch(&mut self, key: u64) {
        if let Some(pos) = self.order.iter().position(|&k| k == key) {
            let k = self.order.remove(pos);
            self.order.insert(0, k);
        }
    }

    fn insert(&mut self, key: u64) -> Option<u64> {
        if self.capacity == 0 {
            return None;
        }
        if self.order.contains(&key) {
            self.touch(key);
            return None;
        }
        let evicted = if self.order.len() == self.capacity {
            self.order.pop()
        } else {
            None
        };
        self.order.insert(0, key);
        evicted
    }
}

#[derive(Debug, Clone)]
enum Op {
    Insert(u64),
    Touch(u64),
    Contains(u64),
    Remove(u64),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0u64..30).prop_map(Op::Insert),
            (0u64..30).prop_map(Op::Touch),
            (0u64..30).prop_map(Op::Contains),
            (0u64..30).prop_map(Op::Remove),
        ],
        0..200,
    )
}

proptest! {
    #[test]
    fn compact_lru_matches_naive(capacity in 0usize..8, script in ops()) {
        let mut naive = NaiveLru::new(capacity);
        let mut compact = CompactLru::new(capacity);
        for op in script {
            match op {
                Op::Insert(k) => {
                    prop_assert_eq!(naive.insert(k), compact.insert(k));
                }
                Op::Touch(k) => {
                    naive.touch(k);
                    compact.touch(k);
                }
                Op::Contains(k) => {
                    prop_assert_eq!(naive.order.contains(&k), compact.contains(k));
                }
                Op::Remove(k) => {
                    let npos = naive.order.iter().position(|&x| x == k);
                    if let Some(p) = npos {
                        naive.order.remove(p);
                    }
                    prop_assert_eq!(npos.is_some(), compact.remove(k));
                }
            }
            prop_assert_eq!(naive.order.len(), compact.len());
            let co: Vec<u64> = compact.iter_mru().collect();
            prop_assert_eq!(&naive.order, &co, "MRU order diverged");
        }
    }

    #[test]
    fn generic_lru_matches_compact(capacity in 0usize..8, script in ops()) {
        let mut g: Lru<u64> = Lru::new(capacity);
        let mut c = CompactLru::new(capacity);
        for op in script {
            match op {
                Op::Insert(k) => {
                    prop_assert_eq!(g.insert(k), c.insert(k));
                }
                Op::Touch(k) => {
                    g.touch(&k);
                    c.touch(k);
                }
                Op::Contains(k) => {
                    prop_assert_eq!(g.contains(&k), c.contains(k));
                }
                Op::Remove(k) => {
                    prop_assert_eq!(g.remove(&k), c.remove(k));
                }
            }
            let go: Vec<u64> = g.iter_mru().collect();
            let co: Vec<u64> = c.iter_mru().collect();
            prop_assert_eq!(go, co);
        }
    }

    /// Invariants that hold for every policy: size never exceeds capacity,
    /// an eviction only happens at capacity, an inserted key is present
    /// (capacity permitting), and the evicted key is no longer present.
    #[test]
    fn policy_invariants(capacity in 0usize..8, script in ops(), kind in 0u8..3) {
        let mut cache: Box<dyn CachePolicy> = match kind {
            0 => Box::new(CompactLru::new(capacity)),
            1 => Box::new(Lfu::new(capacity)),
            _ => Box::new(Fifo::new(capacity)),
        };
        for op in script {
            match op {
                Op::Insert(k) => {
                    let was_present = cache.contains(k);
                    let len_before = cache.len();
                    let evicted = cache.insert(k);
                    if capacity > 0 {
                        prop_assert!(cache.contains(k));
                    }
                    if let Some(e) = evicted {
                        prop_assert!(!was_present);
                        prop_assert_eq!(len_before, capacity);
                        if e != k {
                            prop_assert!(!cache.contains(e));
                        }
                    }
                }
                Op::Touch(k) => cache.touch(k),
                Op::Contains(_) | Op::Remove(_) => {}
            }
            prop_assert!(cache.len() <= capacity);
        }
    }
}
