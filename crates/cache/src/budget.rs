//! Cache-budget provisioning (§4.1 of the paper).
//!
//! If `O` objects are requested across a network of `R` routers, the total
//! network cache budget is `F × R × O` for a provisioning fraction
//! `F ∈ [0, 1]` (the paper's baseline is `F = 5%`, "based roughly on the CDN
//! provisioning we observe"). The total is split per router either
//! uniformly or proportionally to PoP population.
//!
//! The budget is computed for **every** router regardless of which routers a
//! design actually equips with caches; EDGE simply uses only the leaf
//! entries, which is why its total capacity is about half of ICN's on binary
//! trees. [`edge_norm_factor`] is the constant EDGE-Norm multiplies leaf
//! budgets by to equalize totals.

use serde::{Deserialize, Serialize};

/// How the total cache budget is split across routers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BudgetPolicy {
    /// Every router stores `F × O` objects.
    Uniform,
    /// Each PoP receives a share of `F × R × O` proportional to its
    /// population, divided equally within its access tree.
    PopulationProportional,
}

/// Computes the per-router cache budget (in objects), indexed by global
/// node id (`pop * nodes_per_pop + tree_index`).
///
/// * `f_fraction` — the provisioning fraction `F`.
/// * `objects` — the universe size `O`.
/// * `populations` — metro population per PoP.
/// * `nodes_per_pop` — routers per access tree (including the PoP root).
pub fn per_node_budgets(
    policy: BudgetPolicy,
    f_fraction: f64,
    objects: u64,
    populations: &[u64],
    nodes_per_pop: u32,
) -> Vec<usize> {
    assert!(f_fraction >= 0.0, "negative budget fraction");
    assert!(nodes_per_pop >= 1);
    let pops = populations.len();
    let routers = pops as u64 * nodes_per_pop as u64;
    match policy {
        BudgetPolicy::Uniform => {
            let per_node = (f_fraction * objects as f64).round() as usize;
            vec![per_node; routers as usize]
        }
        BudgetPolicy::PopulationProportional => {
            let total_budget = f_fraction * routers as f64 * objects as f64;
            let total_pop: u64 = populations.iter().sum();
            assert!(total_pop > 0, "zero total population");
            let mut out = Vec::with_capacity(routers as usize);
            for &p in populations {
                let pop_budget = total_budget * (p as f64 / total_pop as f64);
                let per_node = (pop_budget / nodes_per_pop as f64).round() as usize;
                out.extend(std::iter::repeat_n(per_node, nodes_per_pop as usize));
            }
            out
        }
    }
}

/// The EDGE-Norm multiplier: the constant the leaf budgets are scaled by so
/// the total leaf capacity matches the total all-router capacity (×2 for
/// binary trees, approaching ×1 as arity grows — the Table 4 effect).
pub fn edge_norm_factor(nodes_per_pop: u32, leaves_per_pop: u32) -> f64 {
    assert!(leaves_per_pop >= 1 && leaves_per_pop <= nodes_per_pop);
    nodes_per_pop as f64 / leaves_per_pop as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_budget() {
        let b = per_node_budgets(BudgetPolicy::Uniform, 0.05, 1000, &[10, 20, 30], 7);
        assert_eq!(b.len(), 21);
        assert!(b.iter().all(|&x| x == 50));
    }

    #[test]
    fn proportional_total_is_conserved() {
        let pops = [100u64, 300, 600];
        let b = per_node_budgets(BudgetPolicy::PopulationProportional, 0.05, 1000, &pops, 7);
        assert_eq!(b.len(), 21);
        let total: usize = b.iter().sum();
        let expected = 0.05 * 21.0 * 1000.0;
        assert!(
            (total as f64 - expected).abs() / expected < 0.01,
            "total {total} vs expected {expected}"
        );
        // Nodes within one PoP are equal; bigger PoP gets bigger caches.
        assert!(b[0..7].iter().all(|&x| x == b[0]));
        assert!(b[0] < b[7] && b[7] < b[14]);
    }

    #[test]
    fn proportional_ratio_matches_population() {
        let pops = [100u64, 400];
        let b = per_node_budgets(BudgetPolicy::PopulationProportional, 0.1, 10_000, &pops, 3);
        assert_eq!(b[3] as f64 / b[0] as f64, 4.0);
    }

    #[test]
    fn zero_fraction_means_no_cache() {
        let b = per_node_budgets(BudgetPolicy::Uniform, 0.0, 1000, &[1, 1], 7);
        assert!(b.iter().all(|&x| x == 0));
    }

    #[test]
    fn norm_factor_binary_tree() {
        // Depth-5 binary tree: 63 nodes, 32 leaves -> ~2x.
        let f = edge_norm_factor(63, 32);
        assert!((f - 63.0 / 32.0).abs() < 1e-12);
        // High arity approaches 1 (Table 4 intuition).
        let f64ary = edge_norm_factor(65, 64);
        assert!(f64ary < 1.02);
    }
}
