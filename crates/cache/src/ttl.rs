//! TTL (leased) caching on logical request time.
//!
//! CDN edge caches commonly bound staleness with a time-to-live: an
//! object inserted at time `t` may serve hits until `t + ttl`, then
//! vanishes regardless of demand. Under non-stationary workloads a TTL
//! behaves very differently from LRU — it sheds yesterday's flash crowd
//! by itself but also drops still-hot objects.
//!
//! Wall clocks are banned in the deterministic core (see DESIGN.md), so
//! leases are measured in *logical time*: the request index. The
//! simulator drives [`Ttl::insert_at`] with its request counter and
//! retires due leases with [`Ttl::expire`]; standalone (trait) use ticks
//! an internal clock, one unit per insertion.

use crate::hash::FastMap;
use crate::policy::{CachePolicy, Key};
use std::collections::VecDeque;

/// Fixed-capacity cache whose entries expire `ttl` logical ticks after
/// their last insertion.
///
/// Semantics:
/// * an entry inserted (or re-inserted) at time `t` holds a lease
///   `[t, t + ttl)` — it serves hits strictly before `t + ttl`;
/// * re-inserting a present key renews its lease (and its eviction
///   position); [`CachePolicy::touch`] does **not** — leases are
///   fixed-term, not sliding;
/// * when full, the entry closest to expiry (equivalently: least
///   recently *inserted*) is evicted first.
///
/// # Examples
/// ```
/// use icn_cache::{CachePolicy, Ttl};
///
/// let mut c = Ttl::new(8, 2); // 2-tick leases
/// c.insert(1); // t = 1
/// assert!(c.contains(1));
/// c.insert(2); // t = 2
/// c.insert(3); // t = 3: object 1's lease [1, 3) is up
/// assert!(!c.contains(1));
/// assert!(c.contains(2) && c.contains(3));
/// ```
#[derive(Debug, Clone)]
pub struct Ttl {
    /// Key → (lease-end stamp, insertion sequence number). The sequence
    /// number uniquely identifies the *current* insertion: two renewals
    /// at the same tick share a stamp, so the stamp alone cannot tell a
    /// live log entry from a tombstone.
    map: FastMap<Key, (u64, u64)>,
    /// Insertion log `(lease-end, sequence, key)`, oldest first.
    /// Refreshes append a new entry and leave the old one behind as a
    /// stale tombstone (detected by a sequence mismatch against `map`),
    /// so the front is always the next lease to run out.
    order: VecDeque<(u64, u64, Key)>,
    capacity: usize,
    ttl: u64,
    /// Logical clock: the largest time ever observed (trait-mode inserts
    /// tick it by one).
    now: u64,
    /// Monotone insertion counter feeding the sequence numbers.
    seq: u64,
}

impl Ttl {
    /// Creates a cache of `capacity` keys with `ttl`-tick leases
    /// (`ttl` ≥ 1).
    pub fn new(capacity: usize, ttl: u64) -> Self {
        assert!(ttl >= 1, "ttl must be at least one tick");
        Self {
            map: FastMap::default(),
            order: VecDeque::new(),
            capacity,
            ttl,
            now: 0,
            seq: 0,
        }
    }

    /// The lease length in logical ticks.
    pub fn ttl(&self) -> u64 {
        self.ttl
    }

    /// Drops every entry whose lease ends at or before `now`.
    fn purge_due(&mut self, now: u64) {
        while let Some(&(exp, seq, key)) = self.order.front() {
            if exp > now {
                break;
            }
            self.order.pop_front();
            // A stale tombstone (key refreshed or evicted since) no
            // longer matches the live sequence number.
            if self.map.get(&key) == Some(&(exp, seq)) {
                self.map.remove(&key);
            }
        }
    }

    /// Inserts `key` at logical time `now` (non-decreasing across calls),
    /// first retiring any due leases. Present keys renew their lease.
    /// Returns the key displaced by a *capacity* eviction, if any —
    /// lease expiries are not reported (the caller saw them coming:
    /// every insertion's lease end is `now + ttl`).
    pub fn insert_at(&mut self, key: Key, now: u64) -> Option<Key> {
        self.now = self.now.max(now);
        self.purge_due(now);
        if self.capacity == 0 {
            return None;
        }
        let stamp = now + self.ttl;
        self.seq += 1;
        if self.map.contains_key(&key) {
            self.map.insert(key, (stamp, self.seq));
            self.order.push_back((stamp, self.seq, key));
            return None;
        }
        let evicted = if self.map.len() == self.capacity {
            // Pop stale tombstones until the earliest live lease — the
            // eviction victim — surfaces.
            loop {
                match self.order.pop_front() {
                    Some((exp, seq, old)) => {
                        if self.map.get(&old) == Some(&(exp, seq)) {
                            self.map.remove(&old);
                            break Some(old);
                        }
                    }
                    None => break None,
                }
            }
        } else {
            None
        };
        self.map.insert(key, (stamp, self.seq));
        self.order.push_back((stamp, self.seq, key));
        evicted
    }

    /// Removes `key` if present regardless of its lease; returns whether
    /// it was cached. The order-log entry stays behind as a tombstone —
    /// its sequence number no longer matches the (absent) map entry, so
    /// both `purge_due` and the capacity-eviction loop skip it.
    pub fn remove(&mut self, key: Key) -> bool {
        self.map.remove(&key).is_some()
    }

    /// Retires `key` if its live lease ends exactly at `stamp`; returns
    /// whether it did. A mismatched stamp means the lease was renewed (or
    /// the key evicted) in the meantime — the call is then a no-op, which
    /// lets an external expiry queue hold stale entries safely.
    pub fn expire(&mut self, key: Key, stamp: u64) -> bool {
        if self.map.get(&key).is_some_and(|&(exp, _)| exp == stamp) {
            self.map.remove(&key);
            true
        } else {
            false
        }
    }
}

impl CachePolicy for Ttl {
    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn contains(&self, key: Key) -> bool {
        self.map.contains_key(&key)
    }

    /// No-op beyond the trait's contract: TTL leases are fixed-term, so a
    /// hit neither extends the lease nor changes the eviction order.
    fn touch(&mut self, _key: Key) {}

    fn insert(&mut self, key: Key) -> Option<Key> {
        self.insert_at(key, self.now + 1)
    }

    fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
        self.now = 0;
        self.seq = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leases_expire_on_schedule() {
        let mut c = Ttl::new(16, 3);
        c.insert_at(1, 10); // lease [10, 13)
        assert!(c.contains(1));
        assert_eq!(c.insert_at(2, 12), None);
        assert!(c.contains(1), "still leased at t = 12");
        c.insert_at(3, 13); // purge runs: 1's lease is up
        assert!(!c.contains(1));
        assert!(c.contains(2) && c.contains(3));
    }

    #[test]
    fn reinsert_renews_the_lease() {
        let mut c = Ttl::new(16, 3);
        c.insert_at(1, 0);
        c.insert_at(1, 2); // renewed: lease now [2, 5)
        c.insert_at(9, 4);
        assert!(c.contains(1), "renewed lease outlives the original");
        c.insert_at(9, 5);
        assert!(!c.contains(1));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn capacity_evicts_earliest_lease() {
        let mut c = Ttl::new(2, 100);
        c.insert_at(1, 0);
        c.insert_at(2, 1);
        assert_eq!(c.insert_at(3, 2), Some(1), "oldest lease evicted");
        c.insert_at(2, 3); // renew 2: now 3 holds the earliest lease
        assert_eq!(c.insert_at(4, 4), Some(3));
    }

    #[test]
    fn same_tick_renewal_is_not_the_victim() {
        // Regression: renewing a key at the same tick reuses its stamp,
        // so a stamp-only tombstone check mistook the old log entry for
        // live and evicted the freshly renewed key. Sequence numbers
        // disambiguate.
        let mut c = Ttl::new(2, 10);
        c.insert_at(1, 5);
        c.insert_at(2, 5);
        c.insert_at(1, 5); // renew 1 at the very same tick
        assert_eq!(c.insert_at(3, 5), Some(2), "2 holds the oldest insertion");
        assert!(c.contains(1));
    }

    #[test]
    fn touch_does_not_extend_leases() {
        let mut c = Ttl::new(4, 2);
        c.insert_at(1, 0);
        c.touch(1);
        c.touch(1);
        c.insert_at(2, 2);
        assert!(!c.contains(1), "touch must not renew a fixed-term lease");
    }

    #[test]
    fn expire_respects_stamps() {
        let mut c = Ttl::new(4, 5);
        c.insert_at(1, 0); // stamp 5
        assert!(!c.expire(1, 4), "wrong stamp is a no-op");
        assert!(c.contains(1));
        c.insert_at(1, 2); // renewed: stamp 7
        assert!(!c.expire(1, 5), "stale stamp after renewal is a no-op");
        assert!(c.expire(1, 7));
        assert!(!c.contains(1));
        assert!(!c.expire(1, 7), "already gone");
    }

    #[test]
    fn trait_clock_ticks_per_insert() {
        let mut c = Ttl::new(16, 2);
        c.insert(1); // t = 1, lease [1, 3)
        c.insert(2); // t = 2
        assert!(c.contains(1));
        c.insert(3); // t = 3
        assert!(!c.contains(1));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn zero_capacity_stores_nothing() {
        let mut c = Ttl::new(0, 5);
        assert_eq!(c.insert_at(1, 0), None);
        assert_eq!(c.len(), 0);
        assert!(!c.contains(1));
    }

    #[test]
    fn tombstones_do_not_count_as_entries() {
        let mut c = Ttl::new(2, 10);
        for t in 0..50u64 {
            c.insert_at(t % 3, t);
            assert!(c.len() <= 2);
        }
    }

    #[test]
    fn clear_resets() {
        let mut c = Ttl::new(4, 3);
        c.insert_at(1, 5);
        c.clear();
        assert_eq!(c.len(), 0);
        c.insert(2); // internal clock restarted at 1
        assert!(c.contains(2));
    }
}
