//! Enum-dispatched cache slots for hot loops.
//!
//! The simulator probes a cache on every hop of every request; routing
//! those probes through `Box<dyn CachePolicy + Send>` costs a pointer
//! chase plus a virtual call per probe and a heap allocation per node.
//! [`CacheSlot`] is a closed enum over the concrete policies (plus an
//! explicit [`CacheSlot::None`] for cache-less routers), so every probe
//! is a direct — and inlinable — match dispatch, and a network's worth of
//! slots lives in one flat `Vec<CacheSlot>`.
//!
//! The [`CachePolicy`](crate::CachePolicy) trait remains the public
//! extension point (property tests and external policies keep using it);
//! the enum is the hot-path mirror of the same behaviour, pinned by the
//! equivalence test below.

use crate::fifo::Fifo;
use crate::lfu::Lfu;
use crate::lru::CompactLru;
use crate::policy::{CachePolicy, Key, PolicyKind};
use crate::prob::ProbCache;
use crate::tinylfu::TinyLfu;
use crate::ttl::Ttl;

/// A cache slot for one router: either a concrete policy or nothing.
///
/// All methods on the `None` variant behave like an always-empty,
/// zero-capacity cache, so callers can probe unconditionally.
#[derive(Debug)]
pub enum CacheSlot {
    /// No cache equipped at this router.
    None,
    /// Compact index-based LRU (the default LRU implementation).
    Lru(CompactLru),
    /// First-in / first-out eviction.
    Fifo(Fifo),
    /// Least-frequently-used eviction.
    Lfu(Lfu),
    /// Probabilistic-admission LRU (ProbCache-style).
    Prob(ProbCache),
    /// Logical-time TTL leases.
    Ttl(Ttl),
    /// TinyLFU admission filter over LRU.
    TinyLfu(TinyLfu),
}

impl CacheSlot {
    /// Builds a slot holding a concrete policy of `kind` with `capacity`
    /// entries. Mirrors [`PolicyKind::build`] variant-for-variant.
    #[must_use]
    pub fn build(kind: PolicyKind, capacity: usize) -> Self {
        match kind {
            PolicyKind::Lru => CacheSlot::Lru(CompactLru::new(capacity)),
            PolicyKind::Fifo => CacheSlot::Fifo(Fifo::new(capacity)),
            PolicyKind::Lfu => CacheSlot::Lfu(Lfu::new(capacity)),
            PolicyKind::Prob { admit_pct } => CacheSlot::Prob(ProbCache::new(capacity, admit_pct)),
            PolicyKind::Ttl { ttl } => CacheSlot::Ttl(Ttl::new(capacity, ttl as u64)),
            PolicyKind::TinyLfu => CacheSlot::TinyLfu(TinyLfu::new(capacity)),
        }
    }

    /// True when a concrete policy is equipped (the router has a cache).
    #[inline]
    #[must_use]
    pub fn is_equipped(&self) -> bool {
        !matches!(self, CacheSlot::None)
    }

    /// Maximum number of entries; 0 for [`CacheSlot::None`].
    #[inline]
    #[must_use]
    pub fn capacity(&self) -> usize {
        match self {
            CacheSlot::None => 0,
            CacheSlot::Lru(c) => c.capacity(),
            CacheSlot::Fifo(c) => c.capacity(),
            CacheSlot::Lfu(c) => c.capacity(),
            CacheSlot::Prob(c) => c.capacity(),
            CacheSlot::Ttl(c) => c.capacity(),
            CacheSlot::TinyLfu(c) => c.capacity(),
        }
    }

    /// Current number of entries; 0 for [`CacheSlot::None`].
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            CacheSlot::None => 0,
            CacheSlot::Lru(c) => c.len(),
            CacheSlot::Fifo(c) => c.len(),
            CacheSlot::Lfu(c) => c.len(),
            CacheSlot::Prob(c) => c.len(),
            CacheSlot::Ttl(c) => c.len(),
            CacheSlot::TinyLfu(c) => c.len(),
        }
    }

    /// True when no entries are cached (always true for `None`).
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Membership probe without touching recency/frequency state.
    #[inline]
    #[must_use]
    pub fn contains(&self, key: Key) -> bool {
        match self {
            CacheSlot::None => false,
            CacheSlot::Lru(c) => c.contains(key),
            CacheSlot::Fifo(c) => c.contains(key),
            CacheSlot::Lfu(c) => c.contains(key),
            CacheSlot::Prob(c) => c.contains(key),
            CacheSlot::Ttl(c) => c.contains(key),
            CacheSlot::TinyLfu(c) => c.contains(key),
        }
    }

    /// Records a hit on `key` (no-op when absent or on `None`).
    #[inline]
    pub fn touch(&mut self, key: Key) {
        match self {
            CacheSlot::None => {}
            CacheSlot::Lru(c) => c.touch(key),
            CacheSlot::Fifo(c) => c.touch(key),
            CacheSlot::Lfu(c) => c.touch(key),
            CacheSlot::Prob(c) => c.touch(key),
            CacheSlot::Ttl(c) => c.touch(key),
            CacheSlot::TinyLfu(c) => c.touch(key),
        }
    }

    /// Inserts `key`, returning the evicted key if one was displaced.
    /// A no-op returning `None` on the [`CacheSlot::None`] variant.
    #[inline]
    pub fn insert(&mut self, key: Key) -> Option<Key> {
        match self {
            CacheSlot::None => None,
            CacheSlot::Lru(c) => c.insert(key),
            CacheSlot::Fifo(c) => c.insert(key),
            CacheSlot::Lfu(c) => c.insert(key),
            CacheSlot::Prob(c) => c.insert(key),
            CacheSlot::Ttl(c) => c.insert(key),
            CacheSlot::TinyLfu(c) => c.insert(key),
        }
    }

    /// Inserts `key` at logical time `now` (the request index). Only the
    /// TTL variant consumes the clock — every other variant behaves
    /// exactly like [`CacheSlot::insert`] — so the simulator can call
    /// this unconditionally on its response path.
    #[inline]
    pub fn insert_at(&mut self, key: Key, now: u64) -> Option<Key> {
        match self {
            CacheSlot::Ttl(c) => c.insert_at(key, now),
            other => other.insert(key),
        }
    }

    /// Removes `key` outright if present, returning whether it was
    /// cached; `false` — and a no-op — on [`CacheSlot::None`]. Unlike
    /// [`CacheSlot::expire`] this works on every policy and ignores
    /// leases: it is the fault path's "this copy is poisoned, drop it"
    /// primitive, so admission/recency bookkeeping (TinyLFU sketch, Prob
    /// nonce) is deliberately left untouched.
    #[inline]
    pub fn remove(&mut self, key: Key) -> bool {
        match self {
            CacheSlot::None => false,
            CacheSlot::Lru(c) => c.remove(key),
            CacheSlot::Fifo(c) => c.remove(key),
            CacheSlot::Lfu(c) => c.remove(key),
            CacheSlot::Prob(c) => c.remove(key),
            CacheSlot::Ttl(c) => c.remove(key),
            CacheSlot::TinyLfu(c) => c.remove(key),
        }
    }

    /// Retires `key` from a TTL slot if its live lease ends exactly at
    /// `stamp` (see [`Ttl::expire`]); `false` — and a no-op — on every
    /// other variant or on a stale stamp.
    #[inline]
    pub fn expire(&mut self, key: Key, stamp: u64) -> bool {
        match self {
            CacheSlot::Ttl(c) => c.expire(key, stamp),
            _ => false,
        }
    }

    /// The lease length when this slot expires entries on logical time
    /// (`None` for every non-TTL variant). The simulator uses this to
    /// decide whether to maintain an expiry queue at all.
    #[inline]
    #[must_use]
    pub fn ttl(&self) -> Option<u64> {
        match self {
            CacheSlot::Ttl(c) => Some(c.ttl()),
            _ => None,
        }
    }

    /// Drops every entry (no-op on `None`).
    #[inline]
    pub fn clear(&mut self) {
        match self {
            CacheSlot::None => {}
            CacheSlot::Lru(c) => c.clear(),
            CacheSlot::Fifo(c) => c.clear(),
            CacheSlot::Lfu(c) => c.clear(),
            CacheSlot::Prob(c) => c.clear(),
            CacheSlot::Ttl(c) => c.clear(),
            CacheSlot::TinyLfu(c) => c.clear(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic op mix driving a slot and the equivalent boxed
    /// trait object in lockstep: the enum must mirror the trait
    /// behaviour exactly (same hits, same evictions, same lengths).
    fn drive_equivalence(kind: PolicyKind) {
        let capacity = 8;
        let mut slot = CacheSlot::build(kind, capacity);
        let mut boxed = kind.build(capacity);
        assert_eq!(slot.capacity(), boxed.capacity());
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        for step in 0..4_000u64 {
            // SplitMix64 step: deterministic, no external RNG needed.
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let key = z % 24;
            match z >> 61 {
                0..=2 => {
                    slot.touch(key);
                    boxed.touch(key);
                    assert_eq!(
                        slot.contains(key),
                        boxed.contains(key),
                        "touch {key} @ {step}"
                    );
                }
                3..=5 => {
                    assert_eq!(slot.insert(key), boxed.insert(key), "insert {key} @ {step}");
                }
                6 => {
                    assert_eq!(
                        slot.contains(key),
                        boxed.contains(key),
                        "contains {key} @ {step}"
                    );
                }
                _ => {
                    assert_eq!(slot.len(), boxed.len(), "len @ {step}");
                    assert_eq!(slot.is_empty(), boxed.is_empty());
                }
            }
        }
        slot.clear();
        boxed.clear();
        assert!(slot.is_empty() && boxed.is_empty());
    }

    #[test]
    fn lru_slot_mirrors_boxed_policy() {
        drive_equivalence(PolicyKind::Lru);
    }

    #[test]
    fn fifo_slot_mirrors_boxed_policy() {
        drive_equivalence(PolicyKind::Fifo);
    }

    #[test]
    fn lfu_slot_mirrors_boxed_policy() {
        drive_equivalence(PolicyKind::Lfu);
    }

    #[test]
    fn prob_slot_mirrors_boxed_policy() {
        drive_equivalence(PolicyKind::Prob { admit_pct: 70 });
    }

    #[test]
    fn ttl_slot_mirrors_boxed_policy() {
        drive_equivalence(PolicyKind::Ttl { ttl: 24 });
    }

    #[test]
    fn tinylfu_slot_mirrors_boxed_policy() {
        drive_equivalence(PolicyKind::TinyLfu);
    }

    #[test]
    fn insert_at_matches_insert_for_clockless_policies() {
        // Only the TTL variant reads the logical clock; all others must
        // behave identically through insert_at and insert.
        for kind in [
            PolicyKind::Lru,
            PolicyKind::Fifo,
            PolicyKind::Lfu,
            PolicyKind::Prob { admit_pct: 55 },
            PolicyKind::TinyLfu,
        ] {
            let mut timed = CacheSlot::build(kind, 4);
            let mut plain = CacheSlot::build(kind, 4);
            assert_eq!(timed.ttl(), None);
            for i in 0..500u64 {
                let key = i % 11;
                assert_eq!(timed.insert_at(key, i * 1_000), plain.insert(key));
                assert!(!timed.expire(key, i * 1_000 + 1));
            }
        }
    }

    #[test]
    fn ttl_slot_exposes_lease_plumbing() {
        let mut slot = CacheSlot::build(PolicyKind::Ttl { ttl: 10 }, 4);
        assert_eq!(slot.ttl(), Some(10));
        assert_eq!(slot.insert_at(1, 5), None); // lease ends at 15
        assert!(!slot.expire(1, 14), "stale stamp ignored");
        assert!(slot.contains(1));
        assert!(slot.expire(1, 15));
        assert!(!slot.contains(1));
    }

    #[test]
    fn remove_works_on_every_policy_and_keeps_capacity_sound() {
        for kind in [
            PolicyKind::Lru,
            PolicyKind::Fifo,
            PolicyKind::Lfu,
            PolicyKind::Prob { admit_pct: 100 },
            PolicyKind::Ttl { ttl: 1_000 },
            PolicyKind::TinyLfu,
        ] {
            let mut slot = CacheSlot::build(kind, 4);
            for k in 0..4u64 {
                slot.insert(k);
            }
            assert!(slot.remove(2), "{kind:?}");
            assert!(!slot.remove(2), "double remove reports absent");
            assert!(!slot.contains(2));
            assert_eq!(slot.len(), 3, "{kind:?}");
            // Refill past the removal: the cache never exceeds capacity.
            for k in 10..30u64 {
                slot.insert(k);
                assert!(slot.len() <= 4, "{kind:?} grew past capacity");
            }
        }
        assert!(!CacheSlot::None.remove(1));
    }

    #[test]
    fn none_slot_is_an_inert_empty_cache() {
        let mut slot = CacheSlot::None;
        assert!(!slot.is_equipped());
        assert_eq!(slot.capacity(), 0);
        assert_eq!(slot.len(), 0);
        assert!(slot.is_empty());
        assert!(!slot.contains(7));
        slot.touch(7);
        assert_eq!(slot.insert(7), None);
        assert!(!slot.contains(7));
        slot.clear();
    }

    #[test]
    fn equipped_variants_report_equipped() {
        for kind in [
            PolicyKind::Lru,
            PolicyKind::Fifo,
            PolicyKind::Lfu,
            PolicyKind::Prob { admit_pct: 50 },
            PolicyKind::Ttl { ttl: 8 },
            PolicyKind::TinyLfu,
        ] {
            assert!(CacheSlot::build(kind, 4).is_equipped());
        }
    }
}
