//! Cache replacement policies and cache-budget provisioning.
//!
//! The simulator instantiates one cache per router (potentially thousands),
//! so the workhorse implementation is [`CompactLru`]: a fixed-capacity LRU
//! over `u64` object ids with slab-allocated links and lazy growth. A
//! generic [`Lru`], an [`Lfu`] ("we also tried LFU, which yielded
//! qualitatively similar results", §3), and a [`Fifo`] baseline are provided
//! behind the common [`CachePolicy`] trait.
//!
//! [`budget`] implements the paper's provisioning policies (§4.1): a total
//! network budget of `F × R × O` split either uniformly or proportionally to
//! PoP population, plus the EDGE-Norm normalization constant.

#![warn(missing_docs)]

pub mod budget;
pub mod fifo;
pub mod hash;
pub mod lfu;
pub mod lru;
pub mod policy;
pub mod prob;
pub mod slot;
pub mod tinylfu;
pub mod ttl;

pub use budget::{per_node_budgets, BudgetPolicy};
pub use fifo::Fifo;
pub use lfu::Lfu;
pub use lru::{CompactLru, Lru};
pub use policy::{CachePolicy, PolicyKind};
pub use prob::ProbCache;
pub use slot::CacheSlot;
pub use tinylfu::TinyLfu;
pub use ttl::Ttl;
