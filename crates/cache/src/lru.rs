//! Least-recently-used caches.
//!
//! [`Lru`] is a straightforward generic implementation (hash map plus an
//! intrusive doubly-linked list over a slab). [`CompactLru`] specializes it
//! for `u64` keys with `u32` slab links and a fast integer hasher — the
//! simulator allocates one per router, so per-entry footprint matters. The
//! two are property-tested against each other for exact behavioural
//! equivalence (see `tests/` at the crate root).

use crate::hash::FastMap;
use crate::policy::{CachePolicy, Key};
// lint:allow(deterministic-core): keyed lookup only — the map is never iterated, so hash order can't leak into results
use std::collections::HashMap;
use std::hash::Hash;

const NIL: u32 = u32::MAX;

/// A slot in the intrusive recency list.
#[derive(Debug, Clone, Copy)]
struct Slot<K> {
    key: K,
    prev: u32,
    next: u32,
}

/// Generic fixed-capacity LRU cache.
#[derive(Debug, Clone)]
pub struct Lru<K: Hash + Eq + Copy> {
    // lint:allow(deterministic-core): keyed lookup only; recency order lives in the intrusive list
    map: HashMap<K, u32>,
    slots: Vec<Slot<K>>,
    free: Vec<u32>,
    head: u32, // most recent
    tail: u32, // least recent
    capacity: usize,
}

impl<K: Hash + Eq + Copy> Lru<K> {
    /// Creates an empty cache holding at most `capacity` keys.
    pub fn new(capacity: usize) -> Self {
        Self {
            // lint:allow(deterministic-core): keyed lookup only; never iterated
            map: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    /// Number of cached keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// True when `key` is cached (no recency update).
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Marks `key` as most recently used, if present.
    pub fn touch(&mut self, key: &K) {
        if let Some(&idx) = self.map.get(key) {
            self.unlink(idx);
            self.push_front(idx);
        }
    }

    /// Inserts `key`; returns the evicted key when capacity is exceeded.
    pub fn insert(&mut self, key: K) -> Option<K> {
        if self.capacity == 0 {
            return None;
        }
        if self.map.contains_key(&key) {
            self.touch(&key);
            return None;
        }
        let evicted = if self.map.len() == self.capacity {
            let victim = self.tail;
            debug_assert_ne!(victim, NIL);
            self.unlink(victim);
            let old = self.slots[victim as usize].key;
            self.map.remove(&old);
            self.free.push(victim);
            Some(old)
        } else {
            None
        };
        let idx = match self.free.pop() {
            Some(i) => {
                self.slots[i as usize].key = key;
                i
            }
            None => {
                self.slots.push(Slot {
                    key,
                    prev: NIL,
                    next: NIL,
                });
                (self.slots.len() - 1) as u32
            }
        };
        self.map.insert(key, idx);
        self.push_front(idx);
        evicted
    }

    /// Removes `key` if present; returns whether it was cached.
    pub fn remove(&mut self, key: &K) -> bool {
        if let Some(idx) = self.map.remove(key) {
            self.unlink(idx);
            self.free.push(idx);
            true
        } else {
            false
        }
    }

    /// Keys from most- to least-recently used.
    pub fn iter_mru(&self) -> impl Iterator<Item = K> + '_ {
        let mut cur = self.head;
        std::iter::from_fn(move || {
            if cur == NIL {
                return None;
            }
            let slot = &self.slots[cur as usize];
            cur = slot.next;
            Some(slot.key)
        })
    }

    /// Removes everything.
    pub fn clear(&mut self) {
        self.map.clear();
        self.slots.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// Capacity in keys.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn unlink(&mut self, idx: u32) {
        let (prev, next) = {
            let s = &self.slots[idx as usize];
            (s.prev, s.next)
        };
        if prev != NIL {
            self.slots[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: u32) {
        self.slots[idx as usize].prev = NIL;
        self.slots[idx as usize].next = self.head;
        if self.head != NIL {
            self.slots[self.head as usize].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }
}

/// LRU over `u64` keys with a fast hasher; the simulator's per-router cache.
///
/// # Examples
/// ```
/// use icn_cache::{CompactLru, CachePolicy};
///
/// let mut cache = CompactLru::new(2);
/// cache.insert(1);
/// cache.insert(2);
/// cache.touch(1);                       // 2 becomes least recently used
/// assert_eq!(cache.insert(3), Some(2)); // ... and is evicted
/// assert!(cache.contains(1) && cache.contains(3));
/// ```
#[derive(Debug, Clone)]
pub struct CompactLru {
    map: FastMap<Key, u32>,
    slots: Vec<Slot<Key>>,
    free: Vec<u32>,
    head: u32,
    tail: u32,
    capacity: usize,
}

impl CompactLru {
    /// Creates an empty cache holding at most `capacity` keys. Storage grows
    /// lazily — an unfilled cache costs no memory.
    pub fn new(capacity: usize) -> Self {
        Self {
            map: FastMap::default(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    /// Removes `key` if present; returns whether it was cached.
    pub fn remove(&mut self, key: Key) -> bool {
        if let Some(idx) = self.map.remove(&key) {
            self.unlink(idx);
            self.free.push(idx);
            true
        } else {
            false
        }
    }

    /// The key the next capacity eviction would displace (the
    /// least-recently-used one), without evicting it. Admission filters
    /// (TinyLFU) compare a candidate against this victim.
    pub fn lru_victim(&self) -> Option<Key> {
        (self.tail != NIL).then(|| self.slots[self.tail as usize].key)
    }

    /// Keys from most- to least-recently used.
    pub fn iter_mru(&self) -> impl Iterator<Item = Key> + '_ {
        let mut cur = self.head;
        std::iter::from_fn(move || {
            if cur == NIL {
                return None;
            }
            let slot = &self.slots[cur as usize];
            cur = slot.next;
            Some(slot.key)
        })
    }

    fn unlink(&mut self, idx: u32) {
        let (prev, next) = {
            let s = &self.slots[idx as usize];
            (s.prev, s.next)
        };
        if prev != NIL {
            self.slots[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: u32) {
        self.slots[idx as usize].prev = NIL;
        self.slots[idx as usize].next = self.head;
        if self.head != NIL {
            self.slots[self.head as usize].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }
}

impl CachePolicy for CompactLru {
    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn contains(&self, key: Key) -> bool {
        self.map.contains_key(&key)
    }

    fn touch(&mut self, key: Key) {
        if let Some(&idx) = self.map.get(&key) {
            self.unlink(idx);
            self.push_front(idx);
        }
    }

    fn insert(&mut self, key: Key) -> Option<Key> {
        if self.capacity == 0 {
            return None;
        }
        if self.map.contains_key(&key) {
            self.touch(key);
            return None;
        }
        let evicted = if self.map.len() == self.capacity {
            let victim = self.tail;
            debug_assert_ne!(victim, NIL);
            self.unlink(victim);
            let old = self.slots[victim as usize].key;
            self.map.remove(&old);
            self.free.push(victim);
            Some(old)
        } else {
            None
        };
        let idx = match self.free.pop() {
            Some(i) => {
                self.slots[i as usize].key = key;
                i
            }
            None => {
                self.slots.push(Slot {
                    key,
                    prev: NIL,
                    next: NIL,
                });
                (self.slots.len() - 1) as u32
            }
        };
        self.map.insert(key, idx);
        self.push_front(idx);
        evicted
    }

    fn clear(&mut self) {
        self.map.clear();
        self.slots.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_eviction_order() {
        let mut c = CompactLru::new(2);
        assert_eq!(c.insert(1), None);
        assert_eq!(c.insert(2), None);
        assert_eq!(c.insert(3), Some(1)); // 1 is LRU
        assert!(c.contains(2) && c.contains(3) && !c.contains(1));
    }

    #[test]
    fn touch_changes_victim() {
        let mut c = CompactLru::new(2);
        c.insert(1);
        c.insert(2);
        c.touch(1); // now 2 is LRU
        assert_eq!(c.insert(3), Some(2));
        assert!(c.contains(1));
    }

    #[test]
    fn reinsert_refreshes() {
        let mut c = CompactLru::new(2);
        c.insert(1);
        c.insert(2);
        assert_eq!(c.insert(1), None); // refresh, no eviction
        assert_eq!(c.insert(3), Some(2));
    }

    #[test]
    fn zero_capacity_stores_nothing() {
        let mut c = CompactLru::new(0);
        assert_eq!(c.insert(1), None);
        assert!(!c.contains(1));
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn remove_frees_slot() {
        let mut c = CompactLru::new(2);
        c.insert(1);
        c.insert(2);
        assert!(c.remove(1));
        assert!(!c.remove(1));
        assert_eq!(c.insert(3), None); // room after removal
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn mru_iteration_order() {
        let mut c = CompactLru::new(3);
        c.insert(1);
        c.insert(2);
        c.insert(3);
        c.touch(1);
        let order: Vec<u64> = c.iter_mru().collect();
        assert_eq!(order, vec![1, 3, 2]);
    }

    #[test]
    fn generic_lru_matches_compact_on_script() {
        let mut g: Lru<u64> = Lru::new(3);
        let mut c = CompactLru::new(3);
        let script = [5u64, 1, 5, 2, 3, 4, 1, 5, 5, 2, 9, 9, 1];
        for &k in &script {
            assert_eq!(g.insert(k), c.insert(k));
            assert_eq!(g.len(), c.len());
        }
        let go: Vec<u64> = g.iter_mru().collect();
        let co: Vec<u64> = c.iter_mru().collect();
        assert_eq!(go, co);
    }

    #[test]
    fn clear_resets() {
        let mut c = CompactLru::new(2);
        c.insert(1);
        c.clear();
        assert_eq!(c.len(), 0);
        assert_eq!(c.insert(2), None);
        assert!(c.contains(2));
    }

    #[test]
    fn single_capacity_churn() {
        let mut c = CompactLru::new(1);
        assert_eq!(c.insert(1), None);
        assert_eq!(c.insert(2), Some(1));
        assert_eq!(c.insert(3), Some(2));
        assert_eq!(c.len(), 1);
    }
}
