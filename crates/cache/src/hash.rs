//! A fast, non-cryptographic hasher for integer cache keys.
//!
//! The simulator performs hundreds of millions of cache-map probes; the
//! default SipHash is noticeably slower than necessary for trusted `u64`
//! keys. This is a Fibonacci/wymix-style multiply-xor hasher, adequate for
//! well-distributed object ids and deterministic across runs (which keeps
//! the experiments reproducible).

use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-xor hasher specialized for small integer keys.
#[derive(Default)]
pub struct FastHasher {
    state: u64,
}

/// `BuildHasher` for [`FastHasher`], usable with `HashMap`/`HashSet`.
pub type FastBuildHasher = BuildHasherDefault<FastHasher>;

/// A `HashMap` keyed with the fast integer hasher.
// lint:allow(deterministic-core): FastBuildHasher is fixed-seeded, so map behaviour is identical across runs
pub type FastMap<K, V> = std::collections::HashMap<K, V, FastBuildHasher>;

/// A `HashSet` keyed with the fast integer hasher.
// lint:allow(deterministic-core): FastBuildHasher is fixed-seeded, so set behaviour is identical across runs
pub type FastSet<K> = std::collections::HashSet<K, FastBuildHasher>;

const K: u64 = 0x9e37_79b9_7f4a_7c15; // 2^64 / golden ratio

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // Final avalanche (splitmix64 tail) so sequential ids spread out.
        let mut z = self.state;
        z ^= z >> 30;
        z = z.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z ^= z >> 27;
        z = z.wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state = (self.state ^ b as u64).wrapping_mul(K);
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.state = (self.state ^ v).wrapping_mul(K);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.write_u64(v as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_one<T: Hash>(v: T) -> u64 {
        FastBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_one(42u64), hash_one(42u64));
    }

    #[test]
    fn sequential_keys_spread() {
        // Check that low bits differ for sequential keys (HashMap uses the
        // low bits for bucket selection).
        let mut buckets = std::collections::HashSet::new();
        for i in 0u64..1024 {
            buckets.insert(hash_one(i) & 0x3ff);
        }
        assert!(
            buckets.len() > 600,
            "only {} distinct buckets",
            buckets.len()
        );
    }

    #[test]
    fn works_in_hashmap() {
        let mut m: FastMap<u64, u32> = FastMap::default();
        for i in 0..10_000u64 {
            m.insert(i, i as u32);
        }
        assert_eq!(m.len(), 10_000);
        assert_eq!(m.get(&1234), Some(&1234));
    }
}
