//! First-in-first-out cache: evicts in insertion order, ignoring hits.
//!
//! FIFO is the classic lower-bound comparator for recency-aware policies;
//! the ablation benches use it to show how much of the caching benefit is
//! policy-independent (almost all of it, under Zipf workloads).

use crate::hash::FastSet;
use crate::policy::{CachePolicy, Key};
use std::collections::VecDeque;

/// Fixed-capacity FIFO cache.
#[derive(Debug, Clone, Default)]
pub struct Fifo {
    set: FastSet<Key>,
    queue: VecDeque<Key>,
    capacity: usize,
}

impl Fifo {
    /// Creates an empty cache holding at most `capacity` keys.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            ..Default::default()
        }
    }

    /// Removes `key` if present; returns whether it was cached. The queue
    /// entry is dropped too (not tombstoned) so the capacity invariant —
    /// `queue.len() == set.len()` — survives external removals.
    pub fn remove(&mut self, key: Key) -> bool {
        if self.set.remove(&key) {
            if let Some(pos) = self.queue.iter().position(|&k| k == key) {
                self.queue.remove(pos);
            }
            true
        } else {
            false
        }
    }
}

impl CachePolicy for Fifo {
    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.set.len()
    }

    fn contains(&self, key: Key) -> bool {
        self.set.contains(&key)
    }

    fn touch(&mut self, _key: Key) {
        // FIFO ignores hits by definition.
    }

    fn insert(&mut self, key: Key) -> Option<Key> {
        if self.capacity == 0 || self.set.contains(&key) {
            return None;
        }
        let evicted = if self.set.len() == self.capacity {
            self.queue.pop_front().inspect(|victim| {
                self.set.remove(victim);
            })
        } else {
            None
        };
        self.set.insert(key);
        self.queue.push_back(key);
        evicted
    }

    fn clear(&mut self) {
        self.set.clear();
        self.queue.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_in_arrival_order() {
        let mut c = Fifo::new(2);
        c.insert(1);
        c.insert(2);
        c.touch(1); // must not matter
        assert_eq!(c.insert(3), Some(1));
        assert_eq!(c.insert(4), Some(2));
    }

    #[test]
    fn duplicate_insert_is_noop() {
        let mut c = Fifo::new(2);
        c.insert(1);
        c.insert(2);
        assert_eq!(c.insert(1), None);
        // 1 keeps its original queue position.
        assert_eq!(c.insert(3), Some(1));
    }

    #[test]
    fn zero_capacity() {
        let mut c = Fifo::new(0);
        assert_eq!(c.insert(9), None);
        assert!(!c.contains(9));
    }

    #[test]
    fn clear_empties() {
        let mut c = Fifo::new(2);
        c.insert(1);
        c.clear();
        assert!(c.is_empty());
        c.insert(2);
        assert_eq!(c.len(), 1);
    }
}
