//! The common interface implemented by every replacement policy.

use serde::{Deserialize, Serialize};

/// Object identifier stored in simulator caches.
pub type Key = u64;

/// A fixed-capacity cache of object ids under some replacement policy.
///
/// The simulator drives caches with exactly three operations: membership
/// tests on the request path, hit bookkeeping ([`CachePolicy::touch`]), and
/// insertion on the response path ([`CachePolicy::insert`], which reports
/// the evicted key so the nearest-replica directory can be kept in sync).
pub trait CachePolicy {
    /// Maximum number of objects the cache can hold.
    fn capacity(&self) -> usize;

    /// Current number of cached objects.
    fn len(&self) -> usize;

    /// True when no objects are cached.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when `key` is cached. Does not update replacement state.
    fn contains(&self, key: Key) -> bool;

    /// Records a hit on `key` (e.g. moves it to the LRU front). No-op when
    /// `key` is absent.
    fn touch(&mut self, key: Key);

    /// Inserts `key`, evicting per policy if at capacity. Returns the
    /// evicted key, if any. Inserting a present key refreshes it (like a
    /// hit) and evicts nothing. A zero-capacity cache stores nothing and
    /// returns `None`.
    fn insert(&mut self, key: Key) -> Option<Key>;

    /// Removes every object.
    fn clear(&mut self);
}

/// Replacement policy selector used by experiment configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PolicyKind {
    /// Least-recently-used (the paper's default, near-optimal in practice).
    Lru,
    /// Least-frequently-used with LRU tie-breaking.
    Lfu,
    /// First-in-first-out.
    Fifo,
    /// LRU with probabilistic admission: new keys enter with probability
    /// `admit_pct`/100 (a deterministic per-attempt hash coin).
    Prob {
        /// Admission probability in percent, 0–100.
        admit_pct: u8,
    },
    /// Leased entries expiring `ttl` logical ticks after insertion.
    Ttl {
        /// Lease length in logical ticks (request indices).
        ttl: u32,
    },
    /// LRU with TinyLFU admission (4-bit count–min sketch with aging).
    TinyLfu,
}

impl PolicyKind {
    /// Instantiates a boxed cache of this kind with the given capacity.
    pub fn build(self, capacity: usize) -> Box<dyn CachePolicy + Send> {
        match self {
            PolicyKind::Lru => Box::new(crate::lru::CompactLru::new(capacity)),
            PolicyKind::Lfu => Box::new(crate::lfu::Lfu::new(capacity)),
            PolicyKind::Fifo => Box::new(crate::fifo::Fifo::new(capacity)),
            PolicyKind::Prob { admit_pct } => {
                Box::new(crate::prob::ProbCache::new(capacity, admit_pct))
            }
            PolicyKind::Ttl { ttl } => Box::new(crate::ttl::Ttl::new(capacity, ttl as u64)),
            PolicyKind::TinyLfu => Box::new(crate::tinylfu::TinyLfu::new(capacity)),
        }
    }
}
