//! TinyLFU admission filtering over an LRU core.
//!
//! Small in-network caches live or die by *admission*: evicting a
//! frequently requested object for a one-hit wonder costs more than
//! never admitting the wonder at all. TinyLFU (Einziger & Friedman)
//! keeps an approximate frequency histogram of the recent request
//! stream in a tiny counting sketch and admits a new object only when
//! it has been seen more often than the object it would displace.
//!
//! This implementation uses a 4-row count–min sketch of 4-bit counters
//! (two per byte), saturating at 15, with the standard aging rule: after
//! `16 × capacity` increments every counter is halved, so stale
//! popularity decays geometrically. Everything is a pure function of the
//! operation sequence — no RNG, no clock — so simulator determinism is
//! preserved.

use crate::lru::CompactLru;
use crate::policy::{CachePolicy, Key};

/// Number of sketch rows (independent hash functions).
const ROWS: usize = 4;
/// Per-row hash seeds (arbitrary odd 64-bit constants).
const SEEDS: [u64; ROWS] = [
    0x9e37_79b9_7f4a_7c15,
    0xc2b2_ae3d_27d4_eb4f,
    0x1656_67b1_9e37_79f9,
    0x2545_f491_4f6c_dd1d,
];

#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// LRU cache guarded by a TinyLFU admission filter.
///
/// Hits and insertions feed the frequency sketch; a new key is admitted
/// only if its sketched frequency *exceeds* the current LRU victim's, so
/// cold keys cannot displace proven-warm residents. Present keys always
/// refresh.
///
/// # Examples
/// ```
/// use icn_cache::{CachePolicy, TinyLfu};
///
/// let mut c = TinyLfu::new(2);
/// c.insert(1);
/// c.insert(1); // 1 is now twice as frequent as anything else
/// c.insert(2);
/// // 3 has been seen once, the victim (2) once too: not strictly more
/// // frequent, so 3 is rejected and the cache is unchanged.
/// c.insert(3);
/// assert!(c.contains(1) && c.contains(2) && !c.contains(3));
/// ```
#[derive(Debug, Clone)]
pub struct TinyLfu {
    inner: CompactLru,
    /// Packed 4-bit counters: `ROWS × width` nibbles, two per byte.
    sketch: Vec<u8>,
    /// Counters per row; a power of two, so row indexing is a mask.
    width: usize,
    /// Increments since the last halving.
    increments: u64,
    /// Halve every counter once `increments` reaches this.
    halve_at: u64,
}

impl TinyLfu {
    /// Creates a TinyLFU-admission LRU of `capacity` keys. The sketch is
    /// sized at 4× capacity counters per row (min 64), the usual
    /// over-provisioning that keeps collision noise below one count.
    pub fn new(capacity: usize) -> Self {
        let width = (capacity * 4).next_power_of_two().max(64);
        Self {
            inner: CompactLru::new(capacity),
            sketch: vec![0; ROWS * width / 2],
            width,
            increments: 0,
            halve_at: (capacity as u64 * 16).max(64),
        }
    }

    #[inline]
    fn nibble_index(&self, row: usize, key: Key) -> usize {
        let slot = (splitmix64(key ^ SEEDS[row]) as usize) & (self.width - 1);
        row * self.width + slot
    }

    #[inline]
    fn get_nibble(&self, idx: usize) -> u8 {
        let b = self.sketch[idx / 2];
        if idx.is_multiple_of(2) {
            b & 0x0f
        } else {
            b >> 4
        }
    }

    #[inline]
    fn bump_nibble(&mut self, idx: usize) {
        let b = &mut self.sketch[idx / 2];
        if idx.is_multiple_of(2) {
            if *b & 0x0f < 0x0f {
                *b += 1;
            }
        } else if *b >> 4 < 0x0f {
            *b += 0x10;
        }
    }

    /// Records one occurrence of `key` in the sketch, aging all counters
    /// when the sample budget is spent.
    fn record(&mut self, key: Key) {
        for row in 0..ROWS {
            let idx = self.nibble_index(row, key);
            self.bump_nibble(idx);
        }
        self.increments += 1;
        if self.increments >= self.halve_at {
            // Halve both packed nibbles at once: shifting the byte right
            // spills each nibble's low bit into the neighbour, and the
            // 0x77 mask clears exactly those spilled bits.
            for b in &mut self.sketch {
                *b = (*b >> 1) & 0x77;
            }
            self.increments /= 2;
        }
    }

    /// Removes `key` if present; returns whether it was cached. The
    /// frequency sketch is left alone: the key's popularity history is
    /// still valid evidence for future admission decisions.
    pub fn remove(&mut self, key: Key) -> bool {
        self.inner.remove(key)
    }

    /// Count–min estimate of `key`'s recent frequency (0–15).
    pub fn estimate(&self, key: Key) -> u8 {
        (0..ROWS)
            .map(|row| self.get_nibble(self.nibble_index(row, key)))
            .fold(u8::MAX, u8::min)
    }
}

impl CachePolicy for TinyLfu {
    fn capacity(&self) -> usize {
        self.inner.capacity()
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn contains(&self, key: Key) -> bool {
        self.inner.contains(key)
    }

    fn touch(&mut self, key: Key) {
        self.record(key);
        self.inner.touch(key);
    }

    fn insert(&mut self, key: Key) -> Option<Key> {
        if self.inner.capacity() == 0 {
            return None;
        }
        self.record(key);
        if self.inner.contains(key) {
            return self.inner.insert(key); // refresh
        }
        if self.inner.len() < self.inner.capacity() {
            return self.inner.insert(key); // room — no one to defend
        }
        match self.inner.lru_victim() {
            Some(victim) if self.estimate(key) > self.estimate(victim) => self.inner.insert(key),
            _ => None,
        }
    }

    fn clear(&mut self) {
        self.inner.clear();
        self.sketch.iter_mut().for_each(|b| *b = 0);
        self.increments = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_keys_cannot_displace_warm_residents() {
        let mut c = TinyLfu::new(4);
        for k in 0..4u64 {
            c.insert(k);
            c.touch(k); // warm every resident to frequency 2
        }
        for cold in 100..150u64 {
            assert_eq!(c.insert(cold), None, "cold {cold} displaced a resident");
        }
        for k in 0..4u64 {
            assert!(c.contains(k));
        }
    }

    #[test]
    fn hot_key_eventually_displaces_the_victim() {
        let mut c = TinyLfu::new(2);
        c.insert(1);
        c.insert(2);
        // Repeated insert attempts raise 9's sketched frequency past the
        // victim's single count; one of them must win admission.
        let results = [c.insert(9), c.insert(9), c.insert(9)];
        assert!(
            results.iter().any(|r| r.is_some()),
            "hot key should win admission: {results:?}"
        );
        assert!(c.contains(9));
    }

    #[test]
    fn fills_free_capacity_unconditionally() {
        let mut c = TinyLfu::new(8);
        for k in 0..8u64 {
            assert_eq!(c.insert(k), None);
        }
        assert_eq!(c.len(), 8);
    }

    #[test]
    fn estimates_saturate_at_fifteen() {
        // Capacity 16 → halve_at = 256, so no aging interferes here.
        let mut c = TinyLfu::new(16);
        for _ in 0..100 {
            c.touch(7);
        }
        assert_eq!(c.estimate(7), 15);
    }

    #[test]
    fn halving_ages_old_frequencies() {
        let mut c = TinyLfu::new(4); // halve_at = 64
        for _ in 0..10 {
            c.touch(7);
        }
        let before = c.estimate(7);
        // Burn through the sample budget on other keys.
        for i in 0..200u64 {
            c.touch(1_000 + i);
        }
        assert!(
            c.estimate(7) < before,
            "estimate {} should decay below {before}",
            c.estimate(7)
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut c = TinyLfu::new(8);
            (0..2_000u64)
                .map(|i| c.insert(splitmix64(i) % 40))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn zero_capacity_stores_nothing() {
        let mut c = TinyLfu::new(0);
        assert_eq!(c.insert(1), None);
        assert!(!c.contains(1));
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn clear_resets_sketch_and_cache() {
        let mut c = TinyLfu::new(4);
        for _ in 0..20 {
            c.insert(1);
        }
        c.clear();
        assert_eq!(c.len(), 0);
        assert_eq!(c.estimate(1), 0);
    }
}
