//! Least-frequently-used cache with LRU tie-breaking.
//!
//! The paper notes (§3) that LFU "yielded qualitatively similar results" to
//! LRU; this implementation lets the experiments verify that claim. Victim
//! selection is `O(log n)` via an ordered set keyed on
//! `(frequency, last-use tick, key)`.

use crate::hash::FastMap;
use crate::policy::{CachePolicy, Key};
use std::collections::BTreeSet;

#[derive(Debug, Clone, Copy)]
struct Meta {
    freq: u64,
    tick: u64,
}

/// Fixed-capacity LFU cache (ties broken by least-recent use).
#[derive(Debug, Clone, Default)]
pub struct Lfu {
    map: FastMap<Key, Meta>,
    order: BTreeSet<(u64, u64, Key)>,
    clock: u64,
    capacity: usize,
}

impl Lfu {
    /// Creates an empty cache holding at most `capacity` keys.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            ..Default::default()
        }
    }

    /// Removes `key` if present; returns whether it was cached.
    pub fn remove(&mut self, key: Key) -> bool {
        if let Some(meta) = self.map.remove(&key) {
            self.order.remove(&(meta.freq, meta.tick, key));
            true
        } else {
            false
        }
    }

    /// Current access frequency of a cached key.
    pub fn frequency(&self, key: Key) -> Option<u64> {
        self.map.get(&key).map(|m| m.freq)
    }

    fn bump(&mut self, key: Key) {
        self.clock += 1;
        if let Some(meta) = self.map.get_mut(&key) {
            self.order.remove(&(meta.freq, meta.tick, key));
            meta.freq += 1;
            meta.tick = self.clock;
            self.order.insert((meta.freq, meta.tick, key));
        }
    }
}

impl CachePolicy for Lfu {
    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn contains(&self, key: Key) -> bool {
        self.map.contains_key(&key)
    }

    fn touch(&mut self, key: Key) {
        self.bump(key);
    }

    fn insert(&mut self, key: Key) -> Option<Key> {
        if self.capacity == 0 {
            return None;
        }
        if self.map.contains_key(&key) {
            self.bump(key);
            return None;
        }
        let evicted = if self.map.len() == self.capacity {
            self.order.iter().next().copied().map(|(f, t, victim)| {
                self.order.remove(&(f, t, victim));
                self.map.remove(&victim);
                victim
            })
        } else {
            None
        };
        self.clock += 1;
        self.map.insert(
            key,
            Meta {
                freq: 1,
                tick: self.clock,
            },
        );
        self.order.insert((1, self.clock, key));
        evicted
    }

    fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
        self.clock = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_frequent() {
        let mut c = Lfu::new(2);
        c.insert(1);
        c.insert(2);
        c.touch(1);
        c.touch(1); // freq(1)=3, freq(2)=1
        assert_eq!(c.insert(3), Some(2));
        assert!(c.contains(1) && c.contains(3));
    }

    #[test]
    fn tie_broken_by_recency() {
        let mut c = Lfu::new(2);
        c.insert(1);
        c.insert(2); // both freq 1; 1 older
        assert_eq!(c.insert(3), Some(1));
    }

    #[test]
    fn reinsert_counts_as_access() {
        let mut c = Lfu::new(2);
        c.insert(1);
        c.insert(1); // freq(1)=2
        c.insert(2);
        assert_eq!(c.insert(3), Some(2));
    }

    #[test]
    fn frequency_tracking() {
        let mut c = Lfu::new(4);
        c.insert(7);
        c.touch(7);
        c.touch(7);
        assert_eq!(c.frequency(7), Some(3));
        assert_eq!(c.frequency(8), None);
    }

    #[test]
    fn zero_capacity() {
        let mut c = Lfu::new(0);
        assert_eq!(c.insert(1), None);
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn remove_and_clear() {
        let mut c = Lfu::new(3);
        c.insert(1);
        c.insert(2);
        assert!(c.remove(1));
        assert!(!c.remove(1));
        c.clear();
        assert_eq!(c.len(), 0);
        c.insert(5);
        assert!(c.contains(5));
    }

    #[test]
    fn touch_absent_is_noop() {
        let mut c = Lfu::new(2);
        c.touch(42);
        assert_eq!(c.len(), 0);
    }
}
