//! Probabilistic insertion (ProbCache-style) over an LRU core.
//!
//! In-network caches see every transit object; inserting all of them
//! thrashes small caches with single-access content. The classic ICN
//! remedy (Laoutaris et al.'s ProbCache family) is to *admit* each new
//! object only with some probability `p`, so repeatedly requested objects
//! win cache residency while one-hit wonders mostly pass through.
//!
//! The coin must not perturb simulator determinism, so it is not drawn
//! from an RNG stream shared with anything else: each admission attempt
//! hashes `(key, attempt-counter)` with SplitMix64 and compares against
//! the configured percentage. The same sequence of operations always
//! admits the same keys.

use crate::lru::CompactLru;
use crate::policy::{CachePolicy, Key};

/// SplitMix64 finalizer: a well-mixed 64-bit hash of its input.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// LRU cache that admits *new* keys only with a fixed probability.
///
/// Present keys always refresh (a hit is a hit); absent keys flip the
/// deterministic per-attempt coin and are dropped on the floor when it
/// comes up tails — the cache state is then untouched.
///
/// # Examples
/// ```
/// use icn_cache::{CachePolicy, ProbCache};
///
/// let mut always = ProbCache::new(2, 100); // p = 1 degenerates to LRU
/// always.insert(1);
/// assert!(always.contains(1));
///
/// let mut never = ProbCache::new(2, 0); // p = 0 admits nothing
/// never.insert(1);
/// assert!(!never.contains(1));
/// ```
#[derive(Debug, Clone)]
pub struct ProbCache {
    inner: CompactLru,
    admit_pct: u8,
    /// Admission attempts so far — the per-attempt coin's nonce.
    attempts: u64,
}

impl ProbCache {
    /// Creates a cache of `capacity` keys admitting new keys with
    /// probability `admit_pct`/100. `admit_pct` is clamped to 100.
    pub fn new(capacity: usize, admit_pct: u8) -> Self {
        Self {
            inner: CompactLru::new(capacity),
            admit_pct: admit_pct.min(100),
            attempts: 0,
        }
    }

    /// The admission probability in percent.
    pub fn admit_pct(&self) -> u8 {
        self.admit_pct
    }

    /// Removes `key` if present; returns whether it was cached. Does not
    /// touch the attempt nonce — removals are not admission attempts.
    pub fn remove(&mut self, key: Key) -> bool {
        self.inner.remove(key)
    }
}

impl CachePolicy for ProbCache {
    fn capacity(&self) -> usize {
        self.inner.capacity()
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn contains(&self, key: Key) -> bool {
        self.inner.contains(key)
    }

    fn touch(&mut self, key: Key) {
        self.inner.touch(key);
    }

    fn insert(&mut self, key: Key) -> Option<Key> {
        if self.inner.capacity() == 0 {
            return None;
        }
        if self.inner.contains(key) {
            return self.inner.insert(key); // refresh, never evicts
        }
        self.attempts = self.attempts.wrapping_add(1);
        // Deterministic coin: hash the key with the attempt nonce so the
        // same key can win on a later attempt.
        let coin = splitmix64(key ^ splitmix64(self.attempts));
        if coin % 100 < self.admit_pct as u64 {
            self.inner.insert(key)
        } else {
            None
        }
    }

    fn clear(&mut self) {
        self.inner.clear();
        self.attempts = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_zero_admits_nothing_pct_hundred_everything() {
        let mut never = ProbCache::new(4, 0);
        let mut always = ProbCache::new(4, 100);
        for k in 0..100u64 {
            assert_eq!(never.insert(k), None);
            always.insert(k);
        }
        assert_eq!(never.len(), 0);
        assert_eq!(always.len(), 4);
    }

    #[test]
    fn admission_rate_tracks_percentage() {
        let mut c = ProbCache::new(100_000, 30);
        for k in 0..10_000u64 {
            c.insert(k);
        }
        let rate = c.len() as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.03, "admit rate {rate}");
    }

    #[test]
    fn present_keys_always_refresh() {
        let mut c = ProbCache::new(2, 100);
        c.insert(1);
        c.insert(2);
        c.insert(1); // refresh: 2 becomes the victim
        let mut denying = c.clone();
        denying.admit_pct = 0;
        assert_eq!(denying.insert(1), None);
        assert!(denying.contains(1), "refresh must bypass the coin");
    }

    #[test]
    fn rejected_attempts_advance_the_nonce() {
        // The same key retried must eventually win: the coin depends on
        // the attempt counter, not the key alone.
        let mut c = ProbCache::new(4, 50);
        let mut admitted = false;
        for _ in 0..64 {
            if c.insert(42).is_some() || c.contains(42) {
                admitted = true;
                break;
            }
        }
        assert!(admitted, "key 42 never admitted at p = 0.5 in 64 tries");
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut c = ProbCache::new(8, 40);
            (0..500u64).map(|k| c.insert(k % 50)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn clear_resets_the_nonce() {
        let mut a = ProbCache::new(8, 40);
        let before: Vec<_> = (0..100u64).map(|k| a.insert(k)).collect();
        a.clear();
        let after: Vec<_> = (0..100u64).map(|k| a.insert(k)).collect();
        assert_eq!(before, after, "clear must reset admission state");
    }

    #[test]
    fn zero_capacity_stores_nothing() {
        let mut c = ProbCache::new(0, 100);
        assert_eq!(c.insert(1), None);
        assert_eq!(c.len(), 0);
    }
}
