//! Regression guard for the `deterministic-core` policy (see `icn-lint` and
//! DESIGN.md): running the identical simulation twice must produce
//! bit-identical [`RunMetrics`] — every counter, every per-link transfer
//! count, and the full latency histogram. Any wall-clock read, unseeded
//! entropy, or `HashMap` iteration leaking into results breaks this test.

use icn_core::config::ExperimentConfig;
use icn_core::design::DesignKind;
use icn_core::fault::FaultConfig;
use icn_core::metrics::RunMetrics;
use icn_core::sim::Simulator;
use icn_core::sweep::{run_cells, Scenario, SweepCell};
use icn_topology::{pop, AccessTree, Network};
use icn_workload::origin::{assign_origins, OriginPolicy};
use icn_workload::trace::{Region, Trace, TraceIter};

fn run_once(design: DesignKind) -> RunMetrics {
    let net = Network::new(pop::abilene(), AccessTree::new(2, 3));
    let trace = Trace::synthesize(
        Region::Us.config(0.005),
        &net.core.populations,
        net.leaves_per_pop(),
    );
    let origins = assign_origins(
        OriginPolicy::PopulationProportional,
        trace.config.objects,
        &net.core.populations,
        42,
    );
    let cfg = ExperimentConfig::baseline(design);
    let mut sim = Simulator::new(&net, cfg, &origins, &trace.object_sizes);
    sim.run(&trace.requests).clone()
}

#[test]
fn identical_runs_produce_bit_identical_metrics() {
    for design in [DesignKind::IcnSp, DesignKind::IcnNr, DesignKind::EdgeCoop] {
        let a = run_once(design);
        let b = run_once(design);
        // Field-by-field first, so a regression names the leaking metric
        // instead of dumping two full structs.
        assert_eq!(a.requests, b.requests, "{design:?}: request count");
        assert_eq!(
            a.total_latency.to_bits(),
            b.total_latency.to_bits(),
            "{design:?}: total latency must match to the last bit"
        );
        assert_eq!(a.link_transfers, b.link_transfers, "{design:?}: transfers");
        assert_eq!(a.origin_served, b.origin_served, "{design:?}: origin load");
        assert_eq!(a.hits_by_level, b.hits_by_level, "{design:?}: hit levels");
        assert_eq!(
            a.latency_hist, b.latency_hist,
            "{design:?}: latency histogram"
        );
        // And the whole struct, to catch any field added later.
        assert_eq!(a, b, "{design:?}: RunMetrics must be bit-identical");
    }
}

#[test]
fn parallel_sweep_is_bit_identical_to_sequential() {
    // The tentpole invariant: `run_cells` must return the same bytes at any
    // worker count. One cell per Figure-6 design over a small scenario,
    // compared slot-by-slot between a 1-worker (sequential path) run and
    // runs at several worker counts (including more workers than cells on
    // the tail, to exercise the clamp).
    let s = Scenario::build(
        pop::abilene(),
        AccessTree::new(2, 3),
        Region::Us.config(0.005),
        OriginPolicy::PopulationProportional,
    );
    let cells: Vec<SweepCell<'_>> = DesignKind::figure6_designs()
        .iter()
        .map(|&d| SweepCell {
            scenario: &s,
            cfg: ExperimentConfig::baseline(d),
        })
        .collect();
    let sequential = run_cells(&cells, 1);
    for jobs in [2, 4, 64] {
        let parallel = run_cells(&cells, jobs);
        assert_eq!(sequential.len(), parallel.len());
        for (i, ((seq_imp, seq_run), (par_imp, par_run))) in
            sequential.iter().zip(&parallel).enumerate()
        {
            let design = cells[i].cfg.design;
            assert_eq!(
                seq_imp.latency_pct.to_bits(),
                par_imp.latency_pct.to_bits(),
                "{design:?} (jobs={jobs}): latency improvement must match bitwise"
            );
            assert_eq!(seq_imp, par_imp, "{design:?} (jobs={jobs}): Improvement");
            assert_eq!(
                seq_run.latency_hist, par_run.latency_hist,
                "{design:?} (jobs={jobs}): latency histogram"
            );
            assert_eq!(seq_run, par_run, "{design:?} (jobs={jobs}): RunMetrics");
        }
    }
}

#[test]
fn parallel_dynamics_sweep_is_bit_identical_to_sequential() {
    // The non-stationary extension of the invariant above: workload
    // dynamics (diurnal cycles, flash crowds, churn) and the TTL expiry
    // queue are pure functions of the trace seed and request index, so a
    // dynamics cell swept under any worker count must reproduce the
    // sequential bytes. One scenario per dynamic, each evaluated under a
    // clock-bearing policy (TTL) and a sketch-bearing one (TinyLFU).
    use icn_workload::dynamics::DynamicsConfig;

    let mut trace_cfg = Region::Us.config(0.005);
    let requests = trace_cfg.requests;
    let scenarios: Vec<Scenario> = [
        DynamicsConfig::diurnal(requests),
        DynamicsConfig::flash(requests),
        DynamicsConfig::churn(requests),
    ]
    .into_iter()
    .map(|d| {
        trace_cfg.dynamics = Some(d);
        Scenario::build(
            pop::abilene(),
            AccessTree::new(2, 3),
            trace_cfg.clone(),
            OriginPolicy::PopulationProportional,
        )
    })
    .collect();
    let policies = [
        icn_cache::PolicyKind::Ttl {
            ttl: (requests as u64 / 8).max(1) as u32,
        },
        icn_cache::PolicyKind::TinyLfu,
    ];
    let cells: Vec<SweepCell<'_>> = scenarios
        .iter()
        .flat_map(|s| {
            policies.into_iter().flat_map(move |policy| {
                [DesignKind::IcnNr, DesignKind::Edge].map(move |design| {
                    let mut cfg = ExperimentConfig::baseline(design);
                    cfg.policy = policy;
                    SweepCell { scenario: s, cfg }
                })
            })
        })
        .collect();
    let sequential = run_cells(&cells, 1);
    for jobs in [2, 4] {
        let parallel = run_cells(&cells, jobs);
        assert_eq!(sequential.len(), parallel.len());
        for (i, ((seq_imp, seq_run), (par_imp, par_run))) in
            sequential.iter().zip(&parallel).enumerate()
        {
            assert_eq!(
                seq_imp.latency_pct.to_bits(),
                par_imp.latency_pct.to_bits(),
                "cell {i} (jobs={jobs}): latency improvement must match bitwise"
            );
            assert_eq!(seq_run, par_run, "cell {i} (jobs={jobs}): RunMetrics");
        }
    }
    // The dynamics actually differ from each other (the traces are not
    // accidentally identical): compare the TTL/ICN-NR cell across the
    // three scenarios.
    let per_scenario = policies.len() * 2;
    assert_ne!(sequential[0].1, sequential[per_scenario].1);
    assert_ne!(sequential[per_scenario].1, sequential[2 * per_scenario].1);
}

#[test]
fn parallel_faulted_sweep_is_bit_identical_to_sequential() {
    // The robustness extension of the invariant above: fault injection is
    // a pure function of (seed, config), so faulted cells must be exactly
    // as deterministic as fault-free ones — one faulted config per
    // Figure-6 design, compared slot-by-slot across worker counts.
    let s = Scenario::build(
        pop::abilene(),
        AccessTree::new(2, 3),
        Region::Us.config(0.005),
        OriginPolicy::PopulationProportional,
    );
    let cells: Vec<SweepCell<'_>> = DesignKind::figure6_designs()
        .iter()
        .enumerate()
        .map(|(i, &d)| {
            let mut cfg = ExperimentConfig::baseline(d);
            // Distinct seeds per design so the cells don't share schedules.
            cfg.fault = Some(FaultConfig::uniform(0xfa17 + i as u64, 0.02));
            SweepCell { scenario: &s, cfg }
        })
        .collect();
    let sequential = run_cells(&cells, 1);
    // The schedules must actually bite — otherwise this test collapses
    // into the fault-free one above.
    assert!(
        sequential.iter().any(|(_, run)| run.failed_requests > 0),
        "no cell saw a failed request; fault rate too low to test anything"
    );
    for jobs in [2, 4, 64] {
        let parallel = run_cells(&cells, jobs);
        assert_eq!(sequential.len(), parallel.len());
        for (i, ((seq_imp, seq_run), (par_imp, par_run))) in
            sequential.iter().zip(&parallel).enumerate()
        {
            let design = cells[i].cfg.design;
            assert_eq!(
                seq_run.failed_requests, par_run.failed_requests,
                "{design:?} (jobs={jobs}): failed-request count"
            );
            assert_eq!(
                seq_run.fault_latency_hist, par_run.fault_latency_hist,
                "{design:?} (jobs={jobs}): under-failure latency histogram"
            );
            assert_eq!(seq_imp, par_imp, "{design:?} (jobs={jobs}): Improvement");
            assert_eq!(seq_run, par_run, "{design:?} (jobs={jobs}): RunMetrics");
        }
    }
}

#[test]
fn zero_failure_schedule_reproduces_fault_free_metrics() {
    // A present-but-zero fault schedule takes the fault-aware code paths
    // yet must reproduce the fault-free run bit-for-bit — this is what
    // keeps existing figure output byte-identical when the fault knob is
    // plumbed through but switched off.
    let s = Scenario::build(
        pop::abilene(),
        AccessTree::new(2, 3),
        Region::Us.config(0.005),
        OriginPolicy::PopulationProportional,
    );
    for design in DesignKind::figure6_designs() {
        let plain = s.run_config(ExperimentConfig::baseline(design));
        let mut cfg = ExperimentConfig::baseline(design);
        cfg.fault = Some(FaultConfig::zero(0x5eed));
        let zeroed = s.run_config(cfg);
        assert_eq!(
            plain, zeroed,
            "{design:?}: zero-failure schedule perturbed the run"
        );
        assert_eq!(zeroed.failed_requests, 0);
        assert_eq!(zeroed.availability_pct(), 100.0);
    }
}

#[test]
fn run_streamed_is_bit_identical_to_materialized_run() {
    // `Simulator::run_streamed` driven by `TraceIter` must reproduce the
    // materialized `Trace::synthesize` + `run` pipeline bit-for-bit —
    // fault-free and under an active fault schedule — or O(window)-memory
    // runs would silently diverge from the figures.
    let net = Network::new(pop::abilene(), AccessTree::new(2, 3));
    let tc = Region::Us.config(0.005);
    let trace = Trace::synthesize(tc.clone(), &net.core.populations, net.leaves_per_pop());
    let origins = assign_origins(
        OriginPolicy::PopulationProportional,
        trace.config.objects,
        &net.core.populations,
        42,
    );
    for design in [DesignKind::IcnSp, DesignKind::IcnNr, DesignKind::EdgeCoop] {
        for fault in [None, Some(FaultConfig::uniform(0xfa17, 0.02))] {
            let mut cfg = ExperimentConfig::baseline(design);
            cfg.fault = fault;
            let mut materialized = Simulator::new(&net, cfg.clone(), &origins, &trace.object_sizes);
            let a = materialized.run(&trace.requests).clone();
            let mut streamed = Simulator::new(&net, cfg, &origins, &trace.object_sizes);
            let iter = TraceIter::new(&tc, &net.core.populations, net.leaves_per_pop());
            let b = streamed.run_streamed(iter).clone();
            assert_eq!(
                a.total_latency.to_bits(),
                b.total_latency.to_bits(),
                "{design:?} (fault={}): streamed latency must match bitwise",
                fault_label(&a)
            );
            assert_eq!(
                a.latency_hist, b.latency_hist,
                "{design:?}: streamed latency histogram"
            );
            assert_eq!(
                a, b,
                "{design:?}: streamed RunMetrics must be bit-identical"
            );
        }
    }
}

fn fault_label(m: &RunMetrics) -> &'static str {
    if m.failed_requests > 0 {
        "faulted"
    } else {
        "free"
    }
}

#[test]
fn flat_mode_is_bit_identical_to_reference_mode() {
    // The flat hot path (CostTable + bitmask directory + select-min) and
    // the reference implementation (LatencyModel climbs + Vec directory +
    // stable sort) must agree on every metric bit — fault-free, faulted,
    // and capacity-limited, across the Figure-6 designs.
    let net = Network::new(pop::abilene(), AccessTree::new(2, 3));
    let trace = Trace::synthesize(
        Region::Us.config(0.005),
        &net.core.populations,
        net.leaves_per_pop(),
    );
    let origins = assign_origins(
        OriginPolicy::PopulationProportional,
        trace.config.objects,
        &net.core.populations,
        42,
    );
    let mut variants: Vec<ExperimentConfig> = DesignKind::figure6_designs()
        .iter()
        .map(|&d| ExperimentConfig::baseline(d))
        .collect();
    let mut faulted = ExperimentConfig::baseline(DesignKind::IcnNr);
    faulted.fault = Some(FaultConfig::uniform(0xfa17, 0.02));
    variants.push(faulted);
    let mut capped = ExperimentConfig::baseline(DesignKind::IcnNr);
    capped.capacity = Some(icn_core::capacity::ServingCapacity {
        per_node: 3,
        window: 100,
    });
    variants.push(capped);
    for cfg in variants {
        let design = cfg.design;
        let mut flat = Simulator::new(&net, cfg.clone(), &origins, &trace.object_sizes);
        flat.set_reference(false);
        let a = flat.run(&trace.requests).clone();
        let mut reference = Simulator::new(&net, cfg, &origins, &trace.object_sizes);
        reference.set_reference(true);
        let b = reference.run(&trace.requests).clone();
        assert_eq!(
            a.total_latency.to_bits(),
            b.total_latency.to_bits(),
            "{design:?}: flat/reference latency must match bitwise"
        );
        assert_eq!(a.latency_hist, b.latency_hist, "{design:?}: histogram");
        assert_eq!(a, b, "{design:?}: flat/reference RunMetrics");
    }
}

#[test]
fn switching_modes_mid_run_preserves_the_directory() {
    // `set_reference` converts the replica directory between its bitmask
    // and Vec representations; flipping in either direction halfway
    // through a trace must land on the same metrics as never flipping.
    let net = Network::new(pop::abilene(), AccessTree::new(2, 3));
    let trace = Trace::synthesize(
        Region::Us.config(0.005),
        &net.core.populations,
        net.leaves_per_pop(),
    );
    let origins = assign_origins(
        OriginPolicy::PopulationProportional,
        trace.config.objects,
        &net.core.populations,
        42,
    );
    let cfg = ExperimentConfig::baseline(DesignKind::IcnNr);
    let mid = trace.requests.len() / 2;
    let mut straight = Simulator::new(&net, cfg.clone(), &origins, &trace.object_sizes);
    let want = straight.run(&trace.requests).clone();
    for start_in_reference in [false, true] {
        let mut sim = Simulator::new(&net, cfg.clone(), &origins, &trace.object_sizes);
        sim.set_reference(start_in_reference);
        sim.run(&trace.requests[..mid]);
        sim.set_reference(!start_in_reference);
        let got = sim.run(&trace.requests[mid..]).clone();
        assert_eq!(
            want, got,
            "flip starting from reference={start_in_reference} diverged"
        );
    }
}

#[test]
fn different_fault_seeds_actually_change_the_run() {
    // Guards the faulted guard: if the simulator ignored the schedule the
    // bit-identity tests above would pass vacuously.
    let s = Scenario::build(
        pop::abilene(),
        AccessTree::new(2, 3),
        Region::Us.config(0.005),
        OriginPolicy::PopulationProportional,
    );
    let run = |seed: u64| {
        let mut cfg = ExperimentConfig::baseline(DesignKind::IcnNr);
        cfg.fault = Some(FaultConfig::uniform(seed, 0.05));
        s.run_config(cfg)
    };
    assert_ne!(run(1), run(2));
}

#[test]
fn different_trace_seeds_actually_change_the_run() {
    // Guards the guard: if the simulator ignored its inputs the test above
    // would pass vacuously.
    let net = Network::new(pop::abilene(), AccessTree::new(2, 3));
    let mut cfg_a = Region::Us.config(0.005);
    let mut cfg_b = cfg_a.clone();
    cfg_a.seed = 1;
    cfg_b.seed = 2;
    let run = |tc| {
        let trace = Trace::synthesize(tc, &net.core.populations, net.leaves_per_pop());
        let origins = assign_origins(
            OriginPolicy::PopulationProportional,
            trace.config.objects,
            &net.core.populations,
            42,
        );
        let mut sim = Simulator::new(
            &net,
            ExperimentConfig::baseline(DesignKind::IcnSp),
            &origins,
            &trace.object_sizes,
        );
        sim.run(&trace.requests).clone()
    };
    assert_ne!(run(cfg_a), run(cfg_b));
}
