//! Property tests for the fault-injection subsystem: a [`FaultSchedule`]
//! is a *pure function* of `(seed, FaultConfig)` — repeated construction,
//! arbitrary query order, and any `run_cells` worker count all observe the
//! same schedule — and a zero-failure schedule leaves [`RunMetrics`]
//! bit-identical to a run with no fault config at all.

use icn_core::capacity::ServingCapacity;
use icn_core::config::ExperimentConfig;
use icn_core::design::DesignKind;
use icn_core::fault::{DisasterConfig, FaultConfig, FaultSchedule};
use icn_core::sweep::{run_cells, Scenario, SweepCell};
use icn_topology::{pop, AccessTree};
use icn_workload::origin::OriginPolicy;
use icn_workload::trace::TraceConfig;
use proptest::prelude::*;

fn disaster_configs() -> impl Strategy<Value = Option<DisasterConfig>> {
    prop_oneof![
        Just(None),
        (0.0f64..0.3, 1u32..8, 0u8..4).prop_map(|(group_rate, group_mttr_windows, flags)| {
            Some(DisasterConfig {
                group_rate,
                group_mttr_windows,
                geometric_repair: flags & 1 != 0,
                cascade_overload: flags & 2 != 0,
            })
        }),
    ]
}

fn fault_configs() -> impl Strategy<Value = FaultConfig> {
    (
        (0u64..u64::MAX, 1u32..5_000, 0.0f64..0.5, 1u32..5),
        (0.0f64..0.5, 1u32..5, 0.0f64..0.5, 1u32..200),
        (1u32..5, 0.0f64..0.3, disaster_configs()),
    )
        .prop_map(
            |((seed, window, ncr, now), (lfr, low, odr, cap), (odw, corr, disaster))| FaultConfig {
                seed,
                window,
                node_crash_rate: ncr,
                node_outage_windows: now,
                link_failure_rate: lfr,
                link_outage_windows: low,
                origin_degraded_rate: odr,
                origin_degraded_windows: odw,
                degraded_origin: ServingCapacity {
                    per_node: cap,
                    window,
                },
                corruption_rate: corr,
                disaster,
            },
        )
}

proptest! {
    /// Two schedules built from the same config answer every query
    /// identically — the schedule carries no hidden state, wall-clock
    /// input, or construction-order dependence.
    #[test]
    fn schedule_is_a_pure_function_of_seed_and_config(
        cfg in fault_configs(),
        windows in prop::collection::vec(0u64..1_000_000, 1..50),
        entities in prop::collection::vec(0u32..256, 1..50),
    ) {
        let a = FaultSchedule::new(cfg);
        let b = FaultSchedule::new(cfg);
        for &w in &windows {
            for &e in &entities {
                prop_assert_eq!(a.node_crashes(e, w), b.node_crashes(e, w));
                prop_assert_eq!(a.node_down(e, w), b.node_down(e, w));
                prop_assert_eq!(a.link_down(e, w), b.link_down(e, w));
                prop_assert_eq!(
                    a.origin_degraded(e as u16, w),
                    b.origin_degraded(e as u16, w)
                );
            }
        }
        // Query order must not matter either: re-query in reverse.
        for &w in windows.iter().rev() {
            for &e in entities.iter().rev() {
                prop_assert_eq!(a.node_down(e, w), b.node_down(e, w));
            }
        }
    }

    /// An outage of `k` windows means a crash in window `w` keeps the node
    /// down through window `w + k - 1`, for every drawn config.
    #[test]
    fn outage_windows_cover_the_crash(
        cfg in fault_configs(),
        entity in 0u32..64,
        window in 0u64..100_000,
    ) {
        let s = FaultSchedule::new(cfg);
        if s.node_crashes(entity, window) {
            if cfg.disaster.is_some_and(|d| d.geometric_repair) {
                // Geometric repair: the span is drawn per event (mean
                // `node_outage_windows`), but the crash window itself is
                // always covered.
                prop_assert!(s.node_down(entity, window));
            } else {
                for k in 0..cfg.node_outage_windows as u64 {
                    prop_assert!(
                        s.node_down(entity, window + k),
                        "crash at {window} but up at {} (outage {})",
                        window + k,
                        cfg.node_outage_windows
                    );
                }
            }
        }
    }
}

fn tiny_scenario() -> Scenario {
    let mut cfg = TraceConfig::small();
    cfg.requests = 8_000;
    cfg.objects = 800;
    Scenario::build(
        pop::abilene(),
        AccessTree::new(2, 2),
        cfg,
        OriginPolicy::PopulationProportional,
    )
}

proptest! {
    // Full simulator runs are costly; a handful of drawn seeds/rates is
    // plenty to catch order- or thread-dependence.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Faulted sweep cells return bit-identical results at any worker
    /// count, for arbitrary schedule seeds and rates.
    #[test]
    fn faulted_run_cells_agree_across_worker_counts(
        seed in 0u64..u64::MAX,
        rate in 0.0f64..0.3,
    ) {
        let s = tiny_scenario();
        let mut cells: Vec<SweepCell<'_>> = [DesignKind::IcnNr, DesignKind::Edge, DesignKind::EdgeCoop]
            .iter()
            .map(|&d| {
                let mut cfg = ExperimentConfig::baseline(d);
                cfg.fault = Some(FaultConfig::uniform(seed, rate));
                SweepCell { scenario: &s, cfg }
            })
            .collect();
        // Correlated-disaster cells must honor the same guarantee.
        for d in [DesignKind::IcnNr, DesignKind::Edge] {
            let mut cfg = ExperimentConfig::baseline(d);
            let mut fc = FaultConfig::uniform(seed, rate);
            fc.corruption_rate = rate;
            fc.disaster = Some(DisasterConfig::full(rate / 4.0));
            cfg.fault = Some(fc);
            cells.push(SweepCell { scenario: &s, cfg });
        }
        let sequential = run_cells(&cells, 1);
        for jobs in [2, 8] {
            let parallel = run_cells(&cells, jobs);
            for (i, (seq, par)) in sequential.iter().zip(&parallel).enumerate() {
                prop_assert_eq!(seq, par, "cell {} differs at jobs={}", i, jobs);
            }
        }
    }

    /// A zero-rate schedule (any seed, any window length) reproduces the
    /// fault-free run bit-for-bit.
    #[test]
    fn zero_rate_schedule_is_invisible(
        seed in 0u64..u64::MAX,
        window in 1u32..10_000,
    ) {
        let s = tiny_scenario();
        for design in [DesignKind::IcnSp, DesignKind::IcnNr, DesignKind::EdgeCoop] {
            let plain = s.run_config(ExperimentConfig::baseline(design));
            let mut cfg = ExperimentConfig::baseline(design);
            let mut fc = FaultConfig::zero(seed);
            fc.window = window;
            cfg.fault = Some(fc);
            let zeroed = s.run_config(cfg);
            prop_assert_eq!(&plain, &zeroed, "{:?}: zero schedule changed the run", design);
            prop_assert_eq!(zeroed.failed_requests, 0);
        }
    }
}
