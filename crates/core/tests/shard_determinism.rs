//! Determinism guarantees of the epoch-sharded engine (`icn_core::shard`,
//! DESIGN.md §13), layered from strongest to weakest:
//!
//! 1. **Worker-count invariance** — the shard count is pure mechanics:
//!    `shards = 1` and `shards = N` must produce bit-identical
//!    [`RunMetrics`] for *every* configuration (all five Figure-6
//!    designs, faults, disasters, TTL, capacity, probabilistic
//!    insertion). This is the invariant `scripts/check.sh` byte-compares
//!    end-to-end.
//! 2. **Exact sequential equivalences** — where the epoch semantics
//!    provably collapse onto the sequential simulator (a single-PoP
//!    network, or `epoch_len = 1` without lane-local state deviations),
//!    the engine must reproduce `Simulator` bit-for-bit.
//! 3. **Reference-mode equality** — the flat hot path and the reference
//!    recomputation must agree inside the epoch engine exactly as they
//!    do in the sequential one.

use icn_core::capacity::ServingCapacity;
use icn_core::config::{ExperimentConfig, InsertionPolicy};
use icn_core::design::DesignKind;
use icn_core::fault::{DisasterConfig, FaultConfig};
use icn_core::metrics::RunMetrics;
use icn_core::shard::{run_sharded, supported, ShardOpts};
use icn_core::sim::Simulator;
use icn_topology::{pop, AccessTree, Network, PopGraph};
use icn_workload::origin::{assign_origins, OriginPolicy};
use icn_workload::trace::{Region, Trace, TraceIter};
use proptest::prelude::*;

struct Fixture {
    net: Network,
    trace: Trace,
    origins: Vec<u16>,
}

impl Fixture {
    fn abilene() -> Self {
        Self::build(pop::abilene())
    }

    /// A one-PoP "network": no foreign state exists, so the epoch engine
    /// must collapse onto the sequential simulator exactly.
    fn single_pop() -> Self {
        Self::build(PopGraph::new(
            "solo",
            vec!["only".into()],
            vec![10_000_000],
            vec![],
        ))
    }

    fn build(graph: PopGraph) -> Self {
        let net = Network::new(graph, AccessTree::new(2, 3));
        let trace = Trace::synthesize(
            Region::Us.config(0.005),
            &net.core.populations,
            net.leaves_per_pop(),
        );
        let origins = assign_origins(
            OriginPolicy::PopulationProportional,
            trace.config.objects,
            &net.core.populations,
            42,
        );
        Self {
            net,
            trace,
            origins,
        }
    }

    fn sharded(&self, cfg: &ExperimentConfig, opts: &ShardOpts) -> RunMetrics {
        run_sharded(
            &self.net,
            cfg,
            &self.origins,
            &self.trace.object_sizes,
            self.trace.requests.iter().copied(),
            opts,
        )
        .metrics
    }

    fn sequential(&self, cfg: &ExperimentConfig) -> RunMetrics {
        let mut sim = Simulator::new(
            &self.net,
            cfg.clone(),
            &self.origins,
            &self.trace.object_sizes,
        );
        sim.run(&self.trace.requests).clone()
    }
}

/// One "spicy" config per stress axis, all on the same design.
fn variants(design: DesignKind) -> Vec<(&'static str, ExperimentConfig)> {
    let base = ExperimentConfig::baseline(design);
    let mut out = vec![("baseline", base.clone())];
    let mut faulted = base.clone();
    let mut fc = FaultConfig::uniform(0xfa17, 0.02);
    fc.corruption_rate = 0.01;
    faulted.fault = Some(fc);
    out.push(("faulted+corrupt", faulted));
    let mut disaster = base.clone();
    let mut dc = FaultConfig::uniform(0xd15a, 0.01);
    dc.disaster = Some(DisasterConfig::full(0.02));
    disaster.fault = Some(dc);
    out.push(("disaster", disaster));
    let mut ttl = base.clone();
    ttl.policy = icn_cache::PolicyKind::Ttl { ttl: 700 };
    out.push(("ttl", ttl));
    let mut capped = base.clone();
    capped.capacity = Some(ServingCapacity {
        per_node: 3,
        window: 100,
    });
    out.push(("capacity", capped));
    let mut prob = base.clone();
    prob.insertion = InsertionPolicy::Probabilistic { p: 0.5 };
    out.push(("probabilistic", prob));
    let mut lcd = base;
    lcd.insertion = InsertionPolicy::LeaveCopyDown;
    out.push(("lcd", lcd));
    out
}

#[test]
fn worker_count_never_changes_a_byte() {
    // The tentpole invariant: lanes are the unit of determinism, workers
    // are pure mechanics. Every Figure-6 design under every stress axis
    // must produce identical RunMetrics at any shard count.
    let f = Fixture::abilene();
    for design in DesignKind::figure6_designs() {
        for (label, cfg) in variants(design) {
            assert!(supported(&f.net, &cfg), "{design:?}/{label}: unsupported");
            let opts = |shards| ShardOpts {
                shards,
                epoch_len: 512,
                reference: false,
            };
            let one = f.sharded(&cfg, &opts(1));
            for shards in [2, 4, 64] {
                let many = f.sharded(&cfg, &opts(shards));
                assert_eq!(
                    one.total_latency.to_bits(),
                    many.total_latency.to_bits(),
                    "{design:?}/{label} (shards={shards}): latency bits"
                );
                assert_eq!(
                    one, many,
                    "{design:?}/{label} (shards={shards}): RunMetrics"
                );
            }
        }
    }
}

#[test]
fn single_pop_epoch_engine_matches_sequential() {
    // With one PoP there is no foreign state: no frozen snapshot, no
    // deltas, and lane 0 shares the sequential simulator's RNG seed. The
    // epoch engine must therefore reproduce `Simulator` bit-for-bit even
    // under TTL, capacity, probabilistic insertion, and (uniform) faults.
    let f = Fixture::single_pop();
    for design in [DesignKind::IcnNr, DesignKind::IcnSp, DesignKind::EdgeCoop] {
        for (label, cfg) in variants(design) {
            if label == "disaster" {
                // Cascade seeding reads the per-lane capacity view; it is
                // a documented deviation even at one PoP.
                continue;
            }
            let want = f.sequential(&cfg);
            let got = f.sharded(
                &cfg,
                &ShardOpts {
                    shards: 1,
                    epoch_len: 97, // many boundaries, none aligned to anything
                    reference: false,
                },
            );
            assert_eq!(
                want.total_latency.to_bits(),
                got.total_latency.to_bits(),
                "{design:?}/{label}: single-PoP latency bits"
            );
            assert_eq!(want, got, "{design:?}/{label}: single-PoP RunMetrics");
        }
    }
}

#[test]
fn epoch_len_one_matches_sequential_multi_pop() {
    // With an epoch per request the frozen snapshot is refreshed before
    // every request, so — absent lane-local state (faults, capacity,
    // TTL, per-lane RNG) — the epoch engine degenerates to the
    // sequential simulator on any topology.
    let f = Fixture::abilene();
    for design in DesignKind::figure6_designs() {
        for insertion in [InsertionPolicy::Everywhere, InsertionPolicy::LeaveCopyDown] {
            let mut cfg = ExperimentConfig::baseline(design);
            cfg.insertion = insertion;
            let want = f.sequential(&cfg);
            let got = f.sharded(
                &cfg,
                &ShardOpts {
                    shards: 4,
                    epoch_len: 1,
                    reference: false,
                },
            );
            assert_eq!(
                want.total_latency.to_bits(),
                got.total_latency.to_bits(),
                "{design:?}/{insertion:?}: epoch_len=1 latency bits"
            );
            assert_eq!(
                want, got,
                "{design:?}/{insertion:?}: epoch_len=1 RunMetrics"
            );
        }
    }
}

#[test]
fn streamed_requests_match_materialized() {
    // `run_sharded` pulls straight off the iterator; epoch boundaries
    // land wherever they land — including mid-locality-window (the trace
    // synthesizer's per-leaf history window is 256; 173 never divides
    // it). Streaming the trace must equal materializing it first.
    let f = Fixture::abilene();
    let tc = Region::Us.config(0.005);
    for design in [DesignKind::IcnNr, DesignKind::EdgeCoop] {
        let cfg = ExperimentConfig::baseline(design);
        let opts = ShardOpts {
            shards: 3,
            epoch_len: 173,
            reference: false,
        };
        let materialized = f.sharded(&cfg, &opts);
        let streamed = run_sharded(
            &f.net,
            &cfg,
            &f.origins,
            &f.trace.object_sizes,
            TraceIter::new(&tc, &f.net.core.populations, f.net.leaves_per_pop()),
            &opts,
        )
        .metrics;
        assert_eq!(
            materialized, streamed,
            "{design:?}: streamed epochs diverged from materialized"
        );
    }
}

#[test]
fn reference_mode_matches_flat_in_epoch_engine() {
    // Same contract as the sequential simulator's flat/reference
    // equality, but through the lane pipeline: frozen-mask candidate
    // expansion + select-min must agree bitwise with the latency-model
    // recomputation + stable sort.
    let f = Fixture::abilene();
    let mut cfgs: Vec<(&'static str, ExperimentConfig)> = vec![
        ("nr", ExperimentConfig::baseline(DesignKind::IcnNr)),
        ("sp", ExperimentConfig::baseline(DesignKind::IcnSp)),
    ];
    let mut faulted = ExperimentConfig::baseline(DesignKind::IcnNr);
    faulted.fault = Some(FaultConfig::uniform(0xfa17, 0.02));
    cfgs.push(("nr+faults", faulted));
    let mut capped = ExperimentConfig::baseline(DesignKind::IcnNr);
    capped.capacity = Some(ServingCapacity {
        per_node: 3,
        window: 100,
    });
    cfgs.push(("nr+capacity", capped));
    for (label, cfg) in cfgs {
        let opts = |reference| ShardOpts {
            shards: 2,
            epoch_len: 512,
            reference,
        };
        let flat = f.sharded(&cfg, &opts(false));
        let reference = f.sharded(&cfg, &opts(true));
        assert_eq!(
            flat.total_latency.to_bits(),
            reference.total_latency.to_bits(),
            "{label}: flat/reference latency bits"
        );
        assert_eq!(flat, reference, "{label}: flat/reference RunMetrics");
    }
}

#[test]
fn epoch_count_and_worker_clamp_are_reported() {
    let f = Fixture::abilene();
    let cfg = ExperimentConfig::baseline(DesignKind::IcnNr);
    let requests = f.trace.requests.len() as u64;
    let run = run_sharded(
        &f.net,
        &cfg,
        &f.origins,
        &f.trace.object_sizes,
        f.trace.requests.iter().copied(),
        &ShardOpts {
            shards: 1_000,
            epoch_len: 512,
            reference: false,
        },
    );
    assert_eq!(run.epochs, requests.div_ceil(512));
    assert_eq!(run.workers, f.net.pops() as usize, "worker clamp to PoPs");
    assert_eq!(run.metrics.requests, requests);
}

#[test]
fn oversized_trees_are_rejected_by_supported() {
    // A 255-node access tree cannot be bit-packed into the u128 rank
    // masks; nearest-replica routing must be gated out (callers fall
    // back to the sequential simulator) while edge designs — which never
    // read the directory — stay eligible.
    let net = Network::new(pop::abilene(), AccessTree::new(2, 8));
    assert!(net.tree.nodes() > 128);
    assert!(!supported(
        &net,
        &ExperimentConfig::baseline(DesignKind::IcnNr)
    ));
    assert!(supported(
        &net,
        &ExperimentConfig::baseline(DesignKind::Edge)
    ));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Randomized worker-count invariance: any (design, epoch length,
    /// shard count, stress axis) combination must match its shards=1
    /// run bit-for-bit.
    #[test]
    fn prop_shard_count_invariance(
        design_idx in 0usize..5,
        epoch_len in 1u64..1500,
        shards in 2usize..8,
        variant_idx in 0usize..7,
    ) {
        let f = Fixture::abilene();
        let design = DesignKind::figure6_designs()[design_idx];
        let (label, cfg) = variants(design).swap_remove(variant_idx);
        let opts = |shards| ShardOpts { shards, epoch_len, reference: false };
        let one = f.sharded(&cfg, &opts(1));
        let many = f.sharded(&cfg, &opts(shards));
        prop_assert_eq!(
            one, many,
            "{:?}/{} (epoch_len={}, shards={}): RunMetrics diverged",
            design, label, epoch_len, shards
        );
    }
}
