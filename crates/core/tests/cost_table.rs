//! Property test pinning the [`CostTable`] bit-identity contract: over
//! randomized connected topologies and every latency model, the
//! precomputed table must reproduce `LatencyModel::path_cost` *bitwise*
//! for every ordered router pair — not approximately equal, equal in
//! `to_bits()`. This is what licenses the simulator's flat hot path to
//! replace the reference climb without an epsilon anywhere.

use icn_core::costs::CostTable;
use icn_core::latency::LatencyModel;
use icn_topology::{pop::PopGraph, AccessTree, Network};
use proptest::prelude::*;

/// A random connected PoP graph: a chain backbone (which guarantees
/// connectivity for any extra-edge sample) plus extra edges selected by
/// the bits of `edge_bits` from the upper-triangular pair space.
fn build_net(pops: u32, salt: u64, edge_bits: u64, arity: u32, depth: u32) -> Network {
    let mut edges: Vec<(u32, u32)> = (1..pops).map(|b| (b - 1, b)).collect();
    let mut bit = 0;
    for a in 0..pops {
        for b in a + 2..pops {
            // Skip adjacent pairs (already chained) so every set bit adds
            // a genuine shortcut that changes core distances.
            if edge_bits & (1 << (bit % 64)) != 0 {
                edges.push((a, b));
            }
            bit += 1;
        }
    }
    let labels = (0..pops).map(|p| format!("P{p}")).collect();
    // Populations only weight origin/trace draws, which these tests never
    // exercise — vary them anyway so nothing accidentally keys off a
    // constant.
    let populations = (0..pops)
        .map(|p| 1_000 + (salt.rotate_left(p) & 0xffff))
        .collect();
    Network::new(
        PopGraph::new("prop", labels, populations, edges),
        AccessTree::new(arity, depth),
    )
}

fn arb_model() -> impl Strategy<Value = LatencyModel> {
    prop_oneof![
        Just(LatencyModel::Unit),
        Just(LatencyModel::Progression),
        (1u32..=9).prop_map(|d| LatencyModel::CoreMultiplier { d }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cost_table_matches_latency_model_bitwise(
        pops in 2u32..=9,
        salt in 0u64..u64::MAX,
        edge_bits in 0u64..u64::MAX,
        arity in 2u32..=3,
        depth in 1u32..=3,
        model in arb_model(),
    ) {
        let net = build_net(pops, salt, edge_bits, arity, depth);
        let table = CostTable::new(&net, model);
        // Exhaustive over ordered pairs: the per-topology node counts are
        // small enough (≤ 9 PoPs × ≤ 40 nodes) that sampling would only
        // hide corners — roots, leaves, same-node, cross-PoP.
        for a in 0..net.node_count() {
            let from = table.from(a);
            for b in 0..net.node_count() {
                let want = model.path_cost(&net, a, b);
                let got = table.path_cost(a, b);
                prop_assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "{:?}: path_cost({}, {}) = {} want {}",
                    model, a, b, got, want
                );
                // The source-pinned cursor must agree with the table.
                prop_assert_eq!(from.to(b).to_bits(), want.to_bits());
            }
        }
    }

    #[test]
    fn rank_walk_is_the_cross_pop_cost_order(
        pops in 2u32..=9,
        salt in 0u64..u64::MAX,
        edge_bits in 0u64..u64::MAX,
        arity in 2u32..=3,
        depth in 1u32..=3,
        model in arb_model(),
    ) {
        // The bitmask replica directory serves each foreign PoP's
        // lowest-rank resident as that PoP's best candidate; this holds
        // only if rank order equals (cost, NodeId) order for every
        // (source, foreign PoP) pair.
        let net = build_net(pops, salt, edge_bits, arity, depth);
        let table = CostTable::new(&net, model);
        let tn = net.tree.nodes();
        let sources = [
            net.leaf(0, 0),
            net.pop_root(0),
            net.leaf(0, net.leaves_per_pop() - 1),
        ];
        for &src in &sources {
            let from = table.from(src);
            for pb in 1..net.pops() {
                let mut prev: Option<(f64, u32)> = None;
                for r in 0..tn {
                    let node = pb * tn + table.t_of_rank(r);
                    let cost = from.to_pop_rank(pb, r);
                    prop_assert_eq!(
                        cost.to_bits(),
                        model.path_cost(&net, src, node).to_bits()
                    );
                    if let Some((pc, pn)) = prev {
                        prop_assert!(
                            pc < cost || (pc == cost && pn < node),
                            "{:?}: rank {} breaks (cost, id) order", model, r
                        );
                    }
                    prev = Some((cost, node));
                }
            }
        }
    }
}
