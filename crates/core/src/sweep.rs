//! Scenario bundling and parameter sweeps (the §5 machinery).
//!
//! A [`Scenario`] binds a topology, an access-tree shape, a synthesized
//! trace, and an origin assignment, and can evaluate any design on it. The
//! improvement metrics are always computed against a no-caching run of the
//! *same* scenario, as the paper does.
//!
//! Independent `(scenario, config)` cells of a sweep grid are
//! embarrassingly parallel: [`run_cells`] distributes them over scoped
//! worker threads (each with its own [`Simulator`]) and returns results in
//! the caller's submission order, so a parallel sweep is bit-identical to
//! the sequential one. The `deterministic-core` lint rule enforces the
//! merge discipline in this file: results land in pre-indexed slots, never
//! in a completion-ordered accumulator.

use crate::config::ExperimentConfig;
use crate::design::DesignKind;
use crate::instrument::{peak_rss_kb, CellClock, CellSample, SimObs};
use crate::latency::LatencyModel;
use crate::metrics::{Improvement, RunMetrics};
use crate::shard::{self, ShardOpts};
use crate::sim::Simulator;
use icn_topology::{AccessTree, Network, PopGraph};
use icn_workload::origin::{assign_origins, OriginPolicy};
use icn_workload::trace::{Trace, TraceConfig};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// A reusable experiment setting: network + trace + origin map.
///
/// `Send + Sync`: the cached no-cache baseline lives in a [`OnceLock`], so
/// a scenario can be shared by reference across sweep worker threads.
pub struct Scenario {
    /// The router-level network.
    pub net: Network,
    /// The request trace.
    pub trace: Trace,
    /// `origins[object]` = owning PoP.
    pub origins: Vec<u16>,
    baseline: OnceLock<RunMetrics>,
}

impl Scenario {
    /// Builds a scenario: network from `core` + `tree`, trace synthesized
    /// over it, origins assigned per `origin_policy`.
    pub fn build(
        core: PopGraph,
        tree: AccessTree,
        trace_cfg: TraceConfig,
        origin_policy: OriginPolicy,
    ) -> Self {
        let net = Network::new(core, tree);
        let trace = Trace::synthesize(trace_cfg, &net.core.populations, net.leaves_per_pop());
        let origins = assign_origins(
            origin_policy,
            trace.config.objects,
            &net.core.populations,
            trace.config.seed ^ 0x0_12c_0de,
        );
        Self {
            net,
            trace,
            origins,
            baseline: OnceLock::new(),
        }
    }

    /// Builds a scenario around an existing trace (e.g. a loaded one).
    pub fn with_trace(
        core: PopGraph,
        tree: AccessTree,
        trace: Trace,
        origin_policy: OriginPolicy,
        origin_seed: u64,
    ) -> Self {
        let net = Network::new(core, tree);
        assert!(
            trace
                .requests
                .iter()
                .all(|r| (r.pop as usize) < net.core.populations.len()
                    && (r.leaf as u32) < net.leaves_per_pop()),
            "trace does not fit the network"
        );
        let origins = assign_origins(
            origin_policy,
            trace.config.objects,
            &net.core.populations,
            origin_seed,
        );
        Self {
            net,
            trace,
            origins,
            baseline: OnceLock::new(),
        }
    }

    /// Runs one design with an explicit configuration.
    ///
    /// With `CELL_SHARDS` set (and the network/design pair eligible per
    /// [`shard::supported`]), the run goes through the epoch-sharded
    /// engine (DESIGN.md §13): `CELL_SHARDS` caps the intra-cell worker
    /// count (output-invariant — any value produces the same bytes) and
    /// `ICN_EPOCH_LEN` sets the semantic epoch length. Unset (or `0`),
    /// the exact sequential simulator runs, as before.
    pub fn run_config(&self, cfg: ExperimentConfig) -> RunMetrics {
        let shards = cell_shards();
        if shards > 0 && shard::supported(&self.net, &cfg) {
            let opts = ShardOpts {
                shards: shard_workers(shards),
                epoch_len: epoch_len(),
                reference: reference_mode(),
            };
            return shard::run_sharded(
                &self.net,
                &cfg,
                &self.origins,
                &self.trace.object_sizes,
                self.trace.requests.iter().copied(),
                &opts,
            )
            .metrics;
        }
        let mut sim = Simulator::new(&self.net, cfg, &self.origins, &self.trace.object_sizes);
        sim.run(&self.trace.requests);
        sim.metrics().clone()
    }

    /// Like [`Scenario::run_config`], with instrumentation attached for
    /// the duration of the run.
    pub fn run_config_instrumented(&self, cfg: ExperimentConfig, obs: SimObs) -> RunMetrics {
        let mut sim = Simulator::new(&self.net, cfg, &self.origins, &self.trace.object_sizes);
        sim.attach_obs(obs);
        sim.run(&self.trace.requests);
        sim.metrics().clone()
    }

    /// Runs one design with the §4 baseline configuration.
    pub fn run_design(&self, design: DesignKind) -> RunMetrics {
        self.run_config(ExperimentConfig::baseline(design))
    }

    /// The cached no-caching run used for normalization.
    pub fn baseline_metrics(&self) -> &RunMetrics {
        self.baseline
            .get_or_init(|| self.run_design(DesignKind::NoCache))
    }

    /// Improvement of a design (under `cfg`) over the no-caching run.
    ///
    /// The no-cache baseline is insensitive to every cache-side knob, so a
    /// single cached baseline serves all configurations of this scenario —
    /// except the latency model and size weighting, which do change the
    /// baseline; those are handled by [`Scenario::improvement_with_base`].
    pub fn improvement(&self, cfg: ExperimentConfig) -> Improvement {
        self.improvement_detailed(cfg).0
    }

    /// Like [`Scenario::improvement`], also returning the design run's raw
    /// metrics (latency distribution, per-link transfers, hit breakdown)
    /// for telemetry export.
    pub fn improvement_detailed(&self, cfg: ExperimentConfig) -> (Improvement, RunMetrics) {
        self.improvement_inner(cfg, None)
    }

    /// [`Scenario::improvement_detailed`] with instrumentation attached to
    /// the design run (the normalization baseline runs uninstrumented).
    pub fn improvement_instrumented(
        &self,
        cfg: ExperimentConfig,
        obs: SimObs,
    ) -> (Improvement, RunMetrics) {
        self.improvement_inner(cfg, Some(obs))
    }

    fn improvement_inner(
        &self,
        cfg: ExperimentConfig,
        obs: Option<SimObs>,
    ) -> (Improvement, RunMetrics) {
        let needs_custom_base = !uses_shared_baseline(&cfg);
        let run = match obs {
            Some(obs) => self.run_config_instrumented(cfg.clone(), obs),
            None => self.run_config(cfg.clone()),
        };
        let imp = if needs_custom_base {
            let mut base_cfg = ExperimentConfig::baseline(DesignKind::NoCache);
            base_cfg.latency = cfg.latency;
            base_cfg.weight_by_size = cfg.weight_by_size;
            // Faulted runs normalize against a no-cache run of the *same*
            // faulted world, so the improvement isolates caching, not the
            // faults themselves.
            base_cfg.fault = cfg.fault;
            let base = self.run_config(base_cfg);
            Improvement::over_baseline(&base, &run)
        } else {
            Improvement::over_baseline(self.baseline_metrics(), &run)
        };
        (imp, run)
    }

    /// Improvement against an explicitly provided baseline run.
    pub fn improvement_with_base(&self, base: &RunMetrics, cfg: ExperimentConfig) -> Improvement {
        let run = self.run_config(cfg);
        Improvement::over_baseline(base, &run)
    }

    /// The §5 headline number: `RelImprov(ICN-NR) − RelImprov(EDGE)` under
    /// a shared configuration template (design field is overwritten).
    pub fn nr_vs_edge_gap(&self, template: &ExperimentConfig) -> Improvement {
        let mut nr_cfg = template.clone();
        nr_cfg.design = DesignKind::IcnNr;
        let mut edge_cfg = template.clone();
        edge_cfg.design = DesignKind::Edge;
        let nr = self.improvement(nr_cfg);
        let edge = self.improvement(edge_cfg);
        Improvement::gap(&nr, &edge)
    }
}

/// True when `cfg` normalizes against the scenario's single cached
/// no-cache baseline (see [`Scenario::improvement`]): only the latency
/// model, size weighting, and an active fault schedule change the
/// baseline itself. (A present-but-zero fault schedule cannot perturb a
/// run, so it still shares the cached baseline.)
fn uses_shared_baseline(cfg: &ExperimentConfig) -> bool {
    cfg.latency == LatencyModel::Unit
        && !cfg.weight_by_size
        && cfg.fault.is_none_or(|f| f.is_zero())
}

/// Worker threads currently claimed by the cell-level fan-out of
/// [`run_cells_reported`]. Intra-cell sharding divides its own thread
/// budget by this, so cell × shard parallelism composes without
/// oversubscribing the machine. Plain relaxed store/load: the value only
/// sizes thread pools, and worker counts never reach an output byte.
static ACTIVE_SWEEP_JOBS: AtomicUsize = AtomicUsize::new(1);

/// The `CELL_SHARDS` knob: maximum intra-cell workers for the
/// epoch-sharded engine; `0`/unset keeps the sequential simulator.
fn cell_shards() -> usize {
    static SHARDS: OnceLock<usize> = OnceLock::new();
    *SHARDS.get_or_init(|| {
        // Build-mode switch like ICN_SIM_REFERENCE: selects which engine
        // runs; within either engine, runs are bit-reproducible and
        // check.sh byte-compares CELL_SHARDS=1 against CELL_SHARDS=4.
        // lint:allow(deterministic-core-reach): build-mode switch, not a per-run input
        std::env::var_os("CELL_SHARDS")
            .and_then(|v| v.into_string().ok())
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(0)
    })
}

/// The `ICN_EPOCH_LEN` knob (default [`shard::DEFAULT_EPOCH_LEN`]).
/// Semantic — it bounds cross-PoP snapshot staleness — so it is a
/// modeling parameter, not a tuning one; see DESIGN.md §13.
fn epoch_len() -> u64 {
    static LEN: OnceLock<u64> = OnceLock::new();
    *LEN.get_or_init(|| {
        // lint:allow(deterministic-core-reach): build-mode switch, not a per-run input
        std::env::var_os("ICN_EPOCH_LEN")
            .and_then(|v| v.into_string().ok())
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(shard::DEFAULT_EPOCH_LEN)
    })
}

/// Mirrors the `ICN_SIM_REFERENCE` switch of [`Simulator::new`] for the
/// epoch engine, so check.sh can cross-compare all four engine × mode
/// combinations.
fn reference_mode() -> bool {
    // lint:allow(deterministic-core-reach): build-mode switch, not a per-run input
    std::env::var_os("ICN_SIM_REFERENCE").is_some_and(|v| v != "0")
}

/// Intra-cell worker budget: the user's `CELL_SHARDS` cap, clamped so
/// that `cell jobs × shard workers` stays within the machine's available
/// parallelism. Never changes output bytes — only wall-clock.
fn shard_workers(shards: usize) -> usize {
    let avail = std::thread::available_parallelism().map_or(1, |n| n.get());
    let jobs = ACTIVE_SWEEP_JOBS.load(Ordering::Relaxed).max(1);
    shards.min((avail / jobs).max(1))
}

/// One unit of parallel sweep work: evaluate `cfg` on `scenario`.
pub struct SweepCell<'a> {
    /// The scenario the configuration runs against.
    pub scenario: &'a Scenario,
    /// The design + knobs to evaluate.
    pub cfg: ExperimentConfig,
}

/// Runs every cell — over `jobs` scoped worker threads when `jobs > 1` —
/// and returns `(Improvement, RunMetrics)` per cell **in submission
/// order**, bit-identical to running the cells sequentially.
///
/// Each worker owns its [`Simulator`] (per-run seeded RNG included), so
/// cells never share mutable state; the only cross-cell state is each
/// scenario's cached no-cache baseline, which is pre-warmed exactly once
/// before the fan-out. `jobs <= 1` is the plain sequential loop.
pub fn run_cells(cells: &[SweepCell<'_>], jobs: usize) -> Vec<(Improvement, RunMetrics)> {
    run_cells_with(cells, jobs, |_, _, _| None)
}

/// [`run_cells`] with per-cell instrumentation: `mk_obs(worker, index,
/// cell)` is invoked on the worker thread that claimed the cell, so
/// callers can bind each [`SimObs`] to a per-worker registry and merge
/// the registries deterministically afterwards.
pub fn run_cells_with<F>(
    cells: &[SweepCell<'_>],
    jobs: usize,
    mk_obs: F,
) -> Vec<(Improvement, RunMetrics)>
where
    F: Fn(usize, usize, &SweepCell<'_>) -> Option<SimObs> + Sync,
{
    run_cells_reported(cells, jobs, mk_obs, |_| {})
}

/// [`run_cells_with`] plus per-cell completion accounting: `on_done` fires
/// on the worker thread as each cell finishes, carrying its submission
/// index, request count, wall-clock time, and peak RSS (a [`CellSample`]).
/// Flight-recorder callers feed these into a ring buffer; the samples are
/// side-band observability and never touch the returned results, so the
/// submission-order determinism contract is unchanged. Timing fields are
/// zero without the `obs` feature.
pub fn run_cells_reported<F, D>(
    cells: &[SweepCell<'_>],
    jobs: usize,
    mk_obs: F,
    on_done: D,
) -> Vec<(Improvement, RunMetrics)>
where
    F: Fn(usize, usize, &SweepCell<'_>) -> Option<SimObs> + Sync,
    D: Fn(CellSample) + Sync,
{
    let run_cell = |worker: usize, idx: usize, cell: &SweepCell<'_>| {
        let clock = CellClock::start();
        let result = match mk_obs(worker, idx, cell) {
            Some(obs) => cell
                .scenario
                .improvement_instrumented(cell.cfg.clone(), obs),
            None => cell.scenario.improvement_detailed(cell.cfg.clone()),
        };
        on_done(CellSample {
            index: idx,
            requests: result.1.requests,
            wall_ns: clock.elapsed_ns(),
            peak_rss_kb: peak_rss_kb(),
        });
        result
    };
    let jobs = jobs.clamp(1, cells.len().max(1));
    if jobs == 1 {
        return cells
            .iter()
            .enumerate()
            .map(|(i, c)| run_cell(0, i, c))
            .collect();
    }
    // Publish the fan-out width so intra-cell sharding (`CELL_SHARDS`)
    // shrinks its own worker budget accordingly for the duration.
    ACTIVE_SWEEP_JOBS.store(jobs, Ordering::Relaxed);

    // Pre-warm: every distinct scenario that at least one cell normalizes
    // against the shared baseline gets its no-cache run computed exactly
    // once, in parallel, *before* the cell fan-out — so no worker stalls
    // inside another worker's `OnceLock` initialization.
    let mut warm: Vec<&Scenario> = Vec::new();
    for c in cells {
        if uses_shared_baseline(&c.cfg)
            && c.scenario.baseline.get().is_none()
            && !warm.iter().any(|s| std::ptr::eq(*s, c.scenario))
        {
            warm.push(c.scenario);
        }
    }
    if !warm.is_empty() {
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..jobs.min(warm.len()) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(s) = warm.get(i) else { break };
                    let _ = s.baseline_metrics();
                });
            }
        });
    }

    // Fan-out: an atomic index hands cells to whichever worker is free;
    // each result is written to its own submission-indexed slot, so the
    // final collection is in the caller's order, never completion order.
    let slots: Vec<OnceLock<(Improvement, RunMetrics)>> =
        cells.iter().map(|_| OnceLock::new()).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for worker in 0..jobs {
            let slots = &slots;
            let next = &next;
            let run_cell = &run_cell;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(cell) = cells.get(i) else { break };
                let _ = slots[i].set(run_cell(worker, i, cell));
            });
        }
    });
    ACTIVE_SWEEP_JOBS.store(1, Ordering::Relaxed);
    slots
        .into_iter()
        .map(|slot| {
            // Every index < cells.len() is claimed by exactly one worker,
            // which fills the slot; a worker panic propagates out of
            // `thread::scope` before this collection runs.
            // lint:allow(no-panic-in-lib): unreachable, see the invariant above
            slot.into_inner().expect("sweep worker filled every slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use icn_topology::pop;

    fn small_scenario() -> Scenario {
        let mut cfg = TraceConfig::small();
        cfg.requests = 20_000;
        cfg.objects = 2_000;
        Scenario::build(
            pop::abilene(),
            AccessTree::new(2, 3),
            cfg,
            OriginPolicy::PopulationProportional,
        )
    }

    #[test]
    fn all_caching_designs_beat_no_caching() {
        let s = small_scenario();
        for design in DesignKind::figure6_designs() {
            let imp = s.improvement(ExperimentConfig::baseline(design));
            assert!(
                imp.latency_pct > 0.0 && imp.latency_pct < 100.0,
                "{}: latency {:?}",
                design.name(),
                imp
            );
            assert!(imp.congestion_pct > 0.0, "{}: {:?}", design.name(), imp);
            assert!(imp.origin_pct > 0.0, "{}: {:?}", design.name(), imp);
        }
    }

    #[test]
    fn design_ordering_matches_paper() {
        let s = small_scenario();
        let nr = s.improvement(ExperimentConfig::baseline(DesignKind::IcnNr));
        let sp = s.improvement(ExperimentConfig::baseline(DesignKind::IcnSp));
        let edge = s.improvement(ExperimentConfig::baseline(DesignKind::Edge));
        let coop = s.improvement(ExperimentConfig::baseline(DesignKind::EdgeCoop));
        // Pervasive caching >= edge caching on latency.
        assert!(
            nr.latency_pct >= edge.latency_pct - 1.0,
            "nr {nr:?} vs edge {edge:?}"
        );
        // NR at least as good as SP (it can only find closer copies).
        assert!(
            nr.latency_pct >= sp.latency_pct - 0.5,
            "nr {nr:?} vs sp {sp:?}"
        );
        // Cooperation helps EDGE.
        assert!(
            coop.latency_pct >= edge.latency_pct - 0.5,
            "coop {coop:?} vs edge {edge:?}"
        );
    }

    #[test]
    fn gap_is_small_like_the_paper() {
        // The headline claim: the ICN-NR vs EDGE gap is modest.
        let s = small_scenario();
        let gap = s.nr_vs_edge_gap(&ExperimentConfig::baseline(DesignKind::Edge));
        assert!(gap.latency_pct.abs() < 25.0, "gap {gap:?}");
    }

    #[test]
    fn detailed_improvement_exposes_latency_distribution() {
        let s = small_scenario();
        let cfg = ExperimentConfig::baseline(DesignKind::Edge);
        let (imp, run) = s.improvement_detailed(cfg.clone());
        assert_eq!(imp, s.improvement(cfg));
        assert_eq!(run.latency_hist.count(), run.requests);
        // The histogram's mean must agree with the scalar accumulator to
        // within the millicost rounding.
        assert!(
            (run.latency_hist.mean() / crate::metrics::LATENCY_HIST_SCALE - run.avg_latency())
                .abs()
                < 0.05,
            "hist mean {} vs avg {}",
            run.latency_hist.mean() / crate::metrics::LATENCY_HIST_SCALE,
            run.avg_latency()
        );
        assert!(run.latency_p99() >= run.latency_p50());
        assert!(run.mean_link_utilisation() > 0.0);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn instrumented_run_matches_plain_run() {
        let s = small_scenario();
        let registry = icn_obs::Registry::new();
        let cfg = ExperimentConfig::baseline(DesignKind::EdgeCoop);
        let obs = crate::instrument::SimObs::new(&registry, "EDGE-Coop");
        let (imp_obs, run_obs) = s.improvement_instrumented(cfg.clone(), obs);
        let (imp, run) = s.improvement_detailed(cfg);
        // Instrumentation must not perturb the simulation.
        assert_eq!(imp_obs, imp);
        assert_eq!(run_obs.total_latency, run.total_latency);
        assert_eq!(run_obs.link_transfers, run.link_transfers);
        let snap = registry.snapshot();
        assert_eq!(snap.counters["sim.requests"], run.requests);
        assert!(snap.timers["sim.route"].count > 0);
        assert!(snap.timers["sim.transfer"].count > 0);
    }

    #[test]
    fn baseline_is_cached_and_deterministic() {
        let s = small_scenario();
        let a = s.baseline_metrics().avg_latency();
        let b = s.baseline_metrics().avg_latency();
        assert_eq!(a, b);
        assert!(a > 1.0);
    }

    #[test]
    fn reported_cells_cover_every_index_without_changing_results() {
        let s = small_scenario();
        let cells: Vec<SweepCell<'_>> = DesignKind::figure6_designs()
            .iter()
            .map(|&d| SweepCell {
                scenario: &s,
                cfg: ExperimentConfig::baseline(d),
            })
            .collect();
        let plain = run_cells(&cells, 1);
        for jobs in [1usize, 4] {
            let samples = std::sync::Mutex::new(Vec::new());
            let reported = run_cells_reported(
                &cells,
                jobs,
                |_, _, _| None,
                |sample| samples.lock().unwrap().push(sample),
            );
            // Side-band accounting must not perturb the figures.
            assert_eq!(reported, plain, "jobs={jobs}");
            let mut samples = samples.into_inner().unwrap();
            samples.sort_by_key(|sample| sample.index);
            assert_eq!(samples.len(), cells.len(), "jobs={jobs}");
            for (i, sample) in samples.iter().enumerate() {
                assert_eq!(sample.index, i, "jobs={jobs}");
                assert_eq!(sample.requests, reported[i].1.requests, "jobs={jobs}");
            }
        }
    }
}
