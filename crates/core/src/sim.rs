//! The request-level simulation loop (§4.1).
//!
//! For every request the simulator:
//!
//! 1. routes it per the design — along the shortest path toward the origin
//!    (any on-path cache may answer, with an optional scoped sibling lookup
//!    at cache-equipped tree routers), or directly to the nearest replica
//!    (zero lookup cost, the ICN ideal);
//! 2. serves it at the first eligible cache, or at the origin;
//! 3. transfers the object back along the response path, counting one
//!    transfer (or the object's bytes) on every traversed link, and
//!    **stores the object in every cache-equipped router on that path**;
//! 4. accounts latency = sum of traversed link costs + 1 (the serving hop,
//!    so a hit in the requesting leaf's own cache costs 1).
//!
//! The simulator is request-granular by design: no packets, TCP, or queueing
//! ("we use a request-level simulator and thus we do not model packet-level,
//! TCP, or router queueing effects", §4.1).

use crate::capacity::CapacityTracker;
use crate::config::{ExperimentConfig, InsertionPolicy};
use crate::costs::CostTable;
use crate::design::{DesignSpec, Routing};
use crate::dir::{ReplicaMasks, MAX_MASK_TREE};
use crate::fault::{FaultGroups, FaultSchedule, NO_GROUP};
use crate::instrument::SimObs;
use crate::metrics::{RunMetrics, LATENCY_HIST_SCALE};
use icn_cache::budget::per_node_budgets;
use icn_cache::CacheSlot;
// lint:allow(feature-gate-obs): TraceRecord is a plain data type built in every configuration; the `obs` feature gates instrumentation, not types
use icn_obs::TraceRecord;
use icn_topology::{Network, NodeId};
use icn_workload::trace::Request;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Where a request was ultimately served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Server {
    /// A cache at this router, reached at this index on the request path.
    Cache { node: NodeId, path_idx: usize },
    /// A sibling cache reached by a scoped cooperative lookup from the
    /// router at this path index.
    Sibling { sibling: NodeId, via_idx: usize },
    /// The origin PoP root.
    Origin(NodeId),
}

/// Where a nearest-replica request is served once faults are considered.
enum NrChoice {
    /// A live replica at this cost.
    Replica {
        /// Path cost from the requesting leaf to the replica.
        cost: f64,
        /// The serving router.
        node: NodeId,
        /// The replica is corrupted and the design cannot detect it: the
        /// poisoned bytes are delivered and counted as an integrity
        /// failure (`corrupt_served`).
        poisoned: bool,
    },
    /// No eligible replica; the (reachable) origin serves.
    Origin,
    /// Origin unreachable and no live replica: the request fails.
    Failed,
}

/// Materialized fault state for the current request window.
///
/// The [`FaultSchedule`] itself is stateless; this caches its answers for
/// one window as flat `Vec<bool>`s so the per-request cost under faults is
/// an index, not a hash. Rebuilt at every window transition by
/// [`Simulator::advance_faults`] — the run loop visits request indices in
/// order, so windows advance gap-free and crash events (which flush cache
/// contents) are never skipped.
///
/// `pub(crate)` because the epoch-sharded engine (`crate::shard`) keeps
/// one per lane: the schedule is a pure function of `(seed, entity,
/// window)`, so every lane materializes the same per-window answers
/// independently.
pub(crate) struct FaultState {
    pub(crate) schedule: FaultSchedule,
    /// Window the vectors below describe; `u64::MAX` forces the first
    /// rebuild at request 0.
    pub(crate) window: u64,
    pub(crate) node_down: Vec<bool>,
    pub(crate) link_down: Vec<bool>,
    pub(crate) origin_degraded: Vec<bool>,
    /// Fast skip for path-liveness checks when no link is down.
    pub(crate) any_link_down: bool,
    /// True when any fault (node, link, or origin) is active this window;
    /// drives the latency-under-failure histogram.
    pub(crate) fault_active: bool,
    /// Serving-capacity gate applied to *degraded* origin PoPs, reusing
    /// the §5.1 capacity model (indexed by PoP, not router).
    pub(crate) origin_capacity: CapacityTracker,
    /// Topology-derived shared-risk groups (§ DESIGN.md "Correlated fault
    /// model"); `None` unless the config carries a disaster layer with a
    /// positive group rate, so independent-fault runs pay nothing.
    pub(crate) groups: Option<FaultGroups>,
    /// Per-group down state for the current window (scratch, parallel to
    /// `groups`).
    pub(crate) group_down: Vec<bool>,
    /// PoPs degraded this window by cascading overload (scratch).
    pub(crate) cascade: Vec<bool>,
}

impl FaultState {
    pub(crate) fn new(schedule: FaultSchedule, net: &Network) -> Self {
        let origin_capacity =
            CapacityTracker::new(schedule.config().degraded_origin, net.pops() as usize);
        let groups = schedule
            .config()
            .disaster
            .filter(|d| d.group_rate > 0.0)
            .map(|_| FaultGroups::derive(net));
        let group_count = groups.as_ref().map_or(0, |g| g.count() as usize);
        Self {
            schedule,
            window: u64::MAX,
            node_down: vec![false; net.node_count() as usize],
            link_down: vec![false; net.link_count() as usize],
            origin_degraded: vec![false; net.pops() as usize],
            any_link_down: false,
            fault_active: false,
            origin_capacity,
            groups,
            group_down: vec![false; group_count],
            cascade: vec![false; net.pops() as usize],
        }
    }

    /// Re-evaluates every entity's fault state for window `w`.
    pub(crate) fn rebuild(&mut self, w: u64, net: &Network) {
        // Cascading overload seeds are read off the *outgoing* window's
        // state before it is overwritten: a degraded origin that actually
        // saturated its capacity sheds load onto its core neighbors next
        // window. Consecutive windows only — a cascade dies across a gap
        // in the request stream, and a zero-rate schedule (never degraded,
        // never saturated) can never seed one. The seed vector includes
        // any prior cascade, so sustained overload compounds outward.
        let cascading = self
            .schedule
            .config()
            .disaster
            .is_some_and(|d| d.cascade_overload);
        if cascading {
            let consecutive = self.window != u64::MAX && w == self.window + 1;
            for q in 0..self.cascade.len() {
                self.cascade[q] = consecutive
                    && net.core.neighbors(q as u32).iter().any(|&p| {
                        self.origin_degraded[p as usize] && self.origin_capacity.is_saturated(p)
                    });
            }
        }
        self.window = w;
        let mut any_node = false;
        for (n, down) in self.node_down.iter_mut().enumerate() {
            *down = self.schedule.node_down(n as u32, w);
            any_node |= *down;
        }
        let mut any_link = false;
        for (l, down) in self.link_down.iter_mut().enumerate() {
            *down = self.schedule.link_down(l as u32, w);
            any_link |= *down;
        }
        let mut any_origin = false;
        for (p, deg) in self.origin_degraded.iter_mut().enumerate() {
            *deg = self.schedule.origin_degraded(p as u16, w);
            any_origin |= *deg;
        }
        // Shared-risk overlay: every member of a down group is down,
        // OR-ed over the independent per-entity state.
        if let Some(groups) = &self.groups {
            let mut any_group = false;
            for g in 0..groups.count() {
                let down = self.schedule.group_down(g, w);
                self.group_down[g as usize] = down;
                any_group |= down;
            }
            if any_group {
                for (n, down) in self.node_down.iter_mut().enumerate() {
                    let g = groups.node_group(n as u32);
                    if g != NO_GROUP && self.group_down[g as usize] {
                        *down = true;
                        any_node = true;
                    }
                }
                for (l, down) in self.link_down.iter_mut().enumerate() {
                    for g in groups.link_groups_of(l as u32) {
                        if g != NO_GROUP && self.group_down[g as usize] {
                            *down = true;
                            any_link = true;
                        }
                    }
                }
            }
        }
        if cascading {
            for (q, deg) in self.origin_degraded.iter_mut().enumerate() {
                if self.cascade[q] {
                    *deg = true;
                    any_origin = true;
                }
            }
        }
        self.any_link_down = any_link;
        self.fault_active = any_node || any_link || any_origin;
    }
}

/// A configured simulator bound to a network, an origin map, and object
/// sizes. Feed it a request stream with [`Simulator::run`].
pub struct Simulator<'a> {
    net: &'a Network,
    spec: DesignSpec,
    cfg: ExperimentConfig,
    /// Path costs precomputed over `net` × `cfg.latency`; every hot-path
    /// cost query is a table load instead of an `O(depth)` climb.
    costs: CostTable,
    /// One enum-dispatched slot per router: cache probes inline instead of
    /// chasing a `Box<dyn CachePolicy>` vtable per hop.
    caches: Vec<CacheSlot>,
    /// `equipped[n]` = the router carries a cache — a struct-of-arrays
    /// mirror of `CacheSlot::is_equipped`. The hot gates (sibling coop,
    /// response-path insertion, crash flushing) test equipment far more
    /// often than they touch cache contents; a flat `bool` load keeps
    /// those passes on one contiguous array instead of striding through
    /// the enum slots.
    equipped: Vec<bool>,
    /// `replica_dir[object]` = cache-equipped routers currently holding the
    /// object, in *arbitrary* order (selection breaks cost ties by
    /// `NodeId`, so insertion order never matters). Maintained under
    /// nearest-replica routing when `masks` is inactive — reference mode,
    /// or trees too large for a `u128` presence mask.
    replica_dir: Vec<Vec<NodeId>>,
    /// Bit-packed replica directory (see [`crate::dir`]): the flat-mode
    /// replacement for `replica_dir`. Selection reads one per-PoP
    /// representative via `trailing_zeros` instead of scanning every
    /// replica, and insert/evict/flush are branch-free bit updates.
    /// Exactly one of `masks` / `replica_dir` is live at a time.
    masks: Option<ReplicaMasks>,
    origins: &'a [u16],
    object_sizes: &'a [u32],
    capacity: Option<CapacityTracker>,
    /// Deterministic fault injection; `None` (the default) keeps the
    /// fault-free hot path — every fault check starts with one
    /// `Option::is_none` branch.
    fault: Option<FaultState>,
    /// Pending lease expiries under a TTL policy: `(lease end, node,
    /// object)` in insertion order. Stamps are `insert time + ttl` with a
    /// monotone insert clock, so the front is always the next lease due —
    /// a plain queue, no heap needed. Entries for renewed or flushed
    /// leases go stale; [`CacheSlot::expire`] rejects them by stamp.
    ttl_queue: VecDeque<(u64, NodeId, u32)>,
    /// Lease length when the configured policy is TTL (all equipped slots
    /// share one policy); `None` keeps the expiry drain off the hot path.
    ttl_len: Option<u64>,
    /// Drives probabilistic insertion decisions; fixed seed keeps runs
    /// reproducible.
    rng: StdRng,
    metrics: RunMetrics,
    /// Optional instrumentation (timers, trace records, progress); a no-op
    /// shell when the `obs` feature is disabled.
    obs: Option<SimObs>,
    path_buf: Vec<NodeId>,
    nodes_buf: Vec<NodeId>,
    links_buf: Vec<u32>,
    /// Scratch for sibling tree indices in the cooperative lookup — the
    /// lookup runs on every cache-equipped router a miss climbs past, so
    /// allocating a fresh `Vec` per probe would be a per-miss heap hit.
    siblings_buf: Vec<u32>,
    /// Scratch for nearest-replica candidate lists (capacity-limited and
    /// faulted selection) — same rationale as `siblings_buf`. Split into
    /// parallel cost/node arrays so the select-min scan is two contiguous
    /// slice walks (struct-of-arrays: no `(f64, u32)` padding, and the
    /// cost lane vectorizes) instead of striding through 16-byte tuples.
    cand_cost: Vec<f64>,
    /// Candidate node ids, parallel to `cand_cost`.
    cand_node: Vec<NodeId>,
    /// Tuple-shaped candidate scratch for the reference mode's legacy
    /// allocate-and-stable-sort selection (kept deliberately in the old
    /// array-of-structs shape — reference mode exercises the legacy
    /// implementation).
    cand_pairs: Vec<(f64, NodeId)>,
    /// Validation mode (`ICN_SIM_REFERENCE=1`): route every path-cost
    /// query through [`LatencyModel::path_cost`] and every candidate scan
    /// through the legacy allocate-and-stable-sort implementation, under
    /// the *same* `(cost, NodeId)` ordering contract. `scripts/check.sh`
    /// byte-compares fig6 output with and without the flag, proving the
    /// flat structures change nothing.
    ///
    /// [`LatencyModel::path_cost`]: crate::latency::LatencyModel::path_cost
    reference: bool,
}

impl<'a> Simulator<'a> {
    /// Builds a simulator. `origins[object]` is the owning PoP;
    /// `object_sizes[object]` is used when `cfg.weight_by_size` is set.
    pub fn new(
        net: &'a Network,
        cfg: ExperimentConfig,
        origins: &'a [u16],
        object_sizes: &'a [u32],
    ) -> Self {
        assert_eq!(origins.len(), object_sizes.len(), "origins/sizes mismatch");
        let objects = origins.len() as u64;
        let spec = cfg.design.spec(net);
        let budgets = per_node_budgets(
            cfg.budget_policy,
            cfg.f_fraction,
            objects,
            &net.core.populations,
            net.nodes_per_pop(),
        );
        let mut caches: Vec<CacheSlot> = Vec::with_capacity(net.node_count() as usize);
        for n in 0..net.node_count() {
            if spec.cache_set.has_cache(net, n) {
                let cap = if spec.infinite_budget {
                    objects as usize
                } else {
                    (budgets[n as usize] as f64 * spec.budget_multiplier).round() as usize
                };
                caches.push(CacheSlot::build(cfg.policy, cap));
            } else {
                caches.push(CacheSlot::None);
            }
        }
        // Build-mode switch: selects the slow reference implementation that check.sh
        // byte-compares against the flat path; within either mode runs are bit-reproducible.
        // lint:allow(deterministic-core-reach): build-mode switch, not a per-run input
        let reference = std::env::var_os("ICN_SIM_REFERENCE").is_some_and(|v| v != "0");
        let track = spec.routing == Routing::NearestReplica;
        let use_masks = track && !reference && net.tree.nodes() <= MAX_MASK_TREE;
        let replica_dir = if track && !use_masks {
            vec![Vec::new(); origins.len()]
        } else {
            Vec::new()
        };
        let masks = use_masks.then(|| ReplicaMasks::new(origins.len()));
        let capacity = cfg
            .capacity
            .map(|c| CapacityTracker::new(c, net.node_count() as usize));
        let fault = cfg
            .fault
            .map(|fc| FaultState::new(FaultSchedule::new(fc), net));
        let metrics = RunMetrics::new(
            net.link_count() as usize,
            net.pops() as usize,
            net.tree.depth,
        );
        let costs = CostTable::new(net, cfg.latency);
        let ttl_len = caches.iter().find_map(CacheSlot::ttl);
        let equipped = caches.iter().map(CacheSlot::is_equipped).collect();
        Self {
            net,
            spec,
            cfg,
            costs,
            caches,
            equipped,
            replica_dir,
            masks,
            origins,
            object_sizes,
            capacity,
            fault,
            ttl_queue: VecDeque::new(),
            ttl_len,
            rng: StdRng::seed_from_u64(0xd1ce_cafe),
            metrics,
            obs: None,
            path_buf: Vec::new(),
            nodes_buf: Vec::new(),
            links_buf: Vec::new(),
            siblings_buf: Vec::new(),
            cand_cost: Vec::new(),
            cand_node: Vec::new(),
            cand_pairs: Vec::new(),
            reference,
        }
    }

    /// Switches between the flat hot path (default) and the reference
    /// implementation it must match bit-for-bit; see the `reference` field.
    /// Exposed so determinism tests can flip modes without racing on the
    /// process-wide `ICN_SIM_REFERENCE` environment variable. Converts the
    /// replica directory between its bitmask and `Vec` representations so
    /// the flip is valid even mid-run.
    pub fn set_reference(&mut self, reference: bool) {
        if reference == self.reference {
            return;
        }
        self.reference = reference;
        if self.spec.routing != Routing::NearestReplica {
            return;
        }
        let tn = self.net.tree.nodes();
        if reference {
            if let Some(masks) = self.masks.take() {
                self.replica_dir = (0..masks.len() as u32)
                    .map(|o| {
                        let mut nodes = Vec::new();
                        for &(p, mask) in masks.entries(o) {
                            let mut bits = mask;
                            while bits != 0 {
                                let r = bits.trailing_zeros();
                                bits &= bits - 1;
                                nodes.push(p * tn + self.costs.t_of_rank(r));
                            }
                        }
                        nodes
                    })
                    .collect();
            }
        } else if tn <= MAX_MASK_TREE {
            let mut masks = ReplicaMasks::new(self.replica_dir.len());
            for (o, nodes) in self.replica_dir.iter().enumerate() {
                for &n in nodes {
                    let (p, t) = (self.net.pop_of(n), self.net.tree_index(n));
                    masks.insert(o as u32, p, self.costs.rank_of(t));
                }
            }
            self.replica_dir = Vec::new();
            self.masks = Some(masks);
        }
    }

    /// The routers currently holding `object` per the nearest-replica
    /// directory, ascending by `NodeId` — a diagnostics/test view that
    /// works over either directory representation.
    pub fn replicas_of(&self, object: u32) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = match &self.masks {
            Some(masks) => {
                let tn = self.net.tree.nodes();
                let mut out = Vec::new();
                for &(p, mask) in masks.entries(object) {
                    let mut bits = mask;
                    while bits != 0 {
                        let r = bits.trailing_zeros();
                        bits &= bits - 1;
                        out.push(p * tn + self.costs.t_of_rank(r));
                    }
                }
                out
            }
            None => self
                .replica_dir
                .get(object as usize)
                .cloned()
                .unwrap_or_default(),
        };
        nodes.sort_unstable();
        nodes
    }

    /// Attaches instrumentation; subsequent [`Simulator::run`] calls report
    /// through it. See [`crate::instrument::SimObs`].
    pub fn attach_obs(&mut self, obs: SimObs) {
        self.obs = Some(obs);
    }

    /// Processes a request stream and returns the accumulated metrics.
    pub fn run(&mut self, requests: &[Request]) -> &RunMetrics {
        self.run_streamed(requests.iter().copied())
    }

    /// Processes requests straight off an iterator — the whole trace never
    /// needs to exist in memory. Driving this with
    /// [`TraceIter`](icn_workload::trace::TraceIter) runs a synthesized
    /// workload in O(locality-window) memory instead of O(trace), and is
    /// bit-identical to materializing the same iterator into a `Vec` and
    /// calling [`Simulator::run`] (asserted in `tests/determinism.rs`).
    pub fn run_streamed<I>(&mut self, requests: I) -> &RunMetrics
    where
        I: IntoIterator<Item = Request>,
    {
        let mut count = 0u64;
        for req in requests {
            if let Some(o) = &self.obs {
                o.on_request(count);
            }
            self.process(count, &req);
            count += 1;
        }
        if let Some(o) = &self.obs {
            o.on_finish(count);
        }
        &self.metrics
    }

    /// Metrics accumulated so far.
    pub fn metrics(&self) -> &RunMetrics {
        &self.metrics
    }

    /// The resolved design knobs.
    pub fn spec(&self) -> &DesignSpec {
        &self.spec
    }

    fn process(&mut self, idx: u64, req: &Request) {
        // Sampled profiler span covering the whole request — the parent of
        // every other phase span. Pure measurement: no branch below
        // depends on it, so figures are byte-identical with it on or off.
        let _request_span = self.obs.as_ref().and_then(|o| o.request_span(idx));
        let leaf = self.net.leaf(req.pop as u32, req.leaf as u32);
        let origin_pop = self.origins[req.object as usize] as u32;
        self.metrics.requests += 1;
        if self.ttl_len.is_some() {
            self.expire_due(idx);
        }
        if self.fault.is_some() {
            let fault_span = self.obs.as_ref().and_then(|o| o.fault_span(idx));
            self.advance_faults(idx);
            drop(fault_span);
        }
        match self.spec.routing {
            Routing::ShortestPathToOrigin => self.process_sp(idx, leaf, req.object, origin_pop),
            Routing::NearestReplica => self.process_nr(idx, leaf, req.object, origin_pop),
        }
    }

    /// Retires every lease due at or before `now`: an entry inserted at
    /// `t` serves hits strictly before `t + ttl`, so a stamp of `now` is
    /// already dead when request `now` is processed. Stale queue entries
    /// — the lease was renewed (new stamp) or the cache flushed by a
    /// crash — fail [`CacheSlot::expire`]'s stamp check and are dropped
    /// without touching the directory.
    fn expire_due(&mut self, now: u64) {
        while let Some(&(stamp, node, object)) = self.ttl_queue.front() {
            if stamp > now {
                break;
            }
            self.ttl_queue.pop_front();
            if self.caches[node as usize].expire(object as u64, stamp)
                && self.spec.routing == Routing::NearestReplica
            {
                if let Some(masks) = &mut self.masks {
                    let (p, t) = (self.net.pop_of(node), self.net.tree_index(node));
                    masks.remove(object, p, self.costs.rank_of(t));
                } else {
                    let dir = &mut self.replica_dir[object as usize];
                    if let Some(pos) = dir.iter().position(|&n| n == node) {
                        dir.swap_remove(pos);
                    }
                }
            }
        }
    }

    /// Rolls the fault state forward to the window containing `idx`,
    /// flushing the contents of every cache whose crash event fires in a
    /// newly entered window (a crash is a cold restart, not a pause).
    fn advance_faults(&mut self, idx: u64) {
        let Some(mut fault) = self.fault.take() else {
            return;
        };
        let w = fault.schedule.window_of(idx);
        if w != fault.window {
            // The run loop processes indices in order, so at most one new
            // window opens per call — but iterate defensively in case a
            // caller feeds a sparse index sequence, so no crash (and its
            // flush) is ever skipped.
            let first = if fault.window == u64::MAX {
                0
            } else {
                fault.window + 1
            };
            for step in first..=w {
                for n in 0..self.net.node_count() {
                    if !self.equipped[n as usize] {
                        continue;
                    }
                    // A shared-risk group event is a power event for every
                    // member: cold restart, same as an individual crash.
                    let crashed = fault.schedule.node_crashes(n, step)
                        || fault.groups.as_ref().is_some_and(|g| {
                            let grp = g.node_group(n);
                            grp != NO_GROUP && fault.schedule.group_event(grp, step)
                        });
                    if crashed {
                        self.flush_cache(n);
                    }
                }
            }
            fault.rebuild(w, self.net);
        }
        self.fault = Some(fault);
    }

    /// True when the cached copy of `object` at `node` is corrupted in the
    /// current fault window (always false without a fault schedule).
    #[inline]
    fn replica_corrupted(&self, node: NodeId, object: u32) -> bool {
        self.fault
            .as_ref()
            .is_some_and(|f| f.schedule.replica_corrupted(node, object, f.window))
    }

    /// Drops a detected-poisoned replica of `object` at `node`: cache
    /// removal plus nearest-replica directory sync (the same invariant
    /// lease expiry maintains in [`Simulator::expire_due`]).
    fn evict_replica(&mut self, node: NodeId, object: u32) {
        if !self.caches[node as usize].remove(object as u64) {
            return;
        }
        if self.spec.routing == Routing::NearestReplica {
            if let Some(masks) = &mut self.masks {
                let (p, t) = (self.net.pop_of(node), self.net.tree_index(node));
                masks.remove(object, p, self.costs.rank_of(t));
            } else {
                let dir = &mut self.replica_dir[object as usize];
                if let Some(pos) = dir.iter().position(|&n| n == node) {
                    dir.swap_remove(pos);
                }
            }
        }
    }

    /// Empties the cache at `node` (crash semantics), keeping the
    /// nearest-replica directory consistent.
    fn flush_cache(&mut self, node: NodeId) {
        let track = self.spec.routing == Routing::NearestReplica;
        let c = &mut self.caches[node as usize];
        if c.is_equipped() {
            if track && !c.is_empty() {
                if let Some(masks) = &mut self.masks {
                    let (p, t) = (self.net.pop_of(node), self.net.tree_index(node));
                    let r = self.costs.rank_of(t);
                    for o in 0..masks.len() as u32 {
                        masks.remove(o, p, r);
                    }
                } else {
                    for dir in &mut self.replica_dir {
                        if let Some(pos) = dir.iter().position(|&n| n == node) {
                            dir.swap_remove(pos);
                        }
                    }
                }
            }
            c.clear();
        }
    }

    /// True when the cache node is not crashed (vacuously true without a
    /// fault schedule).
    #[inline]
    fn node_up(&self, node: NodeId) -> bool {
        self.fault
            .as_ref()
            .is_none_or(|f| !f.node_down[node as usize])
    }

    /// True when every link on the unique path between `a` and `b` is up.
    fn path_live(&mut self, a: NodeId, b: NodeId) -> bool {
        match &self.fault {
            None => return true,
            Some(f) if !f.any_link_down => return true,
            Some(_) => {}
        }
        let mut links = std::mem::take(&mut self.links_buf);
        links.clear();
        self.net.path_links_into(a, b, &mut links);
        let live = match &self.fault {
            Some(f) => links.iter().all(|&l| !f.link_down[l as usize]),
            None => true,
        };
        self.links_buf = links;
        live
    }

    /// The link id between two *adjacent* routers on a shortest path that
    /// only climbs (`a` is the deeper endpoint, or both are PoP roots).
    #[inline]
    fn link_between(&self, a: NodeId, b: NodeId) -> u32 {
        let (pa, pb) = (self.net.pop_of(a), self.net.pop_of(b));
        if pa == pb {
            self.net.tree_link(a)
        } else {
            self.net.core_link(pa, pb)
        }
    }

    /// Index of the last node on `path` still reachable from `path[0]`
    /// under the current link faults (the whole path when fault-free).
    fn reachable_prefix(&self, path: &[NodeId]) -> usize {
        let last = path.len() - 1;
        let Some(f) = &self.fault else {
            return last;
        };
        if !f.any_link_down {
            return last;
        }
        for j in 1..path.len() {
            if f.link_down[self.link_between(path[j - 1], path[j]) as usize] {
                return j - 1;
            }
        }
        last
    }

    /// Gate for an origin serve: a degraded origin PoP serves through the
    /// reduced-capacity tracker; a saturated one fails the request.
    /// Healthy origins (and fault-free runs) always serve.
    #[inline]
    fn try_origin(&mut self, origin_pop: u32, idx: u64) -> bool {
        match &mut self.fault {
            None => true,
            Some(f) => {
                !f.origin_degraded[origin_pop as usize]
                    || f.origin_capacity.try_serve(origin_pop, idx)
            }
        }
    }

    /// Accounts one served request's latency (and, during fault-active
    /// windows, the under-failure distribution).
    #[inline]
    fn record_served(&mut self, latency: f64) {
        self.metrics.total_latency += latency;
        self.metrics.record_latency(latency);
        if self.fault.as_ref().is_some_and(|f| f.fault_active) {
            self.metrics.record_fault_latency(latency);
        }
    }

    /// Accounts one failed request: counted, but no latency and no
    /// transfers (nothing was delivered).
    fn record_failed(&mut self, idx: u64, object: u32) {
        self.metrics.failed_requests += 1;
        if let Some(o) = &self.obs {
            o.on_failed();
            o.trace_with(|design| TraceRecord {
                seq: idx,
                object: object as u64,
                design,
                level: 0,
                hops: 0,
                hit: false,
                coop: false,
                cost_milli: 0,
            });
        }
    }

    /// Shortest-path-to-origin routing: walk the unique path from the leaf
    /// to the origin PoP root; the first cache containing the object
    /// answers; cache-equipped tree routers optionally do a scoped sibling
    /// lookup on miss.
    fn process_sp(&mut self, idx: u64, leaf: NodeId, object: u32, origin_pop: u32) {
        let route_span = self.obs.as_ref().and_then(|o| o.route_span(idx));
        let mut path = std::mem::take(&mut self.path_buf);
        self.net.sp_path_nodes_into(leaf, origin_pop, &mut path);
        let last = path.len() - 1;

        // Under link faults the walk stops at the last reachable node; the
        // origin only serves when the whole path is live — EDGE designs
        // "fall through to origin", so a severed origin path with no
        // on-path copy is a failed request.
        let reach = self.reachable_prefix(&path);

        let mut server = if reach == last {
            Some(Server::Origin(path[last]))
        } else {
            None
        };
        // Latency charged for detected-corrupt fetches discarded along the
        // way (the wasted round trip to the poisoned copy and back).
        let mut penalty = 0.0;
        // The eventual serve delivers corrupted bytes the design cannot
        // detect.
        let mut poisoned = false;
        let probe_span = self.obs.as_ref().and_then(|o| o.probe_span(idx));
        'walk: for (i, &node) in path.iter().enumerate() {
            if i == last || i > reach {
                break; // the origin always serves what it owns
            }
            if self.cache_contains(node, object) && self.try_capacity(node, idx) {
                if self.replica_corrupted(node, object) {
                    if self.spec.self_certifying {
                        // Self-certified names: the poisoned copy is caught
                        // on receipt, discarded, and the walk continues —
                        // at the cost of the wasted fetch.
                        self.metrics.corrupt_detected += 1;
                        self.evict_replica(node, object);
                        penalty += self.path_cost(path[0], node) + 1.0;
                    } else {
                        poisoned = true;
                        server = Some(Server::Cache { node, path_idx: i });
                        break;
                    }
                } else {
                    server = Some(Server::Cache { node, path_idx: i });
                    break;
                }
            }
            if self.spec.sibling_coop
                && self.equipped[node as usize]
                && self.node_up(node)
                && self.net.tree_index(node) != 0
            {
                // Scoped cooperative lookup in the access-tree siblings.
                let coop_span = self.obs.as_ref().and_then(|o| o.coop_span(idx));
                let pop = self.net.pop_of(node);
                let t = self.net.tree_index(node);
                let mut sibs = std::mem::take(&mut self.siblings_buf);
                sibs.clear();
                sibs.extend(self.net.tree.siblings(t));
                let mut found = None;
                for &st in &sibs {
                    let sib = self.net.node(pop, st);
                    if self.detour_live(node, sib)
                        && self.cache_contains(sib, object)
                        && self.try_capacity(sib, idx)
                    {
                        if self.replica_corrupted(sib, object) {
                            if self.spec.self_certifying {
                                self.metrics.corrupt_detected += 1;
                                self.evict_replica(sib, object);
                                penalty += self.path_cost(path[0], sib) + 1.0;
                                continue; // next sibling may hold a clean copy
                            }
                            poisoned = true;
                        }
                        found = Some(sib);
                        break;
                    }
                }
                self.siblings_buf = sibs;
                drop(coop_span);
                if let Some(sib) = found {
                    server = Some(Server::Sibling {
                        sibling: sib,
                        via_idx: i,
                    });
                    break 'walk;
                }
            }
        }
        drop(probe_span);
        drop(route_span);

        // A degraded, saturated origin fails the request like an
        // unreachable one.
        if matches!(server, Some(Server::Origin(_))) && !self.try_origin(origin_pop, idx) {
            server = None;
        }
        match server {
            Some(server) => self.account_sp(
                idx, &path, server, leaf, object, origin_pop, penalty, poisoned,
            ),
            // Failed requests deliver nothing: detection penalties are
            // dropped with the request (no latency is recorded at all).
            None => self.record_failed(idx, object),
        }
        self.path_buf = path;
    }

    /// True when both links of the sibling detour (`via` → parent →
    /// `sibling`) are up.
    #[inline]
    fn detour_live(&self, via: NodeId, sibling: NodeId) -> bool {
        match &self.fault {
            None => true,
            Some(f) => {
                !f.any_link_down
                    || (!f.link_down[self.net.tree_link(via) as usize]
                        && !f.link_down[self.net.tree_link(sibling) as usize])
            }
        }
    }

    /// Accounts latency, congestion, response-path caching, and server load
    /// for a shortest-path serve. `penalty` is extra latency from detected
    /// corrupt fetches discarded before this serve; `poisoned` marks a
    /// serve that delivered corrupted bytes undetected.
    #[allow(clippy::too_many_arguments)]
    fn account_sp(
        &mut self,
        idx: u64,
        path: &[NodeId],
        server: Server,
        _leaf: NodeId,
        object: u32,
        origin_pop: u32,
        penalty: f64,
        poisoned: bool,
    ) {
        // Held to the end of the function: the span covers latency and
        // congestion accounting plus response-path insertion.
        let _transfer_span = self.obs.as_ref().and_then(|o| o.transfer_span(idx));
        let depth = self.net.tree.depth;
        let weight = self.transfer_weight(object);
        let (serve_idx, detour_cost, detour_links) = match server {
            Server::Cache { path_idx, .. } => (path_idx, 0.0, 0),
            Server::Origin(_) => (path.len() - 1, 0.0, 0),
            Server::Sibling { sibling, via_idx } => {
                // Detour: node -> parent -> sibling, two tree links at the
                // node's level.
                let level = self.net.level_of(path[via_idx]);
                let link_cost = self.cfg.latency.tree_link_cost(level, depth);
                // Congestion: the sibling's uplink and the via node's
                // uplink both carry the transfer.
                self.add_transfer(self.net.tree_link(sibling), weight);
                self.add_transfer(self.net.tree_link(path[via_idx]), weight);
                (via_idx, 2.0 * link_cost, 2)
            }
        };

        // Congestion on every climbed link.
        for j in 1..=serve_idx {
            let (a, b) = (path[j - 1], path[j]);
            let (pa, pb) = (self.net.pop_of(a), self.net.pop_of(b));
            if pa == pb {
                self.add_transfer(self.net.tree_link(a), weight);
            } else {
                self.add_transfer(self.net.core_link(pa, pb), weight);
            }
        }
        // Latency: cost of the climbed prefix plus any detour plus the
        // serving hop. The climbed prefix of a shortest path is itself a
        // shortest path, so its cost is one [`CostTable`] lookup; the
        // reference mode re-accumulates it hop by hop (bit-identical —
        // every link cost is an integer-valued f64, see `crate::costs`).
        let cost = if self.reference {
            let mut c = 0.0;
            for j in 1..=serve_idx {
                let (a, b) = (path[j - 1], path[j]);
                if self.net.pop_of(a) == self.net.pop_of(b) {
                    c += self.cfg.latency.tree_link_cost(self.net.level_of(a), depth);
                } else {
                    c += self.cfg.latency.core_link_cost(depth);
                }
            }
            c
        } else {
            self.costs.path_cost(path[0], path[serve_idx])
        };
        let latency = cost + detour_cost + 1.0 + penalty;
        self.record_served(latency);
        if poisoned {
            self.metrics.corrupt_served += 1;
        }

        // Server-side bookkeeping.
        let serving_level = match server {
            Server::Cache { node, .. } => {
                self.metrics.cache_hits += 1;
                let level = self.net.level_of(node);
                self.metrics.hits_by_level[level as usize] += 1;
                self.cache_touch(node, object);
                level
            }
            Server::Sibling { sibling, .. } => {
                self.metrics.cache_hits += 1;
                self.metrics.coop_hits += 1;
                let level = self.net.level_of(sibling);
                self.metrics.hits_by_level[level as usize] += 1;
                self.cache_touch(sibling, object);
                level
            }
            Server::Origin(_) => {
                self.metrics.origin_hits += 1;
                self.metrics.origin_served[origin_pop as usize] += 1;
                0
            }
        };

        if let Some(o) = &self.obs {
            let hit = !matches!(server, Server::Origin(_));
            o.trace_with(|design| TraceRecord {
                seq: idx,
                object: object as u64,
                design,
                level: serving_level,
                hops: (serve_idx + detour_links) as u32,
                hit,
                coop: matches!(server, Server::Sibling { .. }),
                cost_milli: (latency * LATENCY_HIST_SCALE).round() as u64,
            });
        }

        // Response-path caching per the insertion policy. Under the
        // paper's default every cache-equipped router between the server
        // and the leaf stores the object; for a sibling serve the response
        // additionally descends through the via node's parent.
        // "First below the server" for leave-copy-down means the first
        // *cache-equipped* router downstream of the server (standard LCD
        // semantics in cache hierarchies — copies descend one cache level
        // per request).
        let _evict_span = self.obs.as_ref().and_then(|o| o.evict_span(idx));
        let mut lcd_available = true;
        match server {
            Server::Sibling { via_idx, .. } => {
                // Response: sibling -> parent -> via node -> ... -> leaf.
                if via_idx + 1 < path.len() {
                    self.insert_on_response(idx, path[via_idx + 1], object, &mut lcd_available);
                }
                self.insert_on_response(idx, path[via_idx], object, &mut lcd_available);
                for j in (0..via_idx).rev() {
                    self.insert_on_response(idx, path[j], object, &mut lcd_available);
                }
            }
            _ => {
                // Walk downstream from the server toward the leaf.
                for j in (0..serve_idx).rev() {
                    self.insert_on_response(idx, path[j], object, &mut lcd_available);
                }
            }
        }
    }

    /// Nearest-replica routing: serve at the replica (or origin) with the
    /// minimum path cost from the leaf, with zero lookup overhead.
    fn process_nr(&mut self, idx: u64, leaf: NodeId, object: u32, origin_pop: u32) {
        let route_span = self.obs.as_ref().and_then(|o| o.route_span(idx));
        let origin_root = self.net.pop_root(origin_pop);

        // Fast path: the requesting leaf's own cache. The block form keeps
        // the profiler span scoped to the probe while preserving the
        // short-circuit.
        let leaf_hit = {
            let _probe_span = self.obs.as_ref().and_then(|o| o.probe_span(idx));
            self.cache_contains(leaf, object) && self.try_capacity(leaf, idx)
        };
        // Latency charged for detected-corrupt fetches discarded before
        // the eventual serve.
        let mut penalty = 0.0;
        if leaf_hit {
            let leaf_poisoned = self.replica_corrupted(leaf, object);
            if leaf_poisoned && self.spec.self_certifying {
                // The local copy fails verification: discard it, charge
                // the wasted local fetch, and fall through to the full
                // replica selection below.
                self.metrics.corrupt_detected += 1;
                self.evict_replica(leaf, object);
                penalty = 1.0;
            } else {
                if leaf_poisoned {
                    self.metrics.corrupt_served += 1;
                }
                self.record_served(1.0);
                self.metrics.cache_hits += 1;
                let level = self.net.level_of(leaf);
                self.metrics.hits_by_level[level as usize] += 1;
                self.cache_touch(leaf, object);
                if let Some(o) = &self.obs {
                    o.trace_with(|design| TraceRecord {
                        seq: idx,
                        object: object as u64,
                        design,
                        level,
                        hops: 0,
                        hit: true,
                        coop: false,
                        cost_milli: LATENCY_HIST_SCALE as u64,
                    });
                }
                return;
            }
        }

        let origin_cost = self.path_cost(leaf, origin_root);
        // Replica-directory lookup + candidate gathering; the cost-based
        // selection inside nests as a child phase.
        let dir_span = self.obs.as_ref().and_then(|o| o.dir_span(idx));
        let choice = if self.fault.is_none() {
            // Fault-free paths: the Option-free hot loop.
            let server = if self.capacity.is_some() {
                self.select_nr_capacity(leaf, object, origin_cost, idx)
            } else {
                let _select_span = self.obs.as_ref().and_then(|o| o.select_span(idx));
                // Single allocation-free pass for the minimum-(cost, id)
                // replica — the tie-break makes selection independent of
                // `replica_dir` insertion order.
                let mut best: Option<(f64, NodeId)> = None;
                if self.reference {
                    for &n in &self.replica_dir[object as usize] {
                        if n == leaf {
                            continue; // leaf already checked (capacity may have failed)
                        }
                        let c = self.cfg.latency.path_cost(self.net, leaf, n);
                        if best.is_none_or(|(bc, bn)| c < bc || (c == bc && n < bn)) {
                            best = Some((c, n));
                        }
                    }
                } else if let Some(masks) = &self.masks {
                    // Rank-ordered masks: one candidate per foreign PoP
                    // (its first set bit is provably that PoP's
                    // (cost, NodeId)-minimal replica). The leaf's own PoP
                    // still needs per-candidate LCA costs, but its walk
                    // runs deepest-rank-first with a climb-difference
                    // lower bound that stops the scan early — see
                    // [`CostFrom::min_in_own_mask`].
                    //
                    // [`CostFrom::min_in_own_mask`]: crate::costs::CostFrom::min_in_own_mask
                    let from = self.costs.from(leaf);
                    let pa = from.pop();
                    let tn = self.net.tree.nodes();
                    for &(p, mask) in masks.entries(object) {
                        if p == pa {
                            from.min_in_own_mask(mask, &mut best);
                        } else {
                            let r = mask.trailing_zeros();
                            let c = from.to_pop_rank(p, r);
                            let n = p * tn + self.costs.t_of_rank(r);
                            if best.is_none_or(|(bc, bn)| c < bc || (c == bc && n < bn)) {
                                best = Some((c, n));
                            }
                        }
                    }
                } else {
                    let from = self.costs.from(leaf);
                    for &n in &self.replica_dir[object as usize] {
                        if n == leaf {
                            continue; // leaf already checked (capacity may have failed)
                        }
                        let c = from.to(n);
                        if best.is_none_or(|(bc, bn)| c < bc || (c == bc && n < bn)) {
                            best = Some((c, n));
                        }
                    }
                }
                best.filter(|&(c, _)| c < origin_cost)
            };
            match server {
                Some((c, n)) => NrChoice::Replica {
                    cost: c,
                    node: n,
                    poisoned: false,
                },
                None => NrChoice::Origin,
            }
        } else {
            self.select_nr_faulted(leaf, object, origin_root, origin_cost, idx, &mut penalty)
        };
        drop(dir_span);

        let (cost, server_node, is_origin, poisoned) = match choice {
            NrChoice::Replica {
                cost,
                node,
                poisoned,
            } => (cost, node, false, poisoned),
            NrChoice::Origin => {
                // A degraded, saturated origin fails the request.
                if !self.try_origin(origin_pop, idx) {
                    drop(route_span);
                    self.record_failed(idx, object);
                    return;
                }
                (origin_cost, origin_root, true, false)
            }
            NrChoice::Failed => {
                drop(route_span);
                self.record_failed(idx, object);
                return;
            }
        };
        drop(route_span);
        // Covers latency/congestion accounting and response-path insertion.
        let _transfer_span = self.obs.as_ref().and_then(|o| o.transfer_span(idx));

        let latency = cost + 1.0 + penalty;
        self.record_served(latency);
        if poisoned {
            self.metrics.corrupt_served += 1;
        }
        let serving_level = if is_origin {
            self.metrics.origin_hits += 1;
            self.metrics.origin_served[origin_pop as usize] += 1;
            0
        } else {
            self.metrics.cache_hits += 1;
            let level = self.net.level_of(server_node);
            self.metrics.hits_by_level[level as usize] += 1;
            self.cache_touch(server_node, object);
            level
        };

        // Congestion along the response path.
        let weight = self.transfer_weight(object);
        let mut links = std::mem::take(&mut self.links_buf);
        links.clear();
        self.net.path_links_into(leaf, server_node, &mut links);
        for &l in &links {
            self.add_transfer(l, weight);
        }
        if let Some(o) = &self.obs {
            let hops = links.len() as u32;
            o.trace_with(|design| TraceRecord {
                seq: idx,
                object: object as u64,
                design,
                level: serving_level,
                hops,
                hit: !is_origin,
                coop: false,
                cost_milli: (latency * LATENCY_HIST_SCALE).round() as u64,
            });
        }
        self.links_buf = links;

        // Response-path caching per the insertion policy (the server
        // itself is skipped; it already has the object).
        let _evict_span = self.obs.as_ref().and_then(|o| o.evict_span(idx));
        let mut nodes = std::mem::take(&mut self.nodes_buf);
        nodes.clear();
        self.net.path_nodes_into(server_node, leaf, &mut nodes);
        let mut lcd_available = true;
        for &n in nodes.iter().skip(1) {
            self.insert_on_response(idx, n, object, &mut lcd_available);
        }
        self.nodes_buf = nodes;
    }

    /// Path cost between two routers: a [`CostTable`] lookup on the hot
    /// path, or the full [`LatencyModel`](crate::latency::LatencyModel)
    /// recomputation in reference mode. The two are bit-identical.
    #[inline]
    fn path_cost(&self, a: NodeId, b: NodeId) -> f64 {
        if self.reference {
            self.cfg.latency.path_cost(self.net, a, b)
        } else {
            self.costs.path_cost(a, b)
        }
    }

    /// Expands the mask directory's candidates for `object` into the
    /// parallel `costs_out`/`nodes_out` arrays, skipping `leaf` and any
    /// candidate at or above `max_cost` — the mask-mode equivalent of
    /// iterating `replica_dir[object]`. Used by the capacity-limited and
    /// faulted selections, which may need to probe past the per-PoP
    /// minimum and therefore want the full candidate set.
    fn extend_cands_from_masks(
        &self,
        object: u32,
        leaf: NodeId,
        max_cost: f64,
        costs_out: &mut Vec<f64>,
        nodes_out: &mut Vec<NodeId>,
    ) {
        let Some(masks) = &self.masks else {
            return; // callers gate on `masks.is_some()`
        };
        let from = self.costs.from(leaf);
        let (pa, ta) = (from.pop(), from.tree());
        let tn = self.net.tree.nodes();
        for &(p, mask) in masks.entries(object) {
            let mut bits = mask;
            while bits != 0 {
                let r = bits.trailing_zeros();
                bits &= bits - 1;
                let t = self.costs.t_of_rank(r);
                let c = if p == pa {
                    if t == ta {
                        continue; // the requesting leaf itself
                    }
                    from.to_tree(t)
                } else {
                    from.to_pop_rank(p, r)
                };
                if c < max_cost {
                    costs_out.push(c);
                    nodes_out.push(p * tn + t);
                }
            }
        }
    }

    /// Capacity-limited nearest-replica selection: probe candidates in
    /// ascending `(cost, NodeId)` order until one has serving capacity
    /// left; the origin serves when none does or when it is at least as
    /// close. Allocation-free: candidates live in the persistent scratch
    /// buffer, and the common case (nearest candidate has capacity) is a
    /// single select-min pass with no sort. A failed `try_capacity` probe
    /// does not mutate the tracker, so discarding the probed minimum and
    /// rescanning preserves exact probe order without sorting.
    fn select_nr_capacity(
        &mut self,
        leaf: NodeId,
        object: u32,
        origin_cost: f64,
        idx: u64,
    ) -> Option<(f64, NodeId)> {
        let _select_span = self.obs.as_ref().and_then(|o| o.select_span(idx));
        if self.reference {
            // Legacy shape: gather tuples, stable sort, then walk in order
            // — same `(cost, NodeId)` contract, same capacity probe
            // sequence as the flat select-min below.
            let mut cands = std::mem::take(&mut self.cand_pairs);
            cands.clear();
            cands.extend(
                self.replica_dir[object as usize]
                    .iter()
                    .filter(|&&n| n != leaf)
                    .map(|&n| (self.cfg.latency.path_cost(self.net, leaf, n), n))
                    .filter(|&(c, _)| c < origin_cost),
            );
            cands.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            let mut chosen = None;
            for &(cost, node) in &cands {
                if self.try_capacity(node, idx) {
                    chosen = Some((cost, node));
                    break;
                }
            }
            self.cand_pairs = cands;
            return chosen;
        }
        let mut costs = std::mem::take(&mut self.cand_cost);
        let mut nodes = std::mem::take(&mut self.cand_node);
        costs.clear();
        nodes.clear();
        if self.masks.is_some() {
            self.extend_cands_from_masks(object, leaf, origin_cost, &mut costs, &mut nodes);
        } else {
            let from = self.costs.from(leaf);
            for &n in &self.replica_dir[object as usize] {
                if n == leaf {
                    continue;
                }
                let c = from.to(n);
                if c < origin_cost {
                    costs.push(c);
                    nodes.push(n);
                }
            }
        }
        let mut chosen = None;
        while let Some(i) = min_candidate(&costs, &nodes) {
            let (cost, node) = (costs[i], nodes[i]);
            if self.try_capacity(node, idx) {
                chosen = Some((cost, node));
                break;
            }
            costs.swap_remove(i);
            nodes.swap_remove(i);
        }
        self.cand_cost = costs;
        self.cand_node = nodes;
        chosen
    }

    /// Nearest-replica server selection under an active fault schedule:
    /// ICN-NR falls back to the next-nearest *live* replica (up node, live
    /// path), preferring the origin when it is reachable and at least as
    /// close. With the origin unreachable, any live replica serves at any
    /// cost; with none, the request fails.
    ///
    /// Shares the fault-free ordering contract: candidates are considered
    /// in ascending `(cost, NodeId)` order (scratch buffer + select-min,
    /// or a stable sort in reference mode — identical probe sequences),
    /// so under a zero-failure schedule every liveness check passes and
    /// the selection reduces exactly to the fault-free paths.
    /// `penalty` accumulates the wasted round-trip latency of replicas
    /// whose corruption was caught by self-certification (the copy is
    /// evicted and the scan continues).
    fn select_nr_faulted(
        &mut self,
        leaf: NodeId,
        object: u32,
        origin_root: NodeId,
        origin_cost: f64,
        idx: u64,
        penalty: &mut f64,
    ) -> NrChoice {
        let _select_span = self.obs.as_ref().and_then(|o| o.select_span(idx));
        let origin_reachable = self.path_live(leaf, origin_root);
        let mut choice = None;
        if self.reference {
            let mut cands = std::mem::take(&mut self.cand_pairs);
            cands.clear();
            cands.extend(
                self.replica_dir[object as usize]
                    .iter()
                    .filter(|&&n| n != leaf)
                    .map(|&n| (self.cfg.latency.path_cost(self.net, leaf, n), n)),
            );
            cands.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            for &(cost, node) in &cands {
                if origin_reachable && cost >= origin_cost {
                    break; // origin is at least as close; prefer it
                }
                if !self.node_up(node) || !self.path_live(leaf, node) {
                    continue;
                }
                if self.try_capacity(node, idx) {
                    let corrupted = self.replica_corrupted(node, object);
                    if corrupted && self.spec.self_certifying {
                        self.metrics.corrupt_detected += 1;
                        self.evict_replica(node, object);
                        *penalty += cost + 1.0;
                        continue; // scan on for a clean copy
                    }
                    choice = Some(NrChoice::Replica {
                        cost,
                        node,
                        poisoned: corrupted,
                    });
                    break;
                }
            }
            self.cand_pairs = cands;
        } else {
            let mut costs = std::mem::take(&mut self.cand_cost);
            let mut nodes = std::mem::take(&mut self.cand_node);
            costs.clear();
            nodes.clear();
            if self.masks.is_some() {
                self.extend_cands_from_masks(object, leaf, f64::INFINITY, &mut costs, &mut nodes);
            } else {
                let from = self.costs.from(leaf);
                for &n in &self.replica_dir[object as usize] {
                    if n == leaf {
                        continue;
                    }
                    costs.push(from.to(n));
                    nodes.push(n);
                }
            }
            while let Some(i) = min_candidate(&costs, &nodes) {
                let (cost, node) = (costs[i], nodes[i]);
                if origin_reachable && cost >= origin_cost {
                    break; // origin is at least as close; prefer it
                }
                costs.swap_remove(i);
                nodes.swap_remove(i);
                if !self.node_up(node) || !self.path_live(leaf, node) {
                    continue;
                }
                if self.try_capacity(node, idx) {
                    let corrupted = self.replica_corrupted(node, object);
                    if corrupted && self.spec.self_certifying {
                        self.metrics.corrupt_detected += 1;
                        self.evict_replica(node, object);
                        *penalty += cost + 1.0;
                        continue; // scan on for a clean copy
                    }
                    choice = Some(NrChoice::Replica {
                        cost,
                        node,
                        poisoned: corrupted,
                    });
                    break;
                }
            }
            self.cand_cost = costs;
            self.cand_node = nodes;
        }
        choice.unwrap_or(if origin_reachable {
            NrChoice::Origin
        } else {
            NrChoice::Failed
        })
    }

    #[inline]
    fn transfer_weight(&self, object: u32) -> u64 {
        if self.cfg.weight_by_size {
            self.object_sizes[object as usize] as u64
        } else {
            1
        }
    }

    #[inline]
    fn add_transfer(&mut self, link: u32, weight: u64) {
        self.metrics.link_transfers[link as usize] += weight;
    }

    #[inline]
    fn cache_contains(&self, node: NodeId, object: u32) -> bool {
        self.node_up(node) && self.caches[node as usize].contains(object as u64)
    }

    #[inline]
    fn cache_touch(&mut self, node: NodeId, object: u32) {
        self.caches[node as usize].touch(object as u64);
    }

    /// Inserts `object` into the cache at `node` (if any) at logical time
    /// `idx`, keeping the nearest-replica directory in sync. The origin
    /// PoP root never caches its own objects — it already hosts them in
    /// its (infinite) origin store.
    fn cache_insert(&mut self, idx: u64, node: NodeId, object: u32) {
        if self.origins[object as usize] as u32 == self.net.pop_of(node)
            && self.net.tree_index(node) == 0
        {
            return;
        }
        // A crashed node stores nothing until its outage ends.
        if !self.node_up(node) {
            return;
        }
        if !self.equipped[node as usize] {
            return;
        }
        let track = self.spec.routing == Routing::NearestReplica;
        let c = &mut self.caches[node as usize];
        let had = c.contains(object as u64);
        let evicted = c.insert_at(object as u64, idx);
        let stored = c.contains(object as u64);
        // Under a TTL policy every successful insert — fresh or renewal —
        // opens a lease ending at `idx + ttl`; queue it for the drain in
        // [`Simulator::expire_due`]. Renewals leave the old queue entry
        // behind as a stale stamp.
        if let Some(ttl) = self.ttl_len {
            if stored {
                self.ttl_queue.push_back((idx + ttl, node, object));
            }
        }
        if track {
            let inserted = !had && stored;
            if let Some(masks) = &mut self.masks {
                let (p, t) = (self.net.pop_of(node), self.net.tree_index(node));
                let r = self.costs.rank_of(t);
                if let Some(e) = evicted {
                    masks.remove(e as u32, p, r);
                }
                if inserted {
                    masks.insert(object, p, r);
                }
            } else {
                if let Some(e) = evicted {
                    let dir = &mut self.replica_dir[e as usize];
                    if let Some(pos) = dir.iter().position(|&n| n == node) {
                        dir.swap_remove(pos);
                    }
                }
                if inserted {
                    self.replica_dir[object as usize].push(node);
                }
            }
        }
    }

    /// Applies the insertion policy to one router on the response path,
    /// walked from the server toward the client. `lcd_available` tracks
    /// whether the leave-copy-down slot (the first cache-equipped router
    /// below the server) is still unclaimed.
    #[inline]
    fn insert_on_response(
        &mut self,
        idx: u64,
        node: NodeId,
        object: u32,
        lcd_available: &mut bool,
    ) {
        let equipped = self.equipped[node as usize];
        let insert = match self.cfg.insertion {
            InsertionPolicy::Everywhere => true,
            InsertionPolicy::LeaveCopyDown => {
                let take = equipped && *lcd_available;
                if take {
                    *lcd_available = false;
                }
                take
            }
            InsertionPolicy::Probabilistic { p } => equipped && self.rng.gen::<f64>() < p,
        };
        if insert {
            self.cache_insert(idx, node, object);
        }
    }

    /// Capacity gate: true when the node may serve this request (and
    /// reserves a slot). Unlimited when no capacity model is configured.
    #[inline]
    fn try_capacity(&mut self, node: NodeId, idx: u64) -> bool {
        match &mut self.capacity {
            None => true,
            Some(t) => t.try_serve(node, idx),
        }
    }
}

/// Index of the `(cost, NodeId)`-minimal candidate in the parallel
/// `costs`/`nodes` arrays, `None` when empty. The composite key is a total
/// order over candidates (node ids are unique within a directory), so the
/// minimum — and therefore every selection built on it — is independent of
/// candidate order. Takes struct-of-arrays slices so the scan is two
/// contiguous walks; shared with the epoch-sharded engine
/// (`crate::shard`), whose probe loops must match this one bit-for-bit.
#[inline]
pub(crate) fn min_candidate(costs: &[f64], nodes: &[NodeId]) -> Option<usize> {
    debug_assert_eq!(costs.len(), nodes.len());
    let mut best: Option<(usize, f64, NodeId)> = None;
    for (i, (&c, &n)) in costs.iter().zip(nodes).enumerate() {
        if best.is_none_or(|(_, bc, bn)| c < bc || (c == bc && n < bn)) {
            best = Some((i, c, n));
        }
    }
    best.map(|(i, _, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::DesignKind;
    use icn_topology::{pop::PopGraph, AccessTree};
    use icn_workload::trace::Request;

    /// Two PoPs joined by one core link, binary trees of depth 2:
    /// 7 routers per pop, leaves at tree indices 3..=6.
    fn two_pop_net() -> Network {
        let core = PopGraph::new(
            "pair",
            vec!["A".into(), "B".into()],
            vec![1_000, 1_000],
            vec![(0, 1)],
        );
        Network::new(core, AccessTree::new(2, 2))
    }

    fn req(pop: u16, leaf: u16, object: u32) -> Request {
        Request { pop, leaf, object }
    }

    /// All objects owned by pop 1 ("B"), unit sizes.
    fn sim_with<'a>(
        net: &'a Network,
        design: DesignKind,
        origins: &'a [u16],
        sizes: &'a [u32],
    ) -> Simulator<'a> {
        let mut cfg = ExperimentConfig::baseline(design);
        // Plenty of budget so tests control hits explicitly.
        cfg.f_fraction = 0.5;
        cfg.budget_policy = icn_cache::budget::BudgetPolicy::Uniform;
        Simulator::new(net, cfg, origins, sizes)
    }

    #[test]
    fn nocache_latency_is_distance_plus_one() {
        let net = two_pop_net();
        let origins = vec![1u16; 4];
        let sizes = vec![1u32; 4];
        let mut sim = sim_with(&net, DesignKind::NoCache, &origins, &sizes);
        // Leaf 0 of pop 0 to origin root of pop 1: 2 (climb) + 1 (core) = 3
        // links, latency 4.
        let m = sim.run(&[req(0, 0, 0)]);
        assert_eq!(m.total_latency, 4.0);
        assert_eq!(m.origin_hits, 1);
        assert_eq!(m.cache_hits, 0);
        assert_eq!(m.origin_served[1], 1);
        // Congestion: exactly the three links on the path carry 1 transfer.
        assert_eq!(m.link_transfers.iter().sum::<u64>(), 3);
        assert_eq!(m.max_congestion(), 1);
    }

    #[test]
    fn edge_caches_at_leaf_after_first_request() {
        let net = two_pop_net();
        let origins = vec![1u16; 4];
        let sizes = vec![1u32; 4];
        let mut sim = sim_with(&net, DesignKind::Edge, &origins, &sizes);
        let m = sim.run(&[req(0, 0, 0), req(0, 0, 0)]);
        // First: miss -> origin (latency 4); second: leaf hit (latency 1).
        assert_eq!(m.total_latency, 5.0);
        assert_eq!(m.cache_hits, 1);
        assert_eq!(m.origin_hits, 1);
        assert_eq!(m.hits_by_level[2], 1);
    }

    #[test]
    fn edge_does_not_use_interior_caches() {
        let net = two_pop_net();
        let origins = vec![1u16; 4];
        let sizes = vec![1u32; 4];
        let mut sim = sim_with(&net, DesignKind::Edge, &origins, &sizes);
        // Same object from two different leaves of pop 0: both go to
        // origin (no interior caching, no cooperation).
        let m = sim.run(&[req(0, 0, 0), req(0, 2, 0)]);
        assert_eq!(m.origin_hits, 2);
        assert_eq!(m.cache_hits, 0);
    }

    #[test]
    fn edge_coop_serves_from_sibling() {
        let net = two_pop_net();
        let origins = vec![1u16; 4];
        let sizes = vec![1u32; 4];
        let mut sim = sim_with(&net, DesignKind::EdgeCoop, &origins, &sizes);
        // Leaf 0 warms its cache; leaf 1 is its sibling (same parent).
        let m = sim.run(&[req(0, 0, 0), req(0, 1, 0)]);
        assert_eq!(m.origin_hits, 1);
        assert_eq!(m.cache_hits, 1);
        assert_eq!(m.coop_hits, 1);
        // Sibling serve: 2 links + serving hop = 3; total 4 + 3.
        assert_eq!(m.total_latency, 7.0);
        // Non-sibling leaf 2 cannot cooperate with leaf 0.
        let mut sim2 = sim_with(&net, DesignKind::EdgeCoop, &origins, &sizes);
        let m2 = sim2.run(&[req(0, 0, 0), req(0, 2, 0)]);
        assert_eq!(m2.coop_hits, 0);
        assert_eq!(m2.origin_hits, 2);
    }

    #[test]
    fn icn_sp_hits_on_path_interior_cache() {
        let net = two_pop_net();
        let origins = vec![1u16; 4];
        let sizes = vec![1u32; 4];
        let mut sim = sim_with(&net, DesignKind::IcnSp, &origins, &sizes);
        // Leaf 0 (tree index 3) warms every router on its path.
        // Leaf 2 (tree index 5) shares only the pop root with that path:
        // expect a hit at the root, latency 2 + 1.
        let m = sim.run(&[req(0, 0, 0), req(0, 2, 0)]);
        assert_eq!(m.cache_hits, 1);
        assert_eq!(m.total_latency, 4.0 + 3.0);
        assert_eq!(m.hits_by_level[0], 1);
    }

    #[test]
    fn icn_nr_finds_cross_tree_replica() {
        let net = two_pop_net();
        // Object 0 owned by pop 1; both requests from pop 0.
        let origins = vec![1u16; 4];
        let sizes = vec![1u32; 4];
        let mut sim = sim_with(&net, DesignKind::IcnNr, &origins, &sizes);
        // First request from leaf 0 warms the whole path including pop 0's
        // root and the leaf. Second request from leaf 2 (different subtree):
        // nearest replica is pop 0's root at distance 2 (vs origin at 3).
        let m = sim.run(&[req(0, 0, 0), req(0, 2, 0)]);
        assert_eq!(m.cache_hits, 1);
        assert_eq!(m.origin_hits, 1);
        assert_eq!(m.total_latency, 4.0 + 3.0);
    }

    #[test]
    fn icn_nr_prefers_closer_replica_over_origin() {
        let net = two_pop_net();
        let origins = vec![1u16; 4];
        let sizes = vec![1u32; 4];
        let mut sim = sim_with(&net, DesignKind::IcnNr, &origins, &sizes);
        // Warm leaf 0's sibling subtree: request from leaf 1 (tree index 4,
        // sibling of leaf 0). NR then serves leaf 0's request from the
        // shared parent at distance 1 (latency 2).
        let m = sim.run(&[req(0, 1, 0), req(0, 0, 0)]);
        assert_eq!(m.cache_hits, 1);
        assert_eq!(m.total_latency, 4.0 + 2.0);
    }

    #[test]
    fn origin_pop_requests_are_cheap() {
        let net = two_pop_net();
        let origins = vec![0u16; 4]; // owned by pop 0
        let sizes = vec![1u32; 4];
        let mut sim = sim_with(&net, DesignKind::NoCache, &origins, &sizes);
        // Leaf 0 of pop 0 to its own root: 2 links, latency 3.
        let m = sim.run(&[req(0, 0, 0)]);
        assert_eq!(m.total_latency, 3.0);
        assert_eq!(m.origin_served[0], 1);
    }

    #[test]
    fn origin_root_does_not_cache_own_objects() {
        let net = two_pop_net();
        let origins = vec![1u16; 4];
        let sizes = vec![1u32; 4];
        let mut sim = sim_with(&net, DesignKind::IcnNr, &origins, &sizes);
        sim.run(&[req(1, 0, 0)]);
        // The origin root (pop 1, tree index 0) must not appear in the
        // replica directory for its own object.
        let root = net.pop_root(1);
        assert!(!sim.replicas_of(0).contains(&root));
        // But the leaf of pop 1 does cache it.
        assert!(sim.replicas_of(0).contains(&net.leaf(1, 0)));
    }

    #[test]
    fn replica_directory_tracks_evictions() {
        let net = two_pop_net();
        let origins = vec![1u16; 10];
        let sizes = vec![1u32; 10];
        let mut cfg = ExperimentConfig::baseline(DesignKind::IcnNr);
        cfg.budget_policy = icn_cache::budget::BudgetPolicy::Uniform;
        cfg.f_fraction = 0.1; // capacity 1 per cache
        let mut sim = Simulator::new(&net, cfg, &origins, &sizes);
        sim.run(&[req(0, 0, 0), req(0, 0, 1)]);
        let leaf = net.leaf(0, 0);
        // Object 0 was evicted from the leaf by object 1.
        assert!(!sim.replicas_of(0).contains(&leaf));
        assert!(sim.replicas_of(1).contains(&leaf));
    }

    #[test]
    fn selection_is_independent_of_replica_dir_order() {
        // The ordering contract: selection depends on the directory only
        // as a *set*. In reference mode the directory really is an
        // order-carrying Vec, so adversarially permuting every entry list
        // mid-run must not change a single metric bit. (The flat mode's
        // bitmask directory is canonical by construction and is pinned to
        // reference mode by `tests/determinism.rs`.)
        let net = two_pop_net();
        let origins = vec![1u16; 8];
        let sizes = vec![1u32; 8];
        // Interleaved requests from every leaf so objects are cached at
        // several equal-cost nodes and ties actually occur.
        let reqs: Vec<Request> = (0..64u64)
            .map(|i| req((i % 2) as u16, (i % 4) as u16, (i % 8) as u32))
            .collect();
        let mid = reqs.len() / 2;
        let mut plain = sim_with(&net, DesignKind::IcnNr, &origins, &sizes);
        plain.set_reference(true);
        plain.run(&reqs);
        let want = plain.metrics().clone();
        for flavor in 0..3u64 {
            let mut sim = sim_with(&net, DesignKind::IcnNr, &origins, &sizes);
            sim.set_reference(true);
            sim.run(&reqs[..mid]);
            for (o, dir) in sim.replica_dir.iter_mut().enumerate() {
                match flavor {
                    0 => dir.reverse(),
                    1 => {
                        let n = dir.len().max(1);
                        dir.rotate_left(o % n);
                    }
                    _ => dir.sort_unstable_by_key(|&n| u32::MAX - n),
                }
            }
            let got = sim.run(&reqs[mid..]).clone();
            assert_eq!(want, got, "shuffle flavor {flavor} changed the outcome");
        }
    }

    #[test]
    fn infinite_budget_never_evicts() {
        let net = two_pop_net();
        let origins: Vec<u16> = vec![1; 50];
        let sizes = vec![1u32; 50];
        let mut sim = sim_with(&net, DesignKind::InfiniteEdge, &origins, &sizes);
        let reqs: Vec<Request> = (0..50).map(|o| req(0, 0, o)).collect();
        sim.run(&reqs);
        let repeat: Vec<Request> = (0..50).map(|o| req(0, 0, o)).collect();
        let before = sim.metrics().cache_hits;
        sim.run(&repeat);
        assert_eq!(sim.metrics().cache_hits - before, 50, "all repeats hit");
    }

    #[test]
    fn capacity_overload_redirects_to_origin() {
        let net = two_pop_net();
        let origins = vec![1u16; 4];
        let sizes = vec![1u32; 4];
        let mut cfg = ExperimentConfig::baseline(DesignKind::Edge);
        cfg.budget_policy = icn_cache::budget::BudgetPolicy::Uniform;
        cfg.f_fraction = 0.5;
        cfg.capacity = Some(crate::capacity::ServingCapacity {
            per_node: 1,
            window: 1000,
        });
        let mut sim = Simulator::new(&net, cfg, &origins, &sizes);
        // Warm the leaf (origin serve), then two hits: only one allowed.
        let m = sim.run(&[req(0, 0, 0), req(0, 0, 0), req(0, 0, 0)]);
        assert_eq!(m.cache_hits, 1);
        assert_eq!(m.origin_hits, 2);
    }

    #[test]
    fn size_weighted_congestion() {
        let net = two_pop_net();
        let origins = vec![1u16; 2];
        let sizes = vec![100u32, 1];
        let mut cfg = ExperimentConfig::baseline(DesignKind::NoCache);
        cfg.weight_by_size = true;
        let mut sim = Simulator::new(&net, cfg, &origins, &sizes);
        let m = sim.run(&[req(0, 0, 0), req(0, 0, 1)]);
        // Both requests traverse the same 3 links; weights 100 + 1.
        assert_eq!(m.max_congestion(), 101);
    }

    #[test]
    fn leave_copy_down_inserts_only_below_server() {
        let net = two_pop_net();
        let origins = vec![1u16; 4];
        let sizes = vec![1u32; 4];
        let mut cfg = ExperimentConfig::baseline(DesignKind::IcnSp);
        cfg.budget_policy = icn_cache::budget::BudgetPolicy::Uniform;
        cfg.f_fraction = 0.5;
        cfg.insertion = crate::config::InsertionPolicy::LeaveCopyDown;
        let mut sim = Simulator::new(&net, cfg, &origins, &sizes);
        // First request from pop-0 leaf 0: origin (pop 1 root) serves; LCD
        // stores only at the router one hop below the origin — pop 0's
        // root (the core neighbor on the response path).
        let m = sim.run(&[req(0, 0, 0), req(0, 0, 0)]);
        // Second identical request: the leaf still has no copy, so it must
        // climb to pop 0's root (distance 2, latency 3) instead of hitting
        // at the leaf (latency 1 under Everywhere).
        assert_eq!(m.cache_hits, 1);
        assert_eq!(m.total_latency, 4.0 + 3.0);
    }

    #[test]
    fn probabilistic_insertion_extremes() {
        let net = two_pop_net();
        let origins = vec![1u16; 4];
        let sizes = vec![1u32; 4];
        for (p, expect_hits) in [(0.0, 0u64), (1.0, 1u64)] {
            let mut cfg = ExperimentConfig::baseline(DesignKind::Edge);
            cfg.budget_policy = icn_cache::budget::BudgetPolicy::Uniform;
            cfg.f_fraction = 0.5;
            cfg.insertion = crate::config::InsertionPolicy::Probabilistic { p };
            let mut sim = Simulator::new(&net, cfg, &origins, &sizes);
            let m = sim.run(&[req(0, 0, 0), req(0, 0, 0)]);
            assert_eq!(m.cache_hits, expect_hits, "p = {p}");
        }
    }

    /// Every cached object must appear in the nearest-replica directory
    /// at exactly its holders — the invariant lease expiry and crash
    /// flushes both have to preserve.
    fn assert_directory_matches_caches(sim: &Simulator, objects: u32) {
        for o in 0..objects {
            let dir = sim.replicas_of(o);
            for n in 0..sim.net.node_count() {
                assert_eq!(
                    sim.caches[n as usize].contains(o as u64),
                    dir.contains(&n),
                    "object {o} at node {n}: directory out of sync"
                );
            }
        }
    }

    mod ttl {
        use super::*;
        use icn_cache::PolicyKind;

        #[test]
        fn leases_expire_and_misses_return() {
            // Edge + 2-tick leases: warm (origin), hit inside the lease,
            // expired miss (origin again, re-warm), hit again.
            let net = two_pop_net();
            let origins = vec![1u16; 4];
            let sizes = vec![1u32; 4];
            let mut cfg = ExperimentConfig::baseline(DesignKind::Edge);
            cfg.budget_policy = icn_cache::budget::BudgetPolicy::Uniform;
            cfg.f_fraction = 0.5;
            cfg.policy = PolicyKind::Ttl { ttl: 2 };
            let mut sim = Simulator::new(&net, cfg, &origins, &sizes);
            let r = req(0, 0, 0);
            let m = sim.run(&[r, r, r, r]);
            assert_eq!(m.origin_hits, 2, "lease [0, 2) is up at idx 2");
            assert_eq!(m.cache_hits, 2);
        }

        #[test]
        fn expiry_drops_directory_entries() {
            let net = two_pop_net();
            let origins = vec![1u16; 8];
            let sizes = vec![1u32; 8];
            let mut cfg = ExperimentConfig::baseline(DesignKind::IcnNr);
            cfg.budget_policy = icn_cache::budget::BudgetPolicy::Uniform;
            cfg.f_fraction = 0.5;
            cfg.policy = PolicyKind::Ttl { ttl: 3 };
            let mut sim = Simulator::new(&net, cfg, &origins, &sizes);
            // idx 0 replicates object 0 along the response path (leases
            // end at 3); idx 1–3 keep time moving with another object.
            let m = sim
                .run(&[req(0, 0, 0), req(0, 1, 1), req(0, 1, 1), req(0, 1, 1)])
                .clone();
            assert!(
                sim.replicas_of(0).is_empty(),
                "object 0's leases were due at idx 3"
            );
            assert_directory_matches_caches(&sim, 8);
            // Requests 2 and 3 hit object 1's still-live lease at its leaf.
            assert_eq!(m.cache_hits, 2);
        }

        #[test]
        fn renewal_outlives_the_original_stamp() {
            // Regression for the expiry queue's stamp check: a renewed
            // lease leaves its old queue entry behind, and that stale
            // entry must not expire the renewal when it drains.
            //
            // Capacity gating forces the renewal: with 1 serve per node
            // per window, the leaf's copy is unusable at idx 2, a farther
            // replica serves, and the response re-inserts at the leaf —
            // renewing its lease to [2, 12) while (10, leaf, 0) is still
            // queued.
            let net = two_pop_net();
            let origins = vec![1u16; 4];
            let sizes = vec![1u32; 4];
            let mut cfg = ExperimentConfig::baseline(DesignKind::IcnNr);
            cfg.budget_policy = icn_cache::budget::BudgetPolicy::Uniform;
            cfg.f_fraction = 0.5;
            cfg.policy = PolicyKind::Ttl { ttl: 10 };
            cfg.capacity = Some(crate::capacity::ServingCapacity {
                per_node: 1,
                window: 1_000,
            });
            let mut sim = Simulator::new(&net, cfg, &origins, &sizes);
            let mut reqs = vec![req(0, 0, 0), req(0, 0, 0), req(0, 0, 0)];
            // Filler requests push logical time to idx 10, draining the
            // stamp-10 entries (object 0's original leases).
            reqs.extend((3..=10).map(|_| req(0, 3, 1)));
            sim.run(&reqs);
            let leaf = net.leaf(0, 0);
            assert_eq!(
                sim.replicas_of(0),
                vec![leaf],
                "only the renewed leaf lease survives the stamp-10 drain"
            );
            assert_directory_matches_caches(&sim, 4);
        }

        #[test]
        fn reference_mode_is_bit_identical_under_ttl() {
            // Expiry syncs whichever directory representation is live —
            // bitmask (flat) or Vec (reference). Both must agree.
            let net = two_pop_net();
            let origins = vec![1u16; 8];
            let sizes = vec![1u32; 8];
            let reqs: Vec<Request> = (0..300u64)
                .map(|i| req((i % 2) as u16, (i % 4) as u16, (i * 7 % 8) as u32))
                .collect();
            let mut cfg = ExperimentConfig::baseline(DesignKind::IcnNr);
            cfg.budget_policy = icn_cache::budget::BudgetPolicy::Uniform;
            cfg.f_fraction = 0.25;
            cfg.policy = PolicyKind::Ttl { ttl: 17 };
            let mut flat = Simulator::new(&net, cfg.clone(), &origins, &sizes);
            let mut reference = Simulator::new(&net, cfg, &origins, &sizes);
            reference.set_reference(true);
            let a = flat.run(&reqs).clone();
            let b = reference.run(&reqs).clone();
            assert_eq!(a, b);
            assert_directory_matches_caches(&flat, 8);
            assert_directory_matches_caches(&reference, 8);
        }
    }

    mod faults {
        use super::*;
        use crate::capacity::ServingCapacity;
        use crate::fault::{FaultConfig, FaultSchedule};

        fn link_only(seed: u64, rate: f64, window: u32) -> FaultConfig {
            FaultConfig {
                window,
                link_failure_rate: rate,
                ..FaultConfig::zero(seed)
            }
        }

        /// Deterministic seed search: the first seed whose schedule keeps
        /// every link up in windows `healthy` and cuts exactly the
        /// pop0–pop1 core link in windows `cut`. Purely a function of the
        /// schedule hash, so the found seed is stable across runs,
        /// processes, and worker counts.
        fn seed_with_core_cut(
            net: &Network,
            cfg_of: impl Fn(u64) -> FaultConfig,
            healthy: &[u64],
            cut: &[u64],
        ) -> u64 {
            let core = net.core_link(0, 1);
            (0..1_000_000u64)
                .find(|&seed| {
                    let s = FaultSchedule::new(cfg_of(seed));
                    healthy
                        .iter()
                        .all(|&w| (0..net.link_count()).all(|l| !s.link_down(l, w)))
                        && cut.iter().all(|&w| {
                            (0..net.link_count()).all(|l| s.link_down(l, w) == (l == core))
                        })
                })
                .expect("no seed with the wanted core-cut pattern in 1M tries")
        }

        #[test]
        fn zero_schedule_is_bit_identical_to_no_fault_run() {
            let net = two_pop_net();
            let origins = vec![1u16; 8];
            let sizes = vec![1u32; 8];
            let reqs: Vec<Request> = (0..200).map(|i| req(0, (i % 4) as u16, i % 8)).collect();
            for design in [
                DesignKind::Edge,
                DesignKind::EdgeCoop,
                DesignKind::IcnSp,
                DesignKind::IcnNr,
            ] {
                let mut plain = sim_with(&net, design, &origins, &sizes);
                let base = plain.run(&reqs).clone();
                let mut cfg = ExperimentConfig::baseline(design);
                cfg.f_fraction = 0.5;
                cfg.budget_policy = icn_cache::budget::BudgetPolicy::Uniform;
                cfg.fault = Some(FaultConfig::zero(0xdead_beef));
                let mut faulted = Simulator::new(&net, cfg, &origins, &sizes);
                let m = faulted.run(&reqs).clone();
                assert_eq!(base, m, "{design:?}: zero schedule perturbed the run");
                assert_eq!(m.failed_requests, 0);
                assert_eq!(m.availability_pct(), 100.0);
                assert_eq!(m.fault_latency_hist.count(), 0);
            }
        }

        #[test]
        fn total_link_failure_fails_every_cross_pop_request() {
            let net = two_pop_net();
            let origins = vec![1u16; 4];
            let sizes = vec![1u32; 4];
            let mut cfg = ExperimentConfig::baseline(DesignKind::NoCache);
            cfg.fault = Some(link_only(7, 1.0, 1_000));
            let mut sim = Simulator::new(&net, cfg, &origins, &sizes);
            let m = sim.run(&[req(0, 0, 0), req(0, 1, 1), req(1, 0, 2)]);
            assert_eq!(m.requests, 3);
            assert_eq!(m.failed_requests, 3, "origin unreachable behind dead links");
            assert_eq!(m.availability_pct(), 0.0);
            assert_eq!(m.total_latency, 0.0, "failed requests add no latency");
            assert_eq!(m.link_transfers.iter().sum::<u64>(), 0);
            assert_eq!(m.served(), 0);
        }

        #[test]
        fn edge_cache_masks_an_origin_partition() {
            let net = two_pop_net();
            let origins = vec![1u16; 4];
            let sizes = vec![1u32; 4];
            // Requests 0 / 1 / 2 land in windows 0 / 1 / 2 (window = 1).
            let seed = seed_with_core_cut(&net, |s| link_only(s, 0.1, 1), &[0], &[1, 2]);
            let mut cfg = ExperimentConfig::baseline(DesignKind::Edge);
            cfg.f_fraction = 0.5;
            cfg.budget_policy = icn_cache::budget::BudgetPolicy::Uniform;
            cfg.fault = Some(link_only(seed, 0.1, 1));
            let mut sim = Simulator::new(&net, cfg, &origins, &sizes);
            // Window 0 (healthy): origin serve warms the leaf. Windows 1–2
            // (core cut): the cached object still serves locally, while an
            // uncached object fails — graceful degradation, not collapse.
            let m = sim.run(&[req(0, 0, 0), req(0, 0, 0), req(0, 0, 1)]);
            assert_eq!(m.cache_hits, 1, "cached object survives the partition");
            assert_eq!(m.origin_hits, 1);
            assert_eq!(m.failed_requests, 1, "uncached object cannot reach origin");
            assert_eq!(
                m.fault_latency_hist.count(),
                1,
                "the window-1 leaf hit lands in the under-failure histogram"
            );
        }

        #[test]
        fn nr_falls_back_to_a_farther_live_replica_when_origin_is_cut() {
            let net = two_pop_net();
            let origins = vec![1u16; 4];
            let sizes = vec![1u32; 4];
            // Window length 4: warm-up requests 0..4 share healthy window
            // 0; the probe request (index 4) lands in window 1 with the
            // core link cut.
            let seed = seed_with_core_cut(&net, |s| link_only(s, 0.1, 4), &[0], &[1]);
            let mut cfg = ExperimentConfig::baseline(DesignKind::IcnNr);
            cfg.f_fraction = 0.5; // Uniform budget: 2 objects per cache
            cfg.budget_policy = icn_cache::budget::BudgetPolicy::Uniform;
            cfg.fault = Some(link_only(seed, 0.1, 4));
            let mut sim = Simulator::new(&net, cfg, &origins, &sizes);
            // Warm-up engineers a world where the ONLY replica of object 0
            // is leaf (0,2): leaf (0,2) fetches it, then leaf (0,3)'s
            // fetches of objects 1..=3 evict object 0 from the shared
            // interior caches (capacity 2, LRU) but not from leaf (0,2).
            // From leaf (0,0), that replica costs 4 — farther than the
            // origin at cost 3, so fault-free ICN-NR would pick the
            // origin. With the core cut, it must fall back to the farther
            // live replica instead of failing.
            let m = sim
                .run(&[
                    req(0, 2, 0),
                    req(0, 3, 1),
                    req(0, 3, 2),
                    req(0, 3, 3),
                    req(0, 0, 0),
                ])
                .clone();
            assert_eq!(m.requests, 5);
            assert_eq!(m.failed_requests, 0, "a live replica exists");
            assert_eq!(m.origin_hits, 4, "the probe must not reach the origin");
            assert_eq!(m.cache_hits, 1, "served by the leaf (0,2) replica");
            // 4 warm serves at latency 4 + the detour serve at cost 4 + 1.
            assert_eq!(m.total_latency, 4.0 * 4.0 + 5.0);

            // Control: the identical request sequence without faults picks
            // the origin for the probe (cost 3 beats the replica's 4).
            let mut plain_cfg = ExperimentConfig::baseline(DesignKind::IcnNr);
            plain_cfg.f_fraction = 0.5;
            plain_cfg.budget_policy = icn_cache::budget::BudgetPolicy::Uniform;
            let mut plain = Simulator::new(&net, plain_cfg, &origins, &sizes);
            let p = plain
                .run(&[
                    req(0, 2, 0),
                    req(0, 3, 1),
                    req(0, 3, 2),
                    req(0, 3, 3),
                    req(0, 0, 0),
                ])
                .clone();
            assert_eq!(p.origin_hits, 5, "fault-free NR prefers the origin");
            assert_eq!(p.total_latency, 4.0 * 4.0 + 4.0);
        }

        #[test]
        fn permanently_crashed_caches_never_serve_or_store() {
            let net = two_pop_net();
            let origins = vec![1u16; 4];
            let sizes = vec![1u32; 4];
            let mut cfg = ExperimentConfig::baseline(DesignKind::Edge);
            cfg.f_fraction = 0.5;
            cfg.budget_policy = icn_cache::budget::BudgetPolicy::Uniform;
            cfg.fault = Some(FaultConfig {
                node_crash_rate: 1.0,
                ..FaultConfig::zero(3)
            });
            let mut sim = Simulator::new(&net, cfg, &origins, &sizes);
            let m = sim.run(&[req(0, 0, 0), req(0, 0, 0), req(0, 0, 0)]);
            assert_eq!(m.cache_hits, 0, "a crashed cache cannot serve");
            assert_eq!(m.origin_hits, 3, "links are healthy: origin still serves");
            assert_eq!(m.failed_requests, 0);
        }

        #[test]
        fn crashed_nodes_leave_the_replica_directory() {
            let net = two_pop_net();
            let origins = vec![1u16; 4];
            let sizes = vec![1u32; 4];
            let mut cfg = ExperimentConfig::baseline(DesignKind::IcnNr);
            cfg.f_fraction = 0.5;
            cfg.budget_policy = icn_cache::budget::BudgetPolicy::Uniform;
            cfg.fault = Some(FaultConfig {
                node_crash_rate: 1.0,
                ..FaultConfig::zero(3)
            });
            let mut sim = Simulator::new(&net, cfg, &origins, &sizes);
            sim.run(&[req(0, 0, 0), req(0, 0, 0)]);
            assert!(
                sim.replicas_of(0).is_empty(),
                "crashed nodes must not advertise replicas: {:?}",
                sim.replicas_of(0)
            );
        }

        #[test]
        fn crash_flushes_are_safe_under_ttl_leases() {
            // A crash flush empties caches while the expiry queue still
            // holds their lease stamps; those entries must drain as
            // no-ops, and post-crash re-insertions (new stamps) must not
            // be expired by them. The directory stays exact throughout.
            let net = two_pop_net();
            let origins = vec![1u16; 8];
            let sizes = vec![1u32; 8];
            let mut cfg = ExperimentConfig::baseline(DesignKind::IcnNr);
            cfg.f_fraction = 0.5;
            cfg.budget_policy = icn_cache::budget::BudgetPolicy::Uniform;
            cfg.policy = icn_cache::PolicyKind::Ttl { ttl: 9 };
            cfg.fault = Some(FaultConfig {
                node_crash_rate: 0.3,
                window: 40,
                ..FaultConfig::zero(5)
            });
            let mut sim = Simulator::new(&net, cfg, &origins, &sizes);
            let reqs: Vec<Request> = (0..400u64)
                .map(|i| req((i % 2) as u16, (i % 4) as u16, (i * 3 % 8) as u32))
                .collect();
            let m = sim.run(&reqs).clone();
            assert_eq!(m.requests, 400);
            assert_directory_matches_caches(&sim, 8);
        }

        #[test]
        fn zero_disaster_layer_is_bit_identical_to_no_fault_run() {
            // A disaster layer with zero rates (and zero corruption) must
            // not perturb a single bit of any design's run.
            let net = two_pop_net();
            let origins = vec![1u16; 8];
            let sizes = vec![1u32; 8];
            let reqs: Vec<Request> = (0..200).map(|i| req(0, (i % 4) as u16, i % 8)).collect();
            for design in [DesignKind::Edge, DesignKind::IcnSp, DesignKind::IcnNr] {
                let mut plain = sim_with(&net, design, &origins, &sizes);
                let base = plain.run(&reqs).clone();
                let mut cfg = ExperimentConfig::baseline(design);
                cfg.f_fraction = 0.5;
                cfg.budget_policy = icn_cache::budget::BudgetPolicy::Uniform;
                cfg.fault = Some(FaultConfig {
                    disaster: Some(crate::fault::DisasterConfig {
                        group_rate: 0.0,
                        group_mttr_windows: 4,
                        geometric_repair: false,
                        cascade_overload: true,
                    }),
                    ..FaultConfig::zero(0xd15a)
                });
                let mut faulted = Simulator::new(&net, cfg, &origins, &sizes);
                let m = faulted.run(&reqs).clone();
                assert_eq!(base, m, "{design:?}: zero disaster layer perturbed the run");
                assert_eq!(m.corrupt_served, 0);
                assert_eq!(m.corrupt_detected, 0);
                assert_eq!(m.correct_availability_pct(), 100.0);
            }
        }

        #[test]
        fn certain_group_failure_takes_down_every_subtree_and_bundle() {
            // group_rate = 1: every PoP subtree and every core bundle is
            // down in every window. No router can serve or store, no core
            // link is live, and every leaf's uplink is dead — total
            // blackout.
            let net = two_pop_net();
            let origins = vec![1u16; 4];
            let sizes = vec![1u32; 4];
            let mut cfg = ExperimentConfig::baseline(DesignKind::IcnNr);
            cfg.f_fraction = 0.5;
            cfg.budget_policy = icn_cache::budget::BudgetPolicy::Uniform;
            cfg.fault = Some(FaultConfig {
                disaster: Some(crate::fault::DisasterConfig {
                    group_rate: 1.0,
                    group_mttr_windows: 1,
                    geometric_repair: false,
                    cascade_overload: false,
                }),
                ..FaultConfig::zero(17)
            });
            let mut sim = Simulator::new(&net, cfg, &origins, &sizes);
            let m = sim.run(&[req(0, 0, 0), req(0, 1, 1), req(1, 0, 2)]);
            assert_eq!(m.failed_requests, 3, "a total disaster fails everything");
            assert_eq!(m.availability_pct(), 0.0);
        }

        #[test]
        fn cascading_overload_spreads_saturation_to_core_neighbors() {
            // Find a seed where pop 1 (the only core neighbor of pop 0) is
            // degraded in windows 0 and 1 while pop 0 is not — any pop-0
            // degradation in the test must then come from the cascade.
            let degraded_cfg = |seed: u64, cascade: bool| FaultConfig {
                window: 2,
                origin_degraded_rate: 0.5,
                degraded_origin: ServingCapacity {
                    per_node: 1,
                    window: 2,
                },
                disaster: Some(crate::fault::DisasterConfig {
                    group_rate: 0.0,
                    group_mttr_windows: 1,
                    geometric_repair: false,
                    cascade_overload: cascade,
                }),
                ..FaultConfig::zero(seed)
            };
            let seed = (0..1_000_000u64)
                .find(|&s| {
                    let sch = FaultSchedule::new(degraded_cfg(s, true));
                    (0..2).all(|w| sch.origin_degraded(1, w) && !sch.origin_degraded(0, w))
                })
                .expect("no seed with the wanted degradation pattern");
            let net = two_pop_net();
            // Objects 0..2 owned by pop 1; objects 2..4 owned by pop 0.
            let origins = vec![1u16, 1, 0, 0];
            let sizes = vec![1u32; 4];
            // Window 0: two requests saturate degraded pop 1 (capacity 1,
            // one fails). Window 1: pop 0 inherits the shed load via the
            // cascade, so its second serve fails too.
            let reqs = [req(0, 0, 0), req(0, 1, 0), req(0, 0, 2), req(0, 1, 2)];
            let mut cfg = ExperimentConfig::baseline(DesignKind::NoCache);
            cfg.fault = Some(degraded_cfg(seed, true));
            let mut sim = Simulator::new(&net, cfg, &origins, &sizes);
            let m = sim.run(&reqs).clone();
            assert_eq!(m.failed_requests, 2, "cascade saturates pop 0 in window 1");

            // Control: identical schedule without the cascade rule — pop 0
            // stays healthy and serves both window-1 requests.
            let mut cfg = ExperimentConfig::baseline(DesignKind::NoCache);
            cfg.fault = Some(degraded_cfg(seed, false));
            let mut control = Simulator::new(&net, cfg, &origins, &sizes);
            let c = control.run(&reqs).clone();
            assert_eq!(c.failed_requests, 1, "without cascade only pop 1 sheds");
        }

        #[test]
        fn corruption_is_served_by_edge_but_detected_by_icn() {
            let net = two_pop_net();
            let origins = vec![1u16; 4];
            let sizes = vec![1u32; 4];
            let corrupt = FaultConfig {
                corruption_rate: 1.0,
                ..FaultConfig::zero(23)
            };
            // EDGE cannot verify: the poisoned leaf copy is delivered.
            let mut cfg = ExperimentConfig::baseline(DesignKind::Edge);
            cfg.f_fraction = 0.5;
            cfg.budget_policy = icn_cache::budget::BudgetPolicy::Uniform;
            cfg.fault = Some(corrupt);
            let mut edge = Simulator::new(&net, cfg, &origins, &sizes);
            let e = edge.run(&[req(0, 0, 0), req(0, 0, 0)]).clone();
            assert_eq!(e.cache_hits, 1, "EDGE still counts the (poisoned) hit");
            assert_eq!(e.corrupt_served, 1);
            assert_eq!(e.corrupt_detected, 0);
            assert_eq!(e.availability_pct(), 100.0, "reachability is unharmed");
            assert_eq!(
                e.correct_availability_pct(),
                50.0,
                "but one serve was poison"
            );

            // ICN-NR self-certifies: every poisoned replica on the path is
            // caught, evicted, and charged as a wasted round trip; the
            // origin delivers the authentic copy.
            let mut cfg = ExperimentConfig::baseline(DesignKind::IcnNr);
            cfg.f_fraction = 0.5;
            cfg.budget_policy = icn_cache::budget::BudgetPolicy::Uniform;
            cfg.fault = Some(corrupt);
            let mut icn = Simulator::new(&net, cfg, &origins, &sizes);
            let m = icn.run(&[req(0, 0, 0), req(0, 0, 0)]).clone();
            assert_eq!(
                m.corrupt_served, 0,
                "self-certification never serves poison"
            );
            assert_eq!(
                m.corrupt_detected, 3,
                "leaf, interior, and pop-root replicas all caught"
            );
            assert_eq!(m.origin_hits, 2, "the clean copy comes from the origin");
            assert_eq!(m.correct_availability_pct(), 100.0);
            // Warm serve at 4; retry serve = origin (3 + 1) + wasted
            // fetches at the leaf (0 + 1), interior (1 + 1), root (2 + 1).
            assert_eq!(m.total_latency, 4.0 + 10.0);
            assert_directory_matches_caches(&icn, 4);
        }

        #[test]
        fn detected_corruption_in_sp_walk_retries_upstream() {
            // ICN-SP with a poisoned leaf copy: the walk discards it and
            // the next on-path copy (or origin) serves, charged the wasted
            // fetch.
            let net = two_pop_net();
            let origins = vec![1u16; 4];
            let sizes = vec![1u32; 4];
            let corrupt = FaultConfig {
                corruption_rate: 1.0,
                ..FaultConfig::zero(29)
            };
            let mut cfg = ExperimentConfig::baseline(DesignKind::IcnSp);
            cfg.f_fraction = 0.5;
            cfg.budget_policy = icn_cache::budget::BudgetPolicy::Uniform;
            cfg.fault = Some(corrupt);
            let mut sim = Simulator::new(&net, cfg, &origins, &sizes);
            let m = sim.run(&[req(0, 0, 0), req(0, 0, 0)]).clone();
            assert_eq!(m.corrupt_served, 0);
            assert_eq!(m.corrupt_detected, 3, "all three on-path copies caught");
            assert_eq!(m.origin_hits, 2);
            // Warm 4; retry = origin 4 + wasted fetches at costs 0/1/2 + 1.
            assert_eq!(m.total_latency, 4.0 + 10.0);
        }

        #[test]
        fn degraded_origin_saturates_and_fails_overflow() {
            let net = two_pop_net();
            let origins = vec![1u16; 4];
            let sizes = vec![1u32; 4];
            let mut cfg = ExperimentConfig::baseline(DesignKind::NoCache);
            cfg.fault = Some(FaultConfig {
                origin_degraded_rate: 1.0,
                degraded_origin: ServingCapacity {
                    per_node: 1,
                    window: 1_000,
                },
                ..FaultConfig::zero(11)
            });
            let mut sim = Simulator::new(&net, cfg, &origins, &sizes);
            let m = sim.run(&[req(0, 0, 0), req(0, 1, 0), req(0, 2, 0)]);
            assert_eq!(m.origin_hits, 1, "degraded origin serves one per window");
            assert_eq!(m.failed_requests, 2);
            assert!((m.availability_pct() - 100.0 / 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn lfu_policy_also_works() {
        let net = two_pop_net();
        let origins = vec![1u16; 4];
        let sizes = vec![1u32; 4];
        let mut cfg = ExperimentConfig::baseline(DesignKind::Edge);
        cfg.policy = icn_cache::policy::PolicyKind::Lfu;
        cfg.budget_policy = icn_cache::budget::BudgetPolicy::Uniform;
        cfg.f_fraction = 0.5;
        let mut sim = Simulator::new(&net, cfg, &origins, &sizes);
        let m = sim.run(&[req(0, 0, 0), req(0, 0, 0)]);
        assert_eq!(m.cache_hits, 1);
    }
}
