//! Hop-cost models (§5.1, "Other parameters").
//!
//! The paper's default charges one unit per hop. Two alternative models are
//! meant to *favor* ICN-NR by making core hops expensive: an arithmetic
//! progression of per-hop cost toward the core, and a flat multiplier `d`
//! on core links. The paper reports both change the ICN-NR-vs-EDGE gap by
//! less than 2%.
//!
//! Latency of a served request = sum of traversed link costs **plus one**
//! (the serving hop), so a hit in the requesting leaf's own cache costs 1 —
//! matching Figure 2's level indexing where the edge is "level 1".

use icn_topology::Network;
use serde::{Deserialize, Serialize};

/// Per-link cost model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LatencyModel {
    /// Every link costs 1 (the paper's default).
    Unit,
    /// Cost grows linearly toward the core: a tree link whose deeper
    /// endpoint is at level `l` costs `depth - l + 1` (leaf links cost 1),
    /// and core links cost `depth + 1`.
    Progression,
    /// Tree links cost 1; core links cost `d`.
    CoreMultiplier {
        /// Core-link cost multiplier.
        d: u32,
    },
}

impl LatencyModel {
    /// Cost of the tree link whose deeper endpoint is at `deeper_level`
    /// (nominally 1 ..= depth).
    ///
    /// Out-of-range levels saturate instead of wrapping: a `deeper_level`
    /// at or beyond `depth` costs 1, like a leaf link. The arithmetic is
    /// explicitly saturating so the contract holds identically in debug
    /// and release builds — a plain `depth - deeper_level` would panic in
    /// debug but silently wrap to a ~2^32 cost with `--release`.
    #[inline]
    pub fn tree_link_cost(&self, deeper_level: u32, depth: u32) -> f64 {
        match *self {
            LatencyModel::Unit | LatencyModel::CoreMultiplier { .. } => 1.0,
            LatencyModel::Progression => (depth.saturating_sub(deeper_level) + 1) as f64,
        }
    }

    /// Cost of one core link.
    #[inline]
    pub fn core_link_cost(&self, depth: u32) -> f64 {
        match *self {
            LatencyModel::Unit => 1.0,
            LatencyModel::Progression => (depth + 1) as f64,
            LatencyModel::CoreMultiplier { d } => d as f64,
        }
    }

    /// Cost of climbing within a tree from `from_level` up to `to_level`
    /// (nominally `from_level >= to_level`).
    ///
    /// Saturating: "climbing" to a level at or below `from_level` crosses
    /// no links and costs 0, in both build profiles — the unchecked
    /// `from_level - to_level` this replaces wrapped to ~2^32 hops in
    /// `--release`. (The `Progression` arm was already safe: its range is
    /// simply empty when `to_level >= from_level`.)
    pub fn climb_cost(&self, from_level: u32, to_level: u32, depth: u32) -> f64 {
        match *self {
            LatencyModel::Unit | LatencyModel::CoreMultiplier { .. } => {
                from_level.saturating_sub(to_level) as f64
            }
            LatencyModel::Progression => (to_level.saturating_add(1)..=from_level)
                .map(|l| self.tree_link_cost(l, depth))
                .sum(),
        }
    }

    /// Total link cost of the shortest path between routers `a` and `b`.
    pub fn path_cost(&self, net: &Network, a: u32, b: u32) -> f64 {
        let depth = net.tree.depth;
        let (pa, pb) = (net.pop_of(a), net.pop_of(b));
        let (ta, tb) = (net.tree_index(a), net.tree_index(b));
        if pa == pb {
            let lca_level = net.tree.level_of(net.tree.lca(ta, tb));
            self.climb_cost(net.tree.level_of(ta), lca_level, depth)
                + self.climb_cost(net.tree.level_of(tb), lca_level, depth)
        } else {
            self.climb_cost(net.tree.level_of(ta), 0, depth)
                + self.climb_cost(net.tree.level_of(tb), 0, depth)
                + net.core_distance(pa, pb) as f64 * self.core_link_cost(depth)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icn_topology::{pop, AccessTree};

    fn net() -> Network {
        Network::new(pop::abilene(), AccessTree::new(2, 3))
    }

    #[test]
    fn unit_cost_equals_hop_distance() {
        let net = net();
        let m = LatencyModel::Unit;
        let cases = [
            (net.leaf(0, 0), net.leaf(0, 7)),
            (net.leaf(0, 0), net.pop_root(0)),
            (net.leaf(2, 1), net.leaf(9, 3)),
        ];
        for (a, b) in cases {
            assert_eq!(m.path_cost(&net, a, b), net.distance(a, b) as f64);
        }
    }

    #[test]
    fn progression_costs() {
        let net = net(); // depth 3
        let m = LatencyModel::Progression;
        // Leaf link = 1, level-2 link = 2, level-1 link = 3, core link = 4.
        assert_eq!(m.tree_link_cost(3, 3), 1.0);
        assert_eq!(m.tree_link_cost(1, 3), 3.0);
        assert_eq!(m.core_link_cost(3), 4.0);
        // Leaf to own root: 1 + 2 + 3 = 6.
        assert_eq!(m.path_cost(&net, net.leaf(0, 0), net.pop_root(0)), 6.0);
        // Sibling leaves: 1 + 1 = 2 (both at leaf level).
        assert_eq!(m.path_cost(&net, net.leaf(0, 0), net.leaf(0, 1)), 2.0);
        // Cross-pop (adjacent pops 0-1): 6 + 4 + 6 = 16.
        assert_eq!(m.path_cost(&net, net.leaf(0, 0), net.leaf(1, 0)), 16.0);
    }

    #[test]
    fn core_multiplier_costs() {
        let net = net();
        let m = LatencyModel::CoreMultiplier { d: 5 };
        // Within a pop, identical to unit.
        assert_eq!(
            m.path_cost(&net, net.leaf(0, 0), net.leaf(0, 7)),
            net.distance(net.leaf(0, 0), net.leaf(0, 7)) as f64
        );
        // Cross-pop: tree hops + 5 per core hop.
        let a = net.leaf(0, 0);
        let b = net.leaf(1, 0);
        let core_hops = net.core_distance(0, 1) as f64;
        assert_eq!(m.path_cost(&net, a, b), 3.0 + 3.0 + 5.0 * core_hops);
    }

    /// Regression: the level bounds used to be `debug_assert!`-only, so a
    /// `deeper_level > depth` or `from_level < to_level` call wrapped the
    /// `u32` subtraction to a ~4-billion-hop cost under `--release` while
    /// aborting under debug. The saturating contract must now hold in
    /// *both* profiles — this test is exercised by `cargo test` (debug)
    /// and by the release-profile test pass in `scripts/check.sh`.
    #[test]
    fn boundary_levels_saturate_instead_of_wrapping() {
        let m = LatencyModel::Progression;
        // Deeper than the tree: clamps to a leaf-level link (cost 1).
        assert_eq!(m.tree_link_cost(4, 3), 1.0);
        assert_eq!(m.tree_link_cost(u32::MAX, 3), 1.0);
        for m in [
            LatencyModel::Unit,
            LatencyModel::Progression,
            LatencyModel::CoreMultiplier { d: 7 },
        ] {
            // "Climbing" downward crosses no links.
            assert_eq!(m.climb_cost(1, 3, 5), 0.0, "{m:?}");
            assert_eq!(m.climb_cost(0, u32::MAX, 5), 0.0, "{m:?}");
            // Every in-range cost stays far below any wrapped u32 value.
            for from in 0..=5u32 {
                for to in 0..=from {
                    assert!(m.climb_cost(from, to, 5) <= 6.0 * 5.0, "{m:?}");
                }
            }
        }
    }

    #[test]
    fn climb_cost_zero_when_same_level() {
        for m in [
            LatencyModel::Unit,
            LatencyModel::Progression,
            LatencyModel::CoreMultiplier { d: 3 },
        ] {
            assert_eq!(m.climb_cost(2, 2, 5), 0.0);
        }
    }
}
