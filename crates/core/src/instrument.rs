//! Optional simulator instrumentation (the `obs` cargo feature).
//!
//! [`SimObs`] bundles everything a [`crate::sim::Simulator`] can report
//! while running: span timers for routing / cooperative lookup / transfer
//! accounting, request counters, sampled per-request [`TraceRecord`]s, and
//! throttled progress lines. Attach one with
//! [`crate::sim::Simulator::attach_obs`].
//!
//! With the (default) `obs` feature the struct carries live `icn-obs`
//! handles; with `--no-default-features` it compiles to an empty shell
//! whose methods are inlined away, so call sites in the simulator are
//! identical in both builds and the uninstrumented binary pays nothing.
//!
//! Span timers are themselves sampled (default: every 64th request) —
//! `Instant::now()` costs tens of nanoseconds, which would otherwise be
//! measurable against a request that routes in a few hundred. Counters and
//! the latency histogram are exact; only durations are sampled.

use icn_obs::{Profiler, Registry, TraceRecord, TraceSink};
use std::borrow::Cow;
use std::sync::Arc;

/// How often span timers fire (1 = every request). Durations are sampled
/// because reading the clock twice per span is the one instrumentation
/// cost that is not "a few atomics".
pub const DEFAULT_SPAN_SAMPLE: u64 = 64;

/// Per-cell accounting emitted by sweep drivers when a cell completes:
/// where the wall clock went, cell by cell. The struct exists in both
/// builds so sweep callbacks are feature-independent; without `obs` the
/// timing fields are zero.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellSample {
    /// Submission index of the cell within its batch.
    pub index: usize,
    /// Requests the cell simulated.
    pub requests: u64,
    /// Wall-clock nanoseconds the cell took (0 without `obs`).
    pub wall_ns: u64,
    /// Process peak RSS in KiB at completion (0 without `obs`).
    pub peak_rss_kb: u64,
}

#[cfg(feature = "obs")]
mod real {
    use super::*;
    use icn_obs::{Counter, PhaseHandle, Progress, ScopedTimer, SpanGuard, TimerHandle};
    use std::sync::Mutex;
    use std::time::Instant;

    /// Pre-resolved profiler phases for the simulator hot path.
    #[derive(Clone)]
    struct PhaseSpans {
        request: PhaseHandle,
        fault: PhaseHandle,
        probe: PhaseHandle,
        dir: PhaseHandle,
        select: PhaseHandle,
        evict: PhaseHandle,
    }

    /// Live instrumentation attached to a simulator run.
    #[derive(Clone)]
    pub struct SimObs {
        design: Cow<'static, str>,
        requests: Counter,
        failed: Counter,
        coop_probes: Counter,
        route: TimerHandle,
        coop: TimerHandle,
        transfer: TimerHandle,
        span_every: u64,
        trace: Option<Arc<TraceSink>>,
        progress: Option<Arc<Mutex<Progress>>>,
        profile: Option<PhaseSpans>,
    }

    impl SimObs {
        /// Instrumentation recording into `registry`, labelled with the
        /// design under test (the label lands in trace records). Design
        /// names are `&'static str` in practice, so the label is borrowed
        /// — trace records stamp it without allocating.
        pub fn new(registry: &Registry, design: impl Into<Cow<'static, str>>) -> Self {
            Self {
                design: design.into(),
                requests: registry.counter("sim.requests"),
                failed: registry.counter("sim.failed_requests"),
                coop_probes: registry.counter("sim.coop_probes"),
                route: registry.timer_handle("sim.route"),
                coop: registry.timer_handle("sim.coop_lookup"),
                transfer: registry.timer_handle("sim.transfer"),
                span_every: DEFAULT_SPAN_SAMPLE,
                trace: None,
                progress: None,
                profile: None,
            }
        }

        /// Also emit sampled per-request trace records to `sink`.
        pub fn with_trace(mut self, sink: Arc<TraceSink>) -> Self {
            self.trace = Some(sink);
            self
        }

        /// Override the span-timer sampling interval (1 = time everything).
        pub fn with_span_sampling(mut self, every: u64) -> Self {
            self.span_every = every.max(1);
            self
        }

        /// Also print throttled progress lines (requests/sec + ETA) for a
        /// run of `total` requests.
        pub fn with_progress(mut self, label: &str, total: u64) -> Self {
            self.progress = Some(Arc::new(Mutex::new(Progress::new(label, total))));
            self
        }

        /// Also record sampled per-phase spans (directory lookup, cache
        /// probe, cost selection, eviction, fault schedule) into
        /// `profiler`, at the same sampling interval as the span timers.
        pub fn with_profiler(mut self, profiler: &Profiler) -> Self {
            self.profile = Some(PhaseSpans {
                request: profiler.phase("sim.request"),
                fault: profiler.phase("sim.fault_schedule"),
                probe: profiler.phase("sim.cache_probe"),
                dir: profiler.phase("sim.dir_lookup"),
                select: profiler.phase("sim.cost_select"),
                evict: profiler.phase("sim.evict_insert"),
            });
            self
        }

        /// The design label given at construction.
        pub fn design(&self) -> &str {
            &self.design
        }

        /// Called once per request by the run loop.
        #[inline]
        pub fn on_request(&self, idx: u64) {
            if let Some(p) = &self.progress {
                if idx.is_multiple_of(1024) {
                    if let Ok(mut p) = p.lock() {
                        p.tick(idx);
                    }
                }
            }
        }

        /// Called when the run loop finishes `total` requests. The
        /// `sim.requests` counter is bumped here in one batched add — the
        /// run loop knows its exact length, so paying an atomic per
        /// request would buy nothing.
        pub fn on_finish(&self, total: u64) {
            self.requests.add(total);
            if let Some(p) = &self.progress {
                if let Ok(mut p) = p.lock() {
                    p.finish(total);
                }
            }
        }

        /// Called when a request fails under an active fault schedule
        /// (origin unreachable or saturated) — exact, never sampled.
        #[inline]
        pub fn on_failed(&self) {
            self.failed.inc();
        }

        /// A sampled span covering route computation + cache lookups.
        #[inline]
        pub fn route_span(&self, idx: u64) -> Option<ScopedTimer> {
            idx.is_multiple_of(self.span_every)
                .then(|| self.route.start())
        }

        /// A sampled span covering one scoped sibling lookup.
        #[inline]
        pub fn coop_span(&self, idx: u64) -> Option<ScopedTimer> {
            self.coop_probes.inc();
            idx.is_multiple_of(self.span_every)
                .then(|| self.coop.start())
        }

        /// A sampled span covering latency/congestion/insertion accounting.
        #[inline]
        pub fn transfer_span(&self, idx: u64) -> Option<ScopedTimer> {
            idx.is_multiple_of(self.span_every)
                .then(|| self.transfer.start())
        }

        /// Offers a trace record; `build` runs only when a sink is attached
        /// (the sink then applies its own every-Nth sampling). `build`
        /// receives the design label by value — cloning a borrowed `Cow`
        /// copies a pointer, not the string.
        #[inline]
        pub fn trace_with(&self, build: impl FnOnce(Cow<'static, str>) -> TraceRecord) {
            if let Some(sink) = &self.trace {
                sink.offer_with(|| build(self.design.clone()));
            }
        }

        #[inline]
        fn phase_span(
            &self,
            idx: u64,
            pick: impl FnOnce(&PhaseSpans) -> &PhaseHandle,
        ) -> Option<SpanGuard> {
            self.profile
                .as_ref()
                .and_then(|p| idx.is_multiple_of(self.span_every).then(|| pick(p).span()))
        }

        /// Sampled profiler span covering one whole request (the parent of
        /// every other phase span).
        #[inline]
        pub fn request_span(&self, idx: u64) -> Option<SpanGuard> {
            self.phase_span(idx, |p| &p.request)
        }

        /// Sampled profiler span covering fault-schedule advancement.
        #[inline]
        pub fn fault_span(&self, idx: u64) -> Option<SpanGuard> {
            self.phase_span(idx, |p| &p.fault)
        }

        /// Sampled profiler span covering cache probes along the path.
        #[inline]
        pub fn probe_span(&self, idx: u64) -> Option<SpanGuard> {
            self.phase_span(idx, |p| &p.probe)
        }

        /// Sampled profiler span covering the replica-directory lookup and
        /// candidate gathering.
        #[inline]
        pub fn dir_span(&self, idx: u64) -> Option<SpanGuard> {
            self.phase_span(idx, |p| &p.dir)
        }

        /// Sampled profiler span covering cost-based replica selection
        /// (nested inside [`SimObs::dir_span`]).
        #[inline]
        pub fn select_span(&self, idx: u64) -> Option<SpanGuard> {
            self.phase_span(idx, |p| &p.select)
        }

        /// Sampled profiler span covering response-path cache insertion
        /// and eviction.
        #[inline]
        pub fn evict_span(&self, idx: u64) -> Option<SpanGuard> {
            self.phase_span(idx, |p| &p.evict)
        }
    }

    /// A wall clock for per-cell sweep accounting. Lives here — not in
    /// `sweep.rs` — because `Instant` is banned from the deterministic
    /// core; this module is the one sanctioned gate.
    pub struct CellClock(Instant);

    impl CellClock {
        /// Starts the clock.
        pub fn start() -> Self {
            Self(Instant::now())
        }

        /// Nanoseconds since [`CellClock::start`].
        pub fn elapsed_ns(&self) -> u64 {
            self.0.elapsed().as_nanos() as u64
        }
    }

    /// Process peak RSS in KiB (0 when the platform hides it).
    pub fn peak_rss_kb() -> u64 {
        icn_obs::peak_rss_kb()
    }
}

#[cfg(not(feature = "obs"))]
mod real {
    use super::*;

    /// Compiled-out instrumentation: every method is an empty `#[inline]`
    /// shell, so the uninstrumented simulator is byte-for-byte free of
    /// observability costs while call sites stay identical.
    #[derive(Clone)]
    pub struct SimObs;

    /// Stand-in for `icn_obs::ScopedTimer` when spans are compiled out.
    pub struct NoSpan;

    impl SimObs {
        /// See the `obs`-enabled variant.
        pub fn new(_registry: &Registry, _design: impl Into<Cow<'static, str>>) -> Self {
            Self
        }

        /// See the `obs`-enabled variant.
        pub fn with_trace(self, _sink: Arc<TraceSink>) -> Self {
            self
        }

        /// See the `obs`-enabled variant.
        pub fn with_span_sampling(self, _every: u64) -> Self {
            self
        }

        /// See the `obs`-enabled variant.
        pub fn with_progress(self, _label: &str, _total: u64) -> Self {
            self
        }

        /// See the `obs`-enabled variant.
        pub fn with_profiler(self, _profiler: &Profiler) -> Self {
            self
        }

        /// See the `obs`-enabled variant.
        pub fn design(&self) -> &str {
            ""
        }

        /// See the `obs`-enabled variant.
        #[inline]
        pub fn on_request(&self, _idx: u64) {}

        /// See the `obs`-enabled variant.
        pub fn on_finish(&self, _total: u64) {}

        /// See the `obs`-enabled variant.
        #[inline]
        pub fn on_failed(&self) {}

        /// See the `obs`-enabled variant.
        #[inline]
        pub fn route_span(&self, _idx: u64) -> Option<NoSpan> {
            None
        }

        /// See the `obs`-enabled variant.
        #[inline]
        pub fn coop_span(&self, _idx: u64) -> Option<NoSpan> {
            None
        }

        /// See the `obs`-enabled variant.
        #[inline]
        pub fn transfer_span(&self, _idx: u64) -> Option<NoSpan> {
            None
        }

        /// See the `obs`-enabled variant.
        #[inline]
        pub fn trace_with(&self, _build: impl FnOnce(Cow<'static, str>) -> TraceRecord) {}

        /// See the `obs`-enabled variant.
        #[inline]
        pub fn request_span(&self, _idx: u64) -> Option<NoSpan> {
            None
        }

        /// See the `obs`-enabled variant.
        #[inline]
        pub fn fault_span(&self, _idx: u64) -> Option<NoSpan> {
            None
        }

        /// See the `obs`-enabled variant.
        #[inline]
        pub fn probe_span(&self, _idx: u64) -> Option<NoSpan> {
            None
        }

        /// See the `obs`-enabled variant.
        #[inline]
        pub fn dir_span(&self, _idx: u64) -> Option<NoSpan> {
            None
        }

        /// See the `obs`-enabled variant.
        #[inline]
        pub fn select_span(&self, _idx: u64) -> Option<NoSpan> {
            None
        }

        /// See the `obs`-enabled variant.
        #[inline]
        pub fn evict_span(&self, _idx: u64) -> Option<NoSpan> {
            None
        }
    }

    /// See the `obs`-enabled variant: compiled-out cell clock.
    pub struct CellClock;

    impl CellClock {
        /// See the `obs`-enabled variant.
        pub fn start() -> Self {
            Self
        }

        /// See the `obs`-enabled variant (always 0 here).
        pub fn elapsed_ns(&self) -> u64 {
            0
        }
    }

    /// See the `obs`-enabled variant (always 0 here).
    pub fn peak_rss_kb() -> u64 {
        0
    }
}

pub use real::{peak_rss_kb, CellClock, SimObs};

#[cfg(not(feature = "obs"))]
pub use real::NoSpan;

#[cfg(all(test, feature = "obs"))]
mod tests {
    use super::*;

    #[test]
    fn spans_are_sampled() {
        let registry = Registry::new();
        let obs = SimObs::new(&registry, "EDGE").with_span_sampling(10);
        for idx in 0..100 {
            let _r = obs.route_span(idx);
            let _t = obs.transfer_span(idx);
            obs.on_request(idx);
        }
        obs.on_finish(100);
        let snap = registry.snapshot();
        assert_eq!(snap.counters["sim.requests"], 100);
        assert_eq!(snap.timers["sim.route"].count, 10);
        assert_eq!(snap.timers["sim.transfer"].count, 10);
    }

    #[test]
    fn profiler_phases_sample_and_nest() {
        let registry = Registry::new();
        let profiler = Profiler::new();
        let obs = SimObs::new(&registry, "EDGE")
            .with_span_sampling(10)
            .with_profiler(&profiler);
        for idx in 0..100u64 {
            let _req = obs.request_span(idx);
            {
                let _dir = obs.dir_span(idx);
                drop(obs.select_span(idx));
            }
            drop(obs.evict_span(idx));
        }
        let snap = profiler.snapshot();
        for phase in [
            "sim.request",
            "sim.dir_lookup",
            "sim.cost_select",
            "sim.evict_insert",
        ] {
            assert_eq!(snap.phases[phase].count, 10, "{phase}");
        }
        // Without a profiler attached, the same call sites are no-ops.
        let bare = SimObs::new(&registry, "EDGE");
        assert!(bare.request_span(0).is_none());
        // The request span is the parent: nested phase totals fit inside.
        let req = &snap.phases["sim.request"];
        let dir = &snap.phases["sim.dir_lookup"];
        assert!(dir.total_ns.sum <= req.total_ns.sum);
        assert!(req.self_ns.sum <= req.total_ns.sum);
    }

    #[test]
    fn cell_clock_advances() {
        let clock = CellClock::start();
        std::thread::sleep(std::time::Duration::from_millis(1));
        assert!(clock.elapsed_ns() > 0);
        // RSS is platform-dependent but must not panic.
        let _ = peak_rss_kb();
    }

    #[test]
    fn trace_records_carry_the_design_label() {
        struct Sink(std::sync::Mutex<Vec<u8>>);
        // A TraceSink needs a Write; share a Vec through a tiny adapter.
        #[derive(Clone)]
        struct W(Arc<Sink>);
        impl std::io::Write for W {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0 .0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let store = Arc::new(Sink(std::sync::Mutex::new(Vec::new())));
        let sink = Arc::new(TraceSink::new(Box::new(W(Arc::clone(&store))), 1));
        let registry = Registry::new();
        let obs = SimObs::new(&registry, "ICN-NR").with_trace(sink);
        obs.trace_with(|design| TraceRecord {
            seq: 1,
            design,
            ..TraceRecord::default()
        });
        let text = String::from_utf8(store.0.lock().unwrap().clone()).unwrap();
        let rec = TraceRecord::from_json(text.trim()).unwrap();
        assert_eq!(rec.design, "ICN-NR");
    }
}
