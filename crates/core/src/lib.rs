//! Request-level simulator for ICN caching architectures.
//!
//! This is the paper's primary analysis engine (§3–§5): it routes every
//! request of a trace over a [`icn_topology::Network`], serves it from the
//! first available cache (or the origin), caches the object along the
//! response path, and accounts the three metrics the paper reports —
//! query latency, link congestion, and origin-server load — as percentage
//! improvements over a no-caching run.
//!
//! The representative designs of §4.1 ([`DesignKind::IcnSp`],
//! [`DesignKind::IcnNr`], [`DesignKind::Edge`], [`DesignKind::EdgeCoop`],
//! [`DesignKind::EdgeNorm`]) and the §5.2 EDGE extensions are expressed as
//! combinations of four orthogonal knobs (cache placement, request routing,
//! sibling cooperation, and budget scaling) in [`design`].
//!
//! Routing and lookup are deliberately free, matching the paper's
//! conservative assumption: "we conservatively assume that routing and
//! lookup have zero cost" (§3).

#![warn(missing_docs)]

pub mod capacity;
pub mod config;
pub mod costs;
pub mod design;
pub mod dir;
pub mod fault;
pub mod instrument;
pub mod latency;
pub mod metrics;
pub mod shard;
pub mod sim;
pub mod sweep;

pub use config::ExperimentConfig;
pub use costs::CostTable;
pub use design::{CacheSet, DesignKind, DesignSpec, Routing};
pub use fault::{FaultConfig, FaultSchedule};
pub use latency::LatencyModel;
pub use metrics::{Improvement, RunMetrics};
pub use shard::{ShardOpts, ShardRun};
pub use sim::Simulator;
pub use sweep::Scenario;
