//! Request-serving capacity limits (§5.1, "Other parameters").
//!
//! "The number of queries each node can serve in a certain period of time
//! is limited. If a request arrives at a cache that is overloaded, this
//! request is redirected to the next cache on the query path (or the
//! origin)." Time is measured in simulated requests: each window of
//! `window` consecutive requests resets the per-node served counters.
//! Origins always serve — a request can never be dropped.

use serde::{Deserialize, Serialize};

/// Per-node serving capacity configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServingCapacity {
    /// Maximum requests a cache may serve per window.
    pub per_node: u32,
    /// Window length in simulated requests.
    pub window: u32,
}

/// Tracks per-node served counts across windows.
#[derive(Debug, Clone)]
pub struct CapacityTracker {
    cfg: ServingCapacity,
    served: Vec<u32>,
    current_window: u64,
}

impl CapacityTracker {
    /// Creates a tracker for `nodes` routers.
    pub fn new(cfg: ServingCapacity, nodes: usize) -> Self {
        assert!(cfg.window >= 1, "window must be >= 1");
        Self {
            cfg,
            served: vec![0; nodes],
            current_window: 0,
        }
    }

    /// Attempts to serve request number `req_idx` at `node`; returns false
    /// when the node is saturated for the current window.
    pub fn try_serve(&mut self, node: u32, req_idx: u64) -> bool {
        let window = req_idx / self.cfg.window as u64;
        if window != self.current_window {
            self.current_window = window;
            self.served.iter_mut().for_each(|c| *c = 0);
        }
        let count = &mut self.served[node as usize];
        if *count < self.cfg.per_node {
            *count += 1;
            true
        } else {
            false
        }
    }

    /// True when `node` has exhausted its budget for the tracker's
    /// current window — a read-only snapshot (no window roll), used by the
    /// cascading-overload rule to sample saturation at fault-window
    /// boundaries.
    pub fn is_saturated(&self, node: u32) -> bool {
        self.served[node as usize] >= self.cfg.per_node
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturates_within_window() {
        let mut t = CapacityTracker::new(
            ServingCapacity {
                per_node: 2,
                window: 100,
            },
            4,
        );
        assert!(t.try_serve(0, 0));
        assert!(t.try_serve(0, 1));
        assert!(!t.try_serve(0, 2));
        // Other nodes unaffected.
        assert!(t.try_serve(1, 3));
    }

    #[test]
    fn window_reset() {
        let mut t = CapacityTracker::new(
            ServingCapacity {
                per_node: 1,
                window: 10,
            },
            2,
        );
        assert!(t.try_serve(0, 0));
        assert!(!t.try_serve(0, 9));
        assert!(t.try_serve(0, 10), "new window resets counters");
    }

    #[test]
    fn windows_can_be_skipped() {
        let mut t = CapacityTracker::new(
            ServingCapacity {
                per_node: 1,
                window: 5,
            },
            1,
        );
        assert!(t.try_serve(0, 0));
        assert!(t.try_serve(0, 27));
        assert!(!t.try_serve(0, 28));
    }
}
