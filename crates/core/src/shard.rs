//! Intra-cell parallelism: epoch-sharded simulation with a deterministic
//! merge (see DESIGN.md §13).
//!
//! The sequential simulator ([`crate::sim::Simulator`]) is a strict
//! request-at-a-time loop: request `i+1` may observe cache state written
//! by request `i`, so the loop cannot be parallelized without changing
//! *some* observable ordering. This module trades a bounded, *fully
//! deterministic* amount of cross-PoP staleness for parallelism:
//!
//! 1. The request stream is cut into fixed-size **epochs** (`epoch_len`
//!    requests, [`DEFAULT_EPOCH_LEN`] by default).
//! 2. Within an epoch, every PoP is an independent **lane**: a worker
//!    thread simulates the lane's own requests against the lane's *live*
//!    own-PoP state plus a **frozen snapshot** of cross-PoP state (the
//!    replica directory under nearest-replica routing; PoP-root residency
//!    bits under shortest-path routing). Effects on foreign PoPs are not
//!    applied in place — they are recorded as [`Delta`]s.
//! 3. At the epoch boundary a sequential **reconcile** applies every
//!    delta in canonical `(source pop, emission seq)` order, retires TTL
//!    leases and crash flushes up to the boundary, and resyncs each
//!    lane's dirty directory entries into the shared snapshot.
//!
//! The **virtual shard is the PoP**, not the worker: lane state and lane
//! schedules never depend on how lanes are packed onto threads, so the
//! output is bit-identical for any `CELL_SHARDS` worker count (asserted
//! by `tests/shard_determinism.rs` and byte-compared by
//! `scripts/check.sh`). The epoch length *is* semantic — it bounds how
//! stale the frozen snapshot may get — so `ICN_EPOCH_LEN` is a modeling
//! knob, while the shard count is pure mechanics.
//!
//! Documented deviations from the sequential engine (each deterministic,
//! each bounded by one epoch): foreign replica sets are one epoch stale;
//! serving-capacity and degraded-origin counters are per-lane views;
//! cross-PoP inserts, touches, and evictions land at the epoch boundary
//! (before that boundary's crash flushes); and probabilistic insertion
//! draws from per-lane RNG streams. A single-PoP network has no foreign
//! state at all, so there the epoch engine reproduces the sequential
//! simulator bit-for-bit.

use crate::capacity::CapacityTracker;
use crate::config::{ExperimentConfig, InsertionPolicy};
use crate::costs::CostTable;
use crate::design::{DesignSpec, Routing};
use crate::dir::{ReplicaMasks, MAX_MASK_TREE};
use crate::fault::{FaultSchedule, NO_GROUP};
use crate::instrument::CellClock;
use crate::metrics::RunMetrics;
use crate::sim::{min_candidate, FaultState};
use icn_cache::budget::per_node_budgets;
use icn_cache::CacheSlot;
use icn_topology::{Network, NodeId};
use icn_workload::trace::Request;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
// lint:allow(deterministic-core): lane directories are keyed by object id; only value lookups and a commuting retain are used, and every observable order is re-established by sorting `dirty` at resync
use std::collections::{HashMap, VecDeque};

/// Default epoch length in requests. Small enough that cross-PoP replica
/// knowledge lags by well under a fault window at realistic scales, large
/// enough that the sequential reconcile is a rounding error per request.
pub const DEFAULT_EPOCH_LEN: u64 = 4096;

/// Tuning knobs for [`run_sharded`].
#[derive(Debug, Clone, Copy)]
pub struct ShardOpts {
    /// Worker threads simulating lanes within an epoch. Output bytes are
    /// independent of this value; only wall-clock changes.
    pub shards: usize,
    /// Requests per epoch (semantic — see the module docs); clamped to a
    /// minimum of 1.
    pub epoch_len: u64,
    /// Route cost queries and candidate selection through the reference
    /// implementations (the `ICN_SIM_REFERENCE=1` mode of
    /// [`crate::sim::Simulator`]); must be bit-identical to the flat path.
    pub reference: bool,
}

impl Default for ShardOpts {
    fn default() -> Self {
        Self {
            shards: 1,
            epoch_len: DEFAULT_EPOCH_LEN,
            reference: false,
        }
    }
}

/// What [`run_sharded`] produced.
#[derive(Debug)]
pub struct ShardRun {
    /// Accumulated metrics, merged from the lanes in PoP order.
    pub metrics: RunMetrics,
    /// Number of epochs processed.
    pub epochs: u64,
    /// Nanoseconds spent in the sequential reconcile across all epochs
    /// (0 without the `obs` feature, which owns the only clock).
    pub reconcile_ns: u64,
    /// Worker threads actually used (`min(shards, PoPs)`).
    pub workers: usize,
}

/// True when the epoch-sharded engine can represent this network/design
/// pair: nearest-replica routing needs the `u128` rank masks (trees up to
/// [`MAX_MASK_TREE`] nodes), and shortest-path routing with cache-equipped
/// PoP roots needs one residency bit per PoP (at most 128 PoPs). Callers
/// fall back to the sequential simulator otherwise.
pub fn supported(net: &Network, cfg: &ExperimentConfig) -> bool {
    let spec = cfg.design.spec(net);
    match spec.routing {
        Routing::NearestReplica => net.tree.nodes() <= MAX_MASK_TREE,
        Routing::ShortestPathToOrigin => {
            !spec.cache_set.has_cache(net, net.pop_root(0)) || net.pops() <= 128
        }
    }
}

/// Read-only world shared by every lane during one epoch. All cross-PoP
/// state a lane may consult lives here, frozen; everything mutable is
/// lane-owned.
struct Ctx<'a> {
    net: &'a Network,
    spec: &'a DesignSpec,
    cfg: &'a ExperimentConfig,
    costs: &'a CostTable,
    origins: &'a [u16],
    sizes: &'a [u32],
    /// `equipped[n]` for every router in the network — the pure
    /// `CacheSet::has_cache` answer, needed for foreign routers on
    /// response paths (LCD slot consumption and RNG draws key on it).
    equipped: &'a [bool],
    /// Frozen replica directory (nearest-replica routing): lanes read
    /// foreign PoP groups from here and their own PoP from the live
    /// per-lane directory.
    masks: Option<&'a ReplicaMasks>,
    /// Frozen PoP-root residency (shortest-path routing with equipped
    /// roots): bit `p` of `roots[o]` marks object `o` cached at PoP `p`'s
    /// root as of the last reconcile.
    roots: Option<&'a [u128]>,
    reference: bool,
}

/// One cross-PoP effect, recorded during an epoch and applied at the
/// boundary in `(source pop, emission seq)` order.
#[derive(Debug, Clone, Copy)]
enum Delta {
    /// A serve from a foreign replica: recency/frequency credit.
    Touch { node: NodeId, object: u32 },
    /// A detected-poisoned foreign replica: drop it.
    Evict { node: NodeId, object: u32 },
    /// Response-path insertion at a foreign router, stamped with the
    /// requesting index (recency + TTL lease clock).
    Insert { idx: u64, node: NodeId, object: u32 },
}

/// Where a shortest-path request was served (lane-local mirror of the
/// sequential simulator's choice).
#[derive(Clone, Copy)]
enum Server {
    Cache { node: NodeId, path_idx: usize },
    Sibling { sibling: NodeId, via_idx: usize },
    Origin,
}

/// Nearest-replica outcome under faults (lane-local mirror).
enum NrChoice {
    Replica {
        cost: f64,
        node: NodeId,
        poisoned: bool,
    },
    Origin,
    Failed,
}

/// All mutable state of one PoP: its caches, its slice of the request
/// stream for the current epoch, and its private views of the capacity
/// and fault models. A lane only ever touches its own fields plus the
/// frozen [`Ctx`], which is what makes epochs embarrassingly parallel.
struct Lane {
    pop: u32,
    node_base: NodeId,
    tn: u32,
    /// Own-PoP cache slots, indexed by tree index.
    caches: Vec<CacheSlot>,
    /// Live own-PoP replica directory (nearest-replica routing): object →
    /// climb-rank mask, exactly mirroring `caches` contents. Only value
    /// lookups and a commuting crash-flush retain touch it; publication
    /// order is canonicalized by sorting `dirty` at resync.
    // lint:allow(deterministic-core): keyed lookups plus a commuting retain; iteration order never reaches metrics (dirty is sorted before resync)
    dir: HashMap<u32, u128>,
    /// Objects whose own-PoP directory entry (or root residency) changed
    /// this epoch; sorted + deduped at resync.
    dirty: Vec<u32>,
    /// The own root cache was crash-flushed this epoch (shortest-path
    /// residency tracking needs a full sweep, not a dirty list).
    root_flush: bool,
    track_masks: bool,
    track_roots: bool,
    /// Private full-network serving-capacity view (documented deviation:
    /// per-lane counters, not a global tracker).
    capacity: Option<CapacityTracker>,
    /// Private fault materialization. The schedule is a pure function of
    /// `(seed, entity, window)`, so every lane rebuilds identical
    /// node/link/origin state; only the cascade seeding (fed by the
    /// per-lane capacity view above) is a documented deviation.
    fault: Option<FaultState>,
    /// Pending own-PoP lease expiries, monotone within an epoch; foreign
    /// inserts merge in at the boundary via `ttl_pending`.
    ttl_queue: VecDeque<(u64, NodeId, u32)>,
    /// Leases opened by foreign-sourced inserts during reconcile, merged
    /// into `ttl_queue` (sorted, stable w.r.t. existing entries) at
    /// `close_epoch`.
    ttl_pending: Vec<(u64, NodeId, u32)>,
    ttl_len: Option<u64>,
    /// Per-lane insertion RNG. Lane 0 uses the sequential simulator's
    /// seed so a single-PoP network reproduces it bit-for-bit.
    rng: StdRng,
    metrics: RunMetrics,
    /// Cross-PoP effects recorded this epoch, in emission order.
    deltas: Vec<Delta>,
    /// This lane's slice of the epoch: `(global request idx, request)`.
    bucket: Vec<(u64, Request)>,
    // Persistent scratch, same rationale as the sequential simulator's.
    path_buf: Vec<NodeId>,
    nodes_buf: Vec<NodeId>,
    links_buf: Vec<u32>,
    siblings_buf: Vec<u32>,
    cand_cost: Vec<f64>,
    cand_node: Vec<NodeId>,
    cand_pairs: Vec<(f64, NodeId)>,
}

impl Lane {
    #[allow(clippy::too_many_arguments)]
    fn new(
        pop: u32,
        net: &Network,
        cfg: &ExperimentConfig,
        spec: &DesignSpec,
        budgets: &[usize],
        objects: usize,
        track_masks: bool,
        track_roots: bool,
    ) -> Self {
        let tn = net.tree.nodes();
        let node_base = pop * tn;
        let mut caches: Vec<CacheSlot> = Vec::with_capacity(tn as usize);
        for t in 0..tn {
            let n = node_base + t;
            if spec.cache_set.has_cache(net, n) {
                let cap = if spec.infinite_budget {
                    objects
                } else {
                    (budgets[n as usize] as f64 * spec.budget_multiplier).round() as usize
                };
                caches.push(CacheSlot::build(cfg.policy, cap));
            } else {
                caches.push(CacheSlot::None);
            }
        }
        let ttl_len = caches.iter().find_map(CacheSlot::ttl);
        Self {
            pop,
            node_base,
            tn,
            caches,
            dir: Default::default(),
            dirty: Vec::new(),
            root_flush: false,
            track_masks,
            track_roots,
            capacity: cfg
                .capacity
                .map(|c| CapacityTracker::new(c, net.node_count() as usize)),
            fault: cfg
                .fault
                .map(|fc| FaultState::new(FaultSchedule::new(fc), net)),
            ttl_queue: VecDeque::new(),
            ttl_pending: Vec::new(),
            ttl_len,
            // Golden-ratio-stride seeds: distinct per lane, legacy seed at
            // lane 0 (single-PoP equivalence includes the RNG stream).
            rng: StdRng::seed_from_u64(
                0xd1ce_cafe ^ (pop as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            ),
            metrics: RunMetrics::new(
                net.link_count() as usize,
                net.pops() as usize,
                net.tree.depth,
            ),
            deltas: Vec::new(),
            bucket: Vec::new(),
            path_buf: Vec::new(),
            nodes_buf: Vec::new(),
            links_buf: Vec::new(),
            siblings_buf: Vec::new(),
            cand_cost: Vec::new(),
            cand_node: Vec::new(),
            cand_pairs: Vec::new(),
        }
    }

    /// Drains this lane's epoch bucket through the request pipeline.
    fn run_bucket(&mut self, ctx: &Ctx) {
        let mut bucket = std::mem::take(&mut self.bucket);
        for &(idx, req) in &bucket {
            self.process(ctx, idx, req);
        }
        bucket.clear();
        self.bucket = bucket;
    }

    /// One request, mirroring `Simulator::process` (minus instrumentation:
    /// instrumented runs stay on the sequential engine).
    fn process(&mut self, ctx: &Ctx, idx: u64, req: Request) {
        let leaf = ctx.net.leaf(req.pop as u32, req.leaf as u32);
        let origin_pop = ctx.origins[req.object as usize] as u32;
        self.metrics.requests += 1;
        if self.ttl_len.is_some() {
            self.expire_due(ctx.costs, idx);
        }
        if self.fault.is_some() {
            self.advance_faults(ctx.net, ctx.costs, idx);
        }
        match ctx.spec.routing {
            Routing::ShortestPathToOrigin => {
                self.process_sp(ctx, idx, leaf, req.object, origin_pop)
            }
            Routing::NearestReplica => self.process_nr(ctx, idx, leaf, req.object, origin_pop),
        }
    }

    /// Retires own-PoP leases due at or before `now` (see
    /// `Simulator::expire_due` for the stamp contract).
    fn expire_due(&mut self, costs: &CostTable, now: u64) {
        while let Some(&(stamp, node, object)) = self.ttl_queue.front() {
            if stamp > now {
                break;
            }
            self.ttl_queue.pop_front();
            let t = node - self.node_base;
            if self.caches[t as usize].expire(object as u64, stamp) {
                self.dir_note_remove(costs, t, object);
            }
        }
    }

    /// Rolls this lane's fault state to the window containing `idx`,
    /// crash-flushing *own* caches along the way (foreign crashes are the
    /// owning lane's job — every lane sees the same pure schedule).
    fn advance_faults(&mut self, net: &Network, costs: &CostTable, idx: u64) {
        let Some(mut fault) = self.fault.take() else {
            return;
        };
        let w = fault.schedule.window_of(idx);
        if w != fault.window {
            let first = if fault.window == u64::MAX {
                0
            } else {
                fault.window + 1
            };
            for step in first..=w {
                for t in 0..self.tn {
                    if !self.caches[t as usize].is_equipped() {
                        continue;
                    }
                    let node = self.node_base + t;
                    let crashed = fault.schedule.node_crashes(node, step)
                        || fault.groups.as_ref().is_some_and(|g| {
                            let grp = g.node_group(node);
                            grp != NO_GROUP && fault.schedule.group_event(grp, step)
                        });
                    if crashed {
                        self.flush_cache(costs, t);
                    }
                }
            }
            fault.rebuild(w, net);
        }
        self.fault = Some(fault);
    }

    /// Empties the own cache at tree index `t` (crash semantics), keeping
    /// the lane directory consistent.
    fn flush_cache(&mut self, costs: &CostTable, t: u32) {
        if !self.caches[t as usize].is_equipped() {
            return;
        }
        if !self.caches[t as usize].is_empty() {
            if self.track_masks {
                let bit = 1u128 << costs.rank_of(t);
                let Lane { dir, dirty, .. } = self;
                // Commuting per-entry bit clear; dirty order is
                // canonicalized by the sort at resync.
                dir.retain(|&o, mask| {
                    if *mask & bit != 0 {
                        *mask &= !bit;
                        dirty.push(o);
                    }
                    *mask != 0
                });
            } else if self.track_roots && t == 0 {
                self.root_flush = true;
            }
        }
        self.caches[t as usize].clear();
    }

    /// Marks `object` present at own tree index `t` in the lane directory
    /// (or root-residency dirty list).
    fn dir_note_insert(&mut self, costs: &CostTable, t: u32, object: u32) {
        if self.track_masks {
            let r = costs.rank_of(t);
            *self.dir.entry(object).or_insert(0) |= 1u128 << r;
            self.dirty.push(object);
        } else if self.track_roots && t == 0 {
            self.dirty.push(object);
        }
    }

    /// Clears `object` at own tree index `t` from the lane directory (or
    /// marks root residency dirty).
    fn dir_note_remove(&mut self, costs: &CostTable, t: u32, object: u32) {
        if self.track_masks {
            let r = costs.rank_of(t);
            if let Some(mask) = self.dir.get_mut(&object) {
                *mask &= !(1u128 << r);
                if *mask == 0 {
                    self.dir.remove(&object);
                }
                self.dirty.push(object);
            }
        } else if self.track_roots && t == 0 {
            self.dirty.push(object);
        }
    }

    /// True when the cache node is not crashed this window.
    #[inline]
    fn node_up(&self, node: NodeId) -> bool {
        self.fault
            .as_ref()
            .is_none_or(|f| !f.node_down[node as usize])
    }

    /// True when every link on the unique path between `a` and `b` is up.
    fn path_live(&mut self, net: &Network, a: NodeId, b: NodeId) -> bool {
        match &self.fault {
            None => return true,
            Some(f) if !f.any_link_down => return true,
            Some(_) => {}
        }
        let mut links = std::mem::take(&mut self.links_buf);
        links.clear();
        net.path_links_into(a, b, &mut links);
        let live = match &self.fault {
            Some(f) => links.iter().all(|&l| !f.link_down[l as usize]),
            None => true,
        };
        self.links_buf = links;
        live
    }

    /// The link id between two adjacent routers on a climb-only path.
    #[inline]
    fn link_between(&self, net: &Network, a: NodeId, b: NodeId) -> u32 {
        let (pa, pb) = (net.pop_of(a), net.pop_of(b));
        if pa == pb {
            net.tree_link(a)
        } else {
            net.core_link(pa, pb)
        }
    }

    /// Index of the last node on `path` reachable from `path[0]` under
    /// the current link faults.
    fn reachable_prefix(&self, net: &Network, path: &[NodeId]) -> usize {
        let last = path.len() - 1;
        let Some(f) = &self.fault else {
            return last;
        };
        if !f.any_link_down {
            return last;
        }
        for j in 1..path.len() {
            if f.link_down[self.link_between(net, path[j - 1], path[j]) as usize] {
                return j - 1;
            }
        }
        last
    }

    /// Origin-serve gate under degraded-origin faults (per-lane capacity
    /// view — documented deviation).
    #[inline]
    fn try_origin(&mut self, origin_pop: u32, idx: u64) -> bool {
        match &mut self.fault {
            None => true,
            Some(f) => {
                !f.origin_degraded[origin_pop as usize]
                    || f.origin_capacity.try_serve(origin_pop, idx)
            }
        }
    }

    #[inline]
    fn record_served(&mut self, latency: f64) {
        self.metrics.total_latency += latency;
        self.metrics.record_latency(latency);
        if self.fault.as_ref().is_some_and(|f| f.fault_active) {
            self.metrics.record_fault_latency(latency);
        }
    }

    #[inline]
    fn record_failed(&mut self) {
        self.metrics.failed_requests += 1;
    }

    /// True when the cached copy of `object` at `node` is corrupted this
    /// window (a pure schedule read — valid for foreign nodes too).
    #[inline]
    fn replica_corrupted(&self, node: NodeId, object: u32) -> bool {
        self.fault
            .as_ref()
            .is_some_and(|f| f.schedule.replica_corrupted(node, object, f.window))
    }

    /// Capacity gate (per-lane counters — documented deviation).
    #[inline]
    fn try_capacity(&mut self, node: NodeId, idx: u64) -> bool {
        match &mut self.capacity {
            None => true,
            Some(t) => t.try_serve(node, idx),
        }
    }

    #[inline]
    fn transfer_weight(&self, ctx: &Ctx, object: u32) -> u64 {
        if ctx.cfg.weight_by_size {
            ctx.sizes[object as usize] as u64
        } else {
            1
        }
    }

    #[inline]
    fn add_transfer(&mut self, link: u32, weight: u64) {
        self.metrics.link_transfers[link as usize] += weight;
    }

    /// Path cost, flat table or reference recomputation (bit-identical).
    #[inline]
    fn path_cost(&self, ctx: &Ctx, a: NodeId, b: NodeId) -> f64 {
        if ctx.reference {
            ctx.cfg.latency.path_cost(ctx.net, a, b)
        } else {
            ctx.costs.path_cost(a, b)
        }
    }

    /// Membership probe: live own caches, frozen root residency for
    /// foreign routers (shortest-path walks only ever cross foreign *PoP
    /// roots* — the core path is root-to-root).
    #[inline]
    fn cache_contains(&self, ctx: &Ctx, node: NodeId, object: u32) -> bool {
        if !self.node_up(node) {
            return false;
        }
        let p = node / self.tn;
        if p == self.pop {
            self.caches[(node - self.node_base) as usize].contains(object as u64)
        } else {
            match ctx.roots {
                Some(roots) => roots[object as usize] & (1u128 << p) != 0,
                None => false,
            }
        }
    }

    /// Recency credit: in place for own caches, deferred for foreign.
    #[inline]
    fn cache_touch(&mut self, node: NodeId, object: u32) {
        if node / self.tn == self.pop {
            self.caches[(node - self.node_base) as usize].touch(object as u64);
        } else {
            self.deltas.push(Delta::Touch { node, object });
        }
    }

    /// Drops a detected-poisoned replica: in place for own caches,
    /// deferred for foreign.
    fn evict_replica(&mut self, costs: &CostTable, node: NodeId, object: u32) {
        if node / self.tn == self.pop {
            let t = node - self.node_base;
            if self.caches[t as usize].remove(object as u64) {
                self.dir_note_remove(costs, t, object);
            }
        } else {
            self.deltas.push(Delta::Evict { node, object });
        }
    }

    /// Inserts `object` at `node` at logical time `idx`: in place for own
    /// caches, deferred (as a [`Delta::Insert`]) for foreign. The
    /// origin-root, crash, and equipment gates run here at emission time,
    /// against the same window the sequential simulator would consult.
    fn cache_insert(&mut self, ctx: &Ctx, idx: u64, node: NodeId, object: u32) {
        let p = node / self.tn;
        let t = node - p * self.tn;
        if ctx.origins[object as usize] as u32 == p && t == 0 {
            return; // origin roots never cache what they already host
        }
        if !self.node_up(node) {
            return;
        }
        if !ctx.equipped[node as usize] {
            return;
        }
        if p != self.pop {
            self.deltas.push(Delta::Insert { idx, node, object });
            return;
        }
        let c = &mut self.caches[t as usize];
        let had = c.contains(object as u64);
        let evicted = c.insert_at(object as u64, idx);
        let stored = c.contains(object as u64);
        if let Some(ttl) = self.ttl_len {
            if stored {
                self.ttl_queue.push_back((idx + ttl, node, object));
            }
        }
        if let Some(e) = evicted {
            self.dir_note_remove(ctx.costs, t, e as u32);
        }
        if !had && stored {
            self.dir_note_insert(ctx.costs, t, object);
        }
    }

    /// Response-path insertion policy for one router (mirrors
    /// `Simulator::insert_on_response`, including the LCD slot and the
    /// RNG draw keying on equipment of *foreign* routers via the shared
    /// pure `equipped` table).
    #[inline]
    fn insert_on_response(
        &mut self,
        ctx: &Ctx,
        idx: u64,
        node: NodeId,
        object: u32,
        lcd_available: &mut bool,
    ) {
        let equipped = ctx.equipped[node as usize];
        let insert = match ctx.cfg.insertion {
            InsertionPolicy::Everywhere => true,
            InsertionPolicy::LeaveCopyDown => {
                let take = equipped && *lcd_available;
                if take {
                    *lcd_available = false;
                }
                take
            }
            InsertionPolicy::Probabilistic { p } => equipped && self.rng.gen::<f64>() < p,
        };
        if insert {
            self.cache_insert(ctx, idx, node, object);
        }
    }

    /// True when both links of the sibling detour are up.
    #[inline]
    fn detour_live(&self, net: &Network, via: NodeId, sibling: NodeId) -> bool {
        match &self.fault {
            None => true,
            Some(f) => {
                !f.any_link_down
                    || (!f.link_down[net.tree_link(via) as usize]
                        && !f.link_down[net.tree_link(sibling) as usize])
            }
        }
    }

    /// Shortest-path-to-origin routing (mirrors `Simulator::process_sp`;
    /// foreign on-path routers are PoP roots probed through the frozen
    /// residency bits).
    fn process_sp(&mut self, ctx: &Ctx, idx: u64, leaf: NodeId, object: u32, origin_pop: u32) {
        let mut path = std::mem::take(&mut self.path_buf);
        ctx.net.sp_path_nodes_into(leaf, origin_pop, &mut path);
        let last = path.len() - 1;
        let reach = self.reachable_prefix(ctx.net, &path);

        let mut server = if reach == last {
            Some(Server::Origin)
        } else {
            None
        };
        let mut penalty = 0.0;
        let mut poisoned = false;
        'walk: for (i, &node) in path.iter().enumerate() {
            if i == last || i > reach {
                break; // the origin always serves what it owns
            }
            if self.cache_contains(ctx, node, object) && self.try_capacity(node, idx) {
                if self.replica_corrupted(node, object) {
                    if ctx.spec.self_certifying {
                        self.metrics.corrupt_detected += 1;
                        self.evict_replica(ctx.costs, node, object);
                        penalty += self.path_cost(ctx, path[0], node) + 1.0;
                    } else {
                        poisoned = true;
                        server = Some(Server::Cache { node, path_idx: i });
                        break;
                    }
                } else {
                    server = Some(Server::Cache { node, path_idx: i });
                    break;
                }
            }
            if ctx.spec.sibling_coop
                && ctx.equipped[node as usize]
                && self.node_up(node)
                && ctx.net.tree_index(node) != 0
            {
                // Scoped cooperative lookup; non-root on-path nodes are
                // always in the requesting lane's own PoP.
                let pop = ctx.net.pop_of(node);
                let t = ctx.net.tree_index(node);
                let mut sibs = std::mem::take(&mut self.siblings_buf);
                sibs.clear();
                sibs.extend(ctx.net.tree.siblings(t));
                let mut found = None;
                for &st in &sibs {
                    let sib = ctx.net.node(pop, st);
                    if self.detour_live(ctx.net, node, sib)
                        && self.cache_contains(ctx, sib, object)
                        && self.try_capacity(sib, idx)
                    {
                        if self.replica_corrupted(sib, object) {
                            if ctx.spec.self_certifying {
                                self.metrics.corrupt_detected += 1;
                                self.evict_replica(ctx.costs, sib, object);
                                penalty += self.path_cost(ctx, path[0], sib) + 1.0;
                                continue; // next sibling may hold a clean copy
                            }
                            poisoned = true;
                        }
                        found = Some(sib);
                        break;
                    }
                }
                self.siblings_buf = sibs;
                if let Some(sib) = found {
                    server = Some(Server::Sibling {
                        sibling: sib,
                        via_idx: i,
                    });
                    break 'walk;
                }
            }
        }

        if matches!(server, Some(Server::Origin)) && !self.try_origin(origin_pop, idx) {
            server = None;
        }
        match server {
            Some(server) => {
                self.account_sp(
                    ctx, idx, &path, server, object, origin_pop, penalty, poisoned,
                );
            }
            None => self.record_failed(),
        }
        self.path_buf = path;
    }

    /// Latency/congestion/insertion accounting for a shortest-path serve
    /// (mirrors `Simulator::account_sp`).
    #[allow(clippy::too_many_arguments)]
    fn account_sp(
        &mut self,
        ctx: &Ctx,
        idx: u64,
        path: &[NodeId],
        server: Server,
        object: u32,
        origin_pop: u32,
        penalty: f64,
        poisoned: bool,
    ) {
        let depth = ctx.net.tree.depth;
        let weight = self.transfer_weight(ctx, object);
        let (serve_idx, detour_cost) = match server {
            Server::Cache { path_idx, .. } => (path_idx, 0.0),
            Server::Origin => (path.len() - 1, 0.0),
            Server::Sibling { sibling, via_idx } => {
                let level = ctx.net.level_of(path[via_idx]);
                let link_cost = ctx.cfg.latency.tree_link_cost(level, depth);
                self.add_transfer(ctx.net.tree_link(sibling), weight);
                self.add_transfer(ctx.net.tree_link(path[via_idx]), weight);
                (via_idx, 2.0 * link_cost)
            }
        };

        for j in 1..=serve_idx {
            let (a, b) = (path[j - 1], path[j]);
            let (pa, pb) = (ctx.net.pop_of(a), ctx.net.pop_of(b));
            if pa == pb {
                self.add_transfer(ctx.net.tree_link(a), weight);
            } else {
                self.add_transfer(ctx.net.core_link(pa, pb), weight);
            }
        }
        let cost = if ctx.reference {
            let mut c = 0.0;
            for j in 1..=serve_idx {
                let (a, b) = (path[j - 1], path[j]);
                if ctx.net.pop_of(a) == ctx.net.pop_of(b) {
                    c += ctx.cfg.latency.tree_link_cost(ctx.net.level_of(a), depth);
                } else {
                    c += ctx.cfg.latency.core_link_cost(depth);
                }
            }
            c
        } else {
            ctx.costs.path_cost(path[0], path[serve_idx])
        };
        let latency = cost + detour_cost + 1.0 + penalty;
        self.record_served(latency);
        if poisoned {
            self.metrics.corrupt_served += 1;
        }

        match server {
            Server::Cache { node, .. } => {
                self.metrics.cache_hits += 1;
                let level = ctx.net.level_of(node);
                self.metrics.hits_by_level[level as usize] += 1;
                self.cache_touch(node, object);
            }
            Server::Sibling { sibling, .. } => {
                self.metrics.cache_hits += 1;
                self.metrics.coop_hits += 1;
                let level = ctx.net.level_of(sibling);
                self.metrics.hits_by_level[level as usize] += 1;
                self.cache_touch(sibling, object);
            }
            Server::Origin => {
                self.metrics.origin_hits += 1;
                self.metrics.origin_served[origin_pop as usize] += 1;
            }
        }

        let mut lcd_available = true;
        match server {
            Server::Sibling { via_idx, .. } => {
                if via_idx + 1 < path.len() {
                    self.insert_on_response(
                        ctx,
                        idx,
                        path[via_idx + 1],
                        object,
                        &mut lcd_available,
                    );
                }
                self.insert_on_response(ctx, idx, path[via_idx], object, &mut lcd_available);
                for j in (0..via_idx).rev() {
                    self.insert_on_response(ctx, idx, path[j], object, &mut lcd_available);
                }
            }
            _ => {
                for j in (0..serve_idx).rev() {
                    self.insert_on_response(ctx, idx, path[j], object, &mut lcd_available);
                }
            }
        }
    }

    /// Nearest-replica routing (mirrors `Simulator::process_nr`): own-PoP
    /// candidates come from the live lane directory, foreign PoPs from
    /// the frozen epoch snapshot.
    fn process_nr(&mut self, ctx: &Ctx, idx: u64, leaf: NodeId, object: u32, origin_pop: u32) {
        let origin_root = ctx.net.pop_root(origin_pop);

        let leaf_hit = self.cache_contains(ctx, leaf, object) && self.try_capacity(leaf, idx);
        let mut penalty = 0.0;
        if leaf_hit {
            let leaf_poisoned = self.replica_corrupted(leaf, object);
            if leaf_poisoned && ctx.spec.self_certifying {
                self.metrics.corrupt_detected += 1;
                self.evict_replica(ctx.costs, leaf, object);
                penalty = 1.0;
            } else {
                if leaf_poisoned {
                    self.metrics.corrupt_served += 1;
                }
                self.record_served(1.0);
                self.metrics.cache_hits += 1;
                let level = ctx.net.level_of(leaf);
                self.metrics.hits_by_level[level as usize] += 1;
                self.cache_touch(leaf, object);
                return;
            }
        }

        let origin_cost = self.path_cost(ctx, leaf, origin_root);
        let choice = if self.fault.is_none() {
            let server = if self.capacity.is_some() {
                self.select_nr_capacity(ctx, leaf, object, origin_cost, idx)
            } else {
                let mut best: Option<(f64, NodeId)> = None;
                if ctx.reference {
                    let mut pairs = std::mem::take(&mut self.cand_pairs);
                    pairs.clear();
                    self.extend_pairs(ctx, object, leaf, &mut pairs);
                    for &(c, n) in &pairs {
                        if best.is_none_or(|(bc, bn)| c < bc || (c == bc && n < bn)) {
                            best = Some((c, n));
                        }
                    }
                    self.cand_pairs = pairs;
                } else {
                    let from = ctx.costs.from(leaf);
                    let own = self.dir.get(&object).copied().unwrap_or(0);
                    from.min_in_own_mask(own, &mut best);
                    if let Some(masks) = ctx.masks {
                        for &(p, mask) in masks.entries(object) {
                            if p == self.pop {
                                continue; // live own directory already scanned
                            }
                            let r = mask.trailing_zeros();
                            let c = from.to_pop_rank(p, r);
                            let n = p * self.tn + ctx.costs.t_of_rank(r);
                            if best.is_none_or(|(bc, bn)| c < bc || (c == bc && n < bn)) {
                                best = Some((c, n));
                            }
                        }
                    }
                }
                best.filter(|&(c, _)| c < origin_cost)
            };
            match server {
                Some((c, n)) => NrChoice::Replica {
                    cost: c,
                    node: n,
                    poisoned: false,
                },
                None => NrChoice::Origin,
            }
        } else {
            self.select_nr_faulted(
                ctx,
                leaf,
                object,
                origin_root,
                origin_cost,
                idx,
                &mut penalty,
            )
        };

        let (cost, server_node, is_origin, poisoned) = match choice {
            NrChoice::Replica {
                cost,
                node,
                poisoned,
            } => (cost, node, false, poisoned),
            NrChoice::Origin => {
                if !self.try_origin(origin_pop, idx) {
                    self.record_failed();
                    return;
                }
                (origin_cost, origin_root, true, false)
            }
            NrChoice::Failed => {
                self.record_failed();
                return;
            }
        };

        let latency = cost + 1.0 + penalty;
        self.record_served(latency);
        if poisoned {
            self.metrics.corrupt_served += 1;
        }
        if is_origin {
            self.metrics.origin_hits += 1;
            self.metrics.origin_served[origin_pop as usize] += 1;
        } else {
            self.metrics.cache_hits += 1;
            let level = ctx.net.level_of(server_node);
            self.metrics.hits_by_level[level as usize] += 1;
            self.cache_touch(server_node, object);
        }

        let weight = self.transfer_weight(ctx, object);
        let mut links = std::mem::take(&mut self.links_buf);
        links.clear();
        ctx.net.path_links_into(leaf, server_node, &mut links);
        for &l in &links {
            self.add_transfer(l, weight);
        }
        self.links_buf = links;

        let mut nodes = std::mem::take(&mut self.nodes_buf);
        nodes.clear();
        ctx.net.path_nodes_into(server_node, leaf, &mut nodes);
        let mut lcd_available = true;
        for &n in nodes.iter().skip(1) {
            self.insert_on_response(ctx, idx, n, object, &mut lcd_available);
        }
        self.nodes_buf = nodes;
    }

    /// Expands every candidate replica of `object` (live own directory +
    /// frozen foreign groups, skipping `leaf`) into the parallel
    /// cost/node arrays, dropping candidates at or above `max_cost` — the
    /// lane mirror of `Simulator::extend_cands_from_masks`.
    fn extend_cands(
        &self,
        ctx: &Ctx,
        object: u32,
        leaf: NodeId,
        max_cost: f64,
        costs_out: &mut Vec<f64>,
        nodes_out: &mut Vec<NodeId>,
    ) {
        let from = ctx.costs.from(leaf);
        let ta = from.tree();
        let mut bits = self.dir.get(&object).copied().unwrap_or(0);
        while bits != 0 {
            let r = bits.trailing_zeros();
            bits &= bits - 1;
            let t = ctx.costs.t_of_rank(r);
            if t == ta {
                continue; // the requesting leaf itself
            }
            let c = from.to_tree(t);
            if c < max_cost {
                costs_out.push(c);
                nodes_out.push(self.node_base + t);
            }
        }
        if let Some(masks) = ctx.masks {
            for &(p, mask) in masks.entries(object) {
                if p == self.pop {
                    continue;
                }
                let mut bits = mask;
                while bits != 0 {
                    let r = bits.trailing_zeros();
                    bits &= bits - 1;
                    let c = from.to_pop_rank(p, r);
                    if c < max_cost {
                        costs_out.push(c);
                        nodes_out.push(p * self.tn + ctx.costs.t_of_rank(r));
                    }
                }
            }
        }
    }

    /// Reference-shape candidate gather: `(cost, node)` tuples with
    /// latency-model costs, no filtering (the legacy allocate-and-sort
    /// selection shape, bit-identical to the flat arrays).
    fn extend_pairs(&self, ctx: &Ctx, object: u32, leaf: NodeId, out: &mut Vec<(f64, NodeId)>) {
        let mut bits = self.dir.get(&object).copied().unwrap_or(0);
        while bits != 0 {
            let r = bits.trailing_zeros();
            bits &= bits - 1;
            let n = self.node_base + ctx.costs.t_of_rank(r);
            if n == leaf {
                continue;
            }
            out.push((ctx.cfg.latency.path_cost(ctx.net, leaf, n), n));
        }
        if let Some(masks) = ctx.masks {
            for &(p, mask) in masks.entries(object) {
                if p == self.pop {
                    continue;
                }
                let mut bits = mask;
                while bits != 0 {
                    let r = bits.trailing_zeros();
                    bits &= bits - 1;
                    let n = p * self.tn + ctx.costs.t_of_rank(r);
                    out.push((ctx.cfg.latency.path_cost(ctx.net, leaf, n), n));
                }
            }
        }
    }

    /// Capacity-limited nearest-replica selection (mirrors
    /// `Simulator::select_nr_capacity`, per-lane capacity view).
    fn select_nr_capacity(
        &mut self,
        ctx: &Ctx,
        leaf: NodeId,
        object: u32,
        origin_cost: f64,
        idx: u64,
    ) -> Option<(f64, NodeId)> {
        if ctx.reference {
            let mut cands = std::mem::take(&mut self.cand_pairs);
            cands.clear();
            self.extend_pairs(ctx, object, leaf, &mut cands);
            cands.retain(|&(c, _)| c < origin_cost);
            cands.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            let mut chosen = None;
            for &(cost, node) in &cands {
                if self.try_capacity(node, idx) {
                    chosen = Some((cost, node));
                    break;
                }
            }
            self.cand_pairs = cands;
            return chosen;
        }
        let mut costs = std::mem::take(&mut self.cand_cost);
        let mut nodes = std::mem::take(&mut self.cand_node);
        costs.clear();
        nodes.clear();
        self.extend_cands(ctx, object, leaf, origin_cost, &mut costs, &mut nodes);
        let mut chosen = None;
        while let Some(i) = min_candidate(&costs, &nodes) {
            let (cost, node) = (costs[i], nodes[i]);
            if self.try_capacity(node, idx) {
                chosen = Some((cost, node));
                break;
            }
            costs.swap_remove(i);
            nodes.swap_remove(i);
        }
        self.cand_cost = costs;
        self.cand_node = nodes;
        chosen
    }

    /// Faulted nearest-replica selection (mirrors
    /// `Simulator::select_nr_faulted`; liveness from the lane's pure
    /// per-window materialization, foreign staleness bounded by the
    /// epoch).
    #[allow(clippy::too_many_arguments)]
    fn select_nr_faulted(
        &mut self,
        ctx: &Ctx,
        leaf: NodeId,
        object: u32,
        origin_root: NodeId,
        origin_cost: f64,
        idx: u64,
        penalty: &mut f64,
    ) -> NrChoice {
        let origin_reachable = self.path_live(ctx.net, leaf, origin_root);
        let mut choice = None;
        if ctx.reference {
            let mut cands = std::mem::take(&mut self.cand_pairs);
            cands.clear();
            self.extend_pairs(ctx, object, leaf, &mut cands);
            cands.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            for &(cost, node) in &cands {
                if origin_reachable && cost >= origin_cost {
                    break; // origin is at least as close; prefer it
                }
                if !self.node_up(node) || !self.path_live(ctx.net, leaf, node) {
                    continue;
                }
                if self.try_capacity(node, idx) {
                    let corrupted = self.replica_corrupted(node, object);
                    if corrupted && ctx.spec.self_certifying {
                        self.metrics.corrupt_detected += 1;
                        self.evict_replica(ctx.costs, node, object);
                        *penalty += cost + 1.0;
                        continue; // scan on for a clean copy
                    }
                    choice = Some(NrChoice::Replica {
                        cost,
                        node,
                        poisoned: corrupted,
                    });
                    break;
                }
            }
            self.cand_pairs = cands;
        } else {
            let mut costs = std::mem::take(&mut self.cand_cost);
            let mut nodes = std::mem::take(&mut self.cand_node);
            costs.clear();
            nodes.clear();
            self.extend_cands(ctx, object, leaf, f64::INFINITY, &mut costs, &mut nodes);
            while let Some(i) = min_candidate(&costs, &nodes) {
                let (cost, node) = (costs[i], nodes[i]);
                if origin_reachable && cost >= origin_cost {
                    break; // origin is at least as close; prefer it
                }
                costs.swap_remove(i);
                nodes.swap_remove(i);
                if !self.node_up(node) || !self.path_live(ctx.net, leaf, node) {
                    continue;
                }
                if self.try_capacity(node, idx) {
                    let corrupted = self.replica_corrupted(node, object);
                    if corrupted && ctx.spec.self_certifying {
                        self.metrics.corrupt_detected += 1;
                        self.evict_replica(ctx.costs, node, object);
                        *penalty += cost + 1.0;
                        continue; // scan on for a clean copy
                    }
                    choice = Some(NrChoice::Replica {
                        cost,
                        node,
                        poisoned: corrupted,
                    });
                    break;
                }
            }
            self.cand_cost = costs;
            self.cand_node = nodes;
        }
        choice.unwrap_or(if origin_reachable {
            NrChoice::Origin
        } else {
            NrChoice::Failed
        })
    }

    /// Applies one foreign-sourced insert to this (owning) lane at
    /// reconcile time. Emission already ran the origin/crash/equipment
    /// gates; this is the storage half of `cache_insert`.
    fn apply_foreign_insert(&mut self, costs: &CostTable, t: u32, object: u32, idx: u64) {
        let node = self.node_base + t;
        let c = &mut self.caches[t as usize];
        let had = c.contains(object as u64);
        let evicted = c.insert_at(object as u64, idx);
        let stored = c.contains(object as u64);
        if let Some(ttl) = self.ttl_len {
            if stored {
                self.ttl_pending.push((idx + ttl, node, object));
            }
        }
        if let Some(e) = evicted {
            self.dir_note_remove(costs, t, e as u32);
        }
        if !had && stored {
            self.dir_note_insert(costs, t, object);
        }
    }

    /// Boundary catch-up: merge foreign-opened TTL leases (sorted; stable
    /// w.r.t. equal-stamp own entries), retire leases due by the
    /// boundary, and roll faults — crash flushes included — up to the
    /// first index of the next epoch.
    fn close_epoch(&mut self, net: &Network, costs: &CostTable, epoch_end: u64) {
        if self.ttl_len.is_some() {
            if !self.ttl_pending.is_empty() {
                self.ttl_pending.sort_unstable();
                self.ttl_queue.extend(self.ttl_pending.drain(..));
                // Stable by stamp: pre-existing (own) entries keep
                // priority over equal-stamp foreign arrivals.
                self.ttl_queue
                    .make_contiguous()
                    .sort_by_key(|&(stamp, _, _)| stamp);
            }
            self.expire_due(costs, epoch_end);
        }
        if self.fault.is_some() {
            self.advance_faults(net, costs, epoch_end);
        }
    }

    /// Publishes this lane's dirty directory entries into the shared
    /// snapshot. Dirty lists are sorted + deduped first, so the writes —
    /// and therefore the snapshot — are independent of the (unordered)
    /// discovery order within the epoch.
    fn resync(&mut self, masks: Option<&mut ReplicaMasks>, roots: Option<&mut Vec<u128>>) {
        if self.track_masks {
            let Some(masks) = masks else {
                return;
            };
            self.dirty.sort_unstable();
            self.dirty.dedup();
            for i in 0..self.dirty.len() {
                let o = self.dirty[i];
                let mask = self.dir.get(&o).copied().unwrap_or(0);
                masks.set_group(o, self.pop, mask);
            }
            self.dirty.clear();
        } else if self.track_roots {
            let Some(roots) = roots else {
                return;
            };
            let bit = 1u128 << self.pop;
            if self.root_flush {
                self.root_flush = false;
                for (o, m) in roots.iter_mut().enumerate() {
                    if *m & bit != 0 && !self.caches[0].contains(o as u64) {
                        *m &= !bit;
                    }
                }
            }
            self.dirty.sort_unstable();
            self.dirty.dedup();
            for i in 0..self.dirty.len() {
                let o = self.dirty[i] as usize;
                if self.caches[0].contains(self.dirty[i] as u64) {
                    roots[o] |= bit;
                } else {
                    roots[o] &= !bit;
                }
            }
            self.dirty.clear();
        }
    }
}

/// Simulates one epoch: lanes are packed onto at most `workers` threads
/// in contiguous chunks balanced by bucket size. Lanes are mutually
/// independent within an epoch (own state + frozen [`Ctx`] only), so the
/// packing — and the worker count — cannot affect any output byte.
fn run_epoch(lanes: &mut [Lane], ctx: &Ctx, workers: usize) {
    let total: usize = lanes.iter().map(|l| l.bucket.len()).sum();
    if total == 0 {
        return;
    }
    if workers <= 1 || lanes.len() <= 1 {
        for lane in lanes.iter_mut() {
            lane.run_bucket(ctx);
        }
        return;
    }
    let target = total.div_ceil(workers);
    // lint:allow(deterministic-core-reach): scoped fork-join over disjoint lanes against a frozen snapshot; the join is a barrier and no result depends on scheduling, so worker count never reaches an output byte
    std::thread::scope(|s| {
        let mut rest = lanes;
        while !rest.is_empty() {
            let mut acc = 0usize;
            let mut cut = rest.len();
            for (i, lane) in rest.iter().enumerate() {
                acc += lane.bucket.len();
                if acc >= target {
                    cut = i + 1;
                    break;
                }
            }
            let (chunk, tail) = rest.split_at_mut(cut);
            rest = tail;
            s.spawn(move || {
                for lane in chunk {
                    lane.run_bucket(ctx);
                }
            });
        }
    });
}

/// The sequential epoch-boundary merge. Phase A applies cross-PoP deltas
/// in canonical `(source pop, emission seq)` order; phase B runs each
/// lane's boundary catch-up (TTL merge/expiry, crash flushes) and
/// publishes dirty directory entries into the shared snapshot, in PoP
/// order. Both phases are single-threaded and order-fixed — this is the
/// determinism anchor of the whole engine.
fn reconcile(
    lanes: &mut [Lane],
    net: &Network,
    costs: &CostTable,
    masks: &mut Option<ReplicaMasks>,
    roots: &mut Option<Vec<u128>>,
    epoch_end: u64,
    delta_buf: &mut Vec<Delta>,
) {
    let tn = net.tree.nodes();
    for p in 0..lanes.len() {
        // Swap the lane's delta log into the shared scratch (and back)
        // so owner lanes can be borrowed mutably while we iterate, and
        // no epoch re-allocates the log.
        std::mem::swap(&mut lanes[p].deltas, delta_buf);
        for &delta in delta_buf.iter() {
            match delta {
                Delta::Touch { node, object } => {
                    let q = (node / tn) as usize;
                    lanes[q].caches[(node % tn) as usize].touch(object as u64);
                }
                Delta::Evict { node, object } => {
                    let q = (node / tn) as usize;
                    let t = node % tn;
                    if lanes[q].caches[t as usize].remove(object as u64) {
                        lanes[q].dir_note_remove(costs, t, object);
                    }
                }
                Delta::Insert { idx, node, object } => {
                    let q = (node / tn) as usize;
                    lanes[q].apply_foreign_insert(costs, node % tn, object, idx);
                }
            }
        }
        delta_buf.clear();
        std::mem::swap(&mut lanes[p].deltas, delta_buf);
    }
    for lane in lanes.iter_mut() {
        lane.close_epoch(net, costs, epoch_end);
        lane.resync(masks.as_mut(), roots.as_mut());
    }
}

/// Runs a request stream through the epoch-sharded engine and returns
/// the merged metrics plus engine counters. Requests are consumed
/// straight off the iterator (O(epoch) memory); `opts.shards` sets the
/// worker count (output-invariant), `opts.epoch_len` the epoch length
/// (semantic). Panics if [`supported`] is false for this network/design —
/// callers are expected to gate and fall back to [`crate::Simulator`].
pub fn run_sharded<I>(
    net: &Network,
    cfg: &ExperimentConfig,
    origins: &[u16],
    object_sizes: &[u32],
    requests: I,
    opts: &ShardOpts,
) -> ShardRun
where
    I: IntoIterator<Item = Request>,
{
    assert_eq!(origins.len(), object_sizes.len(), "origins/sizes mismatch");
    assert!(
        supported(net, cfg),
        "epoch-sharded engine does not support this network/design; gate on shard::supported"
    );
    let spec = cfg.design.spec(net);
    let costs = CostTable::new(net, cfg.latency);
    let objects = origins.len() as u64;
    let budgets = per_node_budgets(
        cfg.budget_policy,
        cfg.f_fraction,
        objects,
        &net.core.populations,
        net.nodes_per_pop(),
    );
    let equipped: Vec<bool> = (0..net.node_count())
        .map(|n| spec.cache_set.has_cache(net, n))
        .collect();
    let pops = net.pops() as usize;
    let track_masks = spec.routing == Routing::NearestReplica;
    let track_roots = spec.routing == Routing::ShortestPathToOrigin
        && (0..net.pops()).any(|p| equipped[net.pop_root(p) as usize]);
    let mut masks = track_masks.then(|| ReplicaMasks::new(origins.len()));
    let mut roots = track_roots.then(|| vec![0u128; origins.len()]);
    let mut lanes: Vec<Lane> = (0..net.pops())
        .map(|p| {
            Lane::new(
                p,
                net,
                cfg,
                &spec,
                &budgets,
                origins.len(),
                track_masks,
                track_roots,
            )
        })
        .collect();

    let workers = opts.shards.max(1).min(pops);
    let epoch_len = opts.epoch_len.max(1);
    let mut it = requests.into_iter();
    let mut next_idx = 0u64;
    let mut epochs = 0u64;
    let mut reconcile_ns = 0u64;
    let mut delta_buf: Vec<Delta> = Vec::new();
    loop {
        let mut pulled = 0u64;
        while pulled < epoch_len {
            let Some(req) = it.next() else {
                break;
            };
            lanes[req.pop as usize].bucket.push((next_idx, req));
            next_idx += 1;
            pulled += 1;
        }
        if pulled == 0 {
            break;
        }
        epochs += 1;
        {
            let ctx = Ctx {
                net,
                spec: &spec,
                cfg,
                costs: &costs,
                origins,
                sizes: object_sizes,
                equipped: &equipped,
                masks: masks.as_ref(),
                roots: roots.as_deref(),
                reference: opts.reference,
            };
            run_epoch(&mut lanes, &ctx, workers);
        }
        let clock = CellClock::start();
        reconcile(
            &mut lanes,
            net,
            &costs,
            &mut masks,
            &mut roots,
            next_idx,
            &mut delta_buf,
        );
        reconcile_ns += clock.elapsed_ns();
        if pulled < epoch_len {
            break;
        }
    }

    let mut metrics = RunMetrics::new(net.link_count() as usize, pops, net.tree.depth);
    for lane in &lanes {
        metrics.merge(&lane.metrics);
    }
    ShardRun {
        metrics,
        epochs,
        reconcile_ns,
        workers,
    }
}
