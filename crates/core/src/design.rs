//! The representative caching designs (§4.1) and the EDGE extensions (§5.2).
//!
//! Every design decomposes into four orthogonal knobs:
//!
//! * **cache placement** ([`CacheSet`]) — which routers carry content caches;
//! * **request routing** ([`Routing`]) — shortest path to origin vs nearest
//!   replica;
//! * **sibling cooperation** — whether a cache that misses does a scoped
//!   lookup in its access-tree siblings before forwarding upward;
//! * **budget scaling** — the multiplier applied to equipped routers'
//!   budgets (EDGE-Norm's ×(R/leaves), Double-Budget's ×2 on top), or an
//!   infinite budget for the Figure 10 reference point.

use icn_topology::Network;
use serde::{Deserialize, Serialize};

/// Which routers are equipped with content caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CacheSet {
    /// No caches anywhere (the normalization baseline).
    None,
    /// Leaves of every access tree only ("edge").
    Leaves,
    /// Leaves plus their immediate parents (the 2-Levels extension).
    LeavesAndParents,
    /// Every router, including PoP roots (pervasive caching).
    All,
}

impl CacheSet {
    /// True when router `n` carries a cache under this placement.
    #[inline]
    pub fn has_cache(self, net: &Network, n: icn_topology::NodeId) -> bool {
        match self {
            CacheSet::None => false,
            CacheSet::All => true,
            CacheSet::Leaves => net.is_leaf(n),
            CacheSet::LeavesAndParents => {
                let level = net.level_of(n);
                level + 1 >= net.tree.depth
            }
        }
    }
}

/// How requests find content.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Routing {
    /// Route along the shortest path toward the origin server; any cache on
    /// that path may answer.
    ShortestPathToOrigin,
    /// Route to the nearest cached replica (the origin counts as a
    /// replica), with zero lookup overhead — the ICN ideal.
    NearestReplica,
}

/// A fully resolved design: placement + routing + cooperation + budget.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DesignSpec {
    /// Which routers have caches.
    pub cache_set: CacheSet,
    /// How requests are routed.
    pub routing: Routing,
    /// Scoped sibling lookup on miss at cached tree nodes.
    pub sibling_coop: bool,
    /// Multiplier applied to the per-router budget of equipped routers.
    pub budget_multiplier: f64,
    /// Every cache can hold the entire object universe (Figure 10's
    /// Inf-Budget reference).
    pub infinite_budget: bool,
    /// Content names self-certify their payload (ICN's name–data binding):
    /// a corrupted cached replica is *detected* on serve and re-fetched.
    /// Host-addressed (EDGE) designs serve the poisoned object instead —
    /// see `RunMetrics::corrupt_served`. True for the pervasive ICN
    /// designs; an EDGE deployment would need a separate integrity layer.
    pub self_certifying: bool,
}

/// The named designs evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DesignKind {
    /// No caching; the normalization baseline for all improvement metrics.
    NoCache,
    /// Pervasive caches, shortest-path-to-origin routing (§4.1).
    IcnSp,
    /// Pervasive caches, nearest-replica routing (§4.1).
    IcnNr,
    /// Caches at access-tree leaves only (§4.1).
    Edge,
    /// EDGE plus scoped sibling cooperation (§4.1).
    EdgeCoop,
    /// EDGE with leaf budgets scaled so total capacity matches ICN (§4.1).
    EdgeNorm,
    /// EDGE plus one more caching level above the edge (Figure 10).
    TwoLevels,
    /// 2-Levels plus sibling cooperation (Figure 10).
    TwoLevelsCoop,
    /// EDGE-Norm plus sibling cooperation (Figure 10).
    NormCoop,
    /// Norm-Coop with the budget doubled again (Figure 10).
    DoubleBudgetCoop,
    /// EDGE with infinite caches (Figure 10's Inf-Budget, EDGE side).
    InfiniteEdge,
    /// ICN-NR with infinite caches (Figure 10's Inf-Budget, ICN side).
    InfiniteIcnNr,
}

impl DesignKind {
    /// Display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            DesignKind::NoCache => "NoCache",
            DesignKind::IcnSp => "ICN-SP",
            DesignKind::IcnNr => "ICN-NR",
            DesignKind::Edge => "EDGE",
            DesignKind::EdgeCoop => "EDGE-Coop",
            DesignKind::EdgeNorm => "EDGE-Norm",
            DesignKind::TwoLevels => "2-Levels",
            DesignKind::TwoLevelsCoop => "2-Levels-Coop",
            DesignKind::NormCoop => "Norm-Coop",
            DesignKind::DoubleBudgetCoop => "Double-Budget-Coop",
            DesignKind::InfiniteEdge => "Inf-Budget-EDGE",
            DesignKind::InfiniteIcnNr => "Inf-Budget-ICN-NR",
        }
    }

    /// The five designs of Figures 6 and 7, in plot order.
    pub fn figure6_designs() -> [DesignKind; 5] {
        [
            DesignKind::IcnSp,
            DesignKind::IcnNr,
            DesignKind::Edge,
            DesignKind::EdgeCoop,
            DesignKind::EdgeNorm,
        ]
    }

    /// Resolves the named design to its knob settings for a given network
    /// (the EDGE-Norm multiplier depends on the tree shape).
    pub fn spec(self, net: &Network) -> DesignSpec {
        let norm = icn_cache::budget::edge_norm_factor(net.nodes_per_pop(), net.leaves_per_pop());
        let base = DesignSpec {
            cache_set: CacheSet::Leaves,
            routing: Routing::ShortestPathToOrigin,
            sibling_coop: false,
            budget_multiplier: 1.0,
            infinite_budget: false,
            self_certifying: false,
        };
        match self {
            DesignKind::NoCache => DesignSpec {
                cache_set: CacheSet::None,
                ..base
            },
            DesignKind::IcnSp => DesignSpec {
                cache_set: CacheSet::All,
                self_certifying: true,
                ..base
            },
            DesignKind::IcnNr => DesignSpec {
                cache_set: CacheSet::All,
                routing: Routing::NearestReplica,
                self_certifying: true,
                ..base
            },
            DesignKind::Edge => base,
            DesignKind::EdgeCoop => DesignSpec {
                sibling_coop: true,
                ..base
            },
            DesignKind::EdgeNorm => DesignSpec {
                budget_multiplier: norm,
                ..base
            },
            DesignKind::TwoLevels => DesignSpec {
                cache_set: CacheSet::LeavesAndParents,
                ..base
            },
            DesignKind::TwoLevelsCoop => DesignSpec {
                cache_set: CacheSet::LeavesAndParents,
                sibling_coop: true,
                ..base
            },
            DesignKind::NormCoop => DesignSpec {
                sibling_coop: true,
                budget_multiplier: norm,
                ..base
            },
            DesignKind::DoubleBudgetCoop => DesignSpec {
                sibling_coop: true,
                budget_multiplier: 2.0 * norm,
                ..base
            },
            DesignKind::InfiniteEdge => DesignSpec {
                infinite_budget: true,
                ..base
            },
            DesignKind::InfiniteIcnNr => DesignSpec {
                cache_set: CacheSet::All,
                routing: Routing::NearestReplica,
                infinite_budget: true,
                self_certifying: true,
                ..base
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icn_topology::{pop, AccessTree};

    fn net() -> Network {
        Network::new(pop::abilene(), AccessTree::new(2, 3))
    }

    #[test]
    fn cache_set_membership() {
        let net = net();
        let leaf = net.leaf(0, 0);
        let parent = net.parent(leaf).unwrap();
        let root = net.pop_root(0);
        assert!(!CacheSet::None.has_cache(&net, leaf));
        assert!(CacheSet::Leaves.has_cache(&net, leaf));
        assert!(!CacheSet::Leaves.has_cache(&net, parent));
        assert!(CacheSet::LeavesAndParents.has_cache(&net, leaf));
        assert!(CacheSet::LeavesAndParents.has_cache(&net, parent));
        assert!(!CacheSet::LeavesAndParents.has_cache(&net, root));
        assert!(CacheSet::All.has_cache(&net, root));
    }

    #[test]
    fn edge_norm_multiplier_matches_tree() {
        let net = net(); // 15 nodes, 8 leaves
        let spec = DesignKind::EdgeNorm.spec(&net);
        assert!((spec.budget_multiplier - 15.0 / 8.0).abs() < 1e-12);
        let dbl = DesignKind::DoubleBudgetCoop.spec(&net);
        assert!((dbl.budget_multiplier - 2.0 * 15.0 / 8.0).abs() < 1e-12);
        assert!(dbl.sibling_coop);
    }

    #[test]
    fn icn_designs_are_pervasive() {
        let net = net();
        for kind in [
            DesignKind::IcnSp,
            DesignKind::IcnNr,
            DesignKind::InfiniteIcnNr,
        ] {
            assert_eq!(kind.spec(&net).cache_set, CacheSet::All);
        }
        assert_eq!(
            DesignKind::IcnNr.spec(&net).routing,
            Routing::NearestReplica
        );
        assert_eq!(
            DesignKind::IcnSp.spec(&net).routing,
            Routing::ShortestPathToOrigin
        );
    }

    #[test]
    fn only_icn_designs_self_certify() {
        let net = net();
        for kind in [
            DesignKind::IcnSp,
            DesignKind::IcnNr,
            DesignKind::InfiniteIcnNr,
        ] {
            assert!(kind.spec(&net).self_certifying, "{:?}", kind);
        }
        for kind in [
            DesignKind::NoCache,
            DesignKind::Edge,
            DesignKind::EdgeCoop,
            DesignKind::EdgeNorm,
            DesignKind::TwoLevels,
            DesignKind::TwoLevelsCoop,
            DesignKind::NormCoop,
            DesignKind::DoubleBudgetCoop,
            DesignKind::InfiniteEdge,
        ] {
            assert!(!kind.spec(&net).self_certifying, "{:?}", kind);
        }
    }

    #[test]
    fn names_match_paper_labels() {
        assert_eq!(DesignKind::IcnNr.name(), "ICN-NR");
        assert_eq!(DesignKind::EdgeCoop.name(), "EDGE-Coop");
        let names: Vec<&str> = DesignKind::figure6_designs()
            .iter()
            .map(|d| d.name())
            .collect();
        assert_eq!(
            names,
            vec!["ICN-SP", "ICN-NR", "EDGE", "EDGE-Coop", "EDGE-Norm"]
        );
    }
}
