//! Deterministic fault injection (robustness extension).
//!
//! The paper's incremental-deployability argument (§6) implies the designs
//! must keep working when parts of the infrastructure break. This module
//! models the failure classes over the request-indexed windows already
//! used by [`crate::capacity`]:
//!
//! * **cache-node crashes** — the node's contents are flushed and it stays
//!   cold (cannot serve or store) for a configurable outage window;
//! * **link failures** — tree or core links drop; routing must detour
//!   (ICN-NR falls back to the next-nearest live replica) or the request
//!   fails when the origin is unreachable;
//! * **origin degradation** — a degraded origin PoP serves through a
//!   [`CapacityTracker`] with reduced capacity; saturated windows fail
//!   requests;
//! * **replica corruption** — a cached copy flips to poisoned for a
//!   window; self-certifying (ICN) designs detect and re-fetch, EDGE
//!   designs serve the poisoned bytes (see `Simulator`);
//! * **correlated disasters** ([`DisasterConfig`]) — topology-derived
//!   shared-risk groups ([`FaultGroups`]) fail as a unit, outage durations
//!   follow a seeded geometric MTTR instead of a fixed span, and saturated
//!   degraded origins shed load onto their core neighbors.
//!
//! Everything is a **pure function of a `u64` seed and the
//! [`FaultConfig`]** — never wall clock, never a global RNG. A
//! [`FaultSchedule`] query hashes `(seed, entity, window, kind)` through a
//! SplitMix64-style mixer and thresholds the result against the configured
//! rate, so two schedules built from identical inputs agree on every query
//! regardless of query order, thread count, or construction count. This is
//! what lets the sweep engine's 1-vs-N bit-identity guarantee extend to
//! faulted runs (see `tests/determinism.rs`). Correlated extensions keep
//! the contract: a group event is one draw on the *group* entity, a
//! geometric outage length is one extra draw keyed on the event window,
//! and cascade propagation is evaluated once per window transition from
//! state that is itself a pure function of the processed request prefix.
//!
//! [`CapacityTracker`]: crate::capacity::CapacityTracker

use crate::capacity::ServingCapacity;
use icn_topology::Network;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Correlated-disaster parameters layered on top of the independent
/// per-entity fault rates of [`FaultConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DisasterConfig {
    /// Probability that a shared-risk group (a PoP subtree or a core-link
    /// bundle, see [`FaultGroups`]) fails as a unit in a window.
    pub group_rate: f64,
    /// Mean outage length of a group event in windows (geometric MTTR,
    /// >= 1, capped at [`MAX_OUTAGE_WINDOWS`]).
    pub group_mttr_windows: u32,
    /// Draw *independent* node/link outage durations from the same seeded
    /// geometric (mean = the configured `*_outage_windows`) instead of a
    /// fixed span — repair takes variable time, like real operations.
    pub geometric_repair: bool,
    /// When a degraded origin PoP saturates its capacity window, its core
    /// neighbors inherit the shed load (become degraded) in the next
    /// window — failures compound instead of staying local.
    pub cascade_overload: bool,
}

impl DisasterConfig {
    /// A disaster layer that never fires; adding it to a config changes
    /// nothing (asserted by `tests/fault_determinism.rs`).
    pub fn zero() -> Self {
        Self {
            group_rate: 0.0,
            group_mttr_windows: 1,
            geometric_repair: false,
            cascade_overload: false,
        }
    }

    /// The full correlated model at group-event probability `rate`:
    /// shared-risk groups with a 4-window mean MTTR, geometric repair for
    /// independent faults, and cascading origin overload.
    pub fn full(rate: f64) -> Self {
        Self {
            group_rate: rate,
            group_mttr_windows: 4,
            geometric_repair: true,
            cascade_overload: true,
        }
    }
}

/// Parameters of one deterministic fault schedule.
///
/// All rates are per-entity per-window probabilities in `[0, 1]`. Time is
/// measured in simulated requests (like [`ServingCapacity::window`]): each
/// block of [`FaultConfig::window`] consecutive requests is one fault
/// window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Seed of the schedule. Different seeds give statistically
    /// independent schedules; equal seeds (with equal configs) give
    /// bit-identical schedules.
    pub seed: u64,
    /// Fault-window length in simulated requests (>= 1).
    pub window: u32,
    /// Probability that a cache-equipped router crashes in a window.
    pub node_crash_rate: f64,
    /// Windows a crashed node stays down (including the crash window).
    /// With [`DisasterConfig::geometric_repair`] this is the geometric
    /// *mean* instead of a fixed span.
    pub node_outage_windows: u32,
    /// Probability that a link fails in a window.
    pub link_failure_rate: f64,
    /// Windows a failed link stays down (including the failure window).
    /// With [`DisasterConfig::geometric_repair`] this is the geometric
    /// *mean* instead of a fixed span.
    pub link_outage_windows: u32,
    /// Probability that an origin PoP is degraded in a window.
    pub origin_degraded_rate: f64,
    /// Windows a degraded origin stays degraded (including the event
    /// window, >= 1). [`FaultConfig::zero`] and [`FaultConfig::uniform`]
    /// keep the historical span of 1 (degradation as a transient load
    /// condition); disaster scenarios raise it to model slow origin
    /// recovery.
    pub origin_degraded_windows: u32,
    /// Serving capacity of a *degraded* origin (healthy origins are
    /// infinite). Reuses the §5.1 capacity model: per-window counters
    /// tracked by a `CapacityTracker`; a saturated degraded origin
    /// fails the request.
    pub degraded_origin: ServingCapacity,
    /// Probability that a given cached replica is poisoned in a window.
    /// Self-certifying designs detect the corruption on serve (charged a
    /// re-fetch); others serve the poisoned object and count an integrity
    /// failure. See `RunMetrics::corrupt_served` / `corrupt_detected`.
    pub corruption_rate: f64,
    /// Correlated-disaster layer; `None` keeps the independent model.
    pub disaster: Option<DisasterConfig>,
}

/// A rejected [`FaultConfig`] field, reported by [`FaultConfig::validate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultConfigError {
    /// A rate field is NaN, negative, or above 1 — such a rate would
    /// silently never fire (NaN compares false) or always fire.
    InvalidRate {
        /// The offending config field.
        field: &'static str,
        /// Its rejected value.
        value: f64,
    },
    /// A window or duration field is zero (every span includes at least
    /// the event window itself).
    ZeroWindow {
        /// The offending config field.
        field: &'static str,
    },
}

impl fmt::Display for FaultConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultConfigError::InvalidRate { field, value } => {
                write!(
                    f,
                    "{field} must be a finite probability in [0, 1], got {value}"
                )
            }
            FaultConfigError::ZeroWindow { field } => {
                write!(f, "{field} must be >= 1")
            }
        }
    }
}

impl std::error::Error for FaultConfigError {}

impl FaultConfig {
    /// A schedule that never fires: every rate is zero. Runs under this
    /// config are bit-identical to runs with no fault config at all
    /// (asserted by `tests/fault_determinism.rs`).
    pub fn zero(seed: u64) -> Self {
        Self {
            seed,
            window: 1_000,
            node_crash_rate: 0.0,
            node_outage_windows: 1,
            link_failure_rate: 0.0,
            link_outage_windows: 1,
            origin_degraded_rate: 0.0,
            origin_degraded_windows: 1,
            degraded_origin: ServingCapacity {
                per_node: u32::MAX,
                window: 1_000,
            },
            corruption_rate: 0.0,
            disaster: None,
        }
    }

    /// A uniform schedule: nodes, links, and origins all fail at `rate`
    /// per window, with short (2-window) outages and a tightly capped
    /// degraded origin. The `failures` bench bin sweeps this rate.
    pub fn uniform(seed: u64, rate: f64) -> Self {
        Self {
            seed,
            window: 1_000,
            node_crash_rate: rate,
            node_outage_windows: 2,
            link_failure_rate: rate,
            link_outage_windows: 2,
            origin_degraded_rate: rate,
            origin_degraded_windows: 1,
            degraded_origin: ServingCapacity {
                per_node: 50,
                window: 1_000,
            },
            corruption_rate: 0.0,
            disaster: None,
        }
    }

    /// True when no fault can ever fire under this config.
    pub fn is_zero(&self) -> bool {
        self.node_crash_rate <= 0.0
            && self.link_failure_rate <= 0.0
            && self.origin_degraded_rate <= 0.0
            && self.corruption_rate <= 0.0
            && self.disaster.is_none_or(|d| d.group_rate <= 0.0)
    }

    /// Checks every rate is a finite probability in `[0, 1]` and every
    /// window/duration is at least 1. A NaN or out-of-range rate would
    /// otherwise *silently* never fire (NaN comparisons are false) or
    /// always fire — rejected here instead.
    pub fn validate(&self) -> Result<(), FaultConfigError> {
        fn rate(field: &'static str, value: f64) -> Result<(), FaultConfigError> {
            if value.is_finite() && (0.0..=1.0).contains(&value) {
                Ok(())
            } else {
                Err(FaultConfigError::InvalidRate { field, value })
            }
        }
        fn window(field: &'static str, value: u32) -> Result<(), FaultConfigError> {
            if value >= 1 {
                Ok(())
            } else {
                Err(FaultConfigError::ZeroWindow { field })
            }
        }
        rate("node_crash_rate", self.node_crash_rate)?;
        rate("link_failure_rate", self.link_failure_rate)?;
        rate("origin_degraded_rate", self.origin_degraded_rate)?;
        rate("corruption_rate", self.corruption_rate)?;
        window("window", self.window)?;
        window("node_outage_windows", self.node_outage_windows)?;
        window("link_outage_windows", self.link_outage_windows)?;
        window("origin_degraded_windows", self.origin_degraded_windows)?;
        window("degraded_origin.window", self.degraded_origin.window)?;
        if let Some(d) = self.disaster {
            rate("disaster.group_rate", d.group_rate)?;
            window("disaster.group_mttr_windows", d.group_mttr_windows)?;
        }
        Ok(())
    }
}

/// Salt separating the event kinds in the hash domain.
const SALT_NODE: u64 = 0x6e6f_6465_0000_0001; // "node"
const SALT_LINK: u64 = 0x6c69_6e6b_0000_0002; // "link"
const SALT_ORIGIN: u64 = 0x6f72_6967_0000_0003; // "orig"
const SALT_GROUP: u64 = 0x6772_6f75_0000_0004; // "grou"
const SALT_DURATION: u64 = 0x6475_7261_0000_0005; // "dura"
const SALT_CORRUPT: u64 = 0x636f_7272_0000_0006; // "corr"

/// Hard cap on any geometric outage duration, in windows. Bounds the
/// backward scan a `*_down` query performs (and keeps a pathological draw
/// from parking an entity offline for a whole run): with the cap, "down in
/// window `w`" only ever depends on events in the last
/// `MAX_OUTAGE_WINDOWS` windows.
pub const MAX_OUTAGE_WINDOWS: u64 = 64;

/// SplitMix64 finalizer: a full-avalanche 64-bit mixer. Statistically
/// strong enough to decorrelate adjacent (entity, window) draws; crucially
/// it is *stateless*, so the schedule has no query-order dependence.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A stateless, seeded fault schedule. Queries are pure: any two
/// schedules constructed from equal configs return equal answers for
/// every `(entity, window)`, in any order, on any thread.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSchedule {
    cfg: FaultConfig,
}

impl FaultSchedule {
    /// Builds a schedule from its config.
    ///
    /// # Panics
    /// Panics when the config fails [`FaultConfig::validate`] — use
    /// [`FaultSchedule::try_new`] for a panic-free construction.
    pub fn new(cfg: FaultConfig) -> Self {
        let validated = cfg.validate();
        assert!(validated.is_ok(), "invalid FaultConfig: {validated:?}");
        Self { cfg }
    }

    /// Builds a schedule, rejecting invalid configs (NaN/out-of-range
    /// rates, zero windows) instead of panicking.
    pub fn try_new(cfg: FaultConfig) -> Result<Self, FaultConfigError> {
        cfg.validate()?;
        Ok(Self { cfg })
    }

    /// The schedule's configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// The fault window containing request `req_idx`.
    #[inline]
    pub fn window_of(&self, req_idx: u64) -> u64 {
        req_idx / self.cfg.window as u64
    }

    /// A uniform draw in `[0, 1)` for `(kind, entity, window)`: 53
    /// mantissa bits of the mixed hash, the same construction the
    /// vendored rand crate uses for `f64` sampling.
    #[inline]
    fn draw(&self, salt: u64, entity: u64, window: u64) -> f64 {
        let mut h = mix(self.cfg.seed ^ salt);
        h = mix(h ^ entity.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        h = mix(h ^ window);
        (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// True when a crash *event* is drawn for `node` in exactly `window`.
    /// (The node then stays down for its outage duration; see
    /// [`FaultSchedule::node_down`].)
    #[inline]
    pub fn node_crashes(&self, node: u32, window: u64) -> bool {
        self.cfg.node_crash_rate > 0.0
            && self.draw(SALT_NODE, node as u64, window) < self.cfg.node_crash_rate
    }

    /// True when `node` is down in `window` — a crash event fired recently
    /// enough that its outage (fixed span, or geometric under
    /// [`DisasterConfig::geometric_repair`]) still covers `window`.
    pub fn node_down(&self, node: u32, window: u64) -> bool {
        match self.cfg.disaster {
            Some(d) if d.geometric_repair => self.down_geometric(
                SALT_NODE,
                node as u64,
                window,
                self.cfg.node_crash_rate,
                self.cfg.node_outage_windows,
            ),
            _ => self.down_via(
                SALT_NODE,
                node as u64,
                window,
                self.cfg.node_crash_rate,
                self.cfg.node_outage_windows,
            ),
        }
    }

    /// True when `link` is down in `window`.
    pub fn link_down(&self, link: u32, window: u64) -> bool {
        match self.cfg.disaster {
            Some(d) if d.geometric_repair => self.down_geometric(
                SALT_LINK,
                link as u64,
                window,
                self.cfg.link_failure_rate,
                self.cfg.link_outage_windows,
            ),
            _ => self.down_via(
                SALT_LINK,
                link as u64,
                window,
                self.cfg.link_failure_rate,
                self.cfg.link_outage_windows,
            ),
        }
    }

    /// True when origin PoP `pop` is degraded in `window` (by a direct
    /// degradation event; cascading overload is layered on top by the
    /// simulator's fault state, since it depends on observed load).
    pub fn origin_degraded(&self, pop: u16, window: u64) -> bool {
        self.down_via(
            SALT_ORIGIN,
            pop as u64,
            window,
            self.cfg.origin_degraded_rate,
            self.cfg.origin_degraded_windows,
        )
    }

    /// True when a group-failure *event* is drawn for `group` in exactly
    /// `window` (the crash-flush trigger for the group's member nodes).
    #[inline]
    pub fn group_event(&self, group: u32, window: u64) -> bool {
        match self.cfg.disaster {
            Some(d) if d.group_rate > 0.0 => {
                self.draw(SALT_GROUP, group as u64, window) < d.group_rate
            }
            _ => false,
        }
    }

    /// True when shared-risk group `group` is down in `window`: a group
    /// event fired recently enough that its geometric outage (mean
    /// [`DisasterConfig::group_mttr_windows`]) still covers `window`.
    pub fn group_down(&self, group: u32, window: u64) -> bool {
        let Some(d) = self.cfg.disaster else {
            return false;
        };
        self.down_geometric(
            SALT_GROUP,
            group as u64,
            window,
            d.group_rate,
            d.group_mttr_windows,
        )
    }

    /// True when the replica of `object` cached at `node` is poisoned in
    /// `window`. One draw per (replica, window): corruption is transient —
    /// a poisoned copy that survives the window (nobody requested it, or
    /// the design cannot detect it) draws fresh next window.
    #[inline]
    pub fn replica_corrupted(&self, node: u32, object: u32, window: u64) -> bool {
        self.cfg.corruption_rate > 0.0
            && self.draw(SALT_CORRUPT, ((node as u64) << 32) | object as u64, window)
                < self.cfg.corruption_rate
    }

    /// Outage length (in windows, >= 1) of the event at
    /// `(salt, entity, event_window)`: a seeded geometric with mean
    /// `mean_windows` via inverse-CDF over one extra draw, capped at
    /// [`MAX_OUTAGE_WINDOWS`]. Pure, like every other query.
    fn event_duration(&self, salt: u64, entity: u64, event_window: u64, mean_windows: u32) -> u64 {
        if mean_windows <= 1 {
            return 1;
        }
        let u = self.draw(salt ^ SALT_DURATION, entity, event_window);
        let p = 1.0 / mean_windows as f64;
        // Inverse CDF of Geometric(p) on {1, 2, …}: ceil(ln(1-u)/ln(1-p)).
        let d = ((1.0 - u).ln() / (1.0 - p).ln()).ceil();
        (d as u64).clamp(1, MAX_OUTAGE_WINDOWS)
    }

    #[inline]
    fn down_via(&self, salt: u64, entity: u64, window: u64, rate: f64, outage: u32) -> bool {
        if rate <= 0.0 {
            return false;
        }
        let span = outage.max(1) as u64;
        let first = window.saturating_sub(span - 1);
        (first..=window).any(|w| self.draw(salt, entity, w) < rate)
    }

    /// Like [`FaultSchedule::down_via`] but with per-event geometric
    /// durations: scans the last [`MAX_OUTAGE_WINDOWS`] windows (the cap
    /// bounds how far back an event can still matter) for an event whose
    /// drawn duration reaches `window`.
    fn down_geometric(&self, salt: u64, entity: u64, window: u64, rate: f64, mean: u32) -> bool {
        if rate <= 0.0 {
            return false;
        }
        let first = window.saturating_sub(MAX_OUTAGE_WINDOWS - 1);
        (first..=window).any(|w| {
            self.draw(salt, entity, w) < rate
                && w + self.event_duration(salt, entity, w, mean) > window
        })
    }
}

/// Sentinel group id: the entity belongs to no shared-risk group.
pub const NO_GROUP: u32 = u32::MAX;

/// Topology-derived shared-risk groups: which entities fail together when
/// a group-level event fires.
///
/// Two group families are derived from the [`Network`]:
///
/// * **PoP subtrees** — for every PoP `p` and every level-1 child `k` of
///   its access-tree root, group `p * arity + k` covers every router in
///   `k`'s subtree and every tree link inside it, including `k`'s uplink
///   to the PoP root. A group event models a power/aggregation failure
///   taking out that slice of the access network.
/// * **core-link bundles** — group `pops * arity + p` covers every core
///   link incident to PoP `p` (each core link therefore belongs to the
///   bundles of both endpoints). A group event models a conduit cut or
///   PoP-edge failure severing the PoP from the core.
///
/// The derivation is a pure function of the network shape, so equal
/// topologies give equal groups on every thread — group membership never
/// threatens the sweep engine's bit-identity guarantee.
#[derive(Debug, Clone)]
pub struct FaultGroups {
    count: u32,
    /// Per global router: its subtree group, or [`NO_GROUP`] for PoP
    /// roots (the root belongs to every subtree's serving path, so
    /// modeling it inside one child's risk group would be wrong).
    node_group: Vec<u32>,
    /// Per link id: the (up to two) groups the link belongs to, padded
    /// with [`NO_GROUP`]. Tree links have one; core links belong to both
    /// endpoints' bundles.
    link_groups: Vec<[u32; 2]>,
}

impl FaultGroups {
    /// Derives the shared-risk groups of `net`.
    pub fn derive(net: &Network) -> Self {
        let pops = net.pops();
        let arity = net.tree.arity;
        let tn = net.tree.nodes();
        let count = pops * arity + pops;
        let mut node_group = vec![NO_GROUP; net.node_count() as usize];
        let mut link_groups = vec![[NO_GROUP; 2]; net.link_count() as usize];
        // Level-1 ancestor (as a 0-based child index of the root) per tree
        // index; the root itself has none.
        let mut child_of = vec![NO_GROUP; tn as usize];
        for t in 1..tn {
            let mut cur = t;
            while net.tree.level_of(cur) > 1 {
                match net.tree.parent(cur) {
                    Some(p) => cur = p,
                    None => break,
                }
            }
            // Children of the root are tree indices 1..=arity.
            child_of[t as usize] = cur - 1;
        }
        for p in 0..pops {
            for t in 1..tn {
                let g = p * arity + child_of[t as usize];
                let n = net.node(p, t);
                node_group[n as usize] = g;
                link_groups[net.tree_link(n) as usize] = [g, NO_GROUP];
            }
        }
        for &(a, b) in net.core.edges() {
            let l = net.core_link(a, b);
            link_groups[l as usize] = [pops * arity + a, pops * arity + b];
        }
        Self {
            count,
            node_group,
            link_groups,
        }
    }

    /// Total number of groups (`pops × arity` subtrees + `pops` bundles).
    pub fn count(&self) -> u32 {
        self.count
    }

    /// The subtree group of router `node`, or [`NO_GROUP`] for PoP roots.
    #[inline]
    pub fn node_group(&self, node: u32) -> u32 {
        self.node_group[node as usize]
    }

    /// The groups link `link` belongs to, padded with [`NO_GROUP`].
    #[inline]
    pub fn link_groups_of(&self, link: u32) -> [u32; 2] {
        self.link_groups[link as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icn_topology::{pop, AccessTree};

    fn sched(seed: u64, rate: f64) -> FaultSchedule {
        FaultSchedule::new(FaultConfig::uniform(seed, rate))
    }

    fn disaster_sched(seed: u64, group_rate: f64) -> FaultSchedule {
        let mut cfg = FaultConfig::zero(seed);
        cfg.disaster = Some(DisasterConfig {
            group_rate,
            group_mttr_windows: 4,
            geometric_repair: false,
            cascade_overload: false,
        });
        FaultSchedule::new(cfg)
    }

    #[test]
    fn window_indexing() {
        let s = sched(1, 0.1);
        assert_eq!(s.window_of(0), 0);
        assert_eq!(s.window_of(999), 0);
        assert_eq!(s.window_of(1000), 1);
    }

    #[test]
    fn zero_rate_never_fires() {
        let s = FaultSchedule::new(FaultConfig::zero(42));
        for w in 0..500 {
            for e in 0..32u32 {
                assert!(!s.node_down(e, w));
                assert!(!s.link_down(e, w));
                assert!(!s.origin_degraded(e as u16, w));
                assert!(!s.node_crashes(e, w));
                assert!(!s.group_down(e, w));
                assert!(!s.group_event(e, w));
                assert!(!s.replica_corrupted(e, e, w));
            }
        }
        assert!(FaultConfig::zero(42).is_zero());
        assert!(!FaultConfig::uniform(42, 0.01).is_zero());
    }

    #[test]
    fn rate_one_always_fires() {
        let s = sched(7, 1.0);
        for w in 0..50 {
            assert!(s.node_down(3, w));
            assert!(s.link_down(3, w));
            assert!(s.origin_degraded(3, w));
        }
    }

    #[test]
    fn identical_inputs_give_identical_schedules() {
        let a = sched(0xfeed, 0.05);
        let b = sched(0xfeed, 0.05);
        for w in 0..2_000 {
            for e in 0..16u32 {
                assert_eq!(a.node_down(e, w), b.node_down(e, w));
                assert_eq!(a.link_down(e, w), b.link_down(e, w));
                assert_eq!(
                    a.origin_degraded(e as u16, w),
                    b.origin_degraded(e as u16, w)
                );
            }
        }
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let a = sched(1, 0.1);
        let b = sched(2, 0.1);
        let mut differ = false;
        'outer: for w in 0..200 {
            for e in 0..16u32 {
                if a.node_crashes(e, w) != b.node_crashes(e, w) {
                    differ = true;
                    break 'outer;
                }
            }
        }
        assert!(differ, "seeds 1 and 2 produced identical schedules");
    }

    #[test]
    fn empirical_rate_tracks_configured_rate() {
        let s = sched(99, 0.1);
        let draws = 50_000u64;
        let fired = (0..draws).filter(|&w| s.node_crashes(0, w)).count() as f64;
        let p = fired / draws as f64;
        assert!((p - 0.1).abs() < 0.01, "empirical crash rate {p}");
    }

    #[test]
    fn outage_extends_the_crash_window() {
        // With a 2-window outage, a node is down in the crash window and
        // the one after it.
        let s = sched(5, 0.05);
        for w in 1..5_000 {
            if s.node_crashes(7, w) {
                assert!(s.node_down(7, w), "down in the crash window");
                assert!(s.node_down(7, w + 1), "down in the following window");
            }
        }
        // And there exists a crash whose +2 window is back up (otherwise
        // the outage logic would be "forever down").
        let recovered = (1..5_000).any(|w| {
            s.node_crashes(7, w)
                && !s.node_crashes(7, w + 1)
                && !s.node_crashes(7, w + 2)
                && !s.node_down(7, w + 2)
        });
        assert!(recovered, "no crash ever recovered");
    }

    #[test]
    fn query_order_does_not_matter() {
        // Stateless schedule: interleaving queries across entities and
        // windows in any order gives the same answers.
        let s = sched(0xabc, 0.2);
        let forward: Vec<bool> = (0..100)
            .flat_map(|w| (0..8u32).map(move |e| (e, w)))
            .map(|(e, w)| s.link_down(e, w))
            .collect();
        let backward: Vec<bool> = (0..100)
            .flat_map(|w| (0..8u32).map(move |e| (e, w)))
            .rev()
            .map(|(e, w)| s.link_down(e, w))
            .collect();
        let mut backward = backward;
        backward.reverse();
        assert_eq!(forward, backward);
    }

    // ---- satellite 1: config validation ----

    #[test]
    fn validation_rejects_bad_rates_and_windows() {
        let ok = FaultConfig::uniform(1, 0.5);
        assert!(ok.validate().is_ok());
        for bad_rate in [f64::NAN, -0.1, 1.5, f64::INFINITY] {
            let mut cfg = ok;
            cfg.node_crash_rate = bad_rate;
            assert!(
                matches!(
                    FaultSchedule::try_new(cfg),
                    Err(FaultConfigError::InvalidRate {
                        field: "node_crash_rate",
                        ..
                    })
                ),
                "rate {bad_rate} must be rejected"
            );
            let mut cfg = ok;
            cfg.corruption_rate = bad_rate;
            assert!(FaultSchedule::try_new(cfg).is_err());
        }
        let mut cfg = ok;
        cfg.window = 0;
        assert_eq!(
            cfg.validate(),
            Err(FaultConfigError::ZeroWindow { field: "window" })
        );
        let mut cfg = ok;
        cfg.origin_degraded_windows = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = ok;
        cfg.disaster = Some(DisasterConfig {
            group_rate: f64::NAN,
            group_mttr_windows: 4,
            geometric_repair: false,
            cascade_overload: false,
        });
        assert!(matches!(
            cfg.validate(),
            Err(FaultConfigError::InvalidRate {
                field: "disaster.group_rate",
                ..
            })
        ));
    }

    #[test]
    #[should_panic(expected = "invalid FaultConfig")]
    fn new_panics_on_nan_rate() {
        let mut cfg = FaultConfig::zero(1);
        cfg.link_failure_rate = f64::NAN;
        FaultSchedule::new(cfg);
    }

    #[test]
    fn error_display_names_the_field() {
        let mut cfg = FaultConfig::zero(1);
        cfg.origin_degraded_rate = 2.0;
        let msg = cfg.validate().map_err(|e| e.to_string()).err();
        assert!(msg.is_some_and(|m| m.contains("origin_degraded_rate")));
    }

    // ---- satellite 2: configurable origin degradation span ----

    #[test]
    fn origin_degradation_span_is_configurable() {
        let mut cfg = FaultConfig::uniform(11, 0.02);
        cfg.origin_degraded_windows = 3;
        let s = FaultSchedule::new(cfg);
        let one = sched(11, 0.02); // same seed, span 1
        let mut extended = false;
        for w in 0..5_000u64 {
            // An event window is degraded under both configs …
            if one.origin_degraded(4, w) {
                assert!(s.origin_degraded(4, w));
                // … and the 3-window config keeps the two following
                // windows degraded as well.
                assert!(s.origin_degraded(4, w + 1));
                assert!(s.origin_degraded(4, w + 2));
                extended = true;
            }
        }
        assert!(extended, "no degradation event in 5000 windows");
    }

    // ---- correlated disasters ----

    #[test]
    fn group_down_covers_the_event_and_respects_the_cap() {
        let s = disaster_sched(21, 0.02);
        let mut saw_event = false;
        for w in 0..5_000u64 {
            if s.group_event(3, w) {
                saw_event = true;
                assert!(s.group_down(3, w), "down in the event window");
                // The cap bounds every outage.
                assert!(
                    !s.group_down(3, w + MAX_OUTAGE_WINDOWS)
                        || (w + 1..=w + MAX_OUTAGE_WINDOWS).any(|v| s.group_event(3, v)),
                    "outage at {w} exceeded MAX_OUTAGE_WINDOWS"
                );
            }
        }
        assert!(saw_event, "no group event in 5000 windows");
    }

    #[test]
    fn geometric_durations_track_the_configured_mean() {
        let mut cfg = FaultConfig::zero(77);
        cfg.disaster = Some(DisasterConfig {
            group_rate: 1.0, // every window has an event; measure durations
            group_mttr_windows: 4,
            geometric_repair: false,
            cascade_overload: false,
        });
        let s = FaultSchedule::new(cfg);
        let n = 20_000u64;
        let total: u64 = (0..n).map(|w| s.event_duration(SALT_GROUP, 9, w, 4)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 4.0).abs() < 0.15, "empirical MTTR {mean}");
        // Durations are pure functions of the event window.
        assert_eq!(
            s.event_duration(SALT_GROUP, 9, 123, 4),
            s.event_duration(SALT_GROUP, 9, 123, 4)
        );
    }

    #[test]
    fn geometric_repair_changes_outage_shape_not_events() {
        let mut geo = FaultConfig::uniform(5, 0.05);
        geo.disaster = Some(DisasterConfig {
            group_rate: 0.0,
            group_mttr_windows: 1,
            geometric_repair: true,
            cascade_overload: false,
        });
        let g = FaultSchedule::new(geo);
        let f = sched(5, 0.05);
        // Crash events are identical — only the repair time differs.
        for w in 0..2_000u64 {
            assert_eq!(g.node_crashes(7, w), f.node_crashes(7, w));
        }
        // Some outage lasts longer than the fixed 2-window span (the
        // geometric tail), and every crash window is still down.
        let mut longer = false;
        for w in 0..20_000u64 {
            if g.node_crashes(7, w) {
                assert!(g.node_down(7, w));
                if g.node_down(7, w + 2) && !g.node_crashes(7, w + 1) && !g.node_crashes(7, w + 2) {
                    longer = true;
                }
            }
        }
        assert!(longer, "geometric repair never exceeded the fixed span");
    }

    #[test]
    fn corruption_draws_are_per_replica_and_deterministic() {
        let mut cfg = FaultConfig::zero(31);
        cfg.corruption_rate = 0.1;
        let s = FaultSchedule::new(cfg);
        assert!(!cfg.is_zero(), "corruption makes the schedule non-zero");
        let draws = 50_000u64;
        let fired = (0..draws)
            .filter(|&w| s.replica_corrupted(3, 17, w))
            .count() as f64;
        let p = fired / draws as f64;
        assert!((p - 0.1).abs() < 0.01, "empirical corruption rate {p}");
        // Distinct replicas draw independently.
        let same =
            (0..2_000u64).all(|w| s.replica_corrupted(3, 17, w) == s.replica_corrupted(4, 17, w));
        assert!(!same, "replicas at different nodes share one draw");
        assert_eq!(
            s.replica_corrupted(3, 17, 999),
            s.replica_corrupted(3, 17, 999)
        );
    }

    #[test]
    fn groups_cover_subtrees_and_core_bundles() {
        let net = Network::new(pop::abilene(), AccessTree::new(2, 3));
        let groups = FaultGroups::derive(&net);
        let pops = net.pops();
        let arity = net.tree.arity;
        assert_eq!(groups.count(), pops * arity + pops);
        for p in 0..pops {
            // PoP roots belong to no group.
            assert_eq!(groups.node_group(net.pop_root(p)), NO_GROUP);
            // Every non-root router lands in one of its PoP's subtree
            // groups, shared with its level-1 ancestor.
            for t in 1..net.tree.nodes() {
                let g = groups.node_group(net.node(p, t));
                assert!(
                    g >= p * arity && g < (p + 1) * arity,
                    "group {g} of pop {p}"
                );
                // The uplink tree link shares the node's group.
                let lg = groups.link_groups_of(net.tree_link(net.node(p, t)));
                assert_eq!(lg[0], g);
                assert_eq!(lg[1], NO_GROUP);
            }
            // All nodes under the same level-1 child share a group.
            let child = net.node(p, 1);
            for t in 1..net.tree.nodes() {
                let mut cur = t;
                while net.tree.level_of(cur) > 1 {
                    cur = net.tree.parent(cur).unwrap_or(cur);
                }
                if cur == 1 {
                    assert_eq!(groups.node_group(net.node(p, t)), groups.node_group(child));
                }
            }
        }
        // Core links belong to both endpoints' bundles.
        for &(a, b) in net.core.edges() {
            let lg = groups.link_groups_of(net.core_link(a, b));
            assert_eq!(lg, [pops * arity + a, pops * arity + b]);
        }
    }

    #[test]
    fn zero_disaster_layer_is_invisible() {
        let mut with = FaultConfig::uniform(9, 0.05);
        with.disaster = Some(DisasterConfig::zero());
        let a = FaultSchedule::new(with);
        let b = sched(9, 0.05);
        assert!(FaultConfig {
            disaster: Some(DisasterConfig::zero()),
            ..FaultConfig::zero(9)
        }
        .is_zero());
        for w in 0..2_000u64 {
            for e in 0..8u32 {
                assert_eq!(a.node_down(e, w), b.node_down(e, w));
                assert_eq!(a.link_down(e, w), b.link_down(e, w));
                assert!(!a.group_down(e, w));
            }
        }
    }
}
