//! Deterministic fault injection (robustness extension).
//!
//! The paper's incremental-deployability argument (§6) implies the designs
//! must keep working when parts of the infrastructure break. This module
//! models three failure classes over the request-indexed windows already
//! used by [`crate::capacity`]:
//!
//! * **cache-node crashes** — the node's contents are flushed and it stays
//!   cold (cannot serve or store) for a configurable outage window;
//! * **link failures** — tree or core links drop; routing must detour
//!   (ICN-NR falls back to the next-nearest live replica) or the request
//!   fails when the origin is unreachable;
//! * **origin degradation** — a degraded origin PoP serves through a
//!   [`CapacityTracker`] with reduced capacity; saturated windows fail
//!   requests.
//!
//! Everything is a **pure function of a `u64` seed and the
//! [`FaultConfig`]** — never wall clock, never a global RNG. A
//! [`FaultSchedule`] query hashes `(seed, entity, window, kind)` through a
//! SplitMix64-style mixer and thresholds the result against the configured
//! rate, so two schedules built from identical inputs agree on every query
//! regardless of query order, thread count, or construction count. This is
//! what lets the sweep engine's 1-vs-N bit-identity guarantee extend to
//! faulted runs (see `tests/determinism.rs`).

use crate::capacity::ServingCapacity;
use serde::{Deserialize, Serialize};

/// Parameters of one deterministic fault schedule.
///
/// All rates are per-entity per-window probabilities in `[0, 1]`. Time is
/// measured in simulated requests (like [`ServingCapacity::window`]): each
/// block of [`FaultConfig::window`] consecutive requests is one fault
/// window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Seed of the schedule. Different seeds give statistically
    /// independent schedules; equal seeds (with equal configs) give
    /// bit-identical schedules.
    pub seed: u64,
    /// Fault-window length in simulated requests (>= 1).
    pub window: u32,
    /// Probability that a cache-equipped router crashes in a window.
    pub node_crash_rate: f64,
    /// Windows a crashed node stays down (including the crash window).
    pub node_outage_windows: u32,
    /// Probability that a link fails in a window.
    pub link_failure_rate: f64,
    /// Windows a failed link stays down (including the failure window).
    pub link_outage_windows: u32,
    /// Probability that an origin PoP is degraded in a window.
    pub origin_degraded_rate: f64,
    /// Serving capacity of a *degraded* origin (healthy origins are
    /// infinite). Reuses the §5.1 capacity model: per-window counters
    /// tracked by a [`CapacityTracker`]; a saturated degraded origin
    /// fails the request.
    pub degraded_origin: ServingCapacity,
}

impl FaultConfig {
    /// A schedule that never fires: every rate is zero. Runs under this
    /// config are bit-identical to runs with no fault config at all
    /// (asserted by `tests/fault_determinism.rs`).
    pub fn zero(seed: u64) -> Self {
        Self {
            seed,
            window: 1_000,
            node_crash_rate: 0.0,
            node_outage_windows: 1,
            link_failure_rate: 0.0,
            link_outage_windows: 1,
            origin_degraded_rate: 0.0,
            degraded_origin: ServingCapacity {
                per_node: u32::MAX,
                window: 1_000,
            },
        }
    }

    /// A uniform schedule: nodes, links, and origins all fail at `rate`
    /// per window, with short (2-window) outages and a tightly capped
    /// degraded origin. The `failures` bench bin sweeps this rate.
    pub fn uniform(seed: u64, rate: f64) -> Self {
        Self {
            seed,
            window: 1_000,
            node_crash_rate: rate,
            node_outage_windows: 2,
            link_failure_rate: rate,
            link_outage_windows: 2,
            origin_degraded_rate: rate,
            degraded_origin: ServingCapacity {
                per_node: 50,
                window: 1_000,
            },
        }
    }

    /// True when no fault can ever fire under this config.
    pub fn is_zero(&self) -> bool {
        self.node_crash_rate <= 0.0
            && self.link_failure_rate <= 0.0
            && self.origin_degraded_rate <= 0.0
    }

    /// Origin degradation lasts one window per event (degradation is a
    /// load condition, not an outage with repair time).
    fn origin_degraded_windows(&self) -> u32 {
        1
    }
}

/// Salt separating the three event kinds in the hash domain.
const SALT_NODE: u64 = 0x6e6f_6465_0000_0001; // "node"
const SALT_LINK: u64 = 0x6c69_6e6b_0000_0002; // "link"
const SALT_ORIGIN: u64 = 0x6f72_6967_0000_0003; // "orig"

/// SplitMix64 finalizer: a full-avalanche 64-bit mixer. Statistically
/// strong enough to decorrelate adjacent (entity, window) draws; crucially
/// it is *stateless*, so the schedule has no query-order dependence.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A stateless, seeded fault schedule. Queries are pure: any two
/// schedules constructed from equal configs return equal answers for
/// every `(entity, window)`, in any order, on any thread.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSchedule {
    cfg: FaultConfig,
}

impl FaultSchedule {
    /// Builds a schedule from its config.
    pub fn new(cfg: FaultConfig) -> Self {
        assert!(cfg.window >= 1, "fault window must be >= 1");
        Self { cfg }
    }

    /// The schedule's configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// The fault window containing request `req_idx`.
    #[inline]
    pub fn window_of(&self, req_idx: u64) -> u64 {
        req_idx / self.cfg.window as u64
    }

    /// A uniform draw in `[0, 1)` for `(kind, entity, window)`: 53
    /// mantissa bits of the mixed hash, the same construction the
    /// vendored rand crate uses for `f64` sampling.
    #[inline]
    fn draw(&self, salt: u64, entity: u64, window: u64) -> f64 {
        let mut h = mix(self.cfg.seed ^ salt);
        h = mix(h ^ entity.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        h = mix(h ^ window);
        (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// True when a crash *event* is drawn for `node` in exactly `window`.
    /// (The node then stays down for `node_outage_windows` windows; see
    /// [`FaultSchedule::node_down`].)
    #[inline]
    pub fn node_crashes(&self, node: u32, window: u64) -> bool {
        self.cfg.node_crash_rate > 0.0
            && self.draw(SALT_NODE, node as u64, window) < self.cfg.node_crash_rate
    }

    /// True when `node` is down in `window` — a crash event fired in this
    /// window or within the preceding `node_outage_windows - 1` windows.
    pub fn node_down(&self, node: u32, window: u64) -> bool {
        self.down_via(
            SALT_NODE,
            node as u64,
            window,
            self.cfg.node_crash_rate,
            self.cfg.node_outage_windows,
        )
    }

    /// True when `link` is down in `window`.
    pub fn link_down(&self, link: u32, window: u64) -> bool {
        self.down_via(
            SALT_LINK,
            link as u64,
            window,
            self.cfg.link_failure_rate,
            self.cfg.link_outage_windows,
        )
    }

    /// True when origin PoP `pop` is degraded in `window`.
    pub fn origin_degraded(&self, pop: u16, window: u64) -> bool {
        self.down_via(
            SALT_ORIGIN,
            pop as u64,
            window,
            self.cfg.origin_degraded_rate,
            self.cfg.origin_degraded_windows(),
        )
    }

    #[inline]
    fn down_via(&self, salt: u64, entity: u64, window: u64, rate: f64, outage: u32) -> bool {
        if rate <= 0.0 {
            return false;
        }
        let span = outage.max(1) as u64;
        let first = window.saturating_sub(span - 1);
        (first..=window).any(|w| self.draw(salt, entity, w) < rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched(seed: u64, rate: f64) -> FaultSchedule {
        FaultSchedule::new(FaultConfig::uniform(seed, rate))
    }

    #[test]
    fn window_indexing() {
        let s = sched(1, 0.1);
        assert_eq!(s.window_of(0), 0);
        assert_eq!(s.window_of(999), 0);
        assert_eq!(s.window_of(1000), 1);
    }

    #[test]
    fn zero_rate_never_fires() {
        let s = FaultSchedule::new(FaultConfig::zero(42));
        for w in 0..500 {
            for e in 0..32u32 {
                assert!(!s.node_down(e, w));
                assert!(!s.link_down(e, w));
                assert!(!s.origin_degraded(e as u16, w));
                assert!(!s.node_crashes(e, w));
            }
        }
        assert!(FaultConfig::zero(42).is_zero());
        assert!(!FaultConfig::uniform(42, 0.01).is_zero());
    }

    #[test]
    fn rate_one_always_fires() {
        let s = sched(7, 1.0);
        for w in 0..50 {
            assert!(s.node_down(3, w));
            assert!(s.link_down(3, w));
            assert!(s.origin_degraded(3, w));
        }
    }

    #[test]
    fn identical_inputs_give_identical_schedules() {
        let a = sched(0xfeed, 0.05);
        let b = sched(0xfeed, 0.05);
        for w in 0..2_000 {
            for e in 0..16u32 {
                assert_eq!(a.node_down(e, w), b.node_down(e, w));
                assert_eq!(a.link_down(e, w), b.link_down(e, w));
                assert_eq!(
                    a.origin_degraded(e as u16, w),
                    b.origin_degraded(e as u16, w)
                );
            }
        }
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let a = sched(1, 0.1);
        let b = sched(2, 0.1);
        let mut differ = false;
        'outer: for w in 0..200 {
            for e in 0..16u32 {
                if a.node_crashes(e, w) != b.node_crashes(e, w) {
                    differ = true;
                    break 'outer;
                }
            }
        }
        assert!(differ, "seeds 1 and 2 produced identical schedules");
    }

    #[test]
    fn empirical_rate_tracks_configured_rate() {
        let s = sched(99, 0.1);
        let draws = 50_000u64;
        let fired = (0..draws).filter(|&w| s.node_crashes(0, w)).count() as f64;
        let p = fired / draws as f64;
        assert!((p - 0.1).abs() < 0.01, "empirical crash rate {p}");
    }

    #[test]
    fn outage_extends_the_crash_window() {
        // With a 2-window outage, a node is down in the crash window and
        // the one after it.
        let s = sched(5, 0.05);
        for w in 1..5_000 {
            if s.node_crashes(7, w) {
                assert!(s.node_down(7, w), "down in the crash window");
                assert!(s.node_down(7, w + 1), "down in the following window");
            }
        }
        // And there exists a crash whose +2 window is back up (otherwise
        // the outage logic would be "forever down").
        let recovered = (1..5_000).any(|w| {
            s.node_crashes(7, w)
                && !s.node_crashes(7, w + 1)
                && !s.node_crashes(7, w + 2)
                && !s.node_down(7, w + 2)
        });
        assert!(recovered, "no crash ever recovered");
    }

    #[test]
    fn query_order_does_not_matter() {
        // Stateless schedule: interleaving queries across entities and
        // windows in any order gives the same answers.
        let s = sched(0xabc, 0.2);
        let forward: Vec<bool> = (0..100)
            .flat_map(|w| (0..8u32).map(move |e| (e, w)))
            .map(|(e, w)| s.link_down(e, w))
            .collect();
        let backward: Vec<bool> = (0..100)
            .flat_map(|w| (0..8u32).map(move |e| (e, w)))
            .rev()
            .map(|(e, w)| s.link_down(e, w))
            .collect();
        let mut backward = backward;
        backward.reverse();
        assert_eq!(forward, backward);
    }
}
