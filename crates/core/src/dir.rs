//! Bitmask-compressed nearest-replica directory.
//!
//! Under nearest-replica routing a popular object ends up cached on
//! thousands of routers, and the naive directory — one `Vec<NodeId>` per
//! object — makes every selection an O(replicas) scan and every eviction
//! an O(replicas) `position` search. [`ReplicaMasks`] stores the same set
//! as one `(pop, u128)` pair per PoP that holds the object, with presence
//! bits indexed by the *climb rank* of the replica's tree index (see
//! [`CostTable::rank_of`](crate::costs::CostTable::rank_of)).
//!
//! The rank ordering is what makes the compression useful rather than
//! merely compact: within any foreign PoP, candidate cost is
//! `climb_root[t]` plus a PoP-wide constant, so ascending rank is exactly
//! ascending `(cost, NodeId)` — the best replica a foreign PoP can offer
//! is `mask.trailing_zeros()`, one instruction instead of a scan. Only
//! the requester's own PoP (at most one group, at most `tree_nodes`
//! bits) still needs per-candidate cost lookups, because same-PoP costs
//! go through the LCA and are not monotone in climb rank.
//!
//! Groups are kept sorted by PoP index and dropped when their mask
//! empties, so iteration order is canonical: the structure is a pure set,
//! and the selection built on it is *structurally* independent of
//! insertion order (the `Vec` directory only achieves that through its
//! `(cost, NodeId)` tie-break).
//!
//! `u128` masks cap the tree at 128 nodes per PoP; the simulator falls
//! back to the `Vec` directory beyond that (and in reference mode, which
//! deliberately exercises the legacy structure).

/// Maximum tree size (nodes per PoP) the mask directory can index.
pub const MAX_MASK_TREE: u32 = 128;

/// Per-object replica sets, bit-packed per PoP. See the module docs.
pub struct ReplicaMasks {
    /// `per_object[o]` = `(pop, mask)` groups sorted by `pop`, empty
    /// groups removed. Bit `r` of a mask marks the replica whose tree
    /// index has climb rank `r`.
    per_object: Vec<Vec<(u32, u128)>>,
}

impl ReplicaMasks {
    /// An empty directory over `objects` object ids.
    pub fn new(objects: usize) -> Self {
        Self {
            per_object: vec![Vec::new(); objects],
        }
    }

    /// The `(pop, mask)` groups currently holding `object`, ascending by
    /// PoP index; every mask is non-zero.
    #[inline]
    pub fn entries(&self, object: u32) -> &[(u32, u128)] {
        &self.per_object[object as usize]
    }

    /// Marks the replica `(pop, rank)` present. Idempotent.
    pub fn insert(&mut self, object: u32, pop: u32, rank: u32) {
        debug_assert!(rank < MAX_MASK_TREE);
        let groups = &mut self.per_object[object as usize];
        match groups.binary_search_by_key(&pop, |&(p, _)| p) {
            Ok(i) => groups[i].1 |= 1u128 << rank,
            Err(i) => groups.insert(i, (pop, 1u128 << rank)),
        }
    }

    /// Clears the replica `(pop, rank)`; a no-op when absent. Drops the
    /// PoP group once its last bit clears.
    pub fn remove(&mut self, object: u32, pop: u32, rank: u32) {
        debug_assert!(rank < MAX_MASK_TREE);
        let groups = &mut self.per_object[object as usize];
        if let Ok(i) = groups.binary_search_by_key(&pop, |&(p, _)| p) {
            groups[i].1 &= !(1u128 << rank);
            if groups[i].1 == 0 {
                groups.remove(i);
            }
        }
    }

    /// Replaces the whole `pop` group of `object` with `mask`, dropping
    /// the group when `mask == 0`. This is the epoch-sharded engine's
    /// bulk resync primitive (`crate::shard`): at reconcile time each
    /// lane rewrites its own PoP's group from its live directory in one
    /// call per dirty object, instead of replaying per-bit insert and
    /// remove churn.
    pub fn set_group(&mut self, object: u32, pop: u32, mask: u128) {
        let groups = &mut self.per_object[object as usize];
        match groups.binary_search_by_key(&pop, |&(p, _)| p) {
            Ok(i) => {
                if mask == 0 {
                    groups.remove(i);
                } else {
                    groups[i].1 = mask;
                }
            }
            Err(i) => {
                if mask != 0 {
                    groups.insert(i, (pop, mask));
                }
            }
        }
    }

    /// The presence mask of `object` within `pop` (0 when the PoP holds
    /// no replica).
    #[inline]
    pub fn group(&self, object: u32, pop: u32) -> u128 {
        let groups = &self.per_object[object as usize];
        match groups.binary_search_by_key(&pop, |&(p, _)| p) {
            Ok(i) => groups[i].1,
            Err(_) => 0,
        }
    }

    /// Number of object slots (not replicas).
    pub fn len(&self) -> usize {
        self.per_object.len()
    }

    /// True when the directory has no object slots at all.
    pub fn is_empty(&self) -> bool {
        self.per_object.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn replicas(m: &ReplicaMasks, object: u32) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        for &(p, mask) in m.entries(object) {
            let mut bits = mask;
            while bits != 0 {
                out.push((p, bits.trailing_zeros()));
                bits &= bits - 1;
            }
        }
        out
    }

    #[test]
    fn insert_is_idempotent_and_sorted_by_pop() {
        let mut m = ReplicaMasks::new(2);
        m.insert(0, 5, 3);
        m.insert(0, 1, 7);
        m.insert(0, 5, 3);
        m.insert(0, 5, 0);
        assert_eq!(m.entries(0), &[(1, 1 << 7), (5, (1 << 3) | 1)]);
        assert_eq!(replicas(&m, 0), vec![(1, 7), (5, 0), (5, 3)]);
        assert!(m.entries(1).is_empty());
    }

    #[test]
    fn remove_clears_bits_and_drops_empty_groups() {
        let mut m = ReplicaMasks::new(1);
        m.insert(0, 2, 1);
        m.insert(0, 2, 4);
        m.insert(0, 9, 127);
        m.remove(0, 2, 1);
        assert_eq!(m.entries(0), &[(2, 1 << 4), (9, 1 << 127)]);
        m.remove(0, 2, 4);
        assert_eq!(m.entries(0), &[(9, 1 << 127)]);
        // Absent removals are no-ops.
        m.remove(0, 2, 4);
        m.remove(0, 3, 0);
        assert_eq!(m.entries(0), &[(9, 1 << 127)]);
        m.remove(0, 9, 127);
        assert!(m.entries(0).is_empty());
    }

    #[test]
    fn set_group_matches_per_bit_edits() {
        let mut m = ReplicaMasks::new(1);
        let mut per_bit = ReplicaMasks::new(1);
        for (p, r) in [(3, 1), (0, 0), (3, 2), (1, 9)] {
            per_bit.insert(0, p, r);
        }
        m.set_group(0, 3, (1 << 1) | (1 << 2));
        m.set_group(0, 0, 1);
        m.set_group(0, 1, 1 << 9);
        assert_eq!(m.entries(0), per_bit.entries(0));
        assert_eq!(m.group(0, 3), (1 << 1) | (1 << 2));
        assert_eq!(m.group(0, 7), 0);
        // Overwrite replaces rather than ORs; zero drops the group.
        m.set_group(0, 3, 1 << 5);
        assert_eq!(m.group(0, 3), 1 << 5);
        m.set_group(0, 3, 0);
        assert_eq!(m.group(0, 3), 0);
        assert_eq!(m.entries(0), &[(0, 1), (1, 1 << 9)]);
        // Setting an absent group to zero is a no-op.
        m.set_group(0, 9, 0);
        assert_eq!(m.entries(0), &[(0, 1), (1, 1 << 9)]);
    }

    #[test]
    fn groups_stay_canonical_under_interleaving() {
        let mut m = ReplicaMasks::new(1);
        // Two interleavings of the same set produce identical storage.
        let mut a = ReplicaMasks::new(1);
        for (p, r) in [(3, 1), (0, 0), (3, 2), (1, 9)] {
            m.insert(0, p, r);
        }
        for (p, r) in [(1, 9), (3, 2), (0, 0), (3, 1)] {
            a.insert(0, p, r);
        }
        assert_eq!(m.entries(0), a.entries(0));
    }
}
