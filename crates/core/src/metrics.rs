//! Metric accumulation and the paper's improvement-over-no-caching scores.
//!
//! The three reported metrics (§4):
//!
//! * **query latency** — mean request latency (link costs + 1 serving hop);
//! * **network congestion** — transfers over the *most congested* link;
//! * **origin server load** — requests served by the *most loaded* origin.
//!
//! Each is reported as the percentage improvement relative to the identical
//! run with no caches.

// lint:allow(feature-gate-obs): Histogram is a plain data type built in every configuration; the `obs` feature gates instrumentation, not types
use icn_obs::Histogram;
use serde::{Deserialize, Serialize};

/// Fixed-point scale used to store a (fractional) request latency in the
/// integer [`RunMetrics::latency_hist`]: latencies are recorded as
/// "millicost" (`latency × 1000` rounded), giving three decimal places —
/// far finer than the histogram's own bucket resolution.
pub const LATENCY_HIST_SCALE: f64 = 1000.0;

/// Raw per-run counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Requests processed.
    pub requests: u64,
    /// Sum of request latencies.
    pub total_latency: f64,
    /// Per-request latency distribution in millicost units (latency ×
    /// [`LATENCY_HIST_SCALE`]); always recorded — a histogram insert is a
    /// few nanoseconds, well under the routing work per request.
    pub latency_hist: Histogram,
    /// Transfers (or bytes, when size-weighted) per link.
    pub link_transfers: Vec<u64>,
    /// Requests served by each PoP acting as an origin.
    pub origin_served: Vec<u64>,
    /// Requests answered by a cache.
    pub cache_hits: u64,
    /// Requests answered by an origin server.
    pub origin_hits: u64,
    /// Cache hits by the serving router's tree level (index 0 = PoP root).
    pub hits_by_level: Vec<u64>,
    /// Cache hits served by a sibling after a scoped cooperative lookup.
    pub coop_hits: u64,
    /// Requests that could not be served at all (origin unreachable or
    /// saturated under an active fault schedule). Always 0 in fault-free
    /// runs. Failed requests contribute no latency and no transfers.
    pub failed_requests: u64,
    /// Latency distribution of requests *served during fault-active
    /// windows* (millicost units, like [`RunMetrics::latency_hist`]).
    /// Empty in fault-free runs, so fault-free metrics stay bit-identical
    /// to runs built before fault injection existed.
    pub fault_latency_hist: Histogram,
    /// Requests answered with a *poisoned* cached replica by a design that
    /// cannot detect corruption (no content self-certification). These
    /// requests count as served/reachable but not as *correct* — see
    /// [`RunMetrics::correct_availability_pct`]. Always 0 fault-free.
    pub corrupt_served: u64,
    /// Poisoned replicas *caught* by content self-certification at serve
    /// time: the copy is evicted, the wasted fetch charged as latency, and
    /// the request re-served from the next candidate (or the origin).
    /// Always 0 fault-free.
    pub corrupt_detected: u64,
}

impl RunMetrics {
    /// Creates zeroed counters for a network with `links` links, `pops`
    /// PoPs, and trees of `depth` levels below the root.
    pub fn new(links: usize, pops: usize, depth: u32) -> Self {
        Self {
            requests: 0,
            total_latency: 0.0,
            latency_hist: Histogram::new(),
            link_transfers: vec![0; links],
            origin_served: vec![0; pops],
            cache_hits: 0,
            origin_hits: 0,
            hits_by_level: vec![0; depth as usize + 1],
            coop_hits: 0,
            failed_requests: 0,
            fault_latency_hist: Histogram::new(),
            corrupt_served: 0,
            corrupt_detected: 0,
        }
    }

    /// Folds another run's counters into this one, element-wise.
    ///
    /// Used by the epoch-sharded engine (`crate::shard`): each PoP lane
    /// accumulates into a private `RunMetrics` and the driver merges the
    /// lanes in ascending PoP order. Every integer counter is a plain
    /// add and both histograms merge bucket-wise, so the fold is exact;
    /// `total_latency` is a sum of integer-valued `f64` latencies (the
    /// `crate::costs` bit-identity contract), so even the float
    /// accumulator is independent of merge order.
    pub fn merge(&mut self, other: &RunMetrics) {
        self.requests += other.requests;
        self.total_latency += other.total_latency;
        self.latency_hist.merge(&other.latency_hist);
        for (a, b) in self.link_transfers.iter_mut().zip(&other.link_transfers) {
            *a += b;
        }
        for (a, b) in self.origin_served.iter_mut().zip(&other.origin_served) {
            *a += b;
        }
        self.cache_hits += other.cache_hits;
        self.origin_hits += other.origin_hits;
        for (a, b) in self.hits_by_level.iter_mut().zip(&other.hits_by_level) {
            *a += b;
        }
        self.coop_hits += other.coop_hits;
        self.failed_requests += other.failed_requests;
        self.fault_latency_hist.merge(&other.fault_latency_hist);
        self.corrupt_served += other.corrupt_served;
        self.corrupt_detected += other.corrupt_detected;
    }

    /// Requests that were actually served (requests minus failures).
    pub fn served(&self) -> u64 {
        self.requests - self.failed_requests
    }

    /// Availability in percent: the fraction of requests that were served.
    /// An empty run is vacuously 100% available.
    pub fn availability_pct(&self) -> f64 {
        if self.requests == 0 {
            100.0
        } else {
            self.served() as f64 / self.requests as f64 * 100.0
        }
    }

    /// *Correct* availability in percent: the fraction of requests served
    /// with intact content. [`RunMetrics::availability_pct`] counts a
    /// request as available as soon as *something* answered — this
    /// subtracts the answers that delivered a poisoned replica
    /// ([`RunMetrics::corrupt_served`]), splitting availability into
    /// reachable-vs-correct. Identical to plain availability for
    /// self-certifying designs (they never serve poison) and for
    /// fault-free runs.
    pub fn correct_availability_pct(&self) -> f64 {
        if self.requests == 0 {
            100.0
        } else {
            (self.served() - self.corrupt_served) as f64 / self.requests as f64 * 100.0
        }
    }

    /// Mean latency over *served* requests (failed requests have no
    /// latency to average; with zero failures this is the plain mean).
    pub fn avg_latency(&self) -> f64 {
        let served = self.served();
        if served == 0 {
            0.0
        } else {
            self.total_latency / served as f64
        }
    }

    /// Records one request's latency into the distribution (in addition to
    /// the `total_latency` accumulator — callers update both).
    #[inline]
    pub fn record_latency(&mut self, latency: f64) {
        self.latency_hist
            .record((latency * LATENCY_HIST_SCALE).round() as u64);
    }

    /// Estimated latency percentile (`q` in `[0, 1]`), in the simulator's
    /// latency unit.
    pub fn latency_quantile(&self, q: f64) -> f64 {
        self.latency_hist.quantile(q) / LATENCY_HIST_SCALE
    }

    /// Median request latency.
    pub fn latency_p50(&self) -> f64 {
        self.latency_quantile(0.5)
    }

    /// 90th-percentile request latency.
    pub fn latency_p90(&self) -> f64 {
        self.latency_quantile(0.9)
    }

    /// 99th-percentile request latency.
    pub fn latency_p99(&self) -> f64 {
        self.latency_quantile(0.99)
    }

    /// Records one served request's latency during a fault-active window
    /// into the under-failure distribution.
    #[inline]
    pub fn record_fault_latency(&mut self, latency: f64) {
        self.fault_latency_hist
            .record((latency * LATENCY_HIST_SCALE).round() as u64);
    }

    /// Latency percentile over requests served during fault-active
    /// windows (`q` in `[0, 1]`); 0 when no such request exists.
    pub fn fault_latency_quantile(&self, q: f64) -> f64 {
        if self.fault_latency_hist.count() == 0 {
            0.0
        } else {
            self.fault_latency_hist.quantile(q) / LATENCY_HIST_SCALE
        }
    }

    /// Mean transfers per link (0 when the network has no links). Reported
    /// alongside [`RunMetrics::max_congestion`]: the max shows the hot
    /// spot, the mean shows whether caching relieved the network overall.
    pub fn mean_link_utilisation(&self) -> f64 {
        if self.link_transfers.is_empty() {
            0.0
        } else {
            self.link_transfers.iter().sum::<u64>() as f64 / self.link_transfers.len() as f64
        }
    }

    /// Transfers over the most congested link.
    pub fn max_congestion(&self) -> u64 {
        self.link_transfers.iter().copied().max().unwrap_or(0)
    }

    /// Load on the most loaded origin.
    pub fn max_origin_load(&self) -> u64 {
        self.origin_served.iter().copied().max().unwrap_or(0)
    }

    /// Cache hit ratio in `[0, 1]`.
    pub fn hit_ratio(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.requests as f64
        }
    }
}

/// Percentage improvements of a run over the no-caching baseline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Improvement {
    /// Query latency improvement, percent.
    pub latency_pct: f64,
    /// Max-link congestion improvement, percent.
    pub congestion_pct: f64,
    /// Max-origin load improvement, percent.
    pub origin_pct: f64,
}

impl Improvement {
    /// Computes `(base - run) / base × 100` per metric. A zero baseline
    /// yields 0% (nothing to improve).
    pub fn over_baseline(base: &RunMetrics, run: &RunMetrics) -> Self {
        fn pct(base: f64, run: f64) -> f64 {
            if base <= 0.0 {
                0.0
            } else {
                (base - run) / base * 100.0
            }
        }
        Self {
            latency_pct: pct(base.avg_latency(), run.avg_latency()),
            congestion_pct: pct(base.max_congestion() as f64, run.max_congestion() as f64),
            origin_pct: pct(base.max_origin_load() as f64, run.max_origin_load() as f64),
        }
    }

    /// The §5 sensitivity score: `RelImprov(a) − RelImprov(b)` per metric.
    pub fn gap(a: &Improvement, b: &Improvement) -> Improvement {
        Improvement {
            latency_pct: a.latency_pct - b.latency_pct,
            congestion_pct: a.congestion_pct - b.congestion_pct,
            origin_pct: a.origin_pct - b.origin_pct,
        }
    }

    /// Largest of the three improvements (used by "on all metrics" claims).
    pub fn max_metric(&self) -> f64 {
        self.latency_pct
            .max(self.congestion_pct)
            .max(self.origin_pct)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(latency: f64, requests: u64, links: Vec<u64>, origins: Vec<u64>) -> RunMetrics {
        let mut m = RunMetrics::new(links.len(), origins.len(), 2);
        m.requests = requests;
        m.total_latency = latency;
        m.link_transfers = links;
        m.origin_served = origins;
        m
    }

    #[test]
    fn aggregates() {
        let m = metrics(300.0, 100, vec![5, 9, 2], vec![10, 40]);
        assert_eq!(m.avg_latency(), 3.0);
        assert_eq!(m.max_congestion(), 9);
        assert_eq!(m.max_origin_load(), 40);
    }

    #[test]
    fn empty_run_is_zero() {
        let m = RunMetrics::new(0, 0, 2);
        assert_eq!(m.avg_latency(), 0.0);
        assert_eq!(m.max_congestion(), 0);
        assert_eq!(m.hit_ratio(), 0.0);
    }

    #[test]
    fn improvement_math() {
        let base = metrics(1000.0, 100, vec![100], vec![100]);
        let run = metrics(600.0, 100, vec![50], vec![75]);
        let imp = Improvement::over_baseline(&base, &run);
        assert!((imp.latency_pct - 40.0).abs() < 1e-12);
        assert!((imp.congestion_pct - 50.0).abs() < 1e-12);
        assert!((imp.origin_pct - 25.0).abs() < 1e-12);
        assert_eq!(imp.max_metric(), 50.0);
    }

    #[test]
    fn gap_is_signed() {
        let a = Improvement {
            latency_pct: 50.0,
            congestion_pct: 60.0,
            origin_pct: 70.0,
        };
        let b = Improvement {
            latency_pct: 45.0,
            congestion_pct: 65.0,
            origin_pct: 70.0,
        };
        let g = Improvement::gap(&a, &b);
        assert_eq!(g.latency_pct, 5.0);
        assert_eq!(g.congestion_pct, -5.0);
        assert_eq!(g.origin_pct, 0.0);
    }

    #[test]
    fn latency_percentiles_track_distribution() {
        let mut m = RunMetrics::new(1, 1, 2);
        for i in 0..100 {
            let latency = 1.0 + i as f64 / 10.0; // 1.0 .. 10.9
            m.requests += 1;
            m.total_latency += latency;
            m.record_latency(latency);
        }
        assert!(
            (m.latency_p50() - 5.95).abs() < 0.3,
            "p50 {}",
            m.latency_p50()
        );
        assert!(m.latency_p99() > m.latency_p90());
        assert!(m.latency_p90() > m.latency_p50());
        assert!(
            (m.latency_p99() - 10.8).abs() < 0.5,
            "p99 {}",
            m.latency_p99()
        );
    }

    #[test]
    fn correct_availability_subtracts_poisoned_serves() {
        let mut m = metrics(0.0, 100, vec![0], vec![0]);
        m.failed_requests = 10;
        m.corrupt_served = 5;
        assert_eq!(m.availability_pct(), 90.0);
        assert_eq!(m.correct_availability_pct(), 85.0);
        // Detection does not reduce correctness — the request was
        // re-served with intact content.
        m.corrupt_detected = 7;
        assert_eq!(m.correct_availability_pct(), 85.0);
        assert_eq!(RunMetrics::new(0, 0, 2).correct_availability_pct(), 100.0);
    }

    #[test]
    fn mean_link_utilisation_averages() {
        let m = metrics(0.0, 0, vec![10, 20, 0], vec![1]);
        assert_eq!(m.mean_link_utilisation(), 10.0);
        assert_eq!(RunMetrics::new(0, 0, 2).mean_link_utilisation(), 0.0);
    }

    #[test]
    fn zero_baseline_guard() {
        let base = metrics(0.0, 0, vec![0], vec![0]);
        let run = metrics(10.0, 10, vec![1], vec![1]);
        let imp = Improvement::over_baseline(&base, &run);
        assert_eq!(imp.latency_pct, 0.0);
        assert_eq!(imp.congestion_pct, 0.0);
    }
}
