//! Precomputed O(1) path costs for the simulator hot path.
//!
//! [`LatencyModel::path_cost`] decomposes every router-to-router shortest
//! path using the PoP-root + k-ary-tree structure of the network: within a
//! PoP the cost is the climb from both endpoints to their LCA, and across
//! PoPs it is the climb from both endpoints to their pop roots plus the
//! core shortest-path distance times the core link cost. Every input to
//! that decomposition ranges over a small finite domain — tree indices
//! within one access tree (the same tree shape is shared by every PoP) and
//! PoP pairs — so [`CostTable`] evaluates the model once per domain point
//! at [`Simulator`](crate::sim::Simulator) construction and turns each
//! per-request `path_cost` call into one or two array loads and an add.
//!
//! **Bit-for-bit contract.** Every cost the paper's models produce is an
//! integer-valued `f64` (unit hops, arithmetic progressions, integer core
//! multipliers), and integers of this magnitude are exact in `f64`, so the
//! precomputed sums reproduce the reference expression *bitwise*. The
//! table evaluates exactly the same sub-expressions in exactly the same
//! association as [`LatencyModel::path_cost`]; the equivalence is pinned
//! by an exhaustive property test over all three latency models ×
//! randomized topologies (`crates/core/tests/cost_table.rs`).
//!
//! **Determinism.** Construction iterates dense index ranges only (tree
//! indices `0..T`, PoP pairs `0..P×P`); the `deterministic-core` lint
//! scope for this file additionally bans every map/set/heap structure
//! whose iteration order could otherwise leak into the table.

use crate::latency::LatencyModel;
use icn_topology::{Network, NodeId};

/// Above this many tree nodes per PoP the dense T×T intra-tree matrix is
/// skipped (it would cost T² × 8 bytes) and same-PoP costs fall back to an
/// O(depth) LCA walk over the precomputed climb prefixes — still exact,
/// still allocation-free. Every paper topology is far below this bound
/// (the deepest configured tree has 127 nodes).
const MAX_DENSE_TREE: u32 = 1024;

/// Precomputed path costs over one network under one latency model.
///
/// Built once per simulator; see the module docs for the decomposition
/// and the bit-identity contract with [`LatencyModel::path_cost`].
pub struct CostTable {
    tree_nodes: u32,
    pops: u32,
    arity: u32,
    /// `pop_idx[n]` / `tree_idx[n]`: node decomposition as flat loads —
    /// the scan over nearest-replica candidates calls `path_cost` once
    /// per candidate, and two divisions per call would dominate it.
    pop_idx: Vec<u32>,
    tree_idx: Vec<u32>,
    /// `intra[ta * tree_nodes + tb]`: same-PoP cost between tree indices
    /// (`None` when the tree exceeds [`MAX_DENSE_TREE`]).
    intra: Option<Vec<f64>>,
    /// `climb_root[t]`: cost of climbing tree index `t` to its pop root.
    climb_root: Vec<f64>,
    /// `core[pa * pops + pb]`: core distance × per-link core cost.
    core: Vec<f64>,
    /// `uplink[t]`: cost of the tree link above tree index `t`
    /// (`uplink[0]` is 0 — the root has no uplink).
    uplink: Vec<f64>,
    /// The model's zero-length climb summed with itself — `-0.0` for
    /// `Progression` (Rust's `Sum<f64>` folds from `-0.0`, so its empty
    /// climb range is negative zero), `+0.0` for the hop-count models. The
    /// sparse fallback returns this for `ta == tb` to stay bit-exact;
    /// prefix differences would yield `+0.0` there.
    zero_zero: f64,
    /// `rank_of[t]`: position of tree index `t` in the ascending
    /// `(climb_root[t], t)` order. Within a *foreign* PoP every candidate's
    /// cost is `climb_root[t]` plus a constant shared by the whole PoP, so
    /// the rank-minimal resident replica is exactly the PoP's
    /// `(cost, NodeId)`-minimal candidate — the replica directory stores
    /// presence bits by rank and selection reads one `trailing_zeros` per
    /// foreign PoP instead of scanning every replica.
    rank_of: Vec<u32>,
    /// Inverse permutation: `t_of_rank[rank_of[t]] == t`.
    t_of_rank: Vec<u32>,
    /// `climb_by_rank[r] == climb_root[t_of_rank[r]]` — lets the rank-based
    /// scan skip the double indirection.
    climb_by_rank: Vec<f64>,
}

impl CostTable {
    /// Evaluates `model` over every tree index and PoP pair of `net`.
    pub fn new(net: &Network, model: LatencyModel) -> Self {
        let depth = net.tree.depth;
        let tree_nodes = net.tree.nodes();
        let pops = net.pops();

        let climb_root: Vec<f64> = (0..tree_nodes)
            .map(|t| model.climb_cost(net.tree.level_of(t), 0, depth))
            .collect();
        let uplink: Vec<f64> = (0..tree_nodes)
            .map(|t| {
                if t == 0 {
                    0.0
                } else {
                    model.tree_link_cost(net.tree.level_of(t), depth)
                }
            })
            .collect();
        let core: Vec<f64> = (0..pops)
            .flat_map(|pa| {
                (0..pops)
                    .map(move |pb| net.core_distance(pa, pb) as f64 * model.core_link_cost(depth))
            })
            .collect();
        let intra = (tree_nodes <= MAX_DENSE_TREE).then(|| {
            let mut m = Vec::with_capacity((tree_nodes * tree_nodes) as usize);
            for ta in 0..tree_nodes {
                for tb in 0..tree_nodes {
                    let lca_level = net.tree.level_of(net.tree.lca(ta, tb));
                    m.push(
                        model.climb_cost(net.tree.level_of(ta), lca_level, depth)
                            + model.climb_cost(net.tree.level_of(tb), lca_level, depth),
                    );
                }
            }
            m
        });
        let mut pop_idx = Vec::with_capacity((pops * tree_nodes) as usize);
        let mut tree_idx = Vec::with_capacity((pops * tree_nodes) as usize);
        for p in 0..pops {
            for t in 0..tree_nodes {
                pop_idx.push(p);
                tree_idx.push(t);
            }
        }
        let zero = model.climb_cost(0, 0, depth);
        // Rank tree indices by (climb-to-root, index): `total_cmp` is a
        // total order (so the sort cannot panic) and the index tie-break
        // makes the permutation deterministic. Equal climbs sort by index,
        // which is exactly the `NodeId` tie-break within one PoP.
        let mut t_of_rank: Vec<u32> = (0..tree_nodes).collect();
        t_of_rank.sort_by(|&a, &b| {
            climb_root[a as usize]
                .total_cmp(&climb_root[b as usize])
                .then(a.cmp(&b))
        });
        let mut rank_of = vec![0u32; tree_nodes as usize];
        for (r, &t) in t_of_rank.iter().enumerate() {
            rank_of[t as usize] = r as u32;
        }
        let climb_by_rank: Vec<f64> = t_of_rank.iter().map(|&t| climb_root[t as usize]).collect();
        Self {
            tree_nodes,
            pops,
            arity: net.tree.arity,
            pop_idx,
            tree_idx,
            intra,
            climb_root,
            core,
            uplink,
            zero_zero: zero + zero,
            rank_of,
            t_of_rank,
            climb_by_rank,
        }
    }

    /// Total link cost of the shortest path between routers `a` and `b` —
    /// bitwise equal to `model.path_cost(net, a, b)` for the network and
    /// model this table was built from.
    #[inline]
    pub fn path_cost(&self, a: NodeId, b: NodeId) -> f64 {
        let (pa, ta) = (self.pop_idx[a as usize], self.tree_idx[a as usize]);
        let (pb, tb) = (self.pop_idx[b as usize], self.tree_idx[b as usize]);
        if pa == pb {
            self.intra_cost(ta, tb)
        } else {
            self.climb_root[ta as usize]
                + self.climb_root[tb as usize]
                + self.core[(pa * self.pops + pb) as usize]
        }
    }

    /// A cursor fixing the source endpoint: the nearest-replica scan
    /// evaluates `path_cost(leaf, candidate)` once per directory entry,
    /// and hoisting the leaf's decomposition (and its row offsets) out of
    /// that loop is worth more than the optimizer reliably recovers.
    #[inline]
    pub fn from(&self, a: NodeId) -> CostFrom<'_> {
        CostFrom {
            table: self,
            pa: self.pop_idx[a as usize],
            ta: self.tree_idx[a as usize],
        }
    }

    /// Same-PoP cost between two tree indices: a dense-matrix load, or the
    /// exact prefix-difference fallback for oversized trees.
    #[inline]
    fn intra_cost(&self, ta: u32, tb: u32) -> f64 {
        if let Some(m) = &self.intra {
            return m[(ta * self.tree_nodes + tb) as usize];
        }
        if ta == tb {
            return self.zero_zero;
        }
        // LCA by heap-index parent walks: larger index is never shallower.
        let (mut x, mut y) = (ta, tb);
        while x != y {
            if x > y {
                x = (x - 1) / self.arity;
            } else {
                y = (y - 1) / self.arity;
            }
        }
        // Climb prefixes are integer-valued, so the differences reproduce
        // the per-segment climb costs exactly: at least one segment is
        // non-empty (ta != tb), and a positive term absorbs the other
        // side's signed zero the same way the reference sum does.
        (self.climb_root[ta as usize] - self.climb_root[x as usize])
            + (self.climb_root[tb as usize] - self.climb_root[x as usize])
    }

    /// Cost of the tree link directly above tree index `t` (0 for the pop
    /// root) — bitwise equal to `model.tree_link_cost(level_of(t), depth)`
    /// for `t >= 1`.
    #[inline]
    pub fn uplink_cost(&self, t: u32) -> f64 {
        self.uplink[t as usize]
    }

    /// Position of tree index `t` in the ascending `(climb_root, t)` order;
    /// see the `rank_of` field for why this ranks same-PoP candidates.
    #[inline]
    pub fn rank_of(&self, t: u32) -> u32 {
        self.rank_of[t as usize]
    }

    /// Inverse of [`CostTable::rank_of`].
    #[inline]
    pub fn t_of_rank(&self, r: u32) -> u32 {
        self.t_of_rank[r as usize]
    }
}

/// See [`CostTable::from`]: a source-pinned view whose [`CostFrom::to`]
/// is bit-identical to `path_cost(a, b)` with `a` fixed.
pub struct CostFrom<'a> {
    table: &'a CostTable,
    pa: u32,
    ta: u32,
}

impl CostFrom<'_> {
    /// `path_cost(a, b)` for the pinned source `a`.
    #[inline]
    pub fn to(&self, b: NodeId) -> f64 {
        let t = self.table;
        let (pb, tb) = (t.pop_idx[b as usize], t.tree_idx[b as usize]);
        if self.pa == pb {
            t.intra_cost(self.ta, tb)
        } else {
            t.climb_root[self.ta as usize]
                + t.climb_root[tb as usize]
                + t.core[(self.pa * t.pops + pb) as usize]
        }
    }

    /// PoP index of the pinned source.
    #[inline]
    pub fn pop(&self) -> u32 {
        self.pa
    }

    /// Tree index of the pinned source.
    #[inline]
    pub fn tree(&self) -> u32 {
        self.ta
    }

    /// Same-PoP cost to tree index `tb` — bit-identical to [`CostFrom::to`]
    /// for a destination inside the source's own PoP.
    #[inline]
    pub fn to_tree(&self, tb: u32) -> f64 {
        self.table.intra_cost(self.ta, tb)
    }

    /// Folds the same-PoP candidates of `mask` — presence bits indexed by
    /// climb rank, for the *source's own* PoP — into `best` under the
    /// `(cost, NodeId)` order, skipping the source itself.
    ///
    /// Own-PoP costs go through the LCA and are not monotone in rank, so
    /// this walk cannot take one `trailing_zeros` representative the way
    /// foreign PoPs do — but it can stop early. For any same-PoP target
    /// `t` with LCA `L`:
    ///
    /// ```text
    /// cost(a, t) = (climb(a) − climb(L)) + (climb(t) − climb(L))
    ///            ≥  climb(a) − climb(t)        (L is an ancestor of t)
    /// ```
    ///
    /// Walking ranks *descending* (deepest replica first) makes that
    /// lower bound non-decreasing, so once it strictly exceeds the
    /// running best cost no remaining candidate can win — not even on
    /// the `NodeId` tie-break — and the scan stops. Climb values are
    /// integer-valued `f64`s, so the bound arithmetic is exact. The fold
    /// is a pure minimum under a total order; the result is bit-identical
    /// to the exhaustive walk it replaces.
    #[inline]
    pub fn min_in_own_mask(&self, mask: u128, best: &mut Option<(f64, NodeId)>) {
        let t = self.table;
        let climb_a = t.climb_root[self.ta as usize];
        let mut bits = mask;
        while bits != 0 {
            let r = 127 - bits.leading_zeros();
            bits &= !(1u128 << r);
            if let Some((bc, _)) = *best {
                if climb_a - t.climb_by_rank[r as usize] > bc {
                    break;
                }
            }
            let tb = t.t_of_rank[r as usize];
            if tb == self.ta {
                continue;
            }
            let c = t.intra_cost(self.ta, tb);
            let n = self.pa * t.tree_nodes + tb;
            if best.is_none_or(|(bc, bn)| c < bc || (c == bc && n < bn)) {
                *best = Some((c, n));
            }
        }
    }

    /// Cross-PoP cost to the replica of climb-rank `r` in PoP `pb`
    /// (`pb != self.pop()`) — bit-identical to [`CostFrom::to`] for that
    /// node, since `climb_by_rank[r]` is a bitwise copy of its
    /// `climb_root` entry and the addition associates identically.
    #[inline]
    pub fn to_pop_rank(&self, pb: u32, r: u32) -> f64 {
        let t = self.table;
        t.climb_root[self.ta as usize]
            + t.climb_by_rank[r as usize]
            + t.core[(self.pa * t.pops + pb) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icn_topology::{pop, AccessTree, Network};

    fn models() -> [LatencyModel; 4] {
        [
            LatencyModel::Unit,
            LatencyModel::Progression,
            LatencyModel::CoreMultiplier { d: 1 },
            LatencyModel::CoreMultiplier { d: 7 },
        ]
    }

    #[test]
    fn matches_reference_on_abilene_bitwise() {
        let net = Network::new(pop::abilene(), AccessTree::new(2, 3));
        for model in models() {
            let table = CostTable::new(&net, model);
            for a in 0..net.node_count() {
                for b in 0..net.node_count() {
                    let want = model.path_cost(&net, a, b);
                    let got = table.path_cost(a, b);
                    assert_eq!(
                        got.to_bits(),
                        want.to_bits(),
                        "{model:?}: path_cost({a}, {b}) = {got} want {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn sparse_fallback_is_also_bitwise_exact() {
        // Force the fallback by building the table as if the tree were
        // oversized: replicate construction with `intra` stripped.
        let net = Network::new(pop::abilene(), AccessTree::new(3, 3));
        for model in models() {
            let mut table = CostTable::new(&net, model);
            table.intra = None;
            for a in 0..net.node_count() {
                for b in 0..net.node_count() {
                    assert_eq!(
                        table.path_cost(a, b).to_bits(),
                        model.path_cost(&net, a, b).to_bits(),
                        "{model:?}: fallback path_cost({a}, {b})"
                    );
                }
            }
        }
    }

    #[test]
    fn uplink_costs_match_tree_link_cost() {
        let net = Network::new(pop::abilene(), AccessTree::new(2, 4));
        for model in models() {
            let table = CostTable::new(&net, model);
            assert_eq!(table.uplink_cost(0), 0.0);
            for t in 1..net.tree.nodes() {
                assert_eq!(
                    table.uplink_cost(t).to_bits(),
                    model
                        .tree_link_cost(net.tree.level_of(t), net.tree.depth)
                        .to_bits()
                );
            }
        }
    }

    #[test]
    fn rank_order_is_the_cross_pop_cost_order() {
        // For any source and any *foreign* PoP, walking that PoP's tree
        // indices in rank order must visit them in ascending
        // (cost, NodeId) order — the invariant the bitmask replica
        // directory's per-PoP representative relies on.
        let net = Network::new(pop::abilene(), AccessTree::new(2, 3));
        for model in models() {
            let table = CostTable::new(&net, model);
            let tn = net.tree.nodes();
            // Permutation sanity.
            for t in 0..tn {
                assert_eq!(table.t_of_rank(table.rank_of(t)), t);
            }
            let from = table.from(net.leaf(0, 2));
            for pb in 1..net.pops() {
                let mut prev: Option<(f64, NodeId)> = None;
                for r in 0..tn {
                    let t = table.t_of_rank(r);
                    let node = pb * tn + t;
                    let cost = table.path_cost(net.leaf(0, 2), node);
                    assert_eq!(cost.to_bits(), from.to_pop_rank(pb, r).to_bits());
                    if let Some((pc, pn)) = prev {
                        assert!(
                            pc < cost || (pc == cost && pn < node),
                            "{model:?}: rank {r} out of (cost, id) order"
                        );
                    }
                    prev = Some((cost, node));
                }
            }
        }
    }

    #[test]
    fn min_in_own_mask_matches_exhaustive_scan() {
        let net = Network::new(pop::abilene(), AccessTree::new(2, 3));
        let tn = net.tree.nodes();
        for model in models() {
            let table = CostTable::new(&net, model);
            // Deterministic LCG over dense, sparse, and single-bit masks.
            let mut state = 0x2545_f491_4f6c_dd1du64;
            let mut masks: Vec<u128> = vec![0, 1, (1u128 << tn) - 1];
            for _ in 0..200 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let lo = state as u128;
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let hi = (state as u128) << 64;
                masks.push((hi | lo) & ((1u128 << tn) - 1));
                masks.push(1u128 << (state % tn as u64));
            }
            for src_t in 0..tn {
                let src = net.node(2, src_t);
                let from = table.from(src);
                for &mask in &masks {
                    let mut got: Option<(f64, NodeId)> = None;
                    from.min_in_own_mask(mask, &mut got);
                    // Reference: ascending full walk, same tie-break.
                    let mut want: Option<(f64, NodeId)> = None;
                    let mut bits = mask;
                    while bits != 0 {
                        let r = bits.trailing_zeros();
                        bits &= bits - 1;
                        let t = table.t_of_rank(r);
                        if t == src_t {
                            continue;
                        }
                        let c = from.to_tree(t);
                        let n = 2 * tn + t;
                        if want.is_none_or(|(bc, bn)| c < bc || (c == bc && n < bn)) {
                            want = Some((c, n));
                        }
                    }
                    let key = |o: Option<(f64, NodeId)>| o.map(|(c, n)| (c.to_bits(), n));
                    assert_eq!(key(got), key(want), "{model:?}: mask {mask:#x}");
                    // Folding into a pre-seeded best must behave like a
                    // running minimum, too.
                    let seed = Some((1.0, 0));
                    let mut got2 = seed;
                    from.min_in_own_mask(mask, &mut got2);
                    let want2 = match (seed, want) {
                        (Some((sc, sn)), Some((wc, wn))) if wc < sc || (wc == sc && wn < sn) => {
                            want
                        }
                        _ => seed,
                    };
                    assert_eq!(key(got2), key(want2), "{model:?}: seeded mask {mask:#x}");
                }
            }
        }
    }

    #[test]
    fn single_pop_network_has_no_core_terms() {
        let core = pop::PopGraph::new("solo", vec!["A".into()], vec![1_000], vec![]);
        let net = Network::new(core, AccessTree::new(2, 2));
        let table = CostTable::new(&net, LatencyModel::Unit);
        assert_eq!(table.path_cost(net.leaf(0, 0), net.leaf(0, 3)), 4.0);
        assert_eq!(table.path_cost(net.pop_root(0), net.pop_root(0)), 0.0);
    }
}
