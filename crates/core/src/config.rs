//! Experiment configuration.

use crate::capacity::ServingCapacity;
use crate::design::DesignKind;
use crate::fault::FaultConfig;
use crate::latency::LatencyModel;
use icn_cache::budget::BudgetPolicy;
use icn_cache::policy::PolicyKind;
use serde::{Deserialize, Serialize};

/// How objects are inserted along the response path.
///
/// The paper's designs cache at *every* router on the response path
/// ("leave-copy-everywhere", §4.1). The ICN caching literature studies two
/// classic alternatives, exposed here as an ablation axis (§3 notes cache
/// resource management as a third dimension of the design space):
///
/// * **leave-copy-down** — only the router one hop below the serving
///   location (toward the client) stores the copy, so popular objects
///   migrate one level per request instead of flooding the path;
/// * **probabilistic** — each router on the path stores the copy
///   independently with probability `p` (CCN's "cache with probability"
///   knob).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum InsertionPolicy {
    /// Every cache-equipped router on the response path stores the object
    /// (the paper's default).
    Everywhere,
    /// Only the next router below the server stores it.
    LeaveCopyDown,
    /// Each router stores it with probability `p`.
    Probabilistic {
        /// Per-router insertion probability in `[0, 1]`.
        p: f64,
    },
}

/// Everything that parameterizes one simulator run besides the network and
/// the trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// The caching design under test.
    pub design: DesignKind,
    /// How the total cache budget is split across routers.
    pub budget_policy: BudgetPolicy,
    /// Provisioning fraction `F` (the paper's baseline is 0.05).
    pub f_fraction: f64,
    /// Replacement policy (the paper's default is LRU).
    pub policy: PolicyKind,
    /// Hop cost model.
    pub latency: LatencyModel,
    /// Optional per-node serving capacity limit.
    pub capacity: Option<ServingCapacity>,
    /// Weight congestion by object size instead of counting transfers.
    pub weight_by_size: bool,
    /// Response-path insertion policy (the paper uses `Everywhere`).
    pub insertion: InsertionPolicy,
    /// Optional deterministic fault schedule (robustness extension);
    /// `None` keeps the fault-free hot path.
    pub fault: Option<FaultConfig>,
}

impl ExperimentConfig {
    /// The §4 baseline for a given design: `F = 5%`, LRU, unit latency,
    /// population-proportional budgets, no capacity limit.
    pub fn baseline(design: DesignKind) -> Self {
        Self {
            design,
            budget_policy: BudgetPolicy::PopulationProportional,
            f_fraction: 0.05,
            policy: PolicyKind::Lru,
            latency: LatencyModel::Unit,
            capacity: None,
            weight_by_size: false,
            insertion: InsertionPolicy::Everywhere,
            fault: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_section4() {
        let c = ExperimentConfig::baseline(DesignKind::Edge);
        assert_eq!(c.f_fraction, 0.05);
        assert_eq!(c.budget_policy, BudgetPolicy::PopulationProportional);
        assert_eq!(c.policy, PolicyKind::Lru);
        assert_eq!(c.latency, LatencyModel::Unit);
        assert!(c.capacity.is_none());
        assert!(!c.weight_by_size);
        assert_eq!(c.insertion, InsertionPolicy::Everywhere);
        assert!(c.fault.is_none(), "the §4 baseline world is fault-free");
    }
}
