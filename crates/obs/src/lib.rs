//! Zero-dependency observability for the ICN workspace.
//!
//! Everything the simulator, the paper-figure binaries, and the idICN
//! proxy need to see themselves run — with no crates beyond `std`, so it
//! builds anywhere the workspace does (including fully offline):
//!
//! - **Counters, gauges, histograms, timers** behind a [`Registry`].
//!   Registration takes a lock once; the returned handles ([`Counter`],
//!   [`Gauge`], [`HistHandle`], [`TimerHandle`]) are `Arc`-backed and
//!   every hot-path operation is a relaxed atomic.
//! - **Log-bucketed streaming histograms** ([`Histogram`],
//!   [`AtomicHistogram`]): exact below 32, ≤ ~3.2% relative quantile
//!   error above, exactly mergeable across shards/runs.
//! - **Span-style scoped timers**: `let _t = registry.timer("sim.route");`
//!   records elapsed nanoseconds on drop.
//! - **Structured trace records** ([`TraceRecord`], [`TraceSink`]):
//!   per-request journey (object, design, serving level, hops, hit/coop)
//!   with every-Nth sampling, exported as JSONL.
//! - **Snapshots** ([`Snapshot`]): point-in-time JSON export (the
//!   `--telemetry out.json` sidecar format), lossless round-trip via
//!   [`Snapshot::from_json`], exact cross-run merging, and a human table.
//! - **Progress lines** ([`Progress`]): throttled requests/sec + ETA.
//! - **Hierarchical span profiler** ([`Profiler`]): sampling,
//!   zero-allocation self/total time attribution per phase via a
//!   thread-local span stack, mergeable across workers and exported as
//!   JSON ([`ProfileSnapshot`]).
//! - **Flight recorder** ([`FlightRecorder`]): a ring of recent sweep-cell
//!   completions with cell-level progress/ETA, dumped as JSON on
//!   completion or panic.
//! - **Prometheus exposition** ([`render_prometheus`]): text-format
//!   `/metrics` rendering of any snapshot.
//!
//! The JSON itself is this crate's own ~300-line implementation
//! ([`json`]), kept deliberately boring: objects are `BTreeMap`s so
//! output is deterministic and diffable.

#![warn(missing_docs)]

pub mod flight;
pub mod hist;
pub mod json;
pub mod profiler;
pub mod progress;
pub mod prom;
pub mod registry;
pub mod snapshot;
pub mod trace;

pub use flight::{install_panic_dump, peak_rss_kb, CellEvent, FlightRecorder};
pub use hist::{AtomicHistogram, Histogram};
pub use profiler::{PhaseHandle, PhaseSummary, ProfileSnapshot, Profiler, SpanGuard};
pub use progress::Progress;
pub use prom::{render_prometheus, sanitize_metric_name, PROM_CONTENT_TYPE};
pub use registry::{Counter, Gauge, HistHandle, Registry, ScopedTimer, TimerHandle};
pub use snapshot::{fmt_ns, HistSummary, Snapshot};
pub use trace::{TraceRecord, TraceSink};
