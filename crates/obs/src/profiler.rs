//! A sampling, zero-allocation hierarchical span profiler.
//!
//! Where [`crate::Registry`] timers answer "how long does X take", the
//! profiler answers "where does the time *go*": each phase records both its
//! **total** time (wall clock of the span) and its **self** time (total
//! minus time spent in nested profiled spans), so a flame-graph-style
//! attribution falls out of flat per-phase histograms.
//!
//! Span nesting is tracked on a fixed-size thread-local stack of child-time
//! accumulators — entering and leaving a span touches no allocator and no
//! lock, only the thread-local array plus relaxed atomics on drop. Like the
//! registry, per-worker profilers are folded into a main one with
//! [`Profiler::merge_from`], which is commutative and associative, so the
//! merged profile is independent of worker scheduling.
//!
//! ```
//! use icn_obs::Profiler;
//! let p = Profiler::new();
//! let outer = p.phase("sim.request");
//! let inner = p.phase("sim.select");
//! {
//!     let _req = outer.span();
//!     let _sel = inner.span(); // nested: counted as child time of the outer
//! }
//! let snap = p.snapshot();
//! assert_eq!(snap.phases["sim.request"].count, 1);
//! assert!(snap.phases["sim.request"].self_ns.sum <= snap.phases["sim.request"].total_ns.sum);
//! ```

use crate::hist::AtomicHistogram;
use crate::json::{parse, Value};
use crate::snapshot::{fmt_ns, HistSummary};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Deepest span nesting the thread-local stack tracks. Spans opened beyond
/// this depth still record their total time but are not attributed to
/// their parent's child accumulator (the simulator nests at most ~4 deep).
const MAX_DEPTH: usize = 64;

struct SpanStack {
    depth: usize,
    child_ns: [u64; MAX_DEPTH],
}

thread_local! {
    static STACK: RefCell<SpanStack> = const {
        RefCell::new(SpanStack { depth: 0, child_ns: [0; MAX_DEPTH] })
    };
}

struct PhaseStats {
    count: AtomicU64,
    self_ns: AtomicHistogram,
    total_ns: AtomicHistogram,
}

impl Default for PhaseStats {
    fn default() -> Self {
        Self {
            count: AtomicU64::new(0),
            self_ns: AtomicHistogram::new(),
            total_ns: AtomicHistogram::new(),
        }
    }
}

impl PhaseStats {
    fn observe(&self, self_ns: u64, total_ns: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.self_ns.record(self_ns);
        self.total_ns.record(total_ns);
    }
}

/// A hierarchical span profiler. Wrap in an [`Arc`] to share; resolving a
/// phase takes a lock once, every span on the returned handle is lock-free.
#[derive(Default)]
pub struct Profiler {
    inner: Mutex<BTreeMap<String, Arc<PhaseStats>>>,
}

impl Profiler {
    /// An empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Gets or creates the phase `name` (pre-resolve outside hot loops).
    pub fn phase(&self, name: &str) -> PhaseHandle {
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        PhaseHandle(Arc::clone(inner.entry(name.to_string()).or_default()))
    }

    /// Folds every phase of `other` into this profiler: counts add and
    /// histograms merge bucket-wise, so the operation is commutative and
    /// associative — merging per-worker profilers yields counts independent
    /// of worker scheduling.
    pub fn merge_from(&self, other: &Profiler) {
        // Snapshot `other` into plain data first so the two locks are
        // never held at once.
        let phases: Vec<_> = {
            let o = other
                .inner
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            o.iter()
                .map(|(n, p)| {
                    (
                        n.clone(),
                        p.count.load(Ordering::Relaxed),
                        p.self_ns.snapshot(),
                        p.total_ns.snapshot(),
                    )
                })
                .collect()
        };
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        for (name, count, self_h, total_h) in phases {
            let p = inner.entry(name).or_default();
            p.count.fetch_add(count, Ordering::Relaxed);
            p.self_ns.merge_plain(&self_h);
            p.total_ns.merge_plain(&total_h);
        }
    }

    /// A point-in-time copy of every phase.
    pub fn snapshot(&self) -> ProfileSnapshot {
        let inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut snap = ProfileSnapshot::default();
        for (name, p) in inner.iter() {
            snap.phases.insert(
                name.clone(),
                PhaseSummary {
                    count: p.count.load(Ordering::Relaxed),
                    self_ns: HistSummary::of(&p.self_ns.snapshot()),
                    total_ns: HistSummary::of(&p.total_ns.snapshot()),
                },
            );
        }
        snap
    }
}

/// A pre-resolved phase (cheap to clone); start spans with
/// [`PhaseHandle::span`].
#[derive(Clone)]
pub struct PhaseHandle(Arc<PhaseStats>);

impl PhaseHandle {
    /// Opens a span; the guard records self/total nanoseconds on drop.
    #[inline]
    pub fn span(&self) -> SpanGuard {
        let pushed = STACK.with(|s| {
            let mut s = s.borrow_mut();
            if s.depth < MAX_DEPTH {
                let d = s.depth;
                s.child_ns[d] = 0;
                s.depth += 1;
                true
            } else {
                false
            }
        });
        SpanGuard {
            stats: Arc::clone(&self.0),
            start: Instant::now(),
            pushed,
        }
    }

    /// Records an externally measured observation (used by tests and by
    /// merges of pre-aggregated data).
    pub fn observe_ns(&self, self_ns: u64, total_ns: u64) {
        self.0.observe(self_ns, total_ns);
    }
}

/// A live span; on drop it records its elapsed time as `total`, its elapsed
/// minus nested-span time as `self`, and adds its elapsed time to the
/// enclosing span's child accumulator.
pub struct SpanGuard {
    stats: Arc<PhaseStats>,
    start: Instant,
    pushed: bool,
}

impl Drop for SpanGuard {
    #[inline]
    fn drop(&mut self) {
        let elapsed = self.start.elapsed().as_nanos() as u64;
        if !self.pushed {
            // Stack overflowed at open: record unattributed.
            self.stats.observe(elapsed, elapsed);
            return;
        }
        let child = STACK.with(|s| {
            let mut s = s.borrow_mut();
            s.depth -= 1;
            let child = s.child_ns[s.depth];
            if s.depth > 0 {
                let d = s.depth - 1;
                s.child_ns[d] = s.child_ns[d].saturating_add(elapsed);
            }
            child
        });
        self.stats.observe(elapsed.saturating_sub(child), elapsed);
    }
}

/// Summary of one profiled phase.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSummary {
    /// Number of recorded spans.
    pub count: u64,
    /// Self-time histogram (nanoseconds; span time minus nested spans).
    pub self_ns: HistSummary,
    /// Total-time histogram (nanoseconds; full span wall clock).
    pub total_ns: HistSummary,
}

/// A point-in-time copy of every phase in a [`Profiler`]; round-trips
/// through JSON losslessly and merges exactly, like [`crate::Snapshot`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfileSnapshot {
    /// Phase summaries by name.
    pub phases: BTreeMap<String, PhaseSummary>,
}

impl ProfileSnapshot {
    /// The JSON value form (embedded under `"profile"` in BENCH_sim.json).
    pub fn to_value(&self) -> Value {
        let mut phases = BTreeMap::new();
        for (name, p) in &self.phases {
            let mut m = BTreeMap::new();
            m.insert("count".to_string(), Value::UInt(p.count));
            m.insert("self".to_string(), p.self_ns.to_value());
            m.insert("total".to_string(), p.total_ns.to_value());
            phases.insert(name.clone(), Value::Obj(m));
        }
        let mut root = BTreeMap::new();
        root.insert("phases".to_string(), Value::Obj(phases));
        Value::Obj(root)
    }

    /// Serializes to a compact JSON object.
    pub fn to_json(&self) -> String {
        self.to_value().to_json()
    }

    /// Parses a profile back from a JSON value.
    pub fn from_value(root: &Value) -> Result<Self, String> {
        let mut snap = ProfileSnapshot::default();
        let phases = root
            .get("phases")
            .and_then(Value::as_obj)
            .ok_or("profile missing 'phases'")?;
        for (name, v) in phases {
            let count = v
                .get("count")
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("phase '{name}' missing 'count'"))?;
            let self_ns = HistSummary::from_value(
                v.get("self")
                    .ok_or_else(|| format!("phase '{name}' missing 'self'"))?,
            )?;
            let total_ns = HistSummary::from_value(
                v.get("total")
                    .ok_or_else(|| format!("phase '{name}' missing 'total'"))?,
            )?;
            snap.phases.insert(
                name.clone(),
                PhaseSummary {
                    count,
                    self_ns,
                    total_ns,
                },
            );
        }
        Ok(snap)
    }

    /// Parses a profile back from its JSON text form.
    pub fn from_json(text: &str) -> Result<Self, String> {
        Self::from_value(&parse(text)?)
    }

    /// Merges another profile in (counts add, histograms merge exactly).
    pub fn merge(&mut self, other: &ProfileSnapshot) {
        for (name, p) in &other.phases {
            match self.phases.get_mut(name) {
                None => {
                    self.phases.insert(name.clone(), p.clone());
                }
                Some(mine) => {
                    mine.count += p.count;
                    let mut h = mine.self_ns.to_histogram();
                    h.merge(&p.self_ns.to_histogram());
                    mine.self_ns = HistSummary::of(&h);
                    let mut h = mine.total_ns.to_histogram();
                    h.merge(&p.total_ns.to_histogram());
                    mine.total_ns = HistSummary::of(&h);
                }
            }
        }
    }

    /// Renders a human-readable attribution table, phases sorted by
    /// cumulative self time (where the time actually went).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        if self.phases.is_empty() {
            return out;
        }
        let _ = writeln!(
            out,
            "profile: {:<23} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "", "count", "self", "total", "self/avg", "total/p99"
        );
        let mut rows: Vec<_> = self.phases.iter().collect();
        rows.sort_by(|a, b| b.1.self_ns.sum.cmp(&a.1.self_ns.sum).then(a.0.cmp(b.0)));
        for (name, p) in rows {
            let _ = writeln!(
                out,
                "  {name:<30} {:>10} {:>10} {:>10} {:>10} {:>10}",
                p.count,
                fmt_ns(p.self_ns.sum as f64),
                fmt_ns(p.total_ns.sum as f64),
                fmt_ns(p.self_ns.mean),
                fmt_ns(p.total_ns.p99),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn nested_spans_attribute_child_time() {
        let p = Profiler::new();
        let outer = p.phase("outer");
        let inner = p.phase("inner");
        {
            let _o = outer.span();
            {
                let _i = inner.span();
                thread::sleep(std::time::Duration::from_millis(5));
            }
        }
        let snap = p.snapshot();
        let o = &snap.phases["outer"];
        let i = &snap.phases["inner"];
        assert_eq!(o.count, 1);
        assert_eq!(i.count, 1);
        // The outer span's total covers the inner span entirely.
        assert!(o.total_ns.sum >= i.total_ns.sum);
        // Self excludes the nested sleep: outer self = total - inner total.
        assert_eq!(o.self_ns.sum, o.total_ns.sum - i.total_ns.sum);
        // Inner had no children: self == total.
        assert_eq!(i.self_ns.sum, i.total_ns.sum);
    }

    #[test]
    fn sibling_spans_both_count_toward_parent_children() {
        let p = Profiler::new();
        let outer = p.phase("outer");
        let a = p.phase("a");
        let b = p.phase("b");
        {
            let _o = outer.span();
            drop(a.span());
            drop(b.span());
        }
        let snap = p.snapshot();
        let children = snap.phases["a"].total_ns.sum + snap.phases["b"].total_ns.sum;
        assert_eq!(
            snap.phases["outer"].self_ns.sum,
            snap.phases["outer"].total_ns.sum - children
        );
    }

    #[test]
    fn merge_adds_counts_and_unions_phases() {
        let main = Profiler::new();
        main.phase("x").observe_ns(5, 10);
        let worker = Profiler::new();
        worker.phase("x").observe_ns(7, 7);
        worker.phase("y").observe_ns(1, 2);
        main.merge_from(&worker);
        let snap = main.snapshot();
        assert_eq!(snap.phases["x"].count, 2);
        assert_eq!(snap.phases["x"].self_ns.sum, 12);
        assert_eq!(snap.phases["x"].total_ns.sum, 17);
        assert_eq!(snap.phases["y"].count, 1);
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let p = Profiler::new();
        p.phase("sim.request").observe_ns(100, 250);
        p.phase("sim.select").observe_ns(40, 40);
        let snap = p.snapshot();
        let back = ProfileSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn snapshot_merge_matches_profiler_merge() {
        let a = Profiler::new();
        a.phase("x").observe_ns(3, 6);
        let b = Profiler::new();
        b.phase("x").observe_ns(9, 12);
        b.phase("y").observe_ns(1, 1);
        let mut sa = a.snapshot();
        sa.merge(&b.snapshot());
        a.merge_from(&b);
        assert_eq!(sa, a.snapshot());
    }

    #[test]
    fn rejects_malformed_profiles() {
        assert!(ProfileSnapshot::from_json("not json").is_err());
        assert!(ProfileSnapshot::from_json("{}").is_err());
        assert!(ProfileSnapshot::from_json("{\"phases\":{\"p\":{\"count\":1}}}").is_err());
    }

    #[test]
    fn table_sorts_by_self_time() {
        let p = Profiler::new();
        p.phase("small").observe_ns(10, 10);
        p.phase("big").observe_ns(1_000_000, 1_000_000);
        let table = p.snapshot().render_table();
        let big_at = table.find("big").unwrap();
        let small_at = table.find("small").unwrap();
        assert!(big_at < small_at, "{table}");
    }

    #[test]
    fn deep_nesting_past_stack_limit_is_safe() {
        let p = Profiler::new();
        let h = p.phase("deep");
        let mut guards = Vec::new();
        for _ in 0..(MAX_DEPTH + 8) {
            guards.push(h.span());
        }
        while guards.pop().is_some() {}
        assert_eq!(p.snapshot().phases["deep"].count, (MAX_DEPTH + 8) as u64);
    }
}
