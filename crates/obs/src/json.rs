//! A dependency-free JSON value, writer, and parser.
//!
//! `icn-obs` must not pull external crates, so snapshot/trace export and
//! the `--telemetry` sidecar format are built on this ~200-line JSON
//! implementation. Numbers are kept as `i64`/`u64`/`f64` variants so
//! counter values round-trip exactly (floats use shortest-representation
//! `{:?}` formatting, which round-trips in Rust).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value. Objects use [`BTreeMap`] so output is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer that fits `u64` (non-negative).
    UInt(u64),
    /// A negative integer.
    Int(i64),
    /// A float (or any number with fraction/exponent).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The value as `u64`, if numeric and in range.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(u) => Some(u),
            Value::Int(i) if i >= 0 => Some(i as u64),
            Value::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                Some(f as u64)
            }
            _ => None,
        }
    }

    /// The value as `i64`, if numeric and in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::UInt(u) if u <= i64::MAX as u64 => Some(u as i64),
            Value::Float(f) if f.fract() == 0.0 && f.abs() <= i64::MAX as f64 => Some(f as i64),
            _ => None,
        }
    }

    /// The value as `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::UInt(u) => Some(u as f64),
            Value::Int(i) => Some(i as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// The value as `&str`, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an object, if one.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The value as an array, if one.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Member access for objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj().and_then(|m| m.get(key))
    }

    /// Serializes to compact JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Value::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Value::Float(f) => {
                if f.is_finite() {
                    let _ = write!(out, "{f:?}");
                } else {
                    out.push_str("null"); // JSON has no NaN/Inf
                }
            }
            Value::Str(s) => write_escaped(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Value::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::UInt(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        if v >= 0 {
            Value::UInt(v as u64)
        } else {
            Value::Int(v)
        }
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// Escapes and writes a JSON string literal.
pub fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document (must contain exactly one value).
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect_byte(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(map));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect_byte(b, pos, b':')?;
                map.insert(key, parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(map));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect_byte(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape")?;
                        // Surrogate pairs are not produced by our writer;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let s = std::str::from_utf8(&b[*pos..]).map_err(|_| "invalid utf-8")?;
                let c = s.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| "bad number")?;
    if text.is_empty() || text == "-" {
        return Err(format!("bad number at byte {start}"));
    }
    if !is_float {
        if let Ok(u) = text.parse::<u64>() {
            return Ok(Value::UInt(u));
        }
        if let Ok(i) = text.parse::<i64>() {
            return Ok(Value::Int(i));
        }
    }
    text.parse::<f64>()
        .map(Value::Float)
        .map_err(|_| format!("bad number '{text}'"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let mut obj = BTreeMap::new();
        obj.insert("a".into(), Value::UInt(u64::MAX));
        obj.insert("b".into(), Value::Int(-42));
        obj.insert("c".into(), Value::Float(0.125));
        obj.insert("d".into(), Value::Str("he said \"hi\"\n".into()));
        obj.insert(
            "e".into(),
            Value::Arr(vec![Value::Null, Value::Bool(true), Value::UInt(0)]),
        );
        let v = Value::Obj(obj);
        let text = v.to_json();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn parses_whitespace_and_nesting() {
        let v = parse(" { \"x\" : [ 1 , 2.5 , { \"y\" : null } ] } ").unwrap();
        assert_eq!(v.get("x").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("x").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("01a").is_err());
        assert!(parse("{} extra").is_err());
    }

    #[test]
    fn float_round_trip_is_exact() {
        for f in [0.1, 1e-9, 123456.789, f64::MAX] {
            let text = Value::Float(f).to_json();
            assert_eq!(parse(&text).unwrap().as_f64(), Some(f));
        }
    }
}
