//! Log-linear streaming histograms (HdrHistogram-style bucketing).
//!
//! Values are `u64`; buckets are exact for `v < 32` and geometric above,
//! with 16 linear sub-buckets per octave. The relative quantile error is
//! therefore bounded by half a bucket width: ≤ 1/32 ≈ 3.2%. A histogram is
//! ~1 KiB when sparse (buckets allocate lazily to the highest index seen)
//! and merging two histograms is element-wise addition, so per-shard
//! histograms can be combined exactly.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket resolution: 2^4 linear buckets per octave.
const SUB_BITS: u32 = 4;
const SUB: u64 = 1 << SUB_BITS;

/// Total addressable buckets for the full `u64` range: the `SUB` exact
/// low buckets plus one group of `SUB` per octave from bit `SUB_BITS`
/// through bit 63 (the top value `u64::MAX` lands in group
/// `63 - SUB_BITS + 1`, sub-bucket `SUB - 1`).
pub const NUM_BUCKETS: usize = ((64 - SUB_BITS) as usize + 1) * (SUB as usize);

/// Bucket index for a value.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB {
        v as usize
    } else {
        let n = 63 - v.leading_zeros(); // position of the highest set bit, ≥ SUB_BITS
        let shift = n - SUB_BITS;
        ((n - SUB_BITS + 1) as usize) * SUB as usize + ((v >> shift) & (SUB - 1)) as usize
    }
}

/// `[lower, upper)` bounds of bucket `i`.
#[inline]
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    let i = i as u64;
    if i < SUB {
        (i, i + 1)
    } else {
        let octave = i / SUB; // = n - SUB_BITS + 1
        let sub = i % SUB;
        let n = octave + SUB_BITS as u64 - 1;
        let shift = (n - SUB_BITS as u64) as u32;
        let lower = (SUB + sub) << shift;
        // The topmost bucket's upper bound would be 2^64; saturate.
        (lower, lower.saturating_add(1u64 << shift))
    }
}

/// A plain (single-threaded) streaming histogram.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Histogram {
    /// Bucket counts up to the highest non-empty index (lazily grown).
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: Vec::new(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one value.
    #[inline]
    pub fn record(&mut self, v: u64) {
        let idx = bucket_index(v);
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimated `q`-quantile (`q` in `[0, 1]`), or 0 when empty.
    ///
    /// Exact for values < 32; above that, within half a bucket width
    /// (≤ ~3.2% relative error) because the estimate is the midpoint of the
    /// bucket containing the rank.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // 0-based rank of the order statistic.
        let rank = ((q * (self.count - 1) as f64).round() as u64).min(self.count - 1);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum > rank {
                let (lo, hi) = bucket_bounds(i);
                let est = if hi - lo == 1 {
                    lo as f64
                } else {
                    (lo as f64 + hi as f64) / 2.0
                };
                return est.clamp(self.min() as f64, self.max as f64);
            }
        }
        self.max as f64
    }

    /// Adds every bucket of `other` into `self` (exact merge).
    pub fn merge(&mut self, other: &Histogram) {
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (i, &c) in other.counts.iter().enumerate() {
            self.counts[i] += c;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Non-empty buckets as `(bucket_index, count)` pairs.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
    }

    /// Rebuilds a histogram from sparse parts (inverse of
    /// [`Histogram::nonzero_buckets`] + the scalar accessors).
    pub fn from_parts(buckets: &[(usize, u64)], count: u64, sum: u64, min: u64, max: u64) -> Self {
        let len = buckets.iter().map(|&(i, _)| i + 1).max().unwrap_or(0);
        let mut counts = vec![0; len];
        for &(i, c) in buckets {
            counts[i] += c;
        }
        Self {
            counts,
            count,
            sum,
            min: if count == 0 { u64::MAX } else { min },
            max,
        }
    }
}

/// A thread-safe histogram with relaxed-atomic bucket counters.
///
/// The hot path (`record`) is wait-free: one atomic add on the bucket plus
/// scalar updates. Buckets are allocated eagerly (fixed array) so recording
/// never takes a lock. `min`/`max` use compare-exchange loops.
pub struct AtomicHistogram {
    counts: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicHistogram {
    /// An empty histogram covering the full `u64` range.
    pub fn new() -> Self {
        let counts: Vec<AtomicU64> = (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Self {
            counts: counts.into_boxed_slice(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value (wait-free except min/max CAS refinement).
    #[inline]
    pub fn record(&self, v: u64) {
        self.counts[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Merges a plain histogram in (exact, bucket-wise).
    pub fn merge_plain(&self, h: &Histogram) {
        if h.count == 0 {
            return;
        }
        for (i, c) in h.nonzero_buckets() {
            self.counts[i].fetch_add(c, Ordering::Relaxed);
        }
        self.count.fetch_add(h.count, Ordering::Relaxed);
        self.sum.fetch_add(h.sum, Ordering::Relaxed);
        self.min.fetch_min(h.min, Ordering::Relaxed);
        self.max.fetch_max(h.max, Ordering::Relaxed);
    }

    /// Copies the current state into a plain [`Histogram`].
    pub fn snapshot(&self) -> Histogram {
        let mut len = 0;
        for (i, c) in self.counts.iter().enumerate() {
            if c.load(Ordering::Relaxed) > 0 {
                len = i + 1;
            }
        }
        let counts: Vec<u64> = self.counts[..len]
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let count = self.count.load(Ordering::Relaxed);
        Histogram {
            counts,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_monotone_and_bounded() {
        let mut prev = None;
        for v in (0..4096u64).chain([1 << 20, 1 << 40, u64::MAX - 1, u64::MAX]) {
            let i = bucket_index(v);
            assert!(i < NUM_BUCKETS, "{v} -> {i}");
            let (lo, hi) = bucket_bounds(i);
            assert!(
                lo <= v && (v < hi || hi == u64::MAX),
                "{v} not in [{lo}, {hi})"
            );
            if let Some((pv, pi)) = prev {
                assert!(i >= pi, "index not monotone at {pv}->{v}");
            }
            prev = Some((v, i));
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 3, 3, 9] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.5), 3.0);
        assert_eq!(h.quantile(0.0), 1.0);
        assert_eq!(h.quantile(1.0), 9.0);
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 21);
    }

    #[test]
    fn quantile_relative_error_bounded() {
        let mut h = Histogram::new();
        let mut vals: Vec<u64> = (0..10_000u64).map(|i| (i * i * 7919) % 1_000_000).collect();
        for &v in &vals {
            h.record(v);
        }
        vals.sort_unstable();
        for q in [0.5, 0.9, 0.99, 0.999] {
            let rank = ((q * (vals.len() - 1) as f64).round() as usize).min(vals.len() - 1);
            let exact = vals[rank] as f64;
            let est = h.quantile(q);
            let err = (est - exact).abs() / exact.max(1.0);
            assert!(err <= 0.04, "q={q}: est {est} vs exact {exact} (err {err})");
        }
    }

    #[test]
    fn merge_matches_combined_stream() {
        let (mut a, mut b, mut all) = (Histogram::new(), Histogram::new(), Histogram::new());
        for v in 0..1000u64 {
            let x = v * 37 % 5000;
            if v % 2 == 0 {
                a.record(x)
            } else {
                b.record(x)
            }
            all.record(x);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn atomic_snapshot_equals_plain() {
        let ah = AtomicHistogram::new();
        let mut h = Histogram::new();
        for v in [0u64, 1, 15, 16, 17, 1000, 123_456_789] {
            ah.record(v);
            h.record(v);
        }
        assert_eq!(ah.snapshot(), h);
    }

    #[test]
    fn parts_round_trip() {
        let mut h = Histogram::new();
        for v in [3u64, 99, 99, 40_000] {
            h.record(v);
        }
        let parts: Vec<(usize, u64)> = h.nonzero_buckets().collect();
        let back = Histogram::from_parts(&parts, h.count(), h.sum(), h.min(), h.max());
        assert_eq!(back, h);
    }
}
