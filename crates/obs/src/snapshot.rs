//! Point-in-time metric snapshots: JSON export/import and a human table.
//!
//! A [`Snapshot`] is what a `--telemetry out.json` sidecar contains. It
//! round-trips through JSON losslessly (histogram summaries carry their
//! sparse buckets), so downstream tooling can re-merge sidecars from
//! several runs with [`Snapshot::merge`].

use crate::hist::{bucket_bounds, Histogram};
use crate::json::{parse, Value};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Summary of one histogram: scalar stats, quantiles, and the sparse
/// buckets needed to reconstruct it exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct HistSummary {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values (saturating).
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// Mean of recorded values (0 when empty).
    pub mean: f64,
    /// Estimated 50th percentile.
    pub p50: f64,
    /// Estimated 90th percentile.
    pub p90: f64,
    /// Estimated 99th percentile.
    pub p99: f64,
    /// Estimated 99.9th percentile.
    pub p999: f64,
    /// Non-empty `(bucket_index, count)` pairs, ascending by index.
    pub buckets: Vec<(usize, u64)>,
}

impl HistSummary {
    /// Summarizes a histogram.
    pub fn of(h: &Histogram) -> Self {
        Self {
            count: h.count(),
            sum: h.sum(),
            min: h.min(),
            max: h.max(),
            mean: h.mean(),
            p50: h.quantile(0.5),
            p90: h.quantile(0.9),
            p99: h.quantile(0.99),
            p999: h.quantile(0.999),
            buckets: h.nonzero_buckets().collect(),
        }
    }

    /// Reconstructs the histogram this summary was taken from.
    pub fn to_histogram(&self) -> Histogram {
        Histogram::from_parts(&self.buckets, self.count, self.sum, self.min, self.max)
    }

    pub(crate) fn to_value(&self) -> Value {
        let mut m = BTreeMap::new();
        m.insert("count".into(), Value::UInt(self.count));
        m.insert("sum".into(), Value::UInt(self.sum));
        m.insert("min".into(), Value::UInt(self.min));
        m.insert("max".into(), Value::UInt(self.max));
        m.insert("mean".into(), Value::Float(self.mean));
        m.insert("p50".into(), Value::Float(self.p50));
        m.insert("p90".into(), Value::Float(self.p90));
        m.insert("p99".into(), Value::Float(self.p99));
        m.insert("p999".into(), Value::Float(self.p999));
        m.insert(
            "buckets".into(),
            Value::Arr(
                self.buckets
                    .iter()
                    .map(|&(i, c)| Value::Arr(vec![Value::UInt(i as u64), Value::UInt(c)]))
                    .collect(),
            ),
        );
        Value::Obj(m)
    }

    pub(crate) fn from_value(v: &Value) -> Result<Self, String> {
        let num = |k: &str| -> Result<u64, String> {
            v.get(k)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("histogram summary missing '{k}'"))
        };
        let fnum = |k: &str| -> Result<f64, String> {
            v.get(k)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("histogram summary missing '{k}'"))
        };
        let mut buckets = Vec::new();
        for pair in v
            .get("buckets")
            .and_then(Value::as_arr)
            .ok_or("histogram summary missing 'buckets'")?
        {
            let pair = pair.as_arr().ok_or("bucket entry is not a pair")?;
            match pair {
                [i, c] => buckets.push((
                    i.as_u64().ok_or("bad bucket index")? as usize,
                    c.as_u64().ok_or("bad bucket count")?,
                )),
                _ => return Err("bucket entry is not a pair".into()),
            }
        }
        Ok(Self {
            count: num("count")?,
            sum: num("sum")?,
            min: num("min")?,
            max: num("max")?,
            mean: fnum("mean")?,
            p50: fnum("p50")?,
            p90: fnum("p90")?,
            p99: fnum("p99")?,
            p999: fnum("p999")?,
            buckets,
        })
    }
}

/// A point-in-time copy of every metric in a [`crate::Registry`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistSummary>,
    /// Timer summaries by name (values are span durations in nanoseconds).
    pub timers: BTreeMap<String, HistSummary>,
}

impl Snapshot {
    /// Serializes to a compact JSON object.
    pub fn to_json(&self) -> String {
        let mut root = BTreeMap::new();
        root.insert(
            "counters".to_string(),
            Value::Obj(
                self.counters
                    .iter()
                    .map(|(k, &v)| (k.clone(), Value::UInt(v)))
                    .collect(),
            ),
        );
        root.insert(
            "gauges".to_string(),
            Value::Obj(
                self.gauges
                    .iter()
                    .map(|(k, &v)| (k.clone(), Value::from(v)))
                    .collect(),
            ),
        );
        root.insert(
            "histograms".to_string(),
            Value::Obj(
                self.histograms
                    .iter()
                    .map(|(k, v)| (k.clone(), v.to_value()))
                    .collect(),
            ),
        );
        root.insert(
            "timers".to_string(),
            Value::Obj(
                self.timers
                    .iter()
                    .map(|(k, v)| (k.clone(), v.to_value()))
                    .collect(),
            ),
        );
        Value::Obj(root).to_json()
    }

    /// Parses a snapshot back from its JSON form.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let root = parse(text)?;
        let mut snap = Snapshot::default();
        if let Some(m) = root.get("counters").and_then(Value::as_obj) {
            for (k, v) in m {
                snap.counters.insert(
                    k.clone(),
                    v.as_u64().ok_or_else(|| format!("bad counter '{k}'"))?,
                );
            }
        }
        if let Some(m) = root.get("gauges").and_then(Value::as_obj) {
            for (k, v) in m {
                snap.gauges.insert(
                    k.clone(),
                    v.as_i64().ok_or_else(|| format!("bad gauge '{k}'"))?,
                );
            }
        }
        if let Some(m) = root.get("histograms").and_then(Value::as_obj) {
            for (k, v) in m {
                snap.histograms
                    .insert(k.clone(), HistSummary::from_value(v)?);
            }
        }
        if let Some(m) = root.get("timers").and_then(Value::as_obj) {
            for (k, v) in m {
                snap.timers.insert(k.clone(), HistSummary::from_value(v)?);
            }
        }
        Ok(snap)
    }

    /// Merges another snapshot in: counters/gauges add, histograms and
    /// timers merge bucket-wise (exact).
    pub fn merge(&mut self, other: &Snapshot) {
        for (k, &v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, &v) in &other.gauges {
            *self.gauges.entry(k.clone()).or_insert(0) += v;
        }
        for (k, s) in &other.histograms {
            merge_summary(&mut self.histograms, k, s);
        }
        for (k, s) in &other.timers {
            merge_summary(&mut self.timers, k, s);
        }
    }

    /// Renders a human-readable table (counters, gauges, then latency-style
    /// summaries for histograms and timers; timer durations shown in a
    /// readable unit).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            let _ = writeln!(out, "counters:");
            for (k, v) in &self.counters {
                let _ = writeln!(out, "  {k:<40} {v:>14}");
            }
        }
        if !self.gauges.is_empty() {
            let _ = writeln!(out, "gauges:");
            for (k, v) in &self.gauges {
                let _ = writeln!(out, "  {k:<40} {v:>14}");
            }
        }
        if !self.histograms.is_empty() {
            let _ = writeln!(
                out,
                "histograms: {:<29} {:>10} {:>10} {:>10} {:>10} {:>10}",
                "", "count", "mean", "p50", "p90", "p99"
            );
            for (k, s) in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {k:<40} {:>10} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
                    s.count, s.mean, s.p50, s.p90, s.p99
                );
            }
        }
        if !self.timers.is_empty() {
            let _ = writeln!(
                out,
                "timers: {:<33} {:>10} {:>10} {:>10} {:>10} {:>10}",
                "", "count", "total", "mean", "p50", "p99"
            );
            for (k, s) in &self.timers {
                let _ = writeln!(
                    out,
                    "  {k:<40} {:>10} {:>10} {:>10} {:>10} {:>10}",
                    s.count,
                    fmt_ns(s.sum as f64),
                    fmt_ns(s.mean),
                    fmt_ns(s.p50),
                    fmt_ns(s.p99)
                );
            }
        }
        out
    }
}

fn merge_summary(map: &mut BTreeMap<String, HistSummary>, name: &str, other: &HistSummary) {
    match map.get_mut(name) {
        None => {
            map.insert(name.to_string(), other.clone());
        }
        Some(mine) => {
            let mut h = mine.to_histogram();
            h.merge(&other.to_histogram());
            *mine = HistSummary::of(&h);
        }
    }
}

/// Formats a nanosecond quantity with a readable unit (ns/µs/ms/s).
pub fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}µs", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

/// Bounds of a bucket index, re-exported for tooling that inspects the
/// sparse `buckets` arrays in a sidecar.
pub fn summary_bucket_bounds(i: usize) -> (u64, u64) {
    bucket_bounds(i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn sample() -> Snapshot {
        let r = Registry::new();
        r.counter("req.total").add(1234);
        r.gauge("inflight").set(-3);
        let h = r.histogram("latency");
        for v in [1u64, 5, 5, 900, 44_000] {
            h.record(v);
        }
        r.timer_handle("span").observe_ns(2_500_000);
        r.snapshot()
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let snap = sample();
        let text = snap.to_json();
        let back = Snapshot::from_json(&text).unwrap();
        assert_eq!(back, snap);
        // Histogram reconstruction is exact, not just the summary.
        assert_eq!(
            back.histograms["latency"].to_histogram(),
            snap.histograms["latency"].to_histogram()
        );
    }

    #[test]
    fn merge_adds_counters_and_buckets() {
        let mut a = sample();
        let b = sample();
        a.merge(&b);
        assert_eq!(a.counters["req.total"], 2468);
        assert_eq!(a.gauges["inflight"], -6);
        assert_eq!(a.histograms["latency"].count, 10);
        assert_eq!(a.timers["span"].count, 2);
    }

    #[test]
    fn table_renders_all_sections() {
        let table = sample().render_table();
        for needle in [
            "counters:",
            "gauges:",
            "histograms:",
            "timers:",
            "req.total",
            "2.50ms",
        ] {
            assert!(table.contains(needle), "missing {needle} in:\n{table}");
        }
    }

    #[test]
    fn rejects_malformed_snapshots() {
        assert!(Snapshot::from_json("not json").is_err());
        assert!(Snapshot::from_json("{\"counters\":{\"x\":-1}}").is_err());
        assert!(
            Snapshot::from_json("{\"histograms\":{\"h\":{\"count\":1}}}").is_err(),
            "summary missing fields must be rejected"
        );
    }
}
