//! The sweep flight recorder: a fixed-size ring of recent cell-completion
//! events plus live cell-level progress/ETA.
//!
//! A long parameter sweep (hundreds of simulator cells, tens of minutes at
//! SCALE=1.0) previously died silently: a panic in cell 412 left no record
//! of the 411 cells that finished or how fast they were going. A
//! [`FlightRecorder`] keeps the last [`RING_CAPACITY`] completions
//! (submission index, config label, request count, wall time, peak RSS) and
//! a running total, emits throttled `cells/s` + ETA lines through
//! [`Progress`], and serializes to JSON — written on normal completion and,
//! via [`install_panic_dump`], to stderr when the process panics, so a
//! dying run leaves a forensic record instead of nothing.

use crate::json::Value;
use crate::progress::Progress;
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Mutex};

/// Number of recent cell completions retained (oldest evicted first).
pub const RING_CAPACITY: usize = 64;

/// One completed sweep cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellEvent {
    /// Submission index of the cell within its batch.
    pub index: usize,
    /// Human label for the cell's configuration (design/topology/knob).
    pub label: String,
    /// Requests the cell simulated.
    pub requests: u64,
    /// Wall-clock nanoseconds the cell took (0 when timing is unavailable,
    /// e.g. in `--no-default-features` builds).
    pub wall_ns: u64,
    /// Process peak RSS in KiB observed at completion (0 when unknown).
    pub peak_rss_kb: u64,
}

impl CellEvent {
    fn to_value(&self) -> Value {
        let mut m = BTreeMap::new();
        m.insert("index".to_string(), Value::UInt(self.index as u64));
        m.insert("label".to_string(), Value::Str(self.label.clone()));
        m.insert("requests".to_string(), Value::UInt(self.requests));
        m.insert("wall_ns".to_string(), Value::UInt(self.wall_ns));
        m.insert("peak_rss_kb".to_string(), Value::UInt(self.peak_rss_kb));
        Value::Obj(m)
    }
}

struct Inner {
    ring: VecDeque<CellEvent>,
    done: u64,
    planned: u64,
    requests: u64,
    wall_ns: u64,
    progress: Progress,
}

/// A thread-safe recorder of recent sweep-cell completions. Wrap in an
/// [`Arc`] to share with a panic hook and with parallel workers.
pub struct FlightRecorder {
    inner: Mutex<Inner>,
}

impl FlightRecorder {
    /// An empty recorder; `label` prefixes its progress lines.
    pub fn new(label: &str) -> Self {
        Self {
            inner: Mutex::new(Inner {
                ring: VecDeque::with_capacity(RING_CAPACITY),
                done: 0,
                planned: 0,
                requests: 0,
                wall_ns: 0,
                progress: Progress::new(label, 0).with_units("cells", "cells/s"),
            }),
        }
    }

    /// Silences the progress lines (the JSON record is still kept).
    pub fn silent(self) -> Self {
        {
            let mut inner = self.lock();
            inner.progress.set_enabled(false);
        }
        self
    }

    /// Announces `n` more cells about to run (grid bins run several
    /// batches; the ETA tracks the cumulative plan).
    pub fn add_planned(&self, n: u64) {
        let mut inner = self.lock();
        inner.planned += n;
        let planned = inner.planned;
        inner.progress.set_total(planned);
    }

    /// Records one completed cell and ticks the progress line.
    pub fn record(&self, ev: CellEvent) {
        let mut inner = self.lock();
        inner.done += 1;
        inner.requests += ev.requests;
        inner.wall_ns = inner.wall_ns.saturating_add(ev.wall_ns);
        if inner.ring.len() == RING_CAPACITY {
            inner.ring.pop_front();
        }
        inner.ring.push_back(ev);
        let done = inner.done;
        inner.progress.tick(done);
    }

    /// Prints the final progress line.
    pub fn finish(&self) {
        let mut inner = self.lock();
        let done = inner.done;
        inner.progress.finish(done);
    }

    /// Number of cells recorded so far.
    pub fn done(&self) -> u64 {
        self.lock().done
    }

    /// Serializes the full record (totals + the recent-event ring) to a
    /// compact JSON object.
    pub fn to_json(&self) -> String {
        let inner = self.lock();
        let mut root = BTreeMap::new();
        root.insert("record".to_string(), Value::Str("sweep-flight".into()));
        root.insert("cells_done".to_string(), Value::UInt(inner.done));
        root.insert("cells_planned".to_string(), Value::UInt(inner.planned));
        root.insert("requests".to_string(), Value::UInt(inner.requests));
        root.insert("cell_wall_ns".to_string(), Value::UInt(inner.wall_ns));
        root.insert("peak_rss_kb".to_string(), Value::UInt(peak_rss_kb()));
        root.insert(
            "recent".to_string(),
            Value::Arr(inner.ring.iter().map(CellEvent::to_value).collect()),
        );
        Value::Obj(root).to_json()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// Installs a panic hook that dumps `recorder`'s JSON to stderr before
/// delegating to the previous hook, so an aborted sweep leaves its flight
/// record behind. Call once per process.
pub fn install_panic_dump(recorder: Arc<FlightRecorder>) {
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        eprintln!("sweep flight record (panic dump): {}", recorder.to_json());
        previous(info);
    }));
}

/// Process peak resident set size in KiB (`VmHWM` from `/proc`), or 0
/// when the platform does not expose it.
pub fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn ev(index: usize, requests: u64) -> CellEvent {
        CellEvent {
            index,
            label: format!("cell-{index}"),
            requests,
            wall_ns: 1_000,
            peak_rss_kb: 0,
        }
    }

    #[test]
    fn ring_keeps_only_recent_events() {
        let rec = FlightRecorder::new("test").silent();
        rec.add_planned(RING_CAPACITY as u64 + 10);
        for i in 0..RING_CAPACITY + 10 {
            rec.record(ev(i, 5));
        }
        assert_eq!(rec.done(), RING_CAPACITY as u64 + 10);
        let root = parse(&rec.to_json()).unwrap();
        let recent = root.get("recent").and_then(Value::as_arr).unwrap();
        assert_eq!(recent.len(), RING_CAPACITY);
        // Oldest entries were evicted: the first retained index is 10.
        assert_eq!(
            recent[0].get("index").and_then(Value::as_u64),
            Some(10),
            "{:?}",
            recent[0]
        );
    }

    #[test]
    fn totals_accumulate_across_batches() {
        let rec = FlightRecorder::new("test").silent();
        rec.add_planned(2);
        rec.record(ev(0, 100));
        rec.add_planned(3);
        rec.record(ev(1, 50));
        let root = parse(&rec.to_json()).unwrap();
        assert_eq!(root.get("cells_done").and_then(Value::as_u64), Some(2));
        assert_eq!(root.get("cells_planned").and_then(Value::as_u64), Some(5));
        assert_eq!(root.get("requests").and_then(Value::as_u64), Some(150));
        assert_eq!(
            root.get("cell_wall_ns").and_then(Value::as_u64),
            Some(2_000)
        );
        rec.finish();
    }

    #[test]
    fn peak_rss_is_plausible() {
        // On Linux /proc is available and the value is nonzero; elsewhere
        // the helper degrades to 0 rather than failing.
        let kb = peak_rss_kb();
        if cfg!(target_os = "linux") {
            assert!(kb > 0);
        }
    }
}
