//! Periodic progress reporting: requests/sec throughput and an ETA.
//!
//! A [`Progress`] is fed `tick(done)` from a hot loop; it rate-limits its
//! own output (by item count first, wall clock second) so the loop pays a
//! counter comparison in the common case and only reaches for `Instant`
//! every `check_every` items.

use std::io::{self, Write};
use std::time::{Duration, Instant};

/// A throttled progress reporter writing `requests/sec` + ETA lines.
pub struct Progress {
    label: String,
    total: u64,
    started: Instant,
    last_print: Instant,
    check_every: u64,
    next_check: u64,
    min_interval: Duration,
    enabled: bool,
    unit: &'static str,
    rate_unit: &'static str,
}

impl Progress {
    /// A reporter for `total` items, printing at most every 2 seconds.
    ///
    /// `label` prefixes each line (e.g. the figure/design being computed).
    pub fn new(label: &str, total: u64) -> Self {
        let now = Instant::now();
        Self {
            label: label.to_string(),
            total,
            started: now,
            last_print: now,
            check_every: (total / 100).clamp(1, 65_536),
            next_check: 0,
            min_interval: Duration::from_secs(2),
            enabled: true,
            unit: "requests",
            rate_unit: "req/s",
        }
    }

    /// Disables output (ticks become nearly free); used when a run is too
    /// short to be worth narrating.
    pub fn silent(mut self) -> Self {
        self.enabled = false;
        self
    }

    /// Relabels the counted items (default `"requests"` / `"req/s"`), e.g.
    /// `"cells"` / `"cells/s"` for sweep-level progress.
    pub fn with_units(mut self, unit: &'static str, rate_unit: &'static str) -> Self {
        self.unit = unit;
        self.rate_unit = rate_unit;
        self
    }

    /// Enables or disables output after construction.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Replaces the expected total (dynamic plans grow batch by batch);
    /// retunes the count throttle to the new total.
    pub fn set_total(&mut self, total: u64) {
        self.total = total;
        self.check_every = (total / 100).clamp(1, 65_536);
    }

    /// Reports that `done` items are complete. Prints at most every
    /// `min_interval` of wall clock.
    #[inline]
    pub fn tick(&mut self, done: u64) {
        if !self.enabled || done < self.next_check {
            return;
        }
        self.next_check = done + self.check_every;
        let now = Instant::now();
        if now.duration_since(self.last_print) < self.min_interval {
            return;
        }
        self.last_print = now;
        self.print(done, now);
    }

    /// Prints a final line with the overall rate (no-op when silent).
    pub fn finish(&mut self, done: u64) {
        if !self.enabled {
            return;
        }
        let elapsed = self.started.elapsed().as_secs_f64();
        let rate = if elapsed > 0.0 {
            done as f64 / elapsed
        } else {
            0.0
        };
        let mut err = io::stderr().lock();
        let _ = writeln!(
            err,
            "[{}] done: {} {} in {:.1}s ({:.0} {})",
            self.label, done, self.unit, elapsed, rate, self.rate_unit
        );
    }

    fn print(&self, done: u64, now: Instant) {
        let elapsed = now.duration_since(self.started).as_secs_f64();
        if elapsed <= 0.0 {
            return;
        }
        let rate = done as f64 / elapsed;
        let mut err = io::stderr().lock();
        if self.total > 0 && done <= self.total && rate > 0.0 {
            let eta = (self.total - done) as f64 / rate;
            let pct = 100.0 * done as f64 / self.total as f64;
            let _ = writeln!(
                err,
                "[{}] {done}/{} ({pct:.0}%) {rate:.0} {}, eta {eta:.0}s",
                self.label, self.total, self.rate_unit
            );
        } else {
            let _ = writeln!(
                err,
                "[{}] {done} {}, {rate:.0} {}",
                self.label, self.unit, self.rate_unit
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn silent_progress_is_cheap_and_quiet() {
        let mut p = Progress::new("test", 1_000_000).silent();
        for i in 0..1_000_000u64 {
            p.tick(i);
        }
        p.finish(1_000_000);
    }

    #[test]
    fn tick_throttles_by_count() {
        // With total=100 the check interval is 1; the wall-clock throttle
        // keeps output to at most one line per 2s, so this stays quiet in
        // test runs while still exercising the paths.
        let mut p = Progress::new("t", 100);
        p.min_interval = Duration::from_secs(3600);
        for i in 0..100 {
            p.tick(i);
        }
    }
}
