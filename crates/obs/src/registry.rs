//! The metric registry: named counters, gauges, histograms, and timers.
//!
//! Registration (name lookup) takes a lock; the returned handles are
//! `Arc`-backed and every hot-path operation on them is a relaxed atomic.
//! Hot loops should resolve handles once up front:
//!
//! ```
//! use icn_obs::Registry;
//! let registry = Registry::new();
//! let served = registry.counter("proxy.served");
//! for _ in 0..3 {
//!     let _t = registry.timer("sim.route"); // scoped span timer
//!     served.inc();
//! }
//! assert_eq!(served.get(), 3);
//! assert_eq!(registry.snapshot().timers["sim.route"].count, 3);
//! ```

use crate::hist::AtomicHistogram;
use crate::snapshot::{HistSummary, Snapshot};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A monotonically increasing counter handle (cheap to clone).
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed up/down gauge handle (cheap to clone).
#[derive(Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtracts 1.
    #[inline]
    pub fn dec(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrites the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A histogram handle (cheap to clone).
#[derive(Clone)]
pub struct HistHandle(Arc<AtomicHistogram>);

impl HistHandle {
    /// Records one value.
    #[inline]
    pub fn record(&self, v: u64) {
        self.0.record(v);
    }

    /// Copies the current state into a plain histogram.
    pub fn snapshot(&self) -> crate::hist::Histogram {
        self.0.snapshot()
    }
}

/// A pre-resolved timer: start it to get a scoped guard that records the
/// elapsed nanoseconds on drop.
#[derive(Clone)]
pub struct TimerHandle(Arc<AtomicHistogram>);

impl TimerHandle {
    /// Starts a span; the guard records on drop.
    #[inline]
    pub fn start(&self) -> ScopedTimer {
        ScopedTimer {
            hist: self.0.clone(),
            start: Instant::now(),
        }
    }

    /// Records an externally measured duration (nanoseconds).
    #[inline]
    pub fn observe_ns(&self, ns: u64) {
        self.0.record(ns);
    }

    /// Runs `f` inside a span.
    pub fn time<T>(&self, f: impl FnOnce() -> T) -> T {
        let _t = self.start();
        f()
    }
}

/// A live span; records its elapsed nanoseconds into the timer's histogram
/// when dropped.
pub struct ScopedTimer {
    hist: Arc<AtomicHistogram>,
    start: Instant,
}

impl Drop for ScopedTimer {
    #[inline]
    fn drop(&mut self) {
        self.hist.record(self.start.elapsed().as_nanos() as u64);
    }
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, Arc<AtomicU64>>,
    gauges: BTreeMap<String, Arc<AtomicI64>>,
    histograms: BTreeMap<String, Arc<AtomicHistogram>>,
    timers: BTreeMap<String, Arc<AtomicHistogram>>,
}

/// The metric registry. Wrap in an [`Arc`] to share across threads; all
/// handle operations are lock-free.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Gets or creates the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        Counter(Arc::clone(
            inner.counters.entry(name.to_string()).or_default(),
        ))
    }

    /// Gets or creates the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        Gauge(Arc::clone(
            inner.gauges.entry(name.to_string()).or_default(),
        ))
    }

    /// Gets or creates the histogram `name`.
    pub fn histogram(&self, name: &str) -> HistHandle {
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        HistHandle(Arc::clone(
            inner.histograms.entry(name.to_string()).or_default(),
        ))
    }

    /// Gets or creates the timer `name` (pre-resolved form for hot loops).
    pub fn timer_handle(&self, name: &str) -> TimerHandle {
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        TimerHandle(Arc::clone(
            inner.timers.entry(name.to_string()).or_default(),
        ))
    }

    /// Starts a scoped span timer: `let _t = registry.timer("sim.route");`.
    ///
    /// Convenience form that pays one registry lock per call — hot loops
    /// should use [`Registry::timer_handle`] once and `start()` per span.
    pub fn timer(&self, name: &str) -> ScopedTimer {
        self.timer_handle(name).start()
    }

    /// Merges a finished plain histogram into the histogram `name`
    /// (used to fold per-run/per-shard histograms into the registry).
    pub fn merge_histogram(&self, name: &str, h: &crate::hist::Histogram) {
        self.histogram(name).0.merge_plain(h);
    }

    /// Folds every metric of `other` into this registry: counters and
    /// gauges add, histograms and timers merge bucket-wise; names are
    /// unioned. Built for folding per-worker registries into a main one
    /// after a parallel sweep — every operation is commutative, so the
    /// merged counts are independent of worker scheduling (only timer
    /// *durations*, which record wall clock, can differ run to run).
    pub fn merge_from(&self, other: &Registry) {
        // Snapshot `other` into plain data first so the two registry
        // locks are never held at once.
        let (counters, gauges, histograms, timers) = {
            let o = other
                .inner
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            (
                o.counters
                    .iter()
                    .map(|(n, c)| (n.clone(), c.load(Ordering::Relaxed)))
                    .collect::<Vec<_>>(),
                o.gauges
                    .iter()
                    .map(|(n, g)| (n.clone(), g.load(Ordering::Relaxed)))
                    .collect::<Vec<_>>(),
                o.histograms
                    .iter()
                    .map(|(n, h)| (n.clone(), h.snapshot()))
                    .collect::<Vec<_>>(),
                o.timers
                    .iter()
                    .map(|(n, t)| (n.clone(), t.snapshot()))
                    .collect::<Vec<_>>(),
            )
        };
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        for (name, v) in counters {
            inner
                .counters
                .entry(name)
                .or_default()
                .fetch_add(v, Ordering::Relaxed);
        }
        for (name, v) in gauges {
            inner
                .gauges
                .entry(name)
                .or_default()
                .fetch_add(v, Ordering::Relaxed);
        }
        for (name, h) in histograms {
            inner.histograms.entry(name).or_default().merge_plain(&h);
        }
        for (name, t) in timers {
            inner.timers.entry(name).or_default().merge_plain(&t);
        }
    }

    /// A point-in-time copy of every metric, quantiles included.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut snap = Snapshot::default();
        for (name, c) in &inner.counters {
            snap.counters
                .insert(name.clone(), c.load(Ordering::Relaxed));
        }
        for (name, g) in &inner.gauges {
            snap.gauges.insert(name.clone(), g.load(Ordering::Relaxed));
        }
        for (name, h) in &inner.histograms {
            snap.histograms
                .insert(name.clone(), HistSummary::of(&h.snapshot()));
        }
        for (name, t) in &inner.timers {
            snap.timers
                .insert(name.clone(), HistSummary::of(&t.snapshot()));
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn handles_are_shared_by_name() {
        let r = Registry::new();
        r.counter("x").add(2);
        r.counter("x").inc();
        assert_eq!(r.counter("x").get(), 3);
        r.gauge("g").add(5);
        r.gauge("g").dec();
        assert_eq!(r.gauge("g").get(), 4);
    }

    #[test]
    fn concurrent_counts_are_exact() {
        let r = Arc::new(Registry::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let r = Arc::clone(&r);
            handles.push(thread::spawn(move || {
                let c = r.counter("hits");
                let h = r.histogram("lat");
                for i in 0..10_000u64 {
                    c.inc();
                    h.record(i % 512);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.counter("hits").get(), 80_000);
        assert_eq!(r.histogram("lat").snapshot().count(), 80_000);
    }

    #[test]
    fn merge_from_adds_counts_and_unions_names() {
        let main = Registry::new();
        main.counter("sim.requests").add(10);
        main.histogram("lat").record(5);
        let worker = Registry::new();
        worker.counter("sim.requests").add(32);
        worker.counter("sim.coop_probes").add(7);
        worker.gauge("depth").add(-2);
        worker.histogram("lat").record(9);
        worker.timer_handle("span").observe_ns(100);

        main.merge_from(&worker);
        let snap = main.snapshot();
        assert_eq!(snap.counters["sim.requests"], 42);
        assert_eq!(snap.counters["sim.coop_probes"], 7);
        assert_eq!(snap.gauges["depth"], -2);
        assert_eq!(snap.histograms["lat"].count, 2);
        assert_eq!(snap.histograms["lat"].sum, 14);
        assert_eq!(snap.timers["span"].count, 1);
        // The merge is additive and order-independent: folding two worker
        // registries in either order yields the same counts.
        let a = Registry::new();
        a.counter("c").add(1);
        let b = Registry::new();
        b.counter("c").add(2);
        let ab = Registry::new();
        ab.merge_from(&a);
        ab.merge_from(&b);
        let ba = Registry::new();
        ba.merge_from(&b);
        ba.merge_from(&a);
        assert_eq!(ab.snapshot().counters, ba.snapshot().counters);
    }

    #[test]
    fn scoped_timer_records_on_drop() {
        let r = Registry::new();
        {
            let _t = r.timer("span");
        }
        let t = r.timer_handle("span");
        t.observe_ns(500);
        let snap = r.snapshot();
        assert_eq!(snap.timers["span"].count, 2);
        assert!(snap.timers["span"].sum >= 500);
    }
}
