//! Per-request trace records with every-Nth sampling and JSONL export.
//!
//! A [`TraceSink`] accepts one [`TraceRecord`] per simulated request but
//! only serializes every Nth one (sampling is decided by an atomic
//! counter, so a shared sink is safe to use from several threads). Records
//! are written as one JSON object per line — the de facto JSONL format —
//! so sidecar files stream into `jq`, pandas, or a shell loop unchanged.

use crate::json::Value;
use std::borrow::Cow;
use std::collections::BTreeMap;
use std::io::{self, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One request's journey through the system.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceRecord {
    /// Monotonic request number within the run.
    pub seq: u64,
    /// The object requested.
    pub object: u64,
    /// The design label under test (e.g. `"idICN"`, `"NDN"`). A `Cow` so
    /// the common case — a `&'static str` design name stamped onto every
    /// record of a run — borrows instead of allocating per record; only
    /// deserialized records own their label.
    pub design: Cow<'static, str>,
    /// Tree level of the serving cache (meaningful only when `hit`).
    pub level: u32,
    /// Number of link hops traversed.
    pub hops: u32,
    /// Whether any cache hit occurred.
    pub hit: bool,
    /// Whether the hit came from a cooperating sibling cache.
    pub coop: bool,
    /// End-to-end cost (the simulator's latency unit, scaled ×1000).
    pub cost_milli: u64,
}

impl TraceRecord {
    /// Serializes to one compact JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut m = BTreeMap::new();
        m.insert("seq".into(), Value::UInt(self.seq));
        m.insert("object".into(), Value::UInt(self.object));
        m.insert(
            "design".into(),
            Value::Str(self.design.clone().into_owned()),
        );
        m.insert("level".into(), Value::UInt(self.level as u64));
        m.insert("hops".into(), Value::UInt(self.hops as u64));
        m.insert("hit".into(), Value::Bool(self.hit));
        m.insert("coop".into(), Value::Bool(self.coop));
        m.insert("cost_milli".into(), Value::UInt(self.cost_milli));
        Value::Obj(m).to_json()
    }

    /// Parses a record back from its JSON line.
    pub fn from_json(line: &str) -> Result<Self, String> {
        let v = crate::json::parse(line)?;
        let num = |k: &str| {
            v.get(k)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("missing '{k}'"))
        };
        Ok(Self {
            seq: num("seq")?,
            object: num("object")?,
            design: Cow::Owned(
                v.get("design")
                    .and_then(Value::as_str)
                    .ok_or("missing 'design'")?
                    .to_string(),
            ),
            level: num("level")? as u32,
            hops: num("hops")? as u32,
            hit: matches!(v.get("hit"), Some(Value::Bool(true))),
            coop: matches!(v.get("coop"), Some(Value::Bool(true))),
            cost_milli: num("cost_milli")?,
        })
    }
}

/// A sampling JSONL writer for trace records.
///
/// `every = 1` keeps everything; `every = 1000` keeps records 0, 1000,
/// 2000, … of those offered. The offered count is tracked atomically so
/// the sampling decision itself is lock-free; only sampled records take
/// the writer lock.
pub struct TraceSink {
    every: u64,
    offered: AtomicU64,
    written: AtomicU64,
    out: Mutex<Box<dyn Write + Send>>,
}

impl TraceSink {
    /// A sink writing sampled records to `out`.
    ///
    /// `every` is clamped to at least 1.
    pub fn new(out: Box<dyn Write + Send>, every: u64) -> Self {
        Self {
            every: every.max(1),
            offered: AtomicU64::new(0),
            written: AtomicU64::new(0),
            out: Mutex::new(out),
        }
    }

    /// A sink writing to the file at `path` (buffered).
    pub fn to_file(path: &str, every: u64) -> io::Result<Self> {
        let f = std::fs::File::create(path)?;
        Ok(Self::new(Box::new(io::BufWriter::new(f)), every))
    }

    /// Offers a record; it is serialized only when sampled. Returns whether
    /// it was written.
    pub fn offer(&self, rec: &TraceRecord) -> bool {
        self.offer_with(|| rec.clone())
    }

    /// Like [`TraceSink::offer`], but the record is *built* only when this
    /// offer is sampled — the hot path pays one atomic increment for
    /// skipped records, not a record construction.
    pub fn offer_with(&self, build: impl FnOnce() -> TraceRecord) -> bool {
        let n = self.offered.fetch_add(1, Ordering::Relaxed);
        if !n.is_multiple_of(self.every) {
            return false;
        }
        let line = build().to_json();
        let mut out = self.out.lock().unwrap_or_else(|e| e.into_inner());
        if writeln!(out, "{line}").is_ok() {
            self.written.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Records offered so far (sampled or not).
    pub fn offered(&self) -> u64 {
        self.offered.load(Ordering::Relaxed)
    }

    /// Records actually serialized so far.
    pub fn written(&self) -> u64 {
        self.written.load(Ordering::Relaxed)
    }

    /// Flushes the underlying writer.
    pub fn flush(&self) -> io::Result<()> {
        self.out.lock().unwrap_or_else(|e| e.into_inner()).flush()
    }
}

impl Drop for TraceSink {
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex as StdMutex};

    /// A Write impl capturing into a shared buffer for assertions.
    #[derive(Clone, Default)]
    struct Shared(Arc<StdMutex<Vec<u8>>>);

    impl Write for Shared {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn rec(seq: u64) -> TraceRecord {
        TraceRecord {
            seq,
            object: 42,
            design: "idICN".into(),
            level: 2,
            hops: 3,
            hit: true,
            coop: seq.is_multiple_of(2),
            cost_milli: 1500,
        }
    }

    #[test]
    fn record_json_round_trips() {
        let r = rec(7);
        assert_eq!(TraceRecord::from_json(&r.to_json()).unwrap(), r);
    }

    #[test]
    fn sampling_keeps_every_nth() {
        let buf = Shared::default();
        let sink = TraceSink::new(Box::new(buf.clone()), 10);
        for i in 0..95 {
            sink.offer(&rec(i));
        }
        assert_eq!(sink.offered(), 95);
        assert_eq!(sink.written(), 10); // 0, 10, ..., 90
        sink.flush().unwrap();
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 10);
        // Every line parses back and seq values are the sampled ones.
        let seqs: Vec<u64> = lines
            .iter()
            .map(|l| TraceRecord::from_json(l).unwrap().seq)
            .collect();
        assert_eq!(seqs, (0..10).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn every_zero_is_clamped_to_keep_all() {
        let buf = Shared::default();
        let sink = TraceSink::new(Box::new(buf), 0);
        for i in 0..5 {
            sink.offer(&rec(i));
        }
        assert_eq!(sink.written(), 5);
    }
}
