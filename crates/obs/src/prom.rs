//! Prometheus text-format exposition for a [`Snapshot`].
//!
//! Renders the classic `text/plain; version=0.0.4` format: counters and
//! gauges as single samples, histograms and timers as cumulative
//! `_bucket{le="..."}` series (upper bounds taken from the log-bucket
//! boundaries) plus `_sum` and `_count`. Metric names are sanitized to the
//! Prometheus grammar (`[a-zA-Z_:][a-zA-Z0-9_:]*`) and every sample carries
//! the caller's label set (e.g. `component="edge_proxy"`), so one scraper
//! can tell the pipeline stages apart.

use crate::snapshot::{summary_bucket_bounds, HistSummary, Snapshot};
use std::fmt::Write as _;

/// Content-Type value for the rendered exposition.
pub const PROM_CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// Maps a metric name onto the Prometheus name grammar: every character
/// outside `[a-zA-Z0-9_:]` becomes `_`, and a leading digit is prefixed.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_alphabetic() || c == '_' || c == ':' || (c.is_ascii_digit() && i > 0) {
            out.push(c);
        } else if c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

fn label_block(labels: &[(&str, &str)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", sanitize_metric_name(k), escape_label(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn write_histogram(out: &mut String, name: &str, labels: &[(&str, &str)], s: &HistSummary) {
    let _ = writeln!(out, "# TYPE {name} histogram");
    let mut cumulative = 0u64;
    for &(idx, count) in &s.buckets {
        cumulative += count;
        let (_, upper) = summary_bucket_bounds(idx);
        let le = format!("{upper}");
        let _ = writeln!(
            out,
            "{name}_bucket{} {cumulative}",
            label_block(labels, Some(("le", &le)))
        );
    }
    let _ = writeln!(
        out,
        "{name}_bucket{} {}",
        label_block(labels, Some(("le", "+Inf"))),
        s.count
    );
    let _ = writeln!(out, "{name}_sum{} {}", label_block(labels, None), s.sum);
    let _ = writeln!(out, "{name}_count{} {}", label_block(labels, None), s.count);
}

/// Renders `snap` in Prometheus text format with `labels` on every sample.
pub fn render_prometheus(snap: &Snapshot, labels: &[(&str, &str)]) -> String {
    let mut out = String::new();
    let plain = label_block(labels, None);
    for (name, &v) in &snap.counters {
        let name = sanitize_metric_name(name);
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name}{plain} {v}");
    }
    for (name, &v) in &snap.gauges {
        let name = sanitize_metric_name(name);
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name}{plain} {v}");
    }
    for (name, s) in &snap.histograms {
        write_histogram(&mut out, &sanitize_metric_name(name), labels, s);
    }
    for (name, s) in &snap.timers {
        // Timer values are span durations in nanoseconds.
        let name = sanitize_metric_name(&format!("{name}_ns"));
        write_histogram(&mut out, &name, labels, s);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn sanitizes_names() {
        assert_eq!(sanitize_metric_name("proxy.hits"), "proxy_hits");
        assert_eq!(sanitize_metric_name("a-b c"), "a_b_c");
        assert_eq!(sanitize_metric_name("9lives"), "_9lives");
        assert_eq!(sanitize_metric_name("ok_name:x9"), "ok_name:x9");
    }

    #[test]
    fn renders_counters_and_gauges_with_labels() {
        let r = Registry::new();
        r.counter("proxy.hits").add(7);
        r.gauge("proxy.in_flight").set(-2);
        let text = render_prometheus(&r.snapshot(), &[("component", "edge_proxy")]);
        assert!(text.contains("# TYPE proxy_hits counter"), "{text}");
        assert!(
            text.contains("proxy_hits{component=\"edge_proxy\"} 7"),
            "{text}"
        );
        assert!(text.contains("# TYPE proxy_in_flight gauge"), "{text}");
        assert!(
            text.contains("proxy_in_flight{component=\"edge_proxy\"} -2"),
            "{text}"
        );
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_ordered() {
        let r = Registry::new();
        let h = r.histogram("lat");
        for v in [1u64, 1, 5, 100, 10_000] {
            h.record(v);
        }
        let text = render_prometheus(&r.snapshot(), &[]);
        assert!(text.contains("# TYPE lat histogram"), "{text}");
        assert!(text.contains("lat_sum 10107"), "{text}");
        assert!(text.contains("lat_count 5"), "{text}");
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 5"), "{text}");
        // Cumulative counts never decrease as le grows.
        let mut prev = 0u64;
        for line in text.lines().filter(|l| l.starts_with("lat_bucket")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= prev, "bucket counts must be cumulative: {text}");
            prev = v;
        }
    }

    #[test]
    fn timers_get_ns_suffix() {
        let r = Registry::new();
        r.timer_handle("proxy.request").observe_ns(1_000);
        let text = render_prometheus(&r.snapshot(), &[]);
        assert!(text.contains("# TYPE proxy_request_ns histogram"), "{text}");
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new();
        r.counter("c").inc();
        let text = render_prometheus(&r.snapshot(), &[("path", "a\"b\\c")]);
        assert!(text.contains("c{path=\"a\\\"b\\\\c\"} 1"), "{text}");
    }
}
