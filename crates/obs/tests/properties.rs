//! Property tests for the observability primitives: quantile accuracy
//! against an exact oracle, merge algebra, concurrent recording, snapshot
//! JSON round trips, and the span profiler's merge/nesting invariants.

use icn_obs::{Histogram, ProfileSnapshot, Profiler, Registry, Snapshot};
use proptest::prelude::*;

/// The same rank convention `Histogram::quantile` uses.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * (sorted.len() - 1) as f64).round() as usize).min(sorted.len() - 1);
    sorted[rank]
}

fn values() -> impl Strategy<Value = Vec<u64>> {
    // Mix magnitudes: sub-bucket-exact small values through full-range
    // large ones, so quantiles land in both regimes.
    prop::collection::vec(
        prop_oneof![
            0u64..32,
            32u64..4096,
            4096u64..1_000_000,
            1_000_000u64..u64::MAX / 2,
        ],
        1..400,
    )
}

proptest! {
    #[test]
    fn quantiles_track_the_exact_order_statistics(vals in values()) {
        let mut h = Histogram::new();
        for &v in &vals {
            h.record(v);
        }
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let exact = exact_quantile(&sorted, q);
            let est = h.quantile(q);
            // The estimate is the midpoint of the bucket holding the rank:
            // exact below 32, within one bucket width (~6.25%) above.
            let tol = (exact as f64 / 16.0) + 1.0;
            prop_assert!(
                (est - exact as f64).abs() <= tol,
                "q={q}: est {est} vs exact {exact} (tol {tol})"
            );
        }
    }

    #[test]
    fn merge_is_associative_and_commutative(
        a in values(), b in values(), c in values()
    ) {
        let hist = |vals: &[u64]| {
            let mut h = Histogram::new();
            for &v in vals {
                h.record(v);
            }
            h
        };
        let (ha, hb, hc) = (hist(&a), hist(&b), hist(&c));

        let mut ab_c = ha.clone();
        ab_c.merge(&hb);
        ab_c.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut a_bc = ha.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc);

        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(&ab, &ba);

        prop_assert_eq!(ab_c.count(), (a.len() + b.len() + c.len()) as u64);
    }

    #[test]
    fn snapshot_json_round_trips(
        counters in prop::collection::vec((0u64..1000, 0u64..u64::MAX / 2), 0..8),
        gauge in -5_000_000i64..5_000_000,
        hist_vals in values(),
    ) {
        let registry = Registry::new();
        for (i, (_, v)) in counters.iter().enumerate() {
            registry.counter(&format!("c.{i}")).add(*v);
        }
        registry.gauge("g").set(gauge);
        let h = registry.histogram("h");
        for &v in &hist_vals {
            h.record(v);
        }
        registry.timer_handle("t").observe_ns(1_234_567);

        let snap = registry.snapshot();
        let back = Snapshot::from_json(&snap.to_json()).unwrap();
        prop_assert_eq!(&back, &snap);
        // And a second round trip is a fixed point.
        let again = Snapshot::from_json(&back.to_json()).unwrap();
        prop_assert_eq!(&again, &back);
    }
}

/// Observations as `(phase, self_ns, total_ns)` with `self ≤ total`.
fn observations() -> impl Strategy<Value = Vec<(u8, u64, u64)>> {
    prop::collection::vec(
        (0u8..4, 0u64..1_000_000, 0u64..1_000_000).prop_map(|(n, a, b)| (n, a.min(b), a.max(b))),
        0..50,
    )
}

fn profiler_of(obs: &[(u8, u64, u64)]) -> Profiler {
    let p = Profiler::new();
    for &(name, self_ns, total_ns) in obs {
        p.phase(&format!("phase.{name}"))
            .observe_ns(self_ns, total_ns);
    }
    p
}

proptest! {
    #[test]
    fn profiler_merge_is_associative_and_commutative(
        a in observations(), b in observations(), c in observations()
    ) {
        let (pa, pb, pc) = (profiler_of(&a), profiler_of(&b), profiler_of(&c));

        // (a ∪ b) ∪ c == a ∪ (b ∪ c)
        let ab_c = profiler_of(&a);
        ab_c.merge_from(&pb);
        ab_c.merge_from(&pc);
        let bc = profiler_of(&b);
        bc.merge_from(&pc);
        let a_bc = profiler_of(&a);
        a_bc.merge_from(&bc);
        prop_assert_eq!(ab_c.snapshot(), a_bc.snapshot());

        // a ∪ b == b ∪ a
        let ab = profiler_of(&a);
        ab.merge_from(&pb);
        let ba = profiler_of(&b);
        ba.merge_from(&pa);
        prop_assert_eq!(ab.snapshot(), ba.snapshot());
    }

    #[test]
    fn profile_json_round_trips(obs in observations()) {
        let snap = profiler_of(&obs).snapshot();
        let back = ProfileSnapshot::from_json(&snap.to_json()).unwrap();
        prop_assert_eq!(&back, &snap);
        let again = ProfileSnapshot::from_json(&back.to_json()).unwrap();
        prop_assert_eq!(&again, &back);
    }

    #[test]
    fn span_nesting_tiles_the_root(ops in prop::collection::vec(0u8..2, 0..40)) {
        // Interpret `ops` as open/close events of a random span tree under
        // a single root, phases named by depth. On one thread the self
        // times must tile the root's total exactly: every nanosecond of
        // the root span is the self time of exactly one phase.
        let p = Profiler::new();
        let root = p.phase("root");
        {
            let _root = root.span();
            let mut guards = Vec::new();
            for op in ops {
                if op == 1 {
                    guards.push(p.phase(&format!("depth.{}", guards.len() + 1)).span());
                } else {
                    guards.pop();
                }
            }
            while guards.pop().is_some() {}
        }
        let snap = p.snapshot();
        let mut self_sum = 0u64;
        for (name, phase) in &snap.phases {
            prop_assert!(
                phase.self_ns.sum <= phase.total_ns.sum,
                "{name}: self {} > total {}",
                phase.self_ns.sum,
                phase.total_ns.sum
            );
            prop_assert_eq!(phase.self_ns.count, phase.count);
            prop_assert_eq!(phase.total_ns.count, phase.count);
            self_sum += phase.self_ns.sum;
        }
        prop_assert_eq!(self_sum, snap.phases["root"].total_ns.sum);
        // Children at depth d+1 are fully contained in spans at depth d.
        for d in 1.. {
            let Some(child) = snap.phases.get(&format!("depth.{}", d + 1)) else {
                break;
            };
            let parent = &snap.phases[&format!("depth.{d}")];
            prop_assert!(child.total_ns.sum <= parent.total_ns.sum);
        }
    }
}

#[test]
fn counters_and_histograms_are_exact_under_contention() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 20_000;
    let registry = std::sync::Arc::new(Registry::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let registry = std::sync::Arc::clone(&registry);
            std::thread::spawn(move || {
                let counter = registry.counter("contended.counter");
                let hist = registry.histogram("contended.hist");
                let timer = registry.timer_handle("contended.timer");
                for i in 0..PER_THREAD {
                    counter.inc();
                    hist.record(t as u64 * PER_THREAD + i);
                    timer.observe_ns(i + 1);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let snap = registry.snapshot();
    let total = THREADS as u64 * PER_THREAD;
    assert_eq!(snap.counters["contended.counter"], total);
    assert_eq!(snap.histograms["contended.hist"].count, total);
    assert_eq!(snap.histograms["contended.hist"].min, 0);
    assert_eq!(snap.histograms["contended.hist"].max, total - 1);
    assert_eq!(snap.timers["contended.timer"].count, total);
    // Sum of 1..=PER_THREAD per thread, exactly, despite the contention.
    assert_eq!(
        snap.timers["contended.timer"].sum,
        THREADS as u64 * (PER_THREAD * (PER_THREAD + 1) / 2)
    );
}
