//! Optimal static cache placement on a distribution tree (§2.2, Figure 2).
//!
//! The model: a complete k-ary tree with `levels` levels. Requests arrive at
//! a uniformly random leaf (level 1) and climb toward the root; the node at
//! level `levels` is the origin and holds everything. Every cache node holds
//! at most `cache_per_node` objects; serving a request at level `l` costs
//! `l` hops. The question is the best *static* placement of objects.
//!
//! **Optimal structure.** Each request only ever sees the caches on its own
//! leaf-to-root path — one node per level — and demand is identical at every
//! leaf. Placing object `o` at a node only helps requests whose path passes
//! that node and that were not already served below it. Hence, for each
//! root-path independently, the problem reduces to packing the per-level
//! capacity `C` with probability mass, cheapest levels first: level 1 takes
//! the `C` most popular objects, level 2 the next `C`, and so on, with the
//! identical placement repeated across nodes of the same level. Duplicating
//! an object already placed at a lower level is wasted capacity (requests
//! for it never climb that high). [`validate_by_exhaustion`] checks this
//! argument by brute force on small instances.

use icn_workload::zipf::Zipf;

/// Per-level outcome of the optimal static placement.
#[derive(Debug, Clone, PartialEq)]
pub struct TreePlacement {
    /// `served[l-1]` = fraction of requests served at level `l`
    /// (`served[levels-1]` is the origin's share).
    pub served: Vec<f64>,
    /// Expected hops per request (`Σ l · served[l-1]`).
    pub expected_hops: f64,
    /// Expected hops when only level-1 (edge) caches are kept and all other
    /// cache levels are removed — the §2.2 "extreme scenario".
    pub edge_only_expected_hops: f64,
}

/// Computes the optimal static placement outcome for a tree with `levels`
/// levels (the origin being level `levels`), `cache_per_node` objects per
/// cache, and a Zipf workload.
///
/// # Panics
/// Panics if `levels < 2` (there must be at least an edge level and the
/// origin).
pub fn optimal_levels(levels: u32, cache_per_node: usize, zipf: &Zipf) -> TreePlacement {
    assert!(levels >= 2, "need at least an edge level and the origin");
    let o = zipf.len();
    let c = cache_per_node;
    let mut served = Vec::with_capacity(levels as usize);
    let mut acc = 0usize; // objects placed so far (most popular first)
    for _level in 1..levels {
        let lo = acc.min(o);
        let hi = (acc + c).min(o);
        served.push(zipf.mass(lo, hi));
        acc += c;
    }
    // Origin serves the remaining mass.
    let cached_mass: f64 = served.iter().sum();
    served.push((1.0 - cached_mass).max(0.0));

    let expected_hops: f64 = served
        .iter()
        .enumerate()
        .map(|(i, &f)| (i + 1) as f64 * f)
        .sum();
    let edge_mass = served[0];
    let edge_only_expected_hops = edge_mass * 1.0 + (1.0 - edge_mass) * levels as f64;
    TreePlacement {
        served,
        expected_hops,
        edge_only_expected_hops,
    }
}

/// The latency improvement (as a fraction) that the full multi-level
/// placement achieves over the edge-only configuration — the §2.2 worked
/// example concludes this is only ~25% for α = 0.7 on a 6-level tree.
pub fn interior_cache_benefit(p: &TreePlacement) -> f64 {
    (p.edge_only_expected_hops - p.expected_hops) / p.edge_only_expected_hops
}

/// Exhaustively verifies on a small instance that no static placement beats
/// the per-level greedy. The instance is a single root path (which the
/// symmetric argument reduces to): `levels - 1` cache nodes each holding
/// `cache_per_node` of `objects` objects. Returns the optimal expected hops
/// found by brute force (which must equal [`optimal_levels`]'s).
///
/// Search space is `C(O, C)^(levels-1)`; keep the parameters tiny.
pub fn validate_by_exhaustion(levels: u32, cache_per_node: usize, zipf: &Zipf) -> f64 {
    assert!((2..=5).contains(&levels), "keep exhaustion small");
    let o = zipf.len();
    assert!(o <= 10, "keep exhaustion small");
    let c = cache_per_node;
    let cache_levels = (levels - 1) as usize;

    // Enumerate subsets of size <= c as bitmasks.
    let subsets: Vec<u32> = (0u32..(1 << o))
        .filter(|m| (m.count_ones() as usize) <= c)
        .collect();

    let mut best = f64::INFINITY;
    let mut stack: Vec<u32> = Vec::with_capacity(cache_levels);
    fn recurse(
        subsets: &[u32],
        stack: &mut Vec<u32>,
        cache_levels: usize,
        levels: u32,
        zipf: &Zipf,
        best: &mut f64,
    ) {
        if stack.len() == cache_levels {
            // Expected hops: each object served at the first level whose
            // node contains it; origin otherwise.
            let mut hops = 0.0;
            for obj in 0..zipf.len() {
                let p = zipf.pmf(obj);
                let mut served_at = levels as f64;
                for (i, &mask) in stack.iter().enumerate() {
                    if mask & (1 << obj) != 0 {
                        served_at = (i + 1) as f64;
                        break;
                    }
                }
                hops += p * served_at;
            }
            if hops < *best {
                *best = hops;
            }
            return;
        }
        for &s in subsets {
            stack.push(s);
            recurse(subsets, stack, cache_levels, levels, zipf, best);
            stack.pop();
        }
    }
    recurse(&subsets, &mut stack, cache_levels, levels, zipf, &mut best);
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn served_fractions_sum_to_one() {
        let z = Zipf::new(1_000, 0.7);
        let p = optimal_levels(6, 50, &z);
        assert_eq!(p.served.len(), 6);
        let total: f64 = p.served.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn figure2_shape_alpha_07() {
        // Figure 2, α = 0.7: edge serves ~0.4, interior levels small,
        // origin large; expected hops ≈ 3.
        let z = Zipf::new(100_000, 0.7);
        let c = 5_000; // 5% per node
        let p = optimal_levels(6, c, &z);
        assert!(
            p.served[0] > 0.3 && p.served[0] < 0.55,
            "edge {}",
            p.served[0]
        );
        // Interior levels each serve less than the edge.
        for l in 1..5 {
            assert!(p.served[l] < p.served[0]);
        }
        assert!(p.served[5] > 0.1, "origin share {}", p.served[5]);
        assert!(
            (p.expected_hops - 3.0).abs() < 0.8,
            "hops {}",
            p.expected_hops
        );
        // The worked example: interior caching buys only ~25%.
        let benefit = interior_cache_benefit(&p);
        assert!(benefit > 0.1 && benefit < 0.35, "benefit {benefit}");
    }

    #[test]
    fn higher_alpha_concentrates_at_edge() {
        let z_lo = Zipf::new(10_000, 0.7);
        let z_hi = Zipf::new(10_000, 1.5);
        let p_lo = optimal_levels(6, 500, &z_lo);
        let p_hi = optimal_levels(6, 500, &z_hi);
        assert!(p_hi.served[0] > p_lo.served[0]);
        assert!(p_hi.expected_hops < p_lo.expected_hops);
        // Figure 2: at α = 1.5 the edge dominates.
        assert!(
            p_hi.served[0] > 0.75,
            "edge at alpha 1.5: {}",
            p_hi.served[0]
        );
    }

    #[test]
    fn capacity_larger_than_universe() {
        let z = Zipf::new(50, 1.0);
        let p = optimal_levels(4, 100, &z);
        // Everything fits at the edge.
        assert!((p.served[0] - 1.0).abs() < 1e-12);
        assert!((p.expected_hops - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_capacity_all_origin() {
        let z = Zipf::new(50, 1.0);
        let p = optimal_levels(4, 0, &z);
        assert!((p.served[3] - 1.0).abs() < 1e-12);
        assert_eq!(p.expected_hops, 4.0);
    }

    #[test]
    fn greedy_matches_exhaustive_optimum() {
        // Small instances across alphas and shapes.
        for &(o, c, levels, alpha) in &[
            (6usize, 1usize, 3u32, 0.8),
            (6, 2, 3, 1.2),
            (8, 2, 4, 0.5),
            (5, 1, 4, 1.0),
        ] {
            let z = Zipf::new(o, alpha);
            let greedy = optimal_levels(levels, c, &z);
            let brute = validate_by_exhaustion(levels, c, &z);
            assert!(
                (greedy.expected_hops - brute).abs() < 1e-9,
                "greedy {} vs brute {brute} (O={o} C={c} L={levels} a={alpha})",
                greedy.expected_hops
            );
        }
    }
}
