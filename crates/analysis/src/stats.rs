//! Small statistics helpers for the experiment binaries.

/// Arithmetic mean; 0.0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation; 0.0 for fewer than two values.
pub fn stdev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Linear-interpolated percentile `p ∈ [0, 100]` of an unsorted slice.
///
/// # Panics
/// Panics on an empty slice or `p` outside `[0, 100]`.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    assert!(!xs.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&p));
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    let rank = p / 100.0 * (v.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let w = rank - lo as f64;
        v[lo] * (1.0 - w) + v[hi] * w
    }
}

/// Maximum of a slice; `None` when empty or containing NaN only.
pub fn max(xs: &[f64]) -> Option<f64> {
    xs.iter()
        .copied()
        .filter(|x| !x.is_nan())
        .fold(None, |acc, x| {
            Some(match acc {
                None => x,
                Some(m) => m.max(x),
            })
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stdev() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(stdev(&[5.0]), 0.0);
        let s = stdev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s - 2.0).abs() < 1e-12);
    }

    #[test]
    fn percentiles() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert_eq!(percentile(&xs, 50.0), 2.5);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_empty_panics() {
        percentile(&[], 50.0);
    }

    #[test]
    fn max_handles_nan_and_empty() {
        assert_eq!(max(&[]), None);
        assert_eq!(max(&[f64::NAN]), None);
        assert_eq!(max(&[1.0, f64::NAN, 3.0]), Some(3.0));
    }
}
