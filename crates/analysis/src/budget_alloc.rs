//! Optimal division of a total cache budget across tree levels (§2.2).
//!
//! The paper extends its tree optimization "with another degree of freedom,
//! where we also vary the sizes of the cache allocated to different
//! locations. The results showed that the optimal solution under a Zipf
//! workload involves assigning a majority of the total caching budget to
//! the leaves of the tree." The result itself is not shown "due to space
//! limitations" — this module reproduces it.
//!
//! Model: a complete k-ary tree with `levels` levels, requests arrive at a
//! uniformly random leaf (level 1), the origin at level `levels` holds
//! everything. A *level-uniform* allocation gives every node at level `l`
//! the same capacity `c_l`; the per-request expected hops under the optimal
//! static placement for a given `(c_1, …)` follows the same per-path
//! packing argument as [`crate::tree_opt`]: level `l` serves the Zipf mass
//! of objects ranked after those cached below it. The optimizer allocates
//! a total budget of `B` object-slots greedily, one slot at a time, to the
//! level with the best marginal reduction in expected hops per budget
//! unit; the objective is separable-concave in per-level coverage, so the
//! greedy is near-optimal (within integer-knapsack rounding), which
//! [`validate_by_enumeration`] bounds exhaustively on small instances.
//!
//! **Finding.** The leaf level's budget share is the largest of any level
//! once α ≥ 1 (the regime of all three fitted CDN traces) and becomes an
//! outright majority as α grows — each leaf slot is paid for once per
//! leaf (every leaf duplicates the same head objects), but a leaf hit
//! saves the entire path. For flatter popularity (α ≈ 0.7) the optimum
//! shifts budget upward, where one slot covers a whole subtree. This
//! refines the paper's summary that the optimum "assigns a majority of
//! the total caching budget to the leaves".

use icn_workload::zipf::Zipf;

/// The outcome of allocating a budget across levels.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelAllocation {
    /// Per-node capacity at each cache level (`alloc[0]` = leaves = level 1).
    pub per_node: Vec<usize>,
    /// Total slots spent at each level (`per_node[l] × nodes_at_level`).
    pub per_level_total: Vec<usize>,
    /// Expected hops per request under the allocation.
    pub expected_hops: f64,
}

impl LevelAllocation {
    /// Fraction of the total budget assigned to the leaves.
    pub fn leaf_budget_share(&self) -> f64 {
        let total: usize = self.per_level_total.iter().sum();
        if total == 0 {
            0.0
        } else {
            self.per_level_total[0] as f64 / total as f64
        }
    }
}

/// Number of nodes at cache level `l` (1-based from the leaves) in a
/// complete k-ary tree whose leaves sit at level 1 and whose origin is at
/// level `levels`: the leaves level has `k^(levels-1)` nodes... — but for
/// the per-path argument only the *ratio* between level populations
/// matters, and in a complete k-ary tree level `l` has `k^(levels-l)`
/// nodes.
fn nodes_at_level(arity: u32, levels: u32, level: u32) -> usize {
    debug_assert!(level >= 1 && level < levels);
    (arity as usize).pow(levels - level)
}

/// Expected hops when the per-node capacities are `per_node[l-1]` at level
/// `l` (cache levels `1..levels`), under the optimal static placement:
/// each root path sees one node per level, and level `l` serves the Zipf
/// mass of ranks `[sum below, sum below + c_l)`.
pub fn expected_hops(per_node: &[usize], levels: u32, zipf: &Zipf) -> f64 {
    debug_assert_eq!(per_node.len() as u32, levels - 1);
    let o = zipf.len();
    let mut below = 0usize;
    let mut hops = 0.0;
    for (i, &c) in per_node.iter().enumerate() {
        let lo = below.min(o);
        let hi = (below + c).min(o);
        hops += (i + 1) as f64 * zipf.mass(lo, hi);
        below += c;
    }
    let covered = zipf.mass(0, below.min(o));
    hops + levels as f64 * (1.0 - covered)
}

/// Greedily allocates `budget` object-slots across cache levels to minimize
/// expected hops. Each step buys one more *per-node* slot at some level,
/// costing `nodes_at_level` budget units; steps that no longer fit the
/// remaining budget are skipped.
pub fn optimize(arity: u32, levels: u32, budget: usize, zipf: &Zipf) -> LevelAllocation {
    assert!(levels >= 2);
    assert!(arity >= 1);
    let cache_levels = (levels - 1) as usize;
    let costs: Vec<usize> = (1..levels)
        .map(|l| nodes_at_level(arity, levels, l))
        .collect();
    let mut per_node = vec![0usize; cache_levels];
    let mut remaining = budget;
    let mut current = expected_hops(&per_node, levels, zipf);
    loop {
        let mut best: Option<(f64, usize)> = None; // (gain per budget unit, level idx)
        for l in 0..cache_levels {
            if costs[l] > remaining {
                continue;
            }
            per_node[l] += 1;
            let h = expected_hops(&per_node, levels, zipf);
            per_node[l] -= 1;
            let gain = (current - h) / costs[l] as f64;
            if gain > 0.0 && best.is_none_or(|(g, _)| gain > g) {
                best = Some((gain, l));
            }
        }
        match best {
            Some((_, l)) => {
                per_node[l] += 1;
                remaining -= costs[l];
                current = expected_hops(&per_node, levels, zipf);
            }
            None => break,
        }
    }
    let per_level_total: Vec<usize> = per_node.iter().zip(&costs).map(|(&c, &n)| c * n).collect();
    LevelAllocation {
        per_node,
        per_level_total,
        expected_hops: current,
    }
}

/// Exhaustively enumerates all level allocations of `budget` slots for a
/// small instance and returns the minimum expected hops (to validate the
/// greedy). Search is over per-node capacities bounded by the budget.
pub fn validate_by_enumeration(arity: u32, levels: u32, budget: usize, zipf: &Zipf) -> f64 {
    let cache_levels = (levels - 1) as usize;
    assert!(cache_levels <= 3 && budget <= 64, "keep enumeration small");
    let costs: Vec<usize> = (1..levels)
        .map(|l| nodes_at_level(arity, levels, l))
        .collect();
    let mut best = f64::INFINITY;
    let mut per_node = vec![0usize; cache_levels];
    fn recurse(
        level: usize,
        remaining: usize,
        costs: &[usize],
        per_node: &mut Vec<usize>,
        levels: u32,
        zipf: &Zipf,
        best: &mut f64,
    ) {
        if level == costs.len() {
            let h = expected_hops(per_node, levels, zipf);
            if h < *best {
                *best = h;
            }
            return;
        }
        let max_here = remaining / costs[level];
        for c in 0..=max_here {
            per_node[level] = c;
            recurse(
                level + 1,
                remaining - c * costs[level],
                costs,
                per_node,
                levels,
                zipf,
                best,
            );
        }
        per_node[level] = 0;
    }
    recurse(0, budget, &costs, &mut per_node, levels, zipf, &mut best);
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaves_dominate_for_fitted_trace_alphas() {
        // The paper's (unshown) §2.2 result, refined: at the fitted-trace
        // exponents (α ≈ 1) the leaf level receives the largest share of
        // any level, and the share grows toward a strict majority with α.
        let total_nodes: usize = (1..6u32).map(|l| nodes_at_level(2, 6, l)).sum();
        let budget = total_nodes * 500; // the Fig. 2 total (5% per node)
        let mut last_share = 0.0;
        for alpha in [1.0, 1.1, 1.3, 1.5] {
            let zipf = Zipf::new(10_000, alpha);
            let alloc = optimize(2, 6, budget, &zipf);
            let share = alloc.leaf_budget_share();
            let max_interior = alloc.per_level_total[1..].iter().copied().max().unwrap() as f64
                / alloc.per_level_total.iter().sum::<usize>() as f64;
            assert!(
                share > max_interior,
                "alpha {alpha}: leaf share {share:.2} vs max interior {max_interior:.2}"
            );
            assert!(
                share >= last_share - 0.01,
                "leaf share should grow with alpha"
            );
            last_share = share;
        }
        assert!(
            last_share > 0.5,
            "strict majority at alpha 1.5: {last_share:.2}"
        );
    }

    #[test]
    fn optimized_beats_uniform_split() {
        let zipf = Zipf::new(5_000, 1.0);
        let total_nodes: usize = (1..6u32).map(|l| nodes_at_level(2, 6, l)).sum();
        let budget = total_nodes * 100;
        let alloc = optimize(2, 6, budget, &zipf);
        let uniform = expected_hops(&[100, 100, 100, 100, 100], 6, &zipf);
        assert!(
            alloc.expected_hops <= uniform + 1e-9,
            "optimized {} vs uniform {uniform}",
            alloc.expected_hops
        );
    }

    #[test]
    fn greedy_matches_enumeration_on_small_instances() {
        for &(arity, levels, budget, alpha) in &[
            (2u32, 3u32, 12usize, 0.8),
            (2, 3, 20, 1.2),
            (2, 4, 30, 1.0),
            (3, 3, 24, 0.6),
        ] {
            let zipf = Zipf::new(40, alpha);
            let greedy = optimize(arity, levels, budget, &zipf);
            let brute = validate_by_enumeration(arity, levels, budget, &zipf);
            // Greedy is near-optimal: integer-knapsack rounding can leave
            // a sub-1% gap to the exhaustive optimum.
            assert!(
                greedy.expected_hops >= brute - 1e-9,
                "greedy beat the enumeration?! {} vs {brute}",
                greedy.expected_hops
            );
            assert!(
                (greedy.expected_hops - brute) / brute < 0.01,
                "k={arity} L={levels} B={budget} a={alpha}: greedy {} vs brute {brute}",
                greedy.expected_hops
            );
        }
    }

    #[test]
    fn budget_is_respected() {
        let zipf = Zipf::new(1_000, 1.0);
        let alloc = optimize(2, 5, 137, &zipf);
        let spent: usize = alloc.per_level_total.iter().sum();
        assert!(spent <= 137, "spent {spent}");
    }

    #[test]
    fn zero_budget_all_origin() {
        let zipf = Zipf::new(100, 1.0);
        let alloc = optimize(2, 4, 0, &zipf);
        assert_eq!(alloc.expected_hops, 4.0);
        assert!(alloc.per_node.iter().all(|&c| c == 0));
        assert_eq!(alloc.leaf_budget_share(), 0.0);
    }

    #[test]
    fn huge_budget_serves_everything_at_edge() {
        let zipf = Zipf::new(50, 1.0);
        // Enough budget for every leaf to hold the whole universe.
        let alloc = optimize(2, 4, 8 * 50 + 1_000, &zipf);
        assert!((alloc.expected_hops - 1.0).abs() < 1e-9);
        assert_eq!(alloc.per_node[0], 50);
    }
}
