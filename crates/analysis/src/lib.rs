//! Analytical models backing §2.2 of the paper.
//!
//! * [`tree_opt`] — the optimal *static* placement of objects on a k-ary
//!   distribution tree under a Zipf workload, reproducing Figure 2 (fraction
//!   of requests served per tree level) and the "25% improvement" worked
//!   example, with an exhaustive-search validator for small instances;
//! * [`budget_alloc`] — the §2.2 extension the paper describes but does
//!   not show: optimally dividing a total cache budget across tree levels
//!   ("the optimal solution under a Zipf workload involves assigning a
//!   majority of the total caching budget to the leaves");
//! * [`stats`] — small statistics helpers shared by the experiment
//!   binaries.

#![warn(missing_docs)]

pub mod budget_alloc;
pub mod che;
pub mod stats;
pub mod tree_opt;

pub use tree_opt::{optimal_levels, TreePlacement};
