//! Che's approximation for LRU hit rates under IRM.
//!
//! The paper (and prior work it cites, e.g. [39]) observes that "the LRU
//! policy performs near-optimally in practical scenarios". Che's
//! approximation is the standard analytical tool for LRU under independent
//! requests: a cache of capacity `C` behaves as if each object stays
//! resident for a characteristic time `t_C` satisfying
//! `Σ_i (1 − e^{−p_i t_C}) = C`, and object `i`'s hit probability is
//! `1 − e^{−p_i t_C}`.
//!
//! The integration test `tests/analysis_validation.rs` uses this to
//! cross-check the simulator's leaf-cache hit rates on IRM workloads —
//! an analytical sanity net underneath the trace-driven results.

use icn_workload::zipf::Zipf;

/// Result of the Che approximation for one LRU cache.
#[derive(Debug, Clone, PartialEq)]
pub struct CheApproximation {
    /// The characteristic time `t_C` (in requests).
    pub characteristic_time: f64,
    /// Aggregate hit rate `Σ_i p_i (1 − e^{−p_i t_C})`.
    pub hit_rate: f64,
}

/// Computes the Che approximation for an LRU cache of `capacity` objects
/// serving an IRM stream with the given Zipf popularity.
///
/// # Panics
/// Panics if `capacity` is not smaller than the number of objects (the
/// approximation is for caches that actually evict; a cache at least as
/// large as the universe trivially hits at rate 1).
pub fn lru_hit_rate(zipf: &Zipf, capacity: usize) -> CheApproximation {
    let n = zipf.len();
    assert!(capacity < n, "cache must be smaller than the universe");
    if capacity == 0 {
        return CheApproximation {
            characteristic_time: 0.0,
            hit_rate: 0.0,
        };
    }
    let probs: Vec<f64> = (0..n).map(|r| zipf.pmf(r)).collect();
    // Solve sum_i (1 - e^{-p_i t}) = C for t by bisection; the left side is
    // increasing in t, 0 at t = 0, and approaches n as t → ∞.
    let occupancy = |t: f64| -> f64 { probs.iter().map(|&p| 1.0 - (-p * t).exp()).sum() };
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    while occupancy(hi) < capacity as f64 {
        hi *= 2.0;
        assert!(hi < 1e18, "bisection bracket blew up");
    }
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if occupancy(mid) < capacity as f64 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let t_c = 0.5 * (lo + hi);
    let hit_rate = probs.iter().map(|&p| p * (1.0 - (-p * t_c).exp())).sum();
    CheApproximation {
        characteristic_time: t_c,
        hit_rate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icn_cache::policy::CachePolicy;
    use icn_cache::CompactLru;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn simulate_lru_hit_rate(zipf: &Zipf, capacity: usize, requests: usize, seed: u64) -> f64 {
        let mut cache = CompactLru::new(capacity);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut hits = 0usize;
        // Warm up on the first half, measure on the second.
        for i in 0..2 * requests {
            let k = zipf.sample(&mut rng) as u64;
            if cache.contains(k) {
                cache.touch(k);
                if i >= requests {
                    hits += 1;
                }
            } else {
                cache.insert(k);
            }
        }
        hits as f64 / requests as f64
    }

    #[test]
    fn matches_simulation_within_two_points() {
        for &(n, c, alpha) in &[
            (5_000usize, 250usize, 0.8),
            (5_000, 250, 1.1),
            (2_000, 400, 1.0),
        ] {
            let zipf = Zipf::new(n, alpha);
            let che = lru_hit_rate(&zipf, c);
            let sim = simulate_lru_hit_rate(&zipf, c, 300_000, 17);
            assert!(
                (che.hit_rate - sim).abs() < 0.02,
                "n={n} c={c} a={alpha}: che {:.4} vs sim {sim:.4}",
                che.hit_rate
            );
        }
    }

    #[test]
    fn hit_rate_monotone_in_capacity() {
        let zipf = Zipf::new(1_000, 1.0);
        let mut last = -1.0;
        for c in [1usize, 10, 50, 100, 500, 999] {
            let h = lru_hit_rate(&zipf, c).hit_rate;
            assert!(h > last, "capacity {c}: {h} after {last}");
            last = h;
        }
        assert!(last > 0.99, "caching everything-but-one hits nearly always");
    }

    #[test]
    fn zero_capacity_never_hits() {
        let zipf = Zipf::new(100, 1.0);
        assert_eq!(lru_hit_rate(&zipf, 0).hit_rate, 0.0);
    }

    #[test]
    #[should_panic(expected = "smaller than the universe")]
    fn oversized_cache_rejected() {
        let zipf = Zipf::new(10, 1.0);
        lru_hit_rate(&zipf, 10);
    }

    #[test]
    fn higher_alpha_higher_hit_rate() {
        let c = 100;
        let lo = lru_hit_rate(&Zipf::new(5_000, 0.6), c).hit_rate;
        let hi = lru_hit_rate(&Zipf::new(5_000, 1.2), c).hit_rate;
        assert!(hi > lo + 0.1, "alpha 1.2 ({hi:.3}) vs 0.6 ({lo:.3})");
    }
}
