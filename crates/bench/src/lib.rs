//! Shared harness for the figure/table regeneration binaries.
//!
//! Every table and figure in the paper's evaluation has a binary in
//! `src/bin/` (`fig1`, `table2`, `fig2`, `fig6`, `fig7`, `table3`,
//! `fig8a`–`fig8c`, `table4`, `fig9`, `fig10`, `ablations`). Each prints
//! the measured rows next to the paper's reference values where the paper
//! states them. Criterion micro-benchmarks for the hot paths live in
//! `benches/`.
//!
//! Scale: the paper's runs use the full Asia trace (1.8M requests). The
//! binaries default to `SCALE=0.25` of that (set the `SCALE` env var to
//! `1.0` to match the paper's volume; results are stable in scale — see
//! EXPERIMENTS.md).

#![warn(missing_docs)]

use icn_core::config::ExperimentConfig;
use icn_core::design::DesignKind;
use icn_core::metrics::Improvement;
use icn_core::sweep::Scenario;
use icn_topology::{pop, AccessTree, PopGraph};
use icn_workload::origin::OriginPolicy;
use icn_workload::trace::{Region, TraceConfig};

pub mod telemetry;

pub use telemetry::Telemetry;

/// The experiment scale factor (fraction of the paper's trace volume).
pub fn scale() -> f64 {
    std::env::var("SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25)
}

/// The §4 baseline workload: Asia-region synthetic trace at [`scale`].
pub fn asia_trace(scale: f64) -> TraceConfig {
    Region::Asia.config(scale)
}

/// The paper's eight topologies (Figures 6/7 order).
pub fn paper_topologies() -> Vec<PopGraph> {
    pop::paper_topologies()
}

/// The §4 baseline access tree (binary, depth 5 — 32 leaves per PoP).
pub fn baseline_tree() -> AccessTree {
    AccessTree::baseline()
}

/// Builds the §4 baseline scenario for one topology.
pub fn baseline_scenario(core: PopGraph) -> Scenario {
    Scenario::build(
        core,
        baseline_tree(),
        asia_trace(scale()),
        OriginPolicy::PopulationProportional,
    )
}

/// Runs one design under the baseline config and returns its improvements.
pub fn improvements(s: &Scenario, design: DesignKind) -> Improvement {
    s.improvement(ExperimentConfig::baseline(design))
}

/// Formats a percentage cell.
pub fn pct(x: f64) -> String {
    format!("{x:6.2}")
}

/// Prints a rule line of the given width.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Prints the standard experiment banner.
pub fn banner(id: &str, what: &str) {
    rule(78);
    println!("{id}: {what}");
    println!(
        "(scale = {} of the paper's 1.8M-request Asia trace; SCALE env overrides)",
        scale()
    );
    rule(78);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_default() {
        // Unless the environment overrides, the default is 0.25.
        if std::env::var("SCALE").is_err() {
            assert_eq!(scale(), 0.25);
        }
    }

    #[test]
    fn asia_trace_parameters() {
        let cfg = asia_trace(0.1);
        assert_eq!(cfg.requests, 180_000);
        assert_eq!(cfg.alpha, 1.04);
        assert!(cfg.locality.is_some());
    }

    #[test]
    fn eight_paper_topologies() {
        let topos = paper_topologies();
        assert_eq!(topos.len(), 8);
        assert_eq!(topos[0].name, "Abilene");
        assert_eq!(topos[7].name, "ATT");
    }
}
