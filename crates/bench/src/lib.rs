//! Shared harness for the figure/table regeneration binaries.
//!
//! Every table and figure in the paper's evaluation has a binary in
//! `src/bin/` (`fig1`, `table2`, `fig2`, `fig6`, `fig7`, `table3`,
//! `fig8a`–`fig8c`, `table4`, `fig9`, `fig10`, `ablations`). Each prints
//! the measured rows next to the paper's reference values where the paper
//! states them. Criterion micro-benchmarks for the hot paths live in
//! `benches/`.
//!
//! Scale: the paper's runs use the full Asia trace (1.8M requests). The
//! binaries default to `SCALE=0.25` of that (set the `SCALE` env var to
//! `1.0` to match the paper's volume; results are stable in scale — see
//! EXPERIMENTS.md).

#![warn(missing_docs)]

use icn_core::config::ExperimentConfig;
use icn_core::design::DesignKind;
use icn_core::metrics::Improvement;
use icn_core::sweep::Scenario;
use icn_topology::{pop, AccessTree, PopGraph};
use icn_workload::origin::OriginPolicy;
use icn_workload::trace::{Region, TraceConfig};

pub mod telemetry;

pub use telemetry::Telemetry;

/// The experiment scale factor (fraction of the paper's trace volume).
///
/// A malformed, zero, or negative `SCALE` aborts with a clear error
/// instead of silently falling back to the default — a typo like
/// `SCALE=1,0` used to mislabel every printed figure as a 0.25 run.
pub fn scale() -> f64 {
    match std::env::var("SCALE") {
        Err(std::env::VarError::NotPresent) => 0.25,
        Err(e) => die(&format!("invalid SCALE value: {e}")),
        Ok(s) => parse_scale(&s).unwrap_or_else(|e| die(&e)),
    }
}

/// Validates a `SCALE` value: a finite decimal fraction > 0.
pub fn parse_scale(s: &str) -> Result<f64, String> {
    let v: f64 = s.trim().parse().map_err(|_| {
        format!(
            "invalid SCALE value {s:?}: expected a decimal fraction of the \
             paper's trace volume, e.g. SCALE=0.25"
        )
    })?;
    if !v.is_finite() || v <= 0.0 {
        return Err(format!(
            "invalid SCALE value {s:?}: must be finite and > 0 (e.g. SCALE=0.25)"
        ));
    }
    Ok(v)
}

/// Worker-thread count for the parallel sweep engine: the `JOBS` env var,
/// defaulting to [`std::thread::available_parallelism`]. `JOBS=1` restores
/// the fully sequential path; any value produces identical output (see
/// EXPERIMENTS.md, "Parallelism"). One caveat: `--trace` forces the
/// sequential path regardless of `JOBS` (the per-request JSONL stream
/// must stay in request order) — [`Telemetry`](crate::Telemetry) warns on
/// stderr when it ignores a `JOBS>1` setting for that reason.
pub fn jobs() -> usize {
    match std::env::var("JOBS") {
        Err(std::env::VarError::NotPresent) => std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
        Err(e) => die(&format!("invalid JOBS value: {e}")),
        Ok(s) => parse_jobs(&s).unwrap_or_else(|e| die(&e)),
    }
}

/// Validates a `JOBS` value: a positive integer.
pub fn parse_jobs(s: &str) -> Result<usize, String> {
    match s.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(format!(
            "invalid JOBS value {s:?}: expected a positive worker count \
             (JOBS=1 disables parallelism)"
        )),
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

/// Deterministic parallel build: computes `f(0..n)` over [`jobs`] scoped
/// worker threads (work-stealing index) and returns the results in index
/// order. Used to parallelize scenario construction — trace synthesis is
/// seeded, so the built scenarios are identical at any worker count.
pub fn par_build<R: Send + Sync>(n: usize, jobs: usize, f: impl Fn(usize) -> R + Sync) -> Vec<R> {
    if jobs <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let slots: Vec<std::sync::OnceLock<R>> = (0..n).map(|_| std::sync::OnceLock::new()).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(n) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let _ = slots[i].set(f(i));
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("par_build worker filled every slot"))
        .collect()
}

/// The §4 baseline workload: Asia-region synthetic trace at [`scale`].
pub fn asia_trace(scale: f64) -> TraceConfig {
    Region::Asia.config(scale)
}

/// The paper's eight topologies (Figures 6/7 order).
pub fn paper_topologies() -> Vec<PopGraph> {
    pop::paper_topologies()
}

/// The §4 baseline access tree (binary, depth 5 — 32 leaves per PoP).
pub fn baseline_tree() -> AccessTree {
    AccessTree::baseline()
}

/// Builds the §4 baseline scenario for one topology.
pub fn baseline_scenario(core: PopGraph) -> Scenario {
    Scenario::build(
        core,
        baseline_tree(),
        asia_trace(scale()),
        OriginPolicy::PopulationProportional,
    )
}

/// Runs one design under the baseline config and returns its improvements.
pub fn improvements(s: &Scenario, design: DesignKind) -> Improvement {
    s.improvement(ExperimentConfig::baseline(design))
}

/// Formats a percentage cell.
pub fn pct(x: f64) -> String {
    format!("{x:6.2}")
}

/// Prints a rule line of the given width.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Prints the standard experiment banner.
pub fn banner(id: &str, what: &str) {
    rule(78);
    println!("{id}: {what}");
    println!(
        "(scale = {} of the paper's 1.8M-request Asia trace; SCALE env overrides)",
        scale()
    );
    rule(78);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_default() {
        // Unless the environment overrides, the default is 0.25.
        if std::env::var("SCALE").is_err() {
            assert_eq!(scale(), 0.25);
        }
    }

    #[test]
    fn scale_values_are_validated_not_silently_defaulted() {
        // Regression: these all used to fall back to 0.25 without a word,
        // mislabelling every printed figure.
        for bad in ["1,0", "0", "-1", "0.0", "-0.25", "nan", "inf", "", "fast"] {
            assert!(parse_scale(bad).is_err(), "SCALE={bad:?} must be rejected");
        }
        assert_eq!(parse_scale("0.25"), Ok(0.25));
        assert_eq!(parse_scale(" 1.0 "), Ok(1.0));
        assert_eq!(parse_scale("2"), Ok(2.0));
    }

    #[test]
    fn jobs_values_are_validated() {
        for bad in ["0", "-2", "four", "1.5", ""] {
            assert!(parse_jobs(bad).is_err(), "JOBS={bad:?} must be rejected");
        }
        assert_eq!(parse_jobs("1"), Ok(1));
        assert_eq!(parse_jobs(" 8 "), Ok(8));
    }

    #[test]
    fn par_build_preserves_index_order_at_any_worker_count() {
        let expect: Vec<usize> = (0..37).map(|i| i * i).collect();
        for jobs in [1, 2, 4, 16] {
            assert_eq!(par_build(37, jobs, |i| i * i), expect, "jobs={jobs}");
        }
        assert!(par_build(0, 4, |i| i).is_empty());
    }

    #[test]
    fn asia_trace_parameters() {
        let cfg = asia_trace(0.1);
        assert_eq!(cfg.requests, 180_000);
        assert_eq!(cfg.alpha, 1.04);
        assert!(cfg.locality.is_some());
    }

    #[test]
    fn eight_paper_topologies() {
        let topos = paper_topologies();
        assert_eq!(topos.len(), 8);
        assert_eq!(topos[0].name, "Abilene");
        assert_eq!(topos[7].name, "ATT");
    }
}
