//! Table 2: request counts and best-fit Zipf parameters per CDN region.

use icn_workload::fit::fit_zipf;
use icn_workload::trace::{Region, Trace};

fn main() {
    let telemetry = icn_bench::Telemetry::from_env("table2");
    icn_bench::banner("Table 2", "Zipf fits for the three CDN vantage points");
    let populations = icn_topology::pop::abilene().populations.clone();
    let scale = icn_bench::scale();

    println!(
        "{:<10} {:>12} {:>14} | {:>12} {:>10}",
        "Location", "Requests", "Fitted alpha", "Paper reqs", "Paper a"
    );
    icn_bench::rule(66);
    for region in Region::all() {
        let cfg = region.config(scale);
        let trace = Trace::synthesize(cfg, &populations, 32);
        telemetry
            .registry()
            .counter("bench.traces_synthesized")
            .inc();
        telemetry
            .registry()
            .counter("bench.requests_synthesized")
            .add(trace.len() as u64);
        let fit = fit_zipf(&trace.object_counts()).expect("non-trivial trace");
        println!(
            "{:<10} {:>12} {:>14.3} | {:>12} {:>10.2}",
            region.name(),
            trace.len(),
            fit.alpha_mle,
            format_requests(region.paper_requests()),
            region.paper_alpha(),
        );
    }
    println!(
        "\nEach synthetic trace is generated at the paper's fitted exponent and\n\
         re-fit blindly; agreement validates the generator + estimator loop."
    );
    telemetry.finish();
}

fn format_requests(n: usize) -> String {
    format!("{:.1}M", n as f64 / 1e6)
}
