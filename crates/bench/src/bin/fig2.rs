//! Figure 2: utility of cache levels on a 6-level binary tree under the
//! optimal static placement, for α ∈ {0.7, 1.1, 1.5}.
//!
//! Level 6 is the origin. The headline is the §2.2 worked example: at
//! α = 0.7 removing every interior cache level costs only ~25% in expected
//! hops.

use icn_analysis::tree_opt::{interior_cache_benefit, optimal_levels};
use icn_workload::zipf::Zipf;

fn main() {
    let telemetry = icn_bench::Telemetry::from_env("fig2");
    icn_bench::banner(
        "Figure 2",
        "fraction of requests served per tree level (optimal static placement)",
    );
    const LEVELS: u32 = 6;
    const OBJECTS: usize = 100_000;
    const CACHE_PER_NODE: usize = 5_000; // 5% of the universe, the F baseline

    println!(
        "binary tree, {LEVELS} levels (level {LEVELS} = origin), {OBJECTS} objects, \
         {CACHE_PER_NODE} objects per cache\n"
    );
    println!(
        "{:<8} {}",
        "alpha",
        (1..=LEVELS)
            .map(|l| format!("  lvl{l}"))
            .collect::<String>()
            + "   E[hops]  edge-only  interior gain"
    );
    icn_bench::rule(78);
    for alpha in [0.7, 1.1, 1.5] {
        telemetry.registry().counter("bench.alpha_points").inc();
        let zipf = Zipf::new(OBJECTS, alpha);
        let p = optimal_levels(LEVELS, CACHE_PER_NODE, &zipf);
        let cells: String = p.served.iter().map(|f| format!("{f:6.2}")).collect();
        println!(
            "{alpha:<8}{cells}   {:7.2}  {:9.2}  {:12.1}%",
            p.expected_hops,
            p.edge_only_expected_hops,
            interior_cache_benefit(&p) * 100.0
        );
    }
    println!(
        "\nPaper reference (α = 0.7): expected hops ≈ 3 with all levels vs 4 with\n\
         edge-only caching — interior levels buy only ~25%. Levels 2–5 individually\n\
         serve small fractions; the edge and the origin dominate."
    );
    telemetry.finish();
}
