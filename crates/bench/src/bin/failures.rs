//! Robustness under failure: sweeps a uniform fault rate (node crashes,
//! link failures, origin degradation — see [`icn_core::fault`]) across the
//! five Figure-6 designs and the paper's eight topologies, and reports per
//! design how much availability and latency degrade relative to the same
//! design's fault-free run.
//!
//! Every faulted cell runs through the same parallel batch path as the
//! figure binaries; the schedules are pure functions of their seeds, so
//! output is byte-identical at any `JOBS` value (checked by
//! `scripts/check.sh`).

use icn_core::design::DesignKind;
use icn_core::fault::FaultConfig;
use icn_core::metrics::RunMetrics;

/// Uniform per-window fault rates swept by this binary.
const RATES: [f64; 3] = [0.01, 0.05, 0.10];

/// Seed for cell `(topology t, design d, rate r)`: fixed arithmetic on the
/// indices — never wall clock — so reruns are bit-identical.
fn cell_seed(t: usize, d: usize, r: usize) -> u64 {
    0xfa17_0000 + (t * 1_000 + d * 10 + r) as u64
}

fn main() {
    let telemetry = icn_bench::Telemetry::from_env("failures");
    icn_bench::banner(
        "Robustness under failure",
        "availability and latency degradation vs the fault-free run, per design",
    );
    let designs = DesignKind::figure6_designs();
    let topos = icn_bench::paper_topologies();
    let jobs = icn_bench::jobs();
    // Per (topology, design): one fault-free run plus one per rate.
    let per_pair = 1 + RATES.len();
    eprintln!(
        "... building {} scenarios, running {} cells (JOBS={jobs})",
        topos.len(),
        topos.len() * designs.len() * per_pair
    );
    let scenarios = icn_bench::par_build(topos.len(), jobs, |i| {
        icn_bench::baseline_scenario(topos[i].clone())
    });
    let cells: Vec<icn_core::sweep::SweepCell<'_>> = scenarios
        .iter()
        .enumerate()
        .flat_map(|(t, s)| {
            designs.iter().enumerate().flat_map(move |(d, &design)| {
                let base = icn_core::config::ExperimentConfig::baseline(design);
                std::iter::once(icn_core::sweep::SweepCell {
                    scenario: s,
                    cfg: base.clone(),
                })
                .chain(RATES.iter().enumerate().map(move |(r, &rate)| {
                    let mut cfg = base.clone();
                    cfg.fault = Some(FaultConfig::uniform(cell_seed(t, d, r), rate));
                    icn_core::sweep::SweepCell { scenario: s, cfg }
                }))
            })
        })
        .collect();
    let results = telemetry.improvement_batch(&cells);

    // runs[t][d] = [fault-free, rate0, rate1, ...]
    let runs: Vec<Vec<&[(icn_core::metrics::Improvement, RunMetrics)]>> = results
        .chunks(per_pair)
        .collect::<Vec<_>>()
        .chunks(designs.len())
        .map(|topo_chunk| topo_chunk.to_vec())
        .collect();

    for (r, &rate) in RATES.iter().enumerate() {
        println!("\n=== fault rate {rate} per window ===");
        for (metric, measure) in [
            ("availability (%)", 0usize),
            ("latency degradation vs fault-free (%)", 1),
        ] {
            println!("\n{metric}");
            print!("{:<10}", "Topology");
            for d in designs {
                print!("{:>12}", d.name());
            }
            println!();
            icn_bench::rule(70);
            let mut sums = vec![0.0f64; designs.len()];
            for (t, topo) in topos.iter().enumerate() {
                print!("{:<10}", topo.name);
                for (d, _) in designs.iter().enumerate() {
                    let pair = runs[t][d];
                    let base = &pair[0].1;
                    let faulted = &pair[1 + r].1;
                    let v = match measure {
                        0 => faulted.availability_pct(),
                        _ => {
                            let b = base.avg_latency();
                            if b <= 0.0 {
                                0.0
                            } else {
                                (faulted.avg_latency() - b) / b * 100.0
                            }
                        }
                    };
                    sums[d] += v;
                    print!("{v:>12.2}");
                }
                println!();
            }
            icn_bench::rule(70);
            print!("{:<10}", "mean");
            for s in &sums {
                print!("{:>12.2}", s / topos.len() as f64);
            }
            println!();
        }
    }

    // Tail latency while faults are active, at the harshest swept rate.
    let worst = RATES.len() - 1;
    println!(
        "\np99 latency of requests served during fault-active windows (rate {}):",
        RATES[worst]
    );
    print!("{:<10}", "Topology");
    for d in designs {
        print!("{:>12}", d.name());
    }
    println!();
    icn_bench::rule(70);
    for (t, topo) in topos.iter().enumerate() {
        print!("{:<10}", topo.name);
        for (d, _) in designs.iter().enumerate() {
            let faulted = &runs[t][d][1 + worst].1;
            print!("{:>12.2}", faulted.fault_latency_quantile(0.99));
        }
        println!();
    }

    println!(
        "\nReading: caching masks failures it can serve around — EDGE keeps\n\
         availability high when the origin path is cut but the object is cached\n\
         locally; ICN-NR additionally detours to farther live replicas, so its\n\
         availability degrades slowest as the fault rate rises."
    );
    telemetry.finish();
}
