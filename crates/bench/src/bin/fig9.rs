//! Figure 9: constructing the best case for ICN-NR by progressively setting
//! each parameter to its most favorable value (on AT&T):
//!
//! Baseline → Alpha* (α = 0.1) → Skew* (skew = 1) → Budget-Dist.* (uniform
//! budgeting) → Node-Budget* (F = 2%). The paper's end point: even the best
//! case gives ICN-NR at most ~17% over EDGE.

use icn_cache::budget::BudgetPolicy;
use icn_core::config::ExperimentConfig;
use icn_core::design::DesignKind;
use icn_core::sweep::Scenario;
use icn_workload::origin::OriginPolicy;
use icn_workload::trace::TraceConfig;

/// The progressive configurations; each step keeps all previous changes.
pub fn steps() -> Vec<(&'static str, TraceConfig, ExperimentConfig)> {
    let base_trace = icn_bench::asia_trace(icn_bench::scale());
    let base_cfg = ExperimentConfig::baseline(DesignKind::Edge);

    let mut alpha_trace = base_trace.clone();
    alpha_trace.alpha = 0.1;
    let mut skew_trace = alpha_trace.clone();
    skew_trace.skew = 1.0;
    let mut uniform_cfg = base_cfg.clone();
    uniform_cfg.budget_policy = BudgetPolicy::Uniform;
    let mut budget_cfg = uniform_cfg.clone();
    budget_cfg.f_fraction = 0.02;

    vec![
        ("Baseline", base_trace, base_cfg),
        ("Alpha*", alpha_trace, uniform_noop()),
        ("Skew*", skew_trace.clone(), uniform_noop()),
        ("Budget-Dist.*", skew_trace.clone(), uniform_cfg),
        ("Node-Budget*", skew_trace, budget_cfg),
    ]
}

fn uniform_noop() -> ExperimentConfig {
    ExperimentConfig::baseline(DesignKind::Edge)
}

fn main() {
    let telemetry = icn_bench::Telemetry::from_env("fig9");
    icn_bench::banner(
        "Figure 9",
        "progressive best-case construction for ICN-NR (AT&T)",
    );
    println!(
        "{:<16} {:>10} {:>12} {:>14}",
        "Step", "Latency", "Congestion", "Origin-Load"
    );
    icn_bench::rule(56);
    // Fix the Alpha* step to also apply to later steps' configs (the
    // construction is cumulative in the trace; configs above already are).
    let steps = steps();
    let jobs = icn_bench::jobs();
    eprintln!("... building {} scenarios (JOBS={jobs})", steps.len());
    let scenarios = icn_bench::par_build(steps.len(), jobs, |i| {
        Scenario::build(
            icn_topology::pop::att(),
            icn_bench::baseline_tree(),
            steps[i].1.clone(),
            OriginPolicy::PopulationProportional,
        )
    });
    let pairs: Vec<(&Scenario, ExperimentConfig)> = scenarios
        .iter()
        .zip(&steps)
        .map(|(s, (_, _, template))| (s, template.clone()))
        .collect();
    let gaps = telemetry.nr_vs_edge_gap_batch(&pairs);
    for ((name, _, _), gap) in steps.iter().zip(gaps) {
        println!(
            "{name:<16} {:>10.2} {:>12.2} {:>14.2}",
            gap.latency_pct, gap.congestion_pct, gap.origin_pct
        );
    }
    println!(
        "\nPaper reference: the fully stacked best case gives ICN-NR at most ~17%\n\
         over EDGE across all three metrics."
    );
    telemetry.finish();
}
