//! Figure 1: request popularity is Zipfian across three CDN regions.
//!
//! Prints log-log rank-frequency series for synthesized US / Europe / Asia
//! traces (substituting the proprietary CDN logs; see DESIGN.md) plus the
//! fitted exponent for each — the "almost linear on a log-log plot" check.

use icn_workload::fit::{fit_zipf, rank_frequency};
use icn_workload::trace::{Region, Trace};

fn main() {
    let telemetry = icn_bench::Telemetry::from_env("fig1");
    icn_bench::banner("Figure 1", "request popularity distribution across regions");
    // Any population vector works for the popularity marginal; use the
    // Abilene metros so the trace generator has realistic PoP weights.
    let populations = icn_topology::pop::abilene().populations.clone();
    let scale = icn_bench::scale();

    for region in Region::all() {
        let cfg = region.config(scale);
        let trace = Trace::synthesize(cfg, &populations, 32);
        telemetry
            .registry()
            .counter("bench.traces_synthesized")
            .inc();
        telemetry
            .registry()
            .counter("bench.requests_synthesized")
            .add(trace.len() as u64);
        let counts = trace.object_counts();
        let fit = fit_zipf(&counts).expect("non-trivial trace");
        println!(
            "\n--- {} ({} requests, {} objects requested at least once)",
            region.name(),
            trace.len(),
            fit.support
        );
        println!(
            "fitted alpha (MLE) = {:.3}   log-log R^2 = {:.3}   [paper fit: {:.2}]",
            fit.alpha_mle,
            fit.r_squared,
            region.paper_alpha()
        );
        println!("rank      frequency   (geometrically thinned for plotting)");
        for (rank, freq) in rank_frequency(&counts, 20) {
            println!("{rank:>8}  {freq:>10}");
        }
    }
    println!(
        "\nTakeaway (paper §2.2): every region is well-approximated by a Zipf\n\
         distribution — each series is near-linear on a log-log plot."
    );
    telemetry.finish();
}
