//! Non-stationary workloads × admission/expiry policies: does the paper's
//! headline — "incremental EDGE deployment captures most of ICN's gain" —
//! survive when the request stream stops being a stationary IRM?
//!
//! Sweeps four workload shapes (static IRM, diurnal popularity cycles,
//! flash crowds on cold objects, content churn — see
//! [`icn_workload::dynamics`]) against four cache policies (LRU,
//! probabilistic insertion, TTL leases, TinyLFU admission) for the two
//! designs that define the headline gap, ICN-NR and EDGE. Every cell runs
//! through the same parallel batch path as the figure binaries; dynamics
//! are seeded through the trace config, so output is byte-identical at
//! any `JOBS` value (checked by `scripts/check.sh` via `--smoke`).
//!
//! Usage: `dynamics [--smoke]`
//!
//! `--smoke` shrinks the sweep (two topologies, 2% trace scale) so CI can
//! exercise the full grid — dynamics synthesis, the TTL expiry queue,
//! TinyLFU admission — in seconds.

use icn_cache::PolicyKind;
use icn_core::config::ExperimentConfig;
use icn_core::design::DesignKind;
use icn_core::metrics::Improvement;
use icn_core::sweep::{Scenario, SweepCell};
use icn_workload::dynamics::DynamicsConfig;
use icn_workload::origin::OriginPolicy;
use icn_workload::trace::TraceConfig;

/// The two designs whose latency-improvement difference is the paper's
/// headline number (§5).
const DESIGNS: [DesignKind; 2] = [DesignKind::IcnNr, DesignKind::Edge];

/// Workload shapes swept, as `(label, preset)` — `None` is the paper's
/// stationary IRM baseline.
fn workloads(requests: usize) -> [(&'static str, Option<DynamicsConfig>); 4] {
    [
        ("static", None),
        ("diurnal", Some(DynamicsConfig::diurnal(requests))),
        ("flash", Some(DynamicsConfig::flash(requests))),
        ("churn", Some(DynamicsConfig::churn(requests))),
    ]
}

/// Cache policies swept, as `(label, kind)`. The TTL lease is an eighth
/// of the trace in logical time — long enough to hold the working set,
/// short enough to shed a finished flash crowd before the run ends.
fn policies(requests: usize) -> [(&'static str, PolicyKind); 4] {
    let ttl = (requests as u64 / 8).max(1) as u32;
    [
        ("LRU", PolicyKind::Lru),
        ("Prob50", PolicyKind::Prob { admit_pct: 50 }),
        ("TTL", PolicyKind::Ttl { ttl }),
        ("TinyLFU", PolicyKind::TinyLfu),
    ]
}

fn main() {
    // Telemetry flags (--telemetry/--trace/--flight/--sample) are parsed
    // by `Telemetry::from_env`; this binary only adds `--smoke`.
    let smoke = std::env::args().skip(1).any(|a| a == "--smoke");
    let telemetry = icn_bench::Telemetry::from_env("dynamics");
    let scale = if smoke { 0.02 } else { icn_bench::scale() };
    let topos = {
        let mut t = icn_bench::paper_topologies();
        if smoke {
            t.truncate(2);
        }
        t
    };
    let jobs = icn_bench::jobs();

    let base_trace = icn_bench::asia_trace(scale);
    let requests = base_trace.requests;
    let loads = workloads(requests);
    let pols = policies(requests);
    icn_bench::rule(78);
    println!(
        "Workload dynamics: ICN-NR vs EDGE gap under non-stationary demand\n\
         ({} requests/trace, {} topologies, {} workloads x {} policies)",
        requests,
        topos.len(),
        loads.len(),
        pols.len(),
    );
    icn_bench::rule(78);

    // One scenario per (topology, workload): dynamics are part of the
    // trace, so each workload shape is its own synthesized stream.
    eprintln!(
        "... building {} scenarios, running {} cells (JOBS={jobs})",
        topos.len() * loads.len(),
        topos.len() * loads.len() * pols.len() * DESIGNS.len()
    );
    let scenarios: Vec<Scenario> = icn_bench::par_build(topos.len() * loads.len(), jobs, |i| {
        let (t, w) = (i / loads.len(), i % loads.len());
        let cfg = TraceConfig {
            dynamics: loads[w].1,
            ..base_trace.clone()
        };
        Scenario::build(
            topos[t].clone(),
            icn_bench::baseline_tree(),
            cfg,
            OriginPolicy::PopulationProportional,
        )
    });
    let cells: Vec<SweepCell<'_>> = scenarios
        .iter()
        .flat_map(|s| {
            pols.iter().flat_map(move |&(_, policy)| {
                DESIGNS.map(move |design| {
                    let mut cfg = ExperimentConfig::baseline(design);
                    cfg.policy = policy;
                    SweepCell { scenario: s, cfg }
                })
            })
        })
        .collect();
    let results = telemetry.improvement_batch(&cells);

    // results index: ((t * W + w) * P + p) * 2 + d.
    let gap_of = |t: usize, w: usize, p: usize| -> Improvement {
        let at =
            |d: usize| &results[((t * loads.len() + w) * pols.len() + p) * DESIGNS.len() + d].0;
        Improvement::gap(at(0), at(1))
    };

    for (w, (wname, _)) in loads.iter().enumerate() {
        println!("\n=== workload: {wname} ===");
        println!("latency-improvement gap, ICN-NR minus EDGE (percentage points)");
        print!("{:<10}", "Topology");
        for (pname, _) in &pols {
            print!("{pname:>10}");
        }
        println!();
        icn_bench::rule(50);
        for (t, topo) in topos.iter().enumerate() {
            print!("{:<10}", topo.name);
            for p in 0..pols.len() {
                print!("{:>10.2}", gap_of(t, w, p).latency_pct);
            }
            println!();
        }
    }

    println!("\nmean gap across topologies (percentage points)");
    print!("{:<10}", "Workload");
    for (pname, _) in &pols {
        print!("{pname:>10}");
    }
    println!();
    icn_bench::rule(50);
    for (w, (wname, _)) in loads.iter().enumerate() {
        print!("{wname:<10}");
        for p in 0..pols.len() {
            let mean = (0..topos.len())
                .map(|t| gap_of(t, w, p).latency_pct)
                .sum::<f64>()
                / topos.len() as f64;
            print!("{mean:>10.2}");
        }
        println!();
    }

    println!(
        "\nReading: a positive cell means pervasive in-network caching (ICN-NR)\n\
         beats edge-only caching by that many points of latency improvement.\n\
         Content churn widens the gap — rotated ranks cold-start every cache,\n\
         and interior nodes re-converge on the new heads faster — and TTL\n\
         leases widen it most: expiry hits an edge-only deployment hardest,\n\
         since every lapsed lease is a full trip to the origin rather than\n\
         to a surviving interior replica.\n\
         Admission filtering (TinyLFU) holds the gap near the LRU baseline.\n\
         In every cell the gap stays modest, so the paper's claim — the\n\
         incremental deployment keeps most of the gain — survives\n\
         non-stationary demand."
    );
    telemetry.finish();
}
