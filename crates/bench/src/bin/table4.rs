//! Table 4: effect of access-tree arity on the ICN-NR over EDGE gap.
//!
//! Arity ranges over {2, 4, 8, 64} with the leaves per tree fixed at 64
//! (so depth adjusts). With higher arity the leaf share of the total cache
//! budget approaches 1, implicitly "normalizing" EDGE — the gap shrinks.

use icn_core::config::ExperimentConfig;
use icn_core::design::DesignKind;
use icn_core::sweep::Scenario;
use icn_topology::AccessTree;
use icn_workload::origin::OriginPolicy;

/// Paper's Table 4: (arity, latency gain %, congestion gain %, origin %).
const PAPER: [(u32, f64, f64, f64); 4] = [
    (2, 10.29, 9.14, 6.27),
    (4, 9.12, 8.28, 5.35),
    (8, 7.95, 7.01, 4.66),
    (64, 1.76, 0.90, 0.34),
];

fn main() {
    let telemetry = icn_bench::Telemetry::from_env("table4");
    icn_bench::banner(
        "Table 4",
        "ICN-NR over EDGE vs access-tree arity (64 leaves/tree)",
    );
    println!(
        "{:>6} {:>8} {:>10} {:>8} | {:>8} {:>10} {:>8}",
        "arity", "Latency", "Congestion", "Origin", "p.Lat", "p.Cong", "p.Orig"
    );
    icn_bench::rule(70);
    let jobs = icn_bench::jobs();
    eprintln!("... building {} scenarios (JOBS={jobs})", PAPER.len());
    let scenarios = icn_bench::par_build(PAPER.len(), jobs, |i| {
        let tree = AccessTree::with_fixed_leaves(PAPER[i].0, 64);
        Scenario::build(
            icn_topology::pop::att(),
            tree,
            icn_bench::asia_trace(icn_bench::scale()),
            OriginPolicy::PopulationProportional,
        )
    });
    let pairs: Vec<(&Scenario, ExperimentConfig)> = scenarios
        .iter()
        .map(|s| (s, ExperimentConfig::baseline(DesignKind::Edge)))
        .collect();
    let gaps = telemetry.nr_vs_edge_gap_batch(&pairs);
    for ((arity, p_lat, p_cong, p_orig), gap) in PAPER.into_iter().zip(gaps) {
        println!(
            "{arity:>6} {:>8.2} {:>10.2} {:>8.2} | {p_lat:>8.2} {p_cong:>10.2} {p_orig:>8.2}",
            gap.latency_pct, gap.congestion_pct, gap.origin_pct
        );
    }
    println!(
        "\nPaper reference: the gap shrinks monotonically with arity; at arity 64\n\
         (a one-level tree) EDGE holds nearly the whole budget and the gap ~vanishes."
    );
    telemetry.finish();
}
