//! Figure 8(c): ICN-NR − EDGE gap vs spatial popularity skew, on AT&T.
//!
//! Expected shape: the gap grows with skew — an object unpopular at one
//! PoP may be popular nearby, so cross-tree replicas (which only ICN-NR
//! can exploit) become valuable.

use icn_core::config::ExperimentConfig;
use icn_core::design::DesignKind;
use icn_core::sweep::Scenario;
use icn_workload::origin::OriginPolicy;
use icn_workload::skew::SpatialModel;

fn main() {
    let telemetry = icn_bench::Telemetry::from_env("fig8c");
    icn_bench::banner(
        "Figure 8(c)",
        "ICN-NR gain over EDGE vs spatial skew (AT&T)",
    );
    println!(
        "{:>6} {:>14} {:>10} {:>12} {:>14}",
        "skew", "measured skew", "Delay", "Congestion", "Origin load"
    );
    icn_bench::rule(60);
    let skews = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0];
    let jobs = icn_bench::jobs();
    eprintln!("... building {} scenarios (JOBS={jobs})", skews.len());
    let scenarios = icn_bench::par_build(skews.len(), jobs, |i| {
        let mut trace_cfg = icn_bench::asia_trace(icn_bench::scale());
        trace_cfg.skew = skews[i];
        Scenario::build(
            icn_topology::pop::att(),
            icn_bench::baseline_tree(),
            trace_cfg,
            OriginPolicy::PopulationProportional,
        )
    });
    let pairs: Vec<(&Scenario, ExperimentConfig)> = scenarios
        .iter()
        .map(|s| (s, ExperimentConfig::baseline(DesignKind::Edge)))
        .collect();
    let gaps = telemetry.nr_vs_edge_gap_batch(&pairs);
    let trace_cfg = icn_bench::asia_trace(icn_bench::scale());
    for (&skew, gap) in skews.iter().zip(gaps) {
        // Report the paper's skew metric for this setting.
        let measured = SpatialModel::new(
            trace_cfg.objects,
            icn_topology::pop::att().len() as u32,
            skew,
            trace_cfg.seed ^ 0x5b5b_5b5b,
        )
        .measured_skew();
        println!(
            "{skew:>6.1} {measured:>14.3} {:>10.2} {:>12.2} {:>14.2}",
            gap.latency_pct, gap.congestion_pct, gap.origin_pct
        );
    }
    println!(
        "\nPaper reference: as spatial skew increases, ICN-NR increasingly\n\
         outperforms EDGE (up to ~15% at skew 1 in the paper's setting)."
    );
    telemetry.finish();
}
