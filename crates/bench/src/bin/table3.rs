//! Table 3: ICN-NR − EDGE latency-improvement gap, "trace" vs synthetic.
//!
//! The paper compares real CDN traces against best-fit-Zipf synthetic logs.
//! Our stand-in (DESIGN.md): the locality-calibrated trace plays the role
//! of the real trace, and a pure-IRM Zipf trace with the same fitted
//! exponent plays the synthetic. The paper's direction — synthetic (IRM)
//! shows a slightly *larger* gap than the trace — should reproduce.
//!
//! A second table reports the latency *distribution* (p50/p90/p99) and
//! link utilisation (mean and max transfers per link) of the ICN-NR run
//! on the locality trace — the aggregate improvement numbers hide both.

use icn_core::config::ExperimentConfig;
use icn_core::design::DesignKind;
use icn_core::metrics::{Improvement, RunMetrics};
use icn_core::sweep::{Scenario, SweepCell};
use icn_workload::origin::OriginPolicy;

/// Paper's Table 3 (query latency gap, %): (topology, trace, synthetic).
const PAPER: [(&str, f64, f64); 8] = [
    ("Abilene", 6.89, 7.81),
    ("Geant", 5.92, 6.96),
    ("Telstra", 7.44, 8.63),
    ("Sprint", 7.09, 8.76),
    ("Verio", 7.40, 8.94),
    ("Tiscali", 7.11, 8.05),
    ("Level3", 6.18, 7.32),
    ("ATT", 7.25, 8.04),
];

fn main() {
    let telemetry = icn_bench::Telemetry::from_env("table3");
    icn_bench::banner(
        "Table 3",
        "ICN-NR vs EDGE latency gap: trace vs best-fit synthetic",
    );
    println!(
        "{:<10} {:>8} {:>10} {:>6} | {:>8} {:>10} {:>6}",
        "", "ours", "", "", "paper", "", ""
    );
    println!(
        "{:<10} {:>8} {:>10} {:>6} | {:>8} {:>10} {:>6}",
        "Topology", "Trace", "Synthetic", "Diff", "Trace", "Synthetic", "Diff"
    );
    icn_bench::rule(72);
    // Two scenarios per topology (locality trace, best-fit synthetic) and
    // two cells per scenario (ICN-NR, EDGE): built and simulated through
    // the parallel sweep engine, printed in topology order.
    let topos = icn_bench::paper_topologies();
    let jobs = icn_bench::jobs();
    eprintln!(
        "... building {} scenarios, running {} cells (JOBS={jobs})",
        topos.len() * 2,
        topos.len() * 4
    );
    let scenarios = icn_bench::par_build(topos.len() * 2, jobs, |i| {
        let with_locality = i % 2 == 0;
        let mut cfg = icn_bench::asia_trace(icn_bench::scale());
        if !with_locality {
            cfg.locality = None;
        }
        Scenario::build(
            topos[i / 2].clone(),
            icn_bench::baseline_tree(),
            cfg,
            OriginPolicy::PopulationProportional,
        )
    });
    let cells: Vec<SweepCell<'_>> = scenarios
        .iter()
        .flat_map(|s| {
            [DesignKind::IcnNr, DesignKind::Edge].map(|d| SweepCell {
                scenario: s,
                cfg: ExperimentConfig::baseline(d),
            })
        })
        .collect();
    let results = telemetry.improvement_batch(&cells);
    let gaps: Vec<Improvement> = results
        .chunks(2)
        .map(|pair| Improvement::gap(&pair[0].0, &pair[1].0))
        .collect();
    let mut nr_runs: Vec<(String, RunMetrics)> = Vec::new();
    for (i, topo) in topos.iter().enumerate() {
        let name = topo.name.clone();
        let trace_gap = gaps[2 * i].latency_pct;
        let synth_gap = gaps[2 * i + 1].latency_pct;
        let nr_run = results[4 * i].1.clone();
        let (pname, pt, ps) = PAPER[i];
        assert_eq!(pname, name);
        println!(
            "{name:<10} {:>8.2} {:>10.2} {:>6.2} | {pt:>8.2} {ps:>10.2} {:>6.2}",
            trace_gap,
            synth_gap,
            synth_gap - trace_gap,
            ps - pt,
        );
        nr_runs.push((name, nr_run));
    }

    println!("\nICN-NR on the locality trace: latency distribution & link utilisation");
    println!(
        "{:<10} {:>8} {:>8} {:>8} {:>8} | {:>12} {:>12}",
        "Topology", "mean", "p50", "p90", "p99", "mean util", "max util"
    );
    icn_bench::rule(74);
    for (name, run) in &nr_runs {
        println!(
            "{name:<10} {:>8.2} {:>8.2} {:>8.2} {:>8.2} | {:>12.1} {:>12}",
            run.avg_latency(),
            run.latency_p50(),
            run.latency_p90(),
            run.latency_p99(),
            run.mean_link_utilisation(),
            run.max_congestion(),
        );
    }

    println!(
        "\nPaper reference: the synthetic (IRM) gap exceeds the trace gap by ≤ 1.67%,\n\
         validating Zipf-based synthesis. The same direction should hold above\n\
         (our 'trace' is the locality-calibrated generator; see DESIGN.md).\n\
         The p99/p50 spread shows what the mean improvement hides: tail requests\n\
         still pay near-origin latency under every design."
    );
    telemetry.finish();
}
