//! Figure 8(b): ICN-NR − EDGE gap vs per-cache budget fraction `F`
//! (log-spaced sweep), on AT&T.
//!
//! Expected shape: non-monotone — with tiny caches neither design works;
//! past ~10% the edge captures most requests and interior caches add
//! little; the gap peaks at a small intermediate F (paper: ~2%, max ~10%).

use icn_core::config::ExperimentConfig;
use icn_core::design::DesignKind;
use icn_core::sweep::Scenario;
use icn_workload::origin::OriginPolicy;

fn main() {
    let telemetry = icn_bench::Telemetry::from_env("fig8b");
    icn_bench::banner(
        "Figure 8(b)",
        "ICN-NR gain over EDGE vs cache budget F (AT&T)",
    );
    let s = Scenario::build(
        icn_topology::pop::att(),
        icn_bench::baseline_tree(),
        icn_bench::asia_trace(icn_bench::scale()),
        OriginPolicy::PopulationProportional,
    );
    println!(
        "{:>10} {:>10} {:>12} {:>14}",
        "F", "Delay", "Congestion", "Origin load"
    );
    icn_bench::rule(50);
    let fractions = [1e-5, 1e-4, 1e-3, 5e-3, 0.02, 0.05, 0.1, 0.3, 1.0];
    eprintln!(
        "... running {} cells (JOBS={})",
        fractions.len() * 2,
        icn_bench::jobs()
    );
    let pairs: Vec<_> = fractions
        .iter()
        .map(|&f| {
            let mut template = ExperimentConfig::baseline(DesignKind::Edge);
            template.f_fraction = f;
            (&s, template)
        })
        .collect();
    for (f, gap) in fractions.iter().zip(telemetry.nr_vs_edge_gap_batch(&pairs)) {
        println!(
            "{f:>10.5} {:>10.2} {:>12.2} {:>14.2}",
            gap.latency_pct, gap.congestion_pct, gap.origin_pct
        );
    }
    println!(
        "\nPaper reference: the gap is non-monotone in cache size, peaking near\n\
         F ≈ 2% (~10%) and collapsing once per-cache budgets exceed ~10% of the\n\
         object universe."
    );
    telemetry.finish();
}
