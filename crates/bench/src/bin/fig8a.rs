//! Figure 8(a): ICN-NR − EDGE gap vs Zipf α (three metrics), on the
//! largest topology (AT&T), baseline budgets.
//!
//! Expected shape: the gap shrinks as α grows — popular objects concentrate
//! at the edge, so pervasive caching + nearest-replica routing add less.

use icn_core::config::ExperimentConfig;
use icn_core::design::DesignKind;
use icn_core::sweep::Scenario;
use icn_workload::origin::OriginPolicy;

fn main() {
    let telemetry = icn_bench::Telemetry::from_env("fig8a");
    icn_bench::banner("Figure 8(a)", "ICN-NR gain over EDGE vs Zipf alpha (AT&T)");
    println!(
        "{:>6} {:>10} {:>12} {:>14}",
        "alpha", "Delay", "Congestion", "Origin load"
    );
    icn_bench::rule(46);
    let alphas = [0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.4, 1.6];
    let jobs = icn_bench::jobs();
    eprintln!("... building {} scenarios (JOBS={jobs})", alphas.len());
    let scenarios = icn_bench::par_build(alphas.len(), jobs, |i| {
        let mut trace_cfg = icn_bench::asia_trace(icn_bench::scale());
        trace_cfg.alpha = alphas[i];
        Scenario::build(
            icn_topology::pop::att(),
            icn_bench::baseline_tree(),
            trace_cfg,
            OriginPolicy::PopulationProportional,
        )
    });
    let pairs: Vec<(&Scenario, ExperimentConfig)> = scenarios
        .iter()
        .map(|s| (s, ExperimentConfig::baseline(DesignKind::Edge)))
        .collect();
    for (alpha, gap) in alphas.iter().zip(telemetry.nr_vs_edge_gap_batch(&pairs)) {
        println!(
            "{alpha:>6.1} {:>10.2} {:>12.2} {:>14.2}",
            gap.latency_pct, gap.congestion_pct, gap.origin_pct
        );
    }
    println!(
        "\nPaper reference: with increasing alpha the gap becomes less positive —\n\
         most requests are already served from edge caches."
    );
    telemetry.finish();
}
