//! §5.1 "Other parameters" ablations, each of which the paper reports as
//! having a small effect on the ICN-NR vs EDGE gap:
//!
//! 1. latency models favoring ICN-NR (arithmetic progression toward the
//!    core; core-multiplier d) — gap change < 2%;
//! 2. per-node request-serving capacity with overflow redirection — < 2%;
//! 3. heterogeneous object sizes (size-weighted congestion) — < 1%;
//! 4. (extension) replacement policy: LFU and FIFO vs LRU — the paper
//!    notes LFU "yielded qualitatively similar results".

use icn_core::capacity::ServingCapacity;
use icn_core::config::ExperimentConfig;
use icn_core::design::DesignKind;
use icn_core::latency::LatencyModel;
use icn_core::sweep::Scenario;
use icn_workload::origin::OriginPolicy;
use icn_workload::sizes::SizeModel;

fn att_scenario(sizes: SizeModel) -> Scenario {
    let mut trace_cfg = icn_bench::asia_trace(icn_bench::scale());
    trace_cfg.sizes = sizes;
    Scenario::build(
        icn_topology::pop::att(),
        icn_bench::baseline_tree(),
        trace_cfg,
        OriginPolicy::PopulationProportional,
    )
}

fn print_gap(label: &str, gap: icn_core::metrics::Improvement) {
    println!(
        "{label:<34} {:>10.2} {:>12.2} {:>14.2}",
        gap.latency_pct, gap.congestion_pct, gap.origin_pct
    );
}

fn main() {
    let telemetry = icn_bench::Telemetry::from_env("ablations");
    icn_bench::banner(
        "Ablations (§5.1)",
        "latency models, serving capacity, sizes, policies",
    );
    println!(
        "{:<34} {:>10} {:>12} {:>14}",
        "ICN-NR − EDGE gap under", "Latency", "Congestion", "Origin-Load"
    );
    icn_bench::rule(74);

    let s = att_scenario(SizeModel::Unit);
    let base_template = ExperimentConfig::baseline(DesignKind::Edge);
    print_gap(
        "unit hop cost (baseline)",
        telemetry.nr_vs_edge_gap(&s, &base_template),
    );

    // 1. Latency models chosen to magnify ICN-NR's advantage.
    let mut prog = base_template.clone();
    prog.latency = LatencyModel::Progression;
    print_gap(
        "arithmetic progression to core",
        telemetry.nr_vs_edge_gap(&s, &prog),
    );
    for d in [4, 16] {
        let mut core = base_template.clone();
        core.latency = LatencyModel::CoreMultiplier { d };
        print_gap(
            &format!("core links cost {d}x"),
            telemetry.nr_vs_edge_gap(&s, &core),
        );
    }

    // 2. Request-serving capacity with redirection.
    for per_node in [50u32, 200] {
        let mut cap = base_template.clone();
        cap.capacity = Some(ServingCapacity {
            per_node,
            window: 10_000,
        });
        print_gap(
            &format!("capacity {per_node}/10k-request window"),
            telemetry.nr_vs_edge_gap(&s, &cap),
        );
    }

    // 3. Heterogeneous object sizes: congestion counts bytes, not objects.
    eprintln!("... resynthesizing with Pareto sizes");
    let s_sizes = att_scenario(SizeModel::web_default());
    let mut sized = base_template.clone();
    sized.weight_by_size = true;
    print_gap(
        "bounded-Pareto sizes (byte-weighted)",
        telemetry.nr_vs_edge_gap(&s_sizes, &sized),
    );

    // 4. Insertion-policy ablation (extension): the ICN literature's
    //    leave-copy-down and probabilistic caching vs the paper's
    //    leave-copy-everywhere. These only affect the ICN side (EDGE has a
    //    single cache level), so the gap shifts slightly.
    for (label, ins) in [
        (
            "leave-copy-down insertion",
            icn_core::config::InsertionPolicy::LeaveCopyDown,
        ),
        (
            "probabilistic insertion p=0.3",
            icn_core::config::InsertionPolicy::Probabilistic { p: 0.3 },
        ),
    ] {
        let mut cfgi = base_template.clone();
        cfgi.insertion = ins;
        print_gap(label, telemetry.nr_vs_edge_gap(&s, &cfgi));
    }

    // 5. Replacement policy ablation (extension beyond the paper's text).
    for policy in [
        icn_cache::policy::PolicyKind::Lfu,
        icn_cache::policy::PolicyKind::Fifo,
    ] {
        let mut p = base_template.clone();
        p.policy = policy;
        print_gap(
            &format!("{policy:?} replacement"),
            telemetry.nr_vs_edge_gap(&s, &p),
        );
    }

    println!(
        "\nPaper reference: the latency-model and serving-capacity ablations move\n\
         the gap by < 2%, heterogeneous sizes by < 1%, and LFU is qualitatively\n\
         like LRU — none changes the conclusion."
    );
    telemetry.finish();
}
