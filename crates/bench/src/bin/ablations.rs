//! §5.1 "Other parameters" ablations, each of which the paper reports as
//! having a small effect on the ICN-NR vs EDGE gap:
//!
//! 1. latency models favoring ICN-NR (arithmetic progression toward the
//!    core; core-multiplier d) — gap change < 2%;
//! 2. per-node request-serving capacity with overflow redirection — < 2%;
//! 3. heterogeneous object sizes (size-weighted congestion) — < 1%;
//! 4. (extension) replacement policy: LFU and FIFO vs LRU — the paper
//!    notes LFU "yielded qualitatively similar results".

use icn_core::capacity::ServingCapacity;
use icn_core::config::ExperimentConfig;
use icn_core::design::DesignKind;
use icn_core::latency::LatencyModel;
use icn_core::sweep::Scenario;
use icn_workload::origin::OriginPolicy;
use icn_workload::sizes::SizeModel;

fn att_scenario(sizes: SizeModel) -> Scenario {
    let mut trace_cfg = icn_bench::asia_trace(icn_bench::scale());
    trace_cfg.sizes = sizes;
    Scenario::build(
        icn_topology::pop::att(),
        icn_bench::baseline_tree(),
        trace_cfg,
        OriginPolicy::PopulationProportional,
    )
}

fn print_gap(label: &str, gap: icn_core::metrics::Improvement) {
    println!(
        "{label:<34} {:>10.2} {:>12.2} {:>14.2}",
        gap.latency_pct, gap.congestion_pct, gap.origin_pct
    );
}

fn main() {
    let telemetry = icn_bench::Telemetry::from_env("ablations");
    icn_bench::banner(
        "Ablations (§5.1)",
        "latency models, serving capacity, sizes, policies",
    );
    println!(
        "{:<34} {:>10} {:>12} {:>14}",
        "ICN-NR − EDGE gap under", "Latency", "Congestion", "Origin-Load"
    );
    icn_bench::rule(74);

    // Both scenarios (unit sizes and Pareto sizes) are built up front so
    // that all eleven ablation rows go through one parallel gap batch.
    let jobs = icn_bench::jobs();
    eprintln!("... building 2 scenarios, running 22 cells (JOBS={jobs})");
    let scenarios = icn_bench::par_build(2, jobs, |i| {
        att_scenario(if i == 0 {
            SizeModel::Unit
        } else {
            SizeModel::web_default()
        })
    });
    let (s, s_sizes) = (&scenarios[0], &scenarios[1]);
    let base_template = ExperimentConfig::baseline(DesignKind::Edge);

    let mut rows: Vec<(String, &Scenario, ExperimentConfig)> = Vec::new();
    rows.push(("unit hop cost (baseline)".into(), s, base_template.clone()));

    // 1. Latency models chosen to magnify ICN-NR's advantage.
    let mut prog = base_template.clone();
    prog.latency = LatencyModel::Progression;
    rows.push(("arithmetic progression to core".into(), s, prog));
    for d in [4, 16] {
        let mut core = base_template.clone();
        core.latency = LatencyModel::CoreMultiplier { d };
        rows.push((format!("core links cost {d}x"), s, core));
    }

    // 2. Request-serving capacity with redirection.
    for per_node in [50u32, 200] {
        let mut cap = base_template.clone();
        cap.capacity = Some(ServingCapacity {
            per_node,
            window: 10_000,
        });
        rows.push((format!("capacity {per_node}/10k-request window"), s, cap));
    }

    // 3. Heterogeneous object sizes: congestion counts bytes, not objects.
    let mut sized = base_template.clone();
    sized.weight_by_size = true;
    rows.push((
        "bounded-Pareto sizes (byte-weighted)".into(),
        s_sizes,
        sized,
    ));

    // 4. Insertion-policy ablation (extension): the ICN literature's
    //    leave-copy-down and probabilistic caching vs the paper's
    //    leave-copy-everywhere. These only affect the ICN side (EDGE has a
    //    single cache level), so the gap shifts slightly.
    for (label, ins) in [
        (
            "leave-copy-down insertion",
            icn_core::config::InsertionPolicy::LeaveCopyDown,
        ),
        (
            "probabilistic insertion p=0.3",
            icn_core::config::InsertionPolicy::Probabilistic { p: 0.3 },
        ),
    ] {
        let mut cfgi = base_template.clone();
        cfgi.insertion = ins;
        rows.push((label.into(), s, cfgi));
    }

    // 5. Replacement policy ablation (extension beyond the paper's text).
    for policy in [
        icn_cache::policy::PolicyKind::Lfu,
        icn_cache::policy::PolicyKind::Fifo,
    ] {
        let mut p = base_template.clone();
        p.policy = policy;
        rows.push((format!("{policy:?} replacement"), s, p));
    }

    let pairs: Vec<(&Scenario, ExperimentConfig)> =
        rows.iter().map(|(_, sc, cfg)| (*sc, cfg.clone())).collect();
    let gaps = telemetry.nr_vs_edge_gap_batch(&pairs);
    for ((label, _, _), gap) in rows.iter().zip(gaps) {
        print_gap(label, gap);
    }

    println!(
        "\nPaper reference: the latency-model and serving-capacity ablations move\n\
         the gap by < 2%, heterogeneous sizes by < 1%, and LFU is qualitatively\n\
         like LRU — none changes the conclusion."
    );
    telemetry.finish();
}
