//! Validates a telemetry sidecar written with `--telemetry PATH`: parses
//! the JSON back into an [`icn_obs::Snapshot`], checks it survives a
//! re-serialization round trip, and prints the human-readable table.
//!
//! ```console
//! $ cargo run --release --bin fig6 -- --telemetry /tmp/t.json
//! $ cargo run --release --bin telemetry_check -- /tmp/t.json
//! ```
//!
//! Exits non-zero (with a message on stderr) when the file is missing,
//! unparseable, or empty of metrics — used by `scripts/check.sh`.

use icn_obs::Snapshot;

fn main() {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: telemetry_check <snapshot.json>");
        std::process::exit(2);
    };
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    });
    let snap = Snapshot::from_json(&text).unwrap_or_else(|e| {
        eprintln!("{path} is not a valid telemetry snapshot: {e}");
        std::process::exit(1);
    });
    let reparsed = Snapshot::from_json(&snap.to_json()).expect("re-serialized snapshot parses");
    assert_eq!(reparsed, snap, "snapshot JSON round trip is lossy");
    let metrics =
        snap.counters.len() + snap.gauges.len() + snap.histograms.len() + snap.timers.len();
    if metrics == 0 {
        eprintln!("{path} parses but contains no metrics");
        std::process::exit(1);
    }
    println!("{path}: valid snapshot, {metrics} metrics");
    print!("{}", snap.render_table());
}
