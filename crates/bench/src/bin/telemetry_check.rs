//! Validates the repo's observability outputs. Three modes:
//!
//! ```console
//! $ telemetry_check <snapshot.json>              # a --telemetry sidecar
//! $ telemetry_check --profile <BENCH_sim.json>   # the embedded profile section
//! $ telemetry_check --live-metrics               # scrape a live idICN rig
//! ```
//!
//! * **Sidecar mode** parses the JSON back into an [`icn_obs::Snapshot`],
//!   checks it survives a re-serialization round trip, and prints the
//!   human-readable table.
//! * **Profile mode** parses the `"profile"` section `perf` embeds in
//!   `BENCH_sim.json` back into an [`icn_obs::ProfileSnapshot`] and checks
//!   its internal invariants: per-phase `self ≤ total`, histogram bucket
//!   indices strictly ascending, bucket counts summing to the phase count.
//! * **Live mode** stands up the full idICN pipeline in-process (origin,
//!   resolver, reverse proxy, edge proxy), drives a request through it, and
//!   scrapes each component's `/metrics` endpoint twice — validating
//!   Prometheus text-format well-formedness (`# TYPE` lines, `component`
//!   labels, cumulative bucket ordering, `+Inf == _count`) and counter
//!   monotonicity across scrapes.
//!
//! Exits non-zero (with a message on stderr) on any violation — used by
//! `scripts/check.sh`.

use icn_obs::json::parse;
use icn_obs::{ProfileSnapshot, Snapshot};
use std::collections::BTreeMap;

fn fail(msg: &str) -> ! {
    eprintln!("telemetry_check: {msg}");
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--profile") => match args.get(1) {
            Some(path) => check_profile(path),
            None => usage(),
        },
        Some("--live-metrics") => check_live_metrics(),
        Some(path) if !path.starts_with("--") => check_sidecar(path),
        _ => usage(),
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: telemetry_check <snapshot.json>\n       telemetry_check --profile <BENCH_sim.json>\n       telemetry_check --live-metrics"
    );
    std::process::exit(2);
}

// ---------------------------------------------------------------- sidecar

fn check_sidecar(path: &str) {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    let snap = Snapshot::from_json(&text)
        .unwrap_or_else(|e| fail(&format!("{path} is not a valid telemetry snapshot: {e}")));
    let reparsed = Snapshot::from_json(&snap.to_json()).expect("re-serialized snapshot parses");
    assert_eq!(reparsed, snap, "snapshot JSON round trip is lossy");
    let metrics =
        snap.counters.len() + snap.gauges.len() + snap.histograms.len() + snap.timers.len();
    if metrics == 0 {
        fail(&format!("{path} parses but contains no metrics"));
    }
    println!("{path}: valid snapshot, {metrics} metrics");
    print!("{}", snap.render_table());
}

// ---------------------------------------------------------------- profile

fn check_hist(phase: &str, which: &str, s: &icn_obs::HistSummary, count: u64) {
    if s.count != count {
        fail(&format!(
            "phase {phase}: {which} histogram count {} != span count {count}",
            s.count
        ));
    }
    let bucket_total: u64 = s.buckets.iter().map(|&(_, c)| c).sum();
    if bucket_total != count {
        fail(&format!(
            "phase {phase}: {which} bucket counts sum to {bucket_total}, expected {count}"
        ));
    }
    let mut prev: Option<usize> = None;
    for &(idx, c) in &s.buckets {
        if c == 0 {
            fail(&format!("phase {phase}: {which} stores an empty bucket"));
        }
        if prev.is_some_and(|p| idx <= p) {
            fail(&format!(
                "phase {phase}: {which} bucket indices not strictly ascending at {idx}"
            ));
        }
        prev = Some(idx);
    }
    if count > 0 && s.min > s.max {
        fail(&format!(
            "phase {phase}: {which} min {} > max {}",
            s.min, s.max
        ));
    }
}

fn check_profile(path: &str) {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    let root = parse(&text).unwrap_or_else(|e| fail(&format!("{path}: bad JSON: {e}")));
    let profile_value = root
        .get("profile")
        .unwrap_or_else(|| fail(&format!("{path} has no \"profile\" section")));
    let profile = ProfileSnapshot::from_value(profile_value)
        .unwrap_or_else(|e| fail(&format!("{path}: invalid profile section: {e}")));

    // With the obs feature compiled out the simulator records no spans, so
    // an empty phase map is the *correct* output there.
    if cfg!(feature = "obs") {
        if profile.phases.is_empty() {
            fail(&format!(
                "{path}: profile has no phases (obs build expected spans)"
            ));
        }
        if !profile.phases.contains_key("sim.request") {
            fail(&format!(
                "{path}: profile is missing the sim.request root phase"
            ));
        }
    }
    for (name, p) in &profile.phases {
        // count == 0 is legal: a handle was registered but its code path
        // never ran on this workload (e.g. fault_schedule without faults).
        check_hist(name, "self", &p.self_ns, p.count);
        check_hist(name, "total", &p.total_ns, p.count);
        if p.self_ns.sum > p.total_ns.sum {
            fail(&format!(
                "phase {name}: self time {} exceeds total time {}",
                p.self_ns.sum, p.total_ns.sum
            ));
        }
    }
    // Round trip, like the sidecar check.
    let reparsed = ProfileSnapshot::from_json(&profile.to_json()).expect("round trip parses");
    assert_eq!(reparsed, profile, "profile JSON round trip is lossy");
    println!("{path}: valid profile, {} phases", profile.phases.len());
    print!("{}", profile.render_table());
}

// ------------------------------------------------------------ live metrics

/// One parsed exposition page.
struct Scrape {
    /// `# TYPE` declarations: metric family name → type.
    types: BTreeMap<String, String>,
    /// Sample lines in page order: (full sample id, value).
    samples: Vec<(String, f64)>,
}

fn parse_scrape(text: &str) -> Scrape {
    let mut types = BTreeMap::new();
    let mut samples = Vec::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let (Some(name), Some(kind)) = (parts.next(), parts.next()) else {
                fail(&format!("malformed TYPE line: {line}"));
            };
            types.insert(name.to_string(), kind.to_string());
            continue;
        }
        if line.starts_with('#') || line.trim().is_empty() {
            continue;
        }
        let Some((id, value)) = line.rsplit_once(' ') else {
            fail(&format!("malformed sample line: {line}"));
        };
        let value: f64 = value
            .parse()
            .unwrap_or_else(|_| fail(&format!("non-numeric sample value: {line}")));
        samples.push((id.to_string(), value));
    }
    Scrape { types, samples }
}

/// The metric family a sample belongs to (strips the label block and any
/// histogram sample suffix).
fn family_of(id: &str) -> String {
    let base = id.split('{').next().unwrap_or(id);
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(stripped) = base.strip_suffix(suffix) {
            return stripped.to_string();
        }
    }
    base.to_string()
}

fn check_scrape(component: &str, text: &str) -> Scrape {
    let scrape = parse_scrape(text);
    if scrape.samples.is_empty() {
        fail(&format!("{component}: /metrics page has no samples"));
    }
    let needle = format!("component=\"{component}\"");
    let mut bucket_prev: BTreeMap<String, f64> = BTreeMap::new();
    let mut inf_bucket: BTreeMap<String, f64> = BTreeMap::new();
    for (id, value) in &scrape.samples {
        if !id.contains(&needle) {
            fail(&format!(
                "{component}: sample lacks its component label: {id}"
            ));
        }
        let family = family_of(id);
        let declared = scrape
            .types
            .get(&family)
            .unwrap_or_else(|| fail(&format!("{component}: no # TYPE for {family} ({id})")));
        let base = id.split('{').next().unwrap_or(id);
        if base.ends_with("_bucket") {
            if declared != "histogram" {
                fail(&format!(
                    "{component}: _bucket sample on non-histogram {family}"
                ));
            }
            // The renderer emits each histogram's buckets consecutively in
            // ascending le order, so cumulative counts must never decrease.
            let prev = bucket_prev.entry(family.clone()).or_insert(0.0);
            if *value < *prev {
                fail(&format!(
                    "{component}: {family} cumulative buckets decreased ({value} < {prev})"
                ));
            }
            *prev = *value;
            if id.contains("le=\"+Inf\"") {
                inf_bucket.insert(family, *value);
            }
        } else if base.ends_with("_count") && declared == "histogram" {
            if let Some(inf) = inf_bucket.get(&family) {
                if inf != value {
                    fail(&format!(
                        "{component}: {family} +Inf bucket {inf} != _count {value}"
                    ));
                }
            }
        }
    }
    scrape
}

fn counters_of(scrape: &Scrape) -> BTreeMap<String, f64> {
    scrape
        .samples
        .iter()
        .filter(|(id, _)| scrape.types.get(&family_of(id)).map(String::as_str) == Some("counter"))
        .map(|(id, v)| (id.clone(), *v))
        .collect()
}

fn check_live_metrics() {
    use idicn::crypto::mss::Identity;
    use idicn::http;
    use idicn::origin::OriginServer;
    use idicn::proxy::EdgeProxy;
    use idicn::resolver::{Resolver, ResolverClient};
    use idicn::reverse_proxy::ReverseProxy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let origin = OriginServer::new();
    let origin_srv = origin.serve().expect("origin serves");
    let resolver = Resolver::new();
    let resolver_srv = resolver.serve().expect("resolver serves");
    let rc = ResolverClient::new(resolver_srv.addr());
    let identity = Identity::generate(&mut StdRng::seed_from_u64(7), 4);
    let rp = ReverseProxy::new(identity, origin_srv.addr(), rc);
    let rp_srv = rp.serve().expect("reverse proxy serves");
    let proxy = EdgeProxy::new(rc, 16);
    let proxy_srv = proxy.serve().expect("edge proxy serves");

    origin.add_content("scrape-demo", b"observable bytes".to_vec());
    let name = rp.publish("scrape-demo").expect("publish");
    rp.evict("scrape-demo"); // force the full proxy->resolver->rp->origin chain
    let fetch = |label: &str| {
        http::http_get(proxy_srv.addr(), &format!("/fetch/{label}"), &[])
            .expect("fetch through proxy")
    };
    assert_eq!(fetch(&name.to_flat()).status, 200);

    let endpoints = [
        ("edge_proxy", proxy_srv.addr()),
        ("resolver", resolver_srv.addr()),
        ("reverse_proxy", rp_srv.addr()),
    ];
    let mut first: BTreeMap<&str, Scrape> = BTreeMap::new();
    for (component, addr) in endpoints {
        let resp = http::http_get(addr, "/metrics", &[]).expect("scrape");
        if resp.status != 200 {
            fail(&format!("{component}: /metrics returned {}", resp.status));
        }
        if resp.headers.get("content-type") != Some(icn_obs::PROM_CONTENT_TYPE) {
            fail(&format!("{component}: wrong /metrics content type"));
        }
        let text = String::from_utf8(resp.body).expect("utf8 exposition");
        first.insert(component, check_scrape(component, &text));
    }

    // More traffic (a cache hit), then a second scrape: every counter must
    // be monotonically non-decreasing.
    assert_eq!(fetch(&name.to_flat()).status, 200);
    for (component, addr) in endpoints {
        let resp = http::http_get(addr, "/metrics", &[]).expect("second scrape");
        let text = String::from_utf8(resp.body).expect("utf8 exposition");
        let second = check_scrape(component, &text);
        let before = counters_of(&first[component]);
        let after = counters_of(&second);
        for (id, v1) in &before {
            match after.get(id) {
                None => fail(&format!(
                    "{component}: counter {id} vanished between scrapes"
                )),
                Some(v2) if v2 < v1 => fail(&format!(
                    "{component}: counter {id} went backwards ({v1} -> {v2})"
                )),
                Some(_) => {}
            }
        }
        // The edge proxy handled one more request between the scrapes.
        if component == "edge_proxy" {
            let key = before
                .keys()
                .find(|k| k.starts_with("proxy_requests"))
                .unwrap_or_else(|| fail("edge_proxy exposes no proxy_requests counter"));
            if after[key] <= before[key] {
                fail("edge_proxy: proxy_requests did not advance across scrapes");
            }
        }
    }

    proxy_srv.shutdown();
    rp_srv.shutdown();
    resolver_srv.shutdown();
    origin_srv.shutdown();
    println!("live /metrics: 3 components scraped twice, all invariants hold");
}
