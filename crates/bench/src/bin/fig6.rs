//! Figure 6: % improvement in (a) query latency, (b) congestion, and
//! (c) max origin load for the five designs across eight topologies, with
//! **population-proportional** cache budgets and origin assignment.

use icn_core::design::DesignKind;

fn main() {
    let telemetry = icn_bench::Telemetry::from_env("fig6");
    icn_bench::banner(
        "Figure 6",
        "design improvements over no caching, population-proportional budgets",
    );
    run(
        &telemetry,
        icn_cache::budget::BudgetPolicy::PopulationProportional,
    );
    telemetry.finish();
}

/// Shared by fig6 (proportional) and fig7 (uniform).
pub fn run(telemetry: &icn_bench::Telemetry, budget: icn_cache::budget::BudgetPolicy) {
    let designs = DesignKind::figure6_designs();
    let topos = icn_bench::paper_topologies();
    let jobs = icn_bench::jobs();
    eprintln!(
        "... building {} scenarios, running {} cells (JOBS={jobs})",
        topos.len(),
        topos.len() * designs.len()
    );
    let scenarios = icn_bench::par_build(topos.len(), jobs, |i| {
        icn_bench::baseline_scenario(topos[i].clone())
    });
    let cells: Vec<icn_core::sweep::SweepCell<'_>> = scenarios
        .iter()
        .flat_map(|s| {
            designs.iter().map(move |&d| {
                let mut cfg = icn_core::config::ExperimentConfig::baseline(d);
                cfg.budget_policy = budget;
                icn_core::sweep::SweepCell { scenario: s, cfg }
            })
        })
        .collect();
    let results = telemetry.improvement_batch(&cells);
    let rows: Vec<(String, Vec<icn_core::metrics::Improvement>)> = topos
        .iter()
        .zip(results.chunks(designs.len()))
        .map(|(topo, chunk)| {
            (
                topo.name.clone(),
                chunk.iter().map(|(imp, _)| *imp).collect(),
            )
        })
        .collect();

    for (metric, pick) in [
        ("(a) Query latency improvement (%)", 0usize),
        ("(b) Congestion improvement (%)", 1),
        ("(c) Origin server load improvement (%)", 2),
    ] {
        println!("\n{metric}");
        print!("{:<10}", "Topology");
        for d in designs {
            print!("{:>12}", d.name());
        }
        println!("{:>10}", "max gap");
        icn_bench::rule(80);
        for (name, imps) in &rows {
            print!("{name:<10}");
            let vals: Vec<f64> = imps
                .iter()
                .map(|i| match pick {
                    0 => i.latency_pct,
                    1 => i.congestion_pct,
                    _ => i.origin_pct,
                })
                .collect();
            for v in &vals {
                print!("{v:>12.2}");
            }
            let max = vals.iter().cloned().fold(f64::MIN, f64::max);
            let min = vals.iter().cloned().fold(f64::MAX, f64::min);
            println!("{:>10.2}", max - min);
        }
    }
    println!(
        "\nPaper reference: the gap between architectures is small (≤ ~9%);\n\
         EDGE-Coop tracks ICN-NR within ~3% on latency; ICN-NR adds ≤ 2% over ICN-SP."
    );
}
