//! Figure 6: % improvement in (a) query latency, (b) congestion, and
//! (c) max origin load for the five designs across eight topologies, with
//! **population-proportional** cache budgets and origin assignment.

use icn_core::design::DesignKind;

fn main() {
    let telemetry = icn_bench::Telemetry::from_env("fig6");
    icn_bench::banner(
        "Figure 6",
        "design improvements over no caching, population-proportional budgets",
    );
    run(
        &telemetry,
        icn_cache::budget::BudgetPolicy::PopulationProportional,
    );
    telemetry.finish();
}

/// Shared by fig6 (proportional) and fig7 (uniform).
pub fn run(telemetry: &icn_bench::Telemetry, budget: icn_cache::budget::BudgetPolicy) {
    let designs = DesignKind::figure6_designs();
    let mut rows: Vec<(String, Vec<icn_core::metrics::Improvement>)> = Vec::new();
    for topo in icn_bench::paper_topologies() {
        let name = topo.name.clone();
        eprintln!("... simulating {name}");
        let s = icn_bench::baseline_scenario(topo);
        let imps = designs
            .iter()
            .map(|&d| {
                let mut cfg = icn_core::config::ExperimentConfig::baseline(d);
                cfg.budget_policy = budget;
                telemetry.improvement(&s, cfg)
            })
            .collect();
        rows.push((name, imps));
    }

    for (metric, pick) in [
        ("(a) Query latency improvement (%)", 0usize),
        ("(b) Congestion improvement (%)", 1),
        ("(c) Origin server load improvement (%)", 2),
    ] {
        println!("\n{metric}");
        print!("{:<10}", "Topology");
        for d in designs {
            print!("{:>12}", d.name());
        }
        println!("{:>10}", "max gap");
        icn_bench::rule(80);
        for (name, imps) in &rows {
            print!("{name:<10}");
            let vals: Vec<f64> = imps
                .iter()
                .map(|i| match pick {
                    0 => i.latency_pct,
                    1 => i.congestion_pct,
                    _ => i.origin_pct,
                })
                .collect();
            for v in &vals {
                print!("{v:>12.2}");
            }
            let max = vals.iter().cloned().fold(f64::MIN, f64::max);
            let min = vals.iter().cloned().fold(f64::MAX, f64::min);
            println!("{:>10.2}", max - min);
        }
    }
    println!(
        "\nPaper reference: the gap between architectures is small (≤ ~9%);\n\
         EDGE-Coop tracks ICN-NR within ~3% on latency; ICN-NR adds ≤ 2% over ICN-SP."
    );
}
