//! Figure 10: bridging the best-case ICN-NR gap with simple EDGE
//! extensions, under the Figure 9 end-point configuration (AT&T, α = 0.1,
//! skew = 1, uniform budgeting, F = 2%).
//!
//! Bars: gain of best-case ICN-NR over Baseline (plain EDGE), 2-Levels,
//! Coop, 2-Levels-Coop, Norm, Norm-Coop, Double-Budget-Coop; plus two
//! reference points: Section-4 (the baseline-config gap) and Inf-Budget
//! (both sides with infinite caches).

use icn_cache::budget::BudgetPolicy;
use icn_core::config::ExperimentConfig;
use icn_core::design::DesignKind;
use icn_core::metrics::Improvement;
use icn_core::sweep::{Scenario, SweepCell};
use icn_workload::origin::OriginPolicy;

fn main() {
    let telemetry = icn_bench::Telemetry::from_env("fig10");
    icn_bench::banner(
        "Figure 10",
        "EDGE extensions vs the best case for ICN-NR (AT&T)",
    );

    // The Figure 9 end-point workload plus the Section-4 reference
    // scenario, both built up front so every cell can go through one
    // parallel batch (12 cells, submission order = the printed order).
    let jobs = icn_bench::jobs();
    eprintln!("... building 2 scenarios, running 12 cells (JOBS={jobs})");
    let scenarios = icn_bench::par_build(2, jobs, |i| {
        if i == 0 {
            let mut trace_cfg = icn_bench::asia_trace(icn_bench::scale());
            trace_cfg.alpha = 0.1;
            trace_cfg.skew = 1.0;
            Scenario::build(
                icn_topology::pop::att(),
                icn_bench::baseline_tree(),
                trace_cfg,
                OriginPolicy::PopulationProportional,
            )
        } else {
            icn_bench::baseline_scenario(icn_topology::pop::att())
        }
    });
    let (s, s4) = (&scenarios[0], &scenarios[1]);
    let best_cfg = |design: DesignKind| {
        let mut c = ExperimentConfig::baseline(design);
        c.budget_policy = BudgetPolicy::Uniform;
        c.f_fraction = 0.02;
        c
    };
    let variants = [
        ("Baseline (EDGE)", DesignKind::Edge),
        ("2-Levels", DesignKind::TwoLevels),
        ("Coop", DesignKind::EdgeCoop),
        ("2-Levels-Coop", DesignKind::TwoLevelsCoop),
        ("Norm", DesignKind::EdgeNorm),
        ("Norm-Coop", DesignKind::NormCoop),
        ("Double-Budget-Coop", DesignKind::DoubleBudgetCoop),
    ];
    let mut cells = vec![SweepCell {
        scenario: s,
        cfg: best_cfg(DesignKind::IcnNr),
    }];
    cells.extend(variants.map(|(_, design)| SweepCell {
        scenario: s,
        cfg: best_cfg(design),
    }));
    cells.extend([DesignKind::IcnNr, DesignKind::Edge].map(|d| SweepCell {
        scenario: s4,
        cfg: ExperimentConfig::baseline(d),
    }));
    cells.extend(
        [DesignKind::InfiniteIcnNr, DesignKind::InfiniteEdge].map(|d| SweepCell {
            scenario: s,
            cfg: best_cfg(d),
        }),
    );
    let results = telemetry.improvement_batch(&cells);
    let nr = results[0].0;

    println!(
        "{:<22} {:>10} {:>12} {:>14}",
        "ICN-NR advantage over", "Latency", "Congestion", "Origin-Load"
    );
    icn_bench::rule(62);
    for ((label, _), (edge_variant, _)) in variants.iter().zip(&results[1..=7]) {
        let gap = Improvement::gap(&nr, edge_variant);
        println!(
            "{label:<22} {:>10.2} {:>12.2} {:>14.2}",
            gap.latency_pct, gap.congestion_pct, gap.origin_pct
        );
    }

    // Reference point 1: the Section 4 baseline gap.
    let sec4 = Improvement::gap(&results[8].0, &results[9].0);
    println!(
        "{:<22} {:>10.2} {:>12.2} {:>14.2}",
        "Section-4 (reference)", sec4.latency_pct, sec4.congestion_pct, sec4.origin_pct
    );

    // Reference point 2: infinite budgets on both sides.
    let inf = Improvement::gap(&results[10].0, &results[11].0);
    println!(
        "{:<22} {:>10.2} {:>12.2} {:>14.2}",
        "Inf-Budget (reference)", inf.latency_pct, inf.congestion_pct, inf.origin_pct
    );

    println!(
        "\nPaper reference: Norm + cooperation brings the best-case gap down to\n\
         ~6%; doubling the edge budget can make EDGE beat ICN-NR outright."
    );
    telemetry.finish();
}
