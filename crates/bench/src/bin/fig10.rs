//! Figure 10: bridging the best-case ICN-NR gap with simple EDGE
//! extensions, under the Figure 9 end-point configuration (AT&T, α = 0.1,
//! skew = 1, uniform budgeting, F = 2%).
//!
//! Bars: gain of best-case ICN-NR over Baseline (plain EDGE), 2-Levels,
//! Coop, 2-Levels-Coop, Norm, Norm-Coop, Double-Budget-Coop; plus two
//! reference points: Section-4 (the baseline-config gap) and Inf-Budget
//! (both sides with infinite caches).

use icn_cache::budget::BudgetPolicy;
use icn_core::config::ExperimentConfig;
use icn_core::design::DesignKind;
use icn_core::metrics::Improvement;
use icn_core::sweep::Scenario;
use icn_workload::origin::OriginPolicy;

fn main() {
    let telemetry = icn_bench::Telemetry::from_env("fig10");
    icn_bench::banner(
        "Figure 10",
        "EDGE extensions vs the best case for ICN-NR (AT&T)",
    );

    // The Figure 9 end-point workload.
    let mut trace_cfg = icn_bench::asia_trace(icn_bench::scale());
    trace_cfg.alpha = 0.1;
    trace_cfg.skew = 1.0;
    let s = Scenario::build(
        icn_topology::pop::att(),
        icn_bench::baseline_tree(),
        trace_cfg,
        OriginPolicy::PopulationProportional,
    );
    let best_cfg = |design: DesignKind| {
        let mut c = ExperimentConfig::baseline(design);
        c.budget_policy = BudgetPolicy::Uniform;
        c.f_fraction = 0.02;
        c
    };
    let nr = telemetry.improvement(&s, best_cfg(DesignKind::IcnNr));

    println!(
        "{:<22} {:>10} {:>12} {:>14}",
        "ICN-NR advantage over", "Latency", "Congestion", "Origin-Load"
    );
    icn_bench::rule(62);
    let variants = [
        ("Baseline (EDGE)", DesignKind::Edge),
        ("2-Levels", DesignKind::TwoLevels),
        ("Coop", DesignKind::EdgeCoop),
        ("2-Levels-Coop", DesignKind::TwoLevelsCoop),
        ("Norm", DesignKind::EdgeNorm),
        ("Norm-Coop", DesignKind::NormCoop),
        ("Double-Budget-Coop", DesignKind::DoubleBudgetCoop),
    ];
    for (label, design) in variants {
        eprintln!("... simulating {label}");
        let edge_variant = telemetry.improvement(&s, best_cfg(design));
        let gap = Improvement::gap(&nr, &edge_variant);
        println!(
            "{label:<22} {:>10.2} {:>12.2} {:>14.2}",
            gap.latency_pct, gap.congestion_pct, gap.origin_pct
        );
    }

    // Reference point 1: the Section 4 baseline gap.
    eprintln!("... simulating Section-4 reference");
    let s4 = icn_bench::baseline_scenario(icn_topology::pop::att());
    let sec4 = telemetry.nr_vs_edge_gap(&s4, &ExperimentConfig::baseline(DesignKind::Edge));
    println!(
        "{:<22} {:>10.2} {:>12.2} {:>14.2}",
        "Section-4 (reference)", sec4.latency_pct, sec4.congestion_pct, sec4.origin_pct
    );

    // Reference point 2: infinite budgets on both sides.
    eprintln!("... simulating Inf-Budget reference");
    let inf_nr = telemetry.improvement(&s, best_cfg(DesignKind::InfiniteIcnNr));
    let inf_edge = telemetry.improvement(&s, best_cfg(DesignKind::InfiniteEdge));
    let inf = Improvement::gap(&inf_nr, &inf_edge);
    println!(
        "{:<22} {:>10.2} {:>12.2} {:>14.2}",
        "Inf-Budget (reference)", inf.latency_pct, inf.congestion_pct, inf.origin_pct
    );

    println!(
        "\nPaper reference: Norm + cooperation brings the best-case gap down to\n\
         ~6%; doubling the edge budget can make EDGE beat ICN-NR outright."
    );
    telemetry.finish();
}
