//! Figure 7: the Figure 6 matrix with **uniform** cache budgets and origin
//! assignment — the paper finds "no major change in the relative
//! performances".

use icn_core::config::ExperimentConfig;
use icn_core::design::DesignKind;
use icn_core::sweep::{Scenario, SweepCell};
use icn_workload::origin::OriginPolicy;

fn main() {
    let telemetry = icn_bench::Telemetry::from_env("fig7");
    icn_bench::banner(
        "Figure 7",
        "design improvements over no caching, uniform budgets & origins",
    );
    let designs = DesignKind::figure6_designs();
    let topos = icn_bench::paper_topologies();
    let jobs = icn_bench::jobs();
    eprintln!(
        "... building {} scenarios, running {} cells (JOBS={jobs})",
        topos.len(),
        topos.len() * designs.len()
    );
    let scenarios = icn_bench::par_build(topos.len(), jobs, |i| {
        Scenario::build(
            topos[i].clone(),
            icn_bench::baseline_tree(),
            icn_bench::asia_trace(icn_bench::scale()),
            OriginPolicy::Uniform,
        )
    });
    let cells: Vec<SweepCell<'_>> = scenarios
        .iter()
        .flat_map(|s| {
            designs.iter().map(move |&d| {
                let mut cfg = ExperimentConfig::baseline(d);
                cfg.budget_policy = icn_cache::budget::BudgetPolicy::Uniform;
                SweepCell { scenario: s, cfg }
            })
        })
        .collect();
    let results = telemetry.improvement_batch(&cells);
    let rows: Vec<(String, Vec<_>)> = topos
        .iter()
        .zip(results.chunks(designs.len()))
        .map(|(topo, chunk)| {
            (
                topo.name.clone(),
                chunk.iter().map(|(imp, _)| *imp).collect(),
            )
        })
        .collect();

    for (metric, pick) in [
        ("(a) Query latency improvement (%)", 0usize),
        ("(b) Congestion improvement (%)", 1),
        ("(c) Origin server load improvement (%)", 2),
    ] {
        println!("\n{metric}");
        print!("{:<10}", "Topology");
        for d in designs {
            print!("{:>12}", d.name());
        }
        println!();
        icn_bench::rule(72);
        for (name, imps) in &rows {
            print!("{name:<10}");
            for i in imps {
                let v = match pick {
                    0 => i.latency_pct,
                    1 => i.congestion_pct,
                    _ => i.origin_pct,
                };
                print!("{v:>12.2}");
            }
            println!();
        }
    }
    println!(
        "\nPaper reference: uniform budgeting does not change the relative ordering\n\
         of the designs (compare with the fig6 output)."
    );
    telemetry.finish();
}
