//! Figure 7: the Figure 6 matrix with **uniform** cache budgets and origin
//! assignment — the paper finds "no major change in the relative
//! performances".

use icn_core::config::ExperimentConfig;
use icn_core::design::DesignKind;
use icn_core::sweep::Scenario;
use icn_workload::origin::OriginPolicy;

fn main() {
    let telemetry = icn_bench::Telemetry::from_env("fig7");
    icn_bench::banner(
        "Figure 7",
        "design improvements over no caching, uniform budgets & origins",
    );
    let designs = DesignKind::figure6_designs();
    let mut rows = Vec::new();
    for topo in icn_bench::paper_topologies() {
        let name = topo.name.clone();
        eprintln!("... simulating {name}");
        let s = Scenario::build(
            topo,
            icn_bench::baseline_tree(),
            icn_bench::asia_trace(icn_bench::scale()),
            OriginPolicy::Uniform,
        );
        let imps: Vec<_> = designs
            .iter()
            .map(|&d| {
                let mut cfg = ExperimentConfig::baseline(d);
                cfg.budget_policy = icn_cache::budget::BudgetPolicy::Uniform;
                telemetry.improvement(&s, cfg)
            })
            .collect();
        rows.push((name, imps));
    }

    for (metric, pick) in [
        ("(a) Query latency improvement (%)", 0usize),
        ("(b) Congestion improvement (%)", 1),
        ("(c) Origin server load improvement (%)", 2),
    ] {
        println!("\n{metric}");
        print!("{:<10}", "Topology");
        for d in designs {
            print!("{:>12}", d.name());
        }
        println!();
        icn_bench::rule(72);
        for (name, imps) in &rows {
            print!("{name:<10}");
            for i in imps {
                let v = match pick {
                    0 => i.latency_pct,
                    1 => i.congestion_pct,
                    _ => i.origin_pct,
                };
                print!("{v:>12.2}");
            }
            println!();
        }
    }
    println!(
        "\nPaper reference: uniform budgeting does not change the relative ordering\n\
         of the designs (compare with the fig6 output)."
    );
    telemetry.finish();
}
