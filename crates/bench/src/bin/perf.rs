//! `perf`: simulator throughput benchmark, emitting `BENCH_sim.json`.
//!
//! Runs every Figure-6 design over the paper topologies under the §4
//! baseline config and reports wall-clock throughput (requests/second)
//! per design plus peak RSS — the numbers backing the "Performance"
//! section of EXPERIMENTS.md. All seeds are the fixed experiment seeds,
//! so the *work* is identical run to run; only the timings vary with the
//! host.
//!
//! Usage: `perf [--smoke] [--out PATH]`
//!
//! `--smoke` shrinks the workload (one topology, 2% trace scale) so CI
//! can exercise the binary and the JSON schema in seconds; `--out` picks
//! the output path (default `BENCH_sim.json`).
//!
//! Besides the timed rows, the JSON carries a `"profile"` section: a
//! per-phase self/total-time attribution (directory lookup, cache probe,
//! cost selection, eviction, fault schedule) from a separate *untimed*
//! profiled pass over the first topology, so the throughput numbers stay
//! free of profiler overhead. With `--no-default-features` the section is
//! present but empty (`{"phases": {}}`).

use icn_bench::{self as bench, par_build};
use icn_core::config::ExperimentConfig;
use icn_core::design::DesignKind;
use icn_core::instrument::SimObs;
use icn_core::shard::{self, ShardOpts};
use icn_core::sweep::Scenario;
use icn_obs::{peak_rss_kb, Profiler, Registry};
use icn_topology::pop;
use icn_workload::origin::OriginPolicy;
use std::fmt::Write as _;
use std::time::Instant;

struct DesignRow {
    name: &'static str,
    requests: u64,
    seconds: f64,
}

struct ShardRow {
    design: &'static str,
    shards: usize,
    workers: usize,
    requests: u64,
    seconds: f64,
    epochs: u64,
    reconcile_ns: u64,
}

fn main() {
    let mut smoke = false;
    let mut out = String::from("BENCH_sim.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => match args.next() {
                Some(p) => out = p,
                None => {
                    eprintln!("error: --out needs a path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("error: unknown argument {other:?} (usage: perf [--smoke] [--out PATH])");
                std::process::exit(2);
            }
        }
    }

    let scale = if smoke { 0.02 } else { bench::scale() };
    let topos = if smoke {
        vec![pop::abilene()]
    } else {
        bench::paper_topologies()
    };
    let trace_cfg = bench::asia_trace(scale);
    let trace_seed = trace_cfg.seed;
    eprintln!(
        "[perf] building {} scenario(s) at scale {scale}...",
        topos.len()
    );
    let scenarios: Vec<Scenario> = par_build(topos.len(), bench::jobs(), |i| {
        Scenario::build(
            topos[i].clone(),
            bench::baseline_tree(),
            trace_cfg.clone(),
            OriginPolicy::PopulationProportional,
        )
    });
    let requests_per_pass: u64 = scenarios
        .iter()
        .map(|s| s.trace.requests.len() as u64)
        .sum();

    // Sequential, single-threaded timing: this measures the simulator's
    // per-request hot path, not the sweep engine's parallel speedup.
    let mut rows = Vec::new();
    for design in DesignKind::figure6_designs() {
        let t0 = Instant::now();
        let mut served = 0u64;
        for s in &scenarios {
            let m = s.run_config(ExperimentConfig::baseline(design));
            served += m.requests;
        }
        let seconds = t0.elapsed().as_secs_f64();
        assert_eq!(served, requests_per_pass, "{design:?}: request count drift");
        eprintln!(
            "[perf] {:10} {:>9} req in {seconds:7.3}s  ({:9.0} req/s)",
            design.name(),
            requests_per_pass,
            requests_per_pass as f64 / seconds
        );
        rows.push(DesignRow {
            name: design.name(),
            requests: requests_per_pass,
            seconds,
        });
    }

    // Intra-cell shard sweep (DESIGN.md §13): the epoch-sharded engine at
    // 1, 2, and 4 workers over every scenario, one nearest-replica and
    // one edge design. Same bytes at every shard count (check.sh
    // byte-compares); these rows measure the wall-clock scaling and the
    // sequential reconcile overhead per epoch.
    let mut shard_rows = Vec::new();
    for design in [DesignKind::IcnNr, DesignKind::Edge] {
        let cfg = ExperimentConfig::baseline(design);
        for shards in [1usize, 2, 4] {
            let t0 = Instant::now();
            let mut served = 0u64;
            let mut epochs = 0u64;
            let mut reconcile_ns = 0u64;
            let mut workers = 0usize;
            for s in &scenarios {
                if !shard::supported(&s.net, &cfg) {
                    continue;
                }
                let run = shard::run_sharded(
                    &s.net,
                    &cfg,
                    &s.origins,
                    &s.trace.object_sizes,
                    s.trace.requests.iter().copied(),
                    &ShardOpts {
                        shards,
                        ..Default::default()
                    },
                );
                served += run.metrics.requests;
                epochs += run.epochs;
                reconcile_ns += run.reconcile_ns;
                workers = workers.max(run.workers);
            }
            let seconds = t0.elapsed().as_secs_f64();
            eprintln!(
                "[perf] {:10} shards={shards} ({workers} workers) {:>9} req in {seconds:7.3}s  \
                 ({:9.0} req/s, reconcile {:.2}%)",
                design.name(),
                served,
                served as f64 / seconds,
                reconcile_ns as f64 / (seconds * 1e9) * 100.0
            );
            shard_rows.push(ShardRow {
                design: design.name(),
                shards,
                workers,
                requests: served,
                seconds,
                epochs,
                reconcile_ns,
            });
        }
    }

    // Untimed profiled pass: per-phase attribution over the first
    // topology only, kept out of the timed rows above so the reported
    // req/s never carries profiler overhead.
    eprintln!("[perf] profiling pass (first topology, untimed)...");
    let profiler = Profiler::new();
    let profile_registry = Registry::new();
    for design in DesignKind::figure6_designs() {
        let obs = SimObs::new(&profile_registry, design.name()).with_profiler(&profiler);
        let _ = scenarios[0].run_config_instrumented(ExperimentConfig::baseline(design), obs);
    }
    let profile = profiler.snapshot();
    eprint!("{}", profile.render_table());

    let total_requests: u64 = rows.iter().map(|r| r.requests).sum();
    let total_seconds: f64 = rows.iter().map(|r| r.seconds).sum();
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"sim\",");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(json, "  \"scale\": {scale},");
    let _ = writeln!(json, "  \"topologies\": {},", topos.len());
    let _ = writeln!(json, "  \"trace_seed\": {trace_seed},");
    let _ = writeln!(json, "  \"jobs\": {},", bench::jobs());
    let _ = writeln!(json, "  \"peak_rss_kb\": {},", peak_rss_kb());
    let _ = writeln!(json, "  \"total\": {{");
    let _ = writeln!(json, "    \"requests\": {total_requests},");
    let _ = writeln!(json, "    \"seconds\": {total_seconds:.3},");
    let _ = writeln!(
        json,
        "    \"requests_per_sec\": {:.0}",
        total_requests as f64 / total_seconds
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"profile\": {},", profile.to_json());
    let _ = writeln!(json, "  \"designs\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"design\": \"{}\", \"requests\": {}, \"seconds\": {:.3}, \
             \"requests_per_sec\": {:.0}}}{comma}",
            r.name,
            r.requests,
            r.seconds,
            r.requests as f64 / r.seconds
        );
    }
    let _ = writeln!(json, "  ],");
    // Shard rows key their "design" field as NAME#sK so bench_compare.sh
    // (which keys rows by that field) never collides them with the
    // sequential rows above or with each other.
    let _ = writeln!(json, "  \"shards\": [");
    for (i, r) in shard_rows.iter().enumerate() {
        let comma = if i + 1 < shard_rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"design\": \"{}#s{}\", \"shards\": {}, \"workers\": {}, \
             \"requests\": {}, \"seconds\": {:.3}, \"requests_per_sec\": {:.0}, \
             \"epochs\": {}, \"reconcile_ns\": {}, \"reconcile_pct\": {:.3}}}{comma}",
            r.design,
            r.shards,
            r.shards,
            r.workers,
            r.requests,
            r.seconds,
            r.requests as f64 / r.seconds,
            r.epochs,
            r.reconcile_ns,
            r.reconcile_ns as f64 / (r.seconds * 1e9) * 100.0
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");

    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("error: cannot write {out}: {e}");
        std::process::exit(1);
    }
    println!(
        "perf: {total_requests} requests in {total_seconds:.3}s across {} designs -> {out}",
        rows.len()
    );
}
