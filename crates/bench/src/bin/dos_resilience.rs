//! §7 claim check: edge caching provides "much of the same request flood
//! protection as pervasively deployed ICNs".
//!
//! Injects a request flood (bot leaves hammering one victim publisher's
//! catalog) into the Asia baseline and reports the victim origin's load
//! under EDGE, EDGE-Coop, ICN-SP, and ICN-NR, relative to no caching. If
//! the paper is right, EDGE absorbs nearly the same fraction of the flood
//! as pervasive ICN: the flood is maximally cacheable traffic (few objects,
//! huge request rate), which is exactly what edge caches eat.

use icn_core::config::ExperimentConfig;
use icn_core::design::DesignKind;
use icn_core::sim::Simulator;
use icn_topology::{AccessTree, Network};
use icn_workload::flood::{inject_flood, FloodConfig};
use icn_workload::origin::{assign_origins, OriginPolicy};
use icn_workload::trace::Trace;

fn main() {
    let telemetry = icn_bench::Telemetry::from_env("dos_resilience");
    icn_bench::banner(
        "DoS resilience (§7)",
        "victim origin load under a request flood, per design",
    );
    let net = Network::new(icn_topology::pop::abilene(), AccessTree::baseline());
    let base = Trace::synthesize(
        icn_bench::asia_trace(icn_bench::scale() * 0.5),
        &net.core.populations,
        net.leaves_per_pop(),
    );
    let mut origins = assign_origins(
        OriginPolicy::PopulationProportional,
        base.config.objects,
        &net.core.populations,
        base.config.seed ^ 0x0_12c_0de,
    );
    // Victim: one content provider (origin PoP 3, Denver); we report that
    // origin's load. Two regimes: a flood whose working set fits even the
    // smallest edge cache (the paper's claim), and one that overflows it
    // (an extension finding: cache-overflow floods re-open the gap).
    const VICTIM_POP: u16 = 3;
    for victim_objects in [15u32, 50] {
        let victim_range = base.config.objects - victim_objects..base.config.objects;
        for o in victim_range.clone() {
            origins[o as usize] = VICTIM_POP;
        }
        let flood = FloodConfig {
            intensity: 10.0,
            ..FloodConfig::new(victim_range.clone())
        };
        let flooded = inject_flood(
            &base,
            net.pops() as u16,
            net.leaves_per_pop() as u16,
            &flood,
        );
        println!(
            "\n--- flood of {} requests over {} victim objects ---",
            flooded.len() - base.len(),
            victim_range.len()
        );

        let victim_load = |design: DesignKind| -> (u64, f64) {
            let mut sim = Simulator::new(
                &net,
                ExperimentConfig::baseline(design),
                &origins,
                &flooded.object_sizes,
            );
            sim.attach_obs(telemetry.obs(design.name(), flooded.len() as u64));
            sim.run(&flooded.requests);
            let m = sim.metrics();
            telemetry.record_run(m);
            (m.origin_served[VICTIM_POP as usize], m.hit_ratio())
        };
        let (base_load, _) = victim_load(DesignKind::NoCache);

        println!(
            "{:<12} {:>18} {:>20} {:>12}",
            "design", "victim origin load", "flood absorbed (%)", "hit ratio"
        );
        icn_bench::rule(66);
        println!(
            "{:<12} {:>18} {:>20} {:>12}",
            "NoCache", base_load, "0.00", "-"
        );
        for design in [
            DesignKind::Edge,
            DesignKind::EdgeCoop,
            DesignKind::IcnSp,
            DesignKind::IcnNr,
        ] {
            let (load, hit) = victim_load(design);
            let absorbed = (base_load - load) as f64 / base_load as f64 * 100.0;
            println!(
                "{:<12} {:>18} {:>20.2} {:>11.1}%",
                design.name(),
                load,
                absorbed,
                hit * 100.0
            );
        }
    }
    println!(
        "\nPaper reference (§7): edge caching provides approximately the same\n\
         request-flood protection as pervasive ICN when the flood's working set\n\
         is cacheable at the edge; a working set larger than the smallest edge\n\
         caches re-opens the gap (our extension measurement)."
    );
    telemetry.finish();
}
