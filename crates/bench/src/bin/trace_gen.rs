//! Utility: generate a synthetic CDN request trace as CSV on stdout.
//!
//! ```console
//! $ cargo run --release -p icn-bench --bin trace_gen -- \
//!       --region asia --scale 0.05 --topology abilene > trace.csv
//! ```
//!
//! Options (all optional):
//! `--region us|europe|asia` (default asia), `--scale <0..1]` (default
//! 0.05), `--topology <name>` (default abilene), `--alpha <f>`,
//! `--skew <0..1>`, `--seed <u64>`, `--irm` (disable temporal locality).

use icn_topology::pop;
use icn_workload::trace::{Region, Trace};

fn main() {
    let telemetry = icn_bench::Telemetry::from_env("trace_gen");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let has = |flag: &str| args.iter().any(|a| a == flag);

    let region = match get("--region").as_deref() {
        None | Some("asia") => Region::Asia,
        Some("us") => Region::Us,
        Some("europe") => Region::Europe,
        Some(other) => {
            eprintln!("unknown region {other:?} (us|europe|asia)");
            std::process::exit(2);
        }
    };
    let scale: f64 = get("--scale").and_then(|s| s.parse().ok()).unwrap_or(0.05);
    let topo = match get("--topology").as_deref() {
        None | Some("abilene") => pop::abilene(),
        Some("geant") => pop::geant(),
        Some("telstra") => pop::telstra(),
        Some("sprint") => pop::sprint(),
        Some("verio") => pop::verio(),
        Some("tiscali") => pop::tiscali(),
        Some("level3") => pop::level3(),
        Some("att") => pop::att(),
        Some(other) => {
            eprintln!("unknown topology {other:?}");
            std::process::exit(2);
        }
    };

    let mut cfg = region.config(scale);
    if let Some(a) = get("--alpha").and_then(|s| s.parse().ok()) {
        cfg.alpha = a;
    }
    if let Some(s) = get("--skew").and_then(|s| s.parse().ok()) {
        cfg.skew = s;
    }
    if let Some(s) = get("--seed").and_then(|s| s.parse().ok()) {
        cfg.seed = s;
    }
    if has("--irm") {
        cfg.locality = None;
    }

    eprintln!(
        "generating {} requests over {} objects (alpha {}, skew {}, topology {})",
        cfg.requests, cfg.objects, cfg.alpha, cfg.skew, topo.name
    );
    let leaves = icn_topology::AccessTree::baseline().leaves();
    let trace = Trace::synthesize(cfg, &topo.populations, leaves);
    let stdout = std::io::stdout();
    trace
        .write_csv(std::io::BufWriter::new(stdout.lock()))
        .expect("write CSV to stdout");
    telemetry
        .registry()
        .counter("bench.requests_written")
        .add(trace.len() as u64);
    telemetry.finish();
}
