//! Correlated disasters: does the paper's headline survive when failures
//! stop being independent?
//!
//! The `failures` binary sweeps *independent* per-entity fault rates. Real
//! outages cluster: a conduit cut severs every core link of a PoP, a power
//! event takes out a whole aggregation subtree, an overloaded origin sheds
//! load onto its neighbors, and a poisoned cache serves corrupted bytes.
//! This binary sweeps those correlated shapes (see [`icn_core::fault`])
//! across the ICN-NR / EDGE pair and the paper's eight topologies:
//!
//! * `indep`   — the independent baseline (same model as `failures`);
//! * `groups`  — shared-risk groups: PoP subtrees and core-link bundles
//!   fail as a unit, with geometric (MTTR) repair;
//! * `cascade` — degraded origins that saturate shed load onto their core
//!   neighbors next window;
//! * `corrupt` — cached replicas flip poisoned; self-certifying designs
//!   detect and re-fetch, EDGE serves the poison;
//! * `full`    — all of the above at once.
//!
//! Availability is split **reachable** (a response arrived) vs **correct**
//! (the response was authentic): corruption never dents EDGE's reachable
//! availability, only its correct availability.
//!
//! Every cell runs through the same parallel batch path as the figure
//! binaries; schedules are pure functions of their seeds, so output is
//! byte-identical at any `JOBS` value (checked by `scripts/check.sh` via
//! `--smoke`).
//!
//! Usage: `disasters [--smoke]`
//!
//! `--smoke` shrinks the sweep (two topologies, 2% trace scale) so CI can
//! exercise every disaster shape in seconds.

use icn_core::config::ExperimentConfig;
use icn_core::design::DesignKind;
use icn_core::fault::{DisasterConfig, FaultConfig};
use icn_core::metrics::{Improvement, RunMetrics};
use icn_core::sweep::{Scenario, SweepCell};
use icn_workload::origin::OriginPolicy;

/// The two designs whose gap is the paper's headline number (§5).
const DESIGNS: [DesignKind; 2] = [DesignKind::IcnNr, DesignKind::Edge];

/// Per-window event rate shared by every disaster shape.
const RATE: f64 = 0.05;

/// The swept disaster shapes.
const SHAPES: [&str; 5] = ["indep", "groups", "cascade", "corrupt", "full"];

/// Seed for cell `(topology t, design d, shape s)`: fixed arithmetic on
/// the indices — never wall clock — so reruns are bit-identical.
fn cell_seed(t: usize, d: usize, s: usize) -> u64 {
    0xd15a_0000 + (t * 1_000 + d * 10 + s) as u64
}

/// The fault config of one disaster shape.
fn shape_config(shape: &str, seed: u64) -> FaultConfig {
    match shape {
        "indep" => FaultConfig::uniform(seed, RATE),
        "groups" => FaultConfig {
            disaster: Some(DisasterConfig {
                group_rate: RATE / 2.0,
                group_mttr_windows: 4,
                geometric_repair: true,
                cascade_overload: false,
            }),
            ..FaultConfig::zero(seed)
        },
        "cascade" => {
            // Independent origin degradation, slow recovery, plus the
            // cascade rule — overload spreads along the core.
            let mut cfg = FaultConfig::uniform(seed, RATE);
            cfg.origin_degraded_windows = 3;
            cfg.disaster = Some(DisasterConfig {
                group_rate: 0.0,
                group_mttr_windows: 1,
                geometric_repair: false,
                cascade_overload: true,
            });
            cfg
        }
        "corrupt" => FaultConfig {
            corruption_rate: RATE,
            ..FaultConfig::zero(seed)
        },
        "full" => {
            let mut cfg = FaultConfig::uniform(seed, RATE);
            cfg.origin_degraded_windows = 3;
            cfg.corruption_rate = RATE;
            cfg.disaster = Some(DisasterConfig::full(RATE / 2.0));
            cfg
        }
        other => unreachable!("unknown disaster shape {other}"),
    }
}

fn main() {
    let smoke = std::env::args().skip(1).any(|a| a == "--smoke");
    let telemetry = icn_bench::Telemetry::from_env("disasters");
    let scale = if smoke { 0.02 } else { icn_bench::scale() };
    let topos = {
        let mut t = icn_bench::paper_topologies();
        if smoke {
            t.truncate(2);
        }
        t
    };
    let jobs = icn_bench::jobs();
    // Per (topology, design): one fault-free control plus one per shape.
    let per_pair = 1 + SHAPES.len();

    icn_bench::rule(78);
    println!(
        "Correlated disasters: reachable vs correct availability under shared-risk\n\
         faults, cascading overload, and content corruption\n\
         ({} topologies, {} designs x {} shapes + control)",
        topos.len(),
        DESIGNS.len(),
        SHAPES.len(),
    );
    icn_bench::rule(78);
    eprintln!(
        "... building {} scenarios, running {} cells (JOBS={jobs})",
        topos.len(),
        topos.len() * DESIGNS.len() * per_pair
    );
    let scenarios: Vec<Scenario> = icn_bench::par_build(topos.len(), jobs, |i| {
        Scenario::build(
            topos[i].clone(),
            icn_bench::baseline_tree(),
            icn_bench::asia_trace(scale),
            OriginPolicy::PopulationProportional,
        )
    });
    let cells: Vec<SweepCell<'_>> = scenarios
        .iter()
        .enumerate()
        .flat_map(|(t, s)| {
            DESIGNS.iter().enumerate().flat_map(move |(d, &design)| {
                let base = ExperimentConfig::baseline(design);
                std::iter::once(SweepCell {
                    scenario: s,
                    cfg: base.clone(),
                })
                .chain(SHAPES.iter().enumerate().map(move |(sh, &shape)| {
                    let mut cfg = base.clone();
                    cfg.fault = Some(shape_config(shape, cell_seed(t, d, sh)));
                    SweepCell { scenario: s, cfg }
                }))
            })
        })
        .collect();
    let results = telemetry.improvement_batch(&cells);
    let at = |t: usize, d: usize, slot: usize| -> &(Improvement, RunMetrics) {
        &results[(t * DESIGNS.len() + d) * per_pair + slot]
    };

    for (sh, &shape) in SHAPES.iter().enumerate() {
        println!("\n=== disaster shape: {shape} ===");
        println!(
            "{:<10}{:>14}{:>14}{:>14}{:>14}{:>12}{:>12}",
            "Topology",
            "NR reach%",
            "NR correct%",
            "EDGE reach%",
            "EDGE corr%",
            "NR caught",
            "EDGE pois"
        );
        icn_bench::rule(90);
        for (t, topo) in topos.iter().enumerate() {
            let nr = &at(t, 0, 1 + sh).1;
            let edge = &at(t, 1, 1 + sh).1;
            println!(
                "{:<10}{:>14.2}{:>14.2}{:>14.2}{:>14.2}{:>12}{:>12}",
                topo.name,
                nr.availability_pct(),
                nr.correct_availability_pct(),
                edge.availability_pct(),
                edge.correct_availability_pct(),
                nr.corrupt_detected,
                edge.corrupt_served,
            );
        }
    }

    // Gap retention: the headline latency-improvement gap under each
    // disaster shape, relative to the fault-free control.
    println!("\nheadline gap, ICN-NR minus EDGE latency improvement (percentage points)");
    print!("{:<10}{:>10}", "Topology", "control");
    for shape in SHAPES {
        print!("{shape:>10}");
    }
    println!();
    icn_bench::rule(80);
    let mut sums = vec![0.0f64; per_pair];
    for (t, topo) in topos.iter().enumerate() {
        print!("{:<10}", topo.name);
        for (slot, sum) in sums.iter_mut().enumerate() {
            let gap = Improvement::gap(&at(t, 0, slot).0, &at(t, 1, slot).0);
            *sum += gap.latency_pct;
            print!("{:>10.2}", gap.latency_pct);
        }
        println!();
    }
    icn_bench::rule(80);
    print!("{:<10}", "mean");
    for s in &sums {
        print!("{:>10.2}", s / topos.len() as f64);
    }
    println!();

    println!(
        "\nReading: shared-risk groups and cascades dent *reachable* availability\n\
         for every design — whole subtrees and core bundles go dark at once, and\n\
         no routing can serve around a severed origin. Corruption splits the\n\
         designs instead: ICN's self-certified names catch every poisoned replica\n\
         (counted under 'NR caught', paid as re-fetch latency), so its correct\n\
         availability equals its reachable availability, while EDGE serves the\n\
         poison ('EDGE pois') and only its *correct* availability drops. The\n\
         headline latency gap survives every shape."
    );
    telemetry.finish();
}
