//! Run telemetry shared by every figure/table binary.
//!
//! Each binary accepts three optional flags (anywhere on its command line;
//! unrecognized flags are left for the binary's own parser):
//!
//! - `--telemetry PATH` — write an [`icn_obs::Snapshot`] of every counter,
//!   timer, and the merged request-latency histogram as JSON to `PATH`
//!   when the binary finishes, and print the human-readable table to
//!   stderr.
//! - `--trace PATH` — stream sampled per-request [`icn_obs::TraceRecord`]s
//!   as JSONL to `PATH`.
//! - `--sample N` — keep every `N`th trace record (default 64).
//!
//! Simulator runs are always instrumented (progress lines with
//! requests/sec + ETA go to stderr); the flags only control what is
//! persisted. With `--no-default-features` the `sim.*` counters and span
//! timers compile out, but the latency histogram — which [`RunMetrics`]
//! carries unconditionally — is still exported.

use icn_core::config::ExperimentConfig;
use icn_core::design::DesignKind;
use icn_core::instrument::SimObs;
use icn_core::metrics::{Improvement, RunMetrics};
use icn_core::sweep::{run_cells_with, Scenario, SweepCell};
use icn_obs::{Registry, Snapshot, TraceSink};
use std::path::PathBuf;
use std::sync::Arc;

/// Default per-request trace sampling (keep every Nth record).
pub const DEFAULT_TRACE_SAMPLE: u64 = 64;

/// Telemetry collector for one binary invocation: a metric registry, an
/// optional JSON snapshot sink, and an optional JSONL trace sink.
pub struct Telemetry {
    registry: Registry,
    out: Option<PathBuf>,
    trace: Option<Arc<TraceSink>>,
}

impl Telemetry {
    /// Builds a collector from the process command line (see the module
    /// docs for the flags). `bin` labels progress output.
    pub fn from_env(bin: &str) -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let get = |flag: &str| -> Option<String> {
            args.iter()
                .position(|a| a == flag)
                .and_then(|i| args.get(i + 1))
                .cloned()
        };
        let sample = get("--sample")
            .and_then(|s| s.parse().ok())
            .unwrap_or(DEFAULT_TRACE_SAMPLE);
        let trace = get("--trace").map(|path| {
            let sink = TraceSink::to_file(&path, sample)
                .unwrap_or_else(|e| panic!("cannot open trace file {path}: {e}"));
            eprintln!("[{bin}] tracing every {sample}th request to {path}");
            Arc::new(sink)
        });
        let t = Self {
            registry: Registry::new(),
            out: get("--telemetry").map(PathBuf::from),
            trace,
        };
        t.registry.counter("bench.runs"); // always present in the snapshot
        t
    }

    /// A collector that parses nothing and persists nothing (tests).
    pub fn disabled() -> Self {
        Self {
            registry: Registry::new(),
            out: None,
            trace: None,
        }
    }

    /// The registry runs record into; usable for binary-specific counters
    /// (e.g. `bench.traces_synthesized`).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Instrumentation for one simulator run of `total` requests,
    /// labelled `label` in progress lines and trace records. The label is
    /// `&'static` (design names are), so records borrow it allocation-free.
    pub fn obs(&self, label: &'static str, total: u64) -> SimObs {
        let mut obs = SimObs::new(&self.registry, label).with_progress(label, total);
        if let Some(sink) = &self.trace {
            obs = obs.with_trace(Arc::clone(sink));
        }
        obs
    }

    /// Folds one finished run into the collector: bumps `bench.runs` and
    /// merges the run's latency histogram into `sim.latency_milli`
    /// (millicost units, see [`icn_core::metrics::LATENCY_HIST_SCALE`]).
    pub fn record_run(&self, run: &RunMetrics) {
        self.registry.counter("bench.runs").inc();
        self.registry
            .merge_histogram("sim.latency_milli", &run.latency_hist);
    }

    /// Instrumented [`Scenario::improvement`].
    pub fn improvement(&self, s: &Scenario, cfg: ExperimentConfig) -> Improvement {
        self.improvement_detailed(s, cfg).0
    }

    /// Instrumented [`Scenario::improvement_detailed`].
    pub fn improvement_detailed(
        &self,
        s: &Scenario,
        cfg: ExperimentConfig,
    ) -> (Improvement, RunMetrics) {
        let obs = self.obs(cfg.design.name(), s.trace.len() as u64);
        let (imp, run) = s.improvement_instrumented(cfg, obs);
        self.record_run(&run);
        (imp, run)
    }

    /// Runs a batch of sweep cells — in parallel over [`crate::jobs`]
    /// workers — returning `(Improvement, RunMetrics)` per cell in
    /// submission order. Output is bit-identical at any worker count:
    /// simulation results come from [`run_cells_with`]'s ordered merge,
    /// per-worker metric registries fold into this collector with
    /// commutative adds, and per-run latency histograms merge in
    /// submission order. Only wall-clock timer durations vary.
    ///
    /// With `JOBS=1` — or when a `--trace` sink is active, since a
    /// streamed JSONL trace is inherently completion-ordered — this is
    /// exactly the sequential instrumented path (progress lines included).
    pub fn improvement_batch(&self, cells: &[SweepCell<'_>]) -> Vec<(Improvement, RunMetrics)> {
        self.improvement_batch_jobs(cells, crate::jobs())
    }

    /// [`Telemetry::improvement_batch`] with an explicit worker count.
    pub fn improvement_batch_jobs(
        &self,
        cells: &[SweepCell<'_>],
        jobs: usize,
    ) -> Vec<(Improvement, RunMetrics)> {
        if jobs <= 1 || self.trace.is_some() {
            return cells
                .iter()
                .map(|c| self.improvement_detailed(c.scenario, c.cfg.clone()))
                .collect();
        }
        let workers: Vec<Registry> = (0..jobs).map(|_| Registry::new()).collect();
        let results = run_cells_with(cells, jobs, |worker, _idx, cell| {
            Some(SimObs::new(&workers[worker], cell.cfg.design.name()))
        });
        // Deterministic merge: worker registries in worker-index order
        // (commutative counter/histogram adds), then each run's latency
        // histogram in submission order — the same order the sequential
        // path records them.
        for r in &workers {
            self.registry.merge_from(r);
        }
        for (_, run) in &results {
            self.record_run(run);
        }
        results
    }

    /// Batched [`Telemetry::nr_vs_edge_gap`]: one `(scenario, template)`
    /// pair per output row, expanded to an ICN-NR and an EDGE cell each
    /// (the template's design field is overwritten, as in the scalar
    /// form), all run through one [`Telemetry::improvement_batch`].
    pub fn nr_vs_edge_gap_batch(
        &self,
        pairs: &[(&Scenario, ExperimentConfig)],
    ) -> Vec<Improvement> {
        let cells: Vec<SweepCell<'_>> = pairs
            .iter()
            .flat_map(|(s, template)| {
                let mut nr_cfg = template.clone();
                nr_cfg.design = DesignKind::IcnNr;
                let mut edge_cfg = template.clone();
                edge_cfg.design = DesignKind::Edge;
                [
                    SweepCell {
                        scenario: s,
                        cfg: nr_cfg,
                    },
                    SweepCell {
                        scenario: s,
                        cfg: edge_cfg,
                    },
                ]
            })
            .collect();
        self.improvement_batch(&cells)
            .chunks(2)
            .map(|pair| Improvement::gap(&pair[0].0, &pair[1].0))
            .collect()
    }

    /// Instrumented [`Scenario::nr_vs_edge_gap`].
    pub fn nr_vs_edge_gap(&self, s: &Scenario, template: &ExperimentConfig) -> Improvement {
        let mut nr_cfg = template.clone();
        nr_cfg.design = DesignKind::IcnNr;
        let mut edge_cfg = template.clone();
        edge_cfg.design = DesignKind::Edge;
        let nr = self.improvement(s, nr_cfg);
        let edge = self.improvement(s, edge_cfg);
        Improvement::gap(&nr, &edge)
    }

    /// A snapshot of everything recorded so far.
    pub fn snapshot(&self) -> Snapshot {
        self.registry.snapshot()
    }

    /// Flushes the trace sink and writes the JSON snapshot sidecar (plus
    /// its human-readable table to stderr). Call once at the end of main.
    pub fn finish(&self) {
        if let Some(sink) = &self.trace {
            if let Err(e) = sink.flush() {
                eprintln!("warning: trace flush failed: {e}");
            }
            eprintln!(
                "trace: {} records written ({} offered)",
                sink.written(),
                sink.offered()
            );
        }
        let Some(path) = &self.out else { return };
        let snap = self.snapshot();
        match std::fs::write(path, snap.to_json()) {
            Ok(()) => eprintln!("telemetry snapshot written to {}", path.display()),
            Err(e) => {
                eprintln!("error: cannot write telemetry to {}: {e}", path.display());
                std::process::exit(1);
            }
        }
        eprint!("{}", snap.render_table());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icn_topology::AccessTree;
    use icn_workload::origin::OriginPolicy;
    use icn_workload::trace::TraceConfig;

    fn tiny_scenario() -> Scenario {
        let mut cfg = TraceConfig::small();
        cfg.requests = 5_000;
        cfg.objects = 500;
        Scenario::build(
            icn_topology::pop::abilene(),
            AccessTree::new(2, 2),
            cfg,
            OriginPolicy::PopulationProportional,
        )
    }

    #[test]
    fn telemetry_collects_runs_and_latency() {
        let t = Telemetry::disabled();
        let s = tiny_scenario();
        let imp = t.improvement(&s, ExperimentConfig::baseline(DesignKind::Edge));
        assert!(imp.latency_pct > 0.0);
        let snap = t.snapshot();
        assert_eq!(snap.counters["bench.runs"], 1);
        let lat = &snap.histograms["sim.latency_milli"];
        assert_eq!(lat.count, s.trace.len() as u64);
        // The sidecar JSON round-trips.
        let back = Snapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn parallel_batch_matches_sequential_bit_for_bit() {
        let s = tiny_scenario();
        let cells = || -> Vec<SweepCell<'_>> {
            DesignKind::figure6_designs()
                .iter()
                .map(|&d| SweepCell {
                    scenario: &s,
                    cfg: ExperimentConfig::baseline(d),
                })
                .collect()
        };
        let t_seq = Telemetry::disabled();
        let seq = t_seq.improvement_batch_jobs(&cells(), 1);
        let t_par = Telemetry::disabled();
        let par = t_par.improvement_batch_jobs(&cells(), 4);
        assert_eq!(seq.len(), par.len());
        for (i, ((imp_s, run_s), (imp_p, run_p))) in seq.iter().zip(&par).enumerate() {
            assert_eq!(imp_s, imp_p, "cell {i}: improvement");
            assert_eq!(run_s, run_p, "cell {i}: run metrics");
        }
        // The merged telemetry agrees on everything except wall-clock
        // timer durations.
        let snap_seq = t_seq.snapshot();
        let snap_par = t_par.snapshot();
        assert_eq!(snap_seq.counters, snap_par.counters);
        assert_eq!(snap_seq.histograms, snap_par.histograms);
        assert_eq!(
            snap_seq.timers.keys().collect::<Vec<_>>(),
            snap_par.timers.keys().collect::<Vec<_>>()
        );
    }

    #[test]
    fn gap_batch_matches_scalar_gaps() {
        let s = tiny_scenario();
        let t = Telemetry::disabled();
        let template = ExperimentConfig::baseline(DesignKind::Edge);
        let mut small_f = template.clone();
        small_f.f_fraction = 0.01;
        let batch = t.nr_vs_edge_gap_batch(&[(&s, template.clone()), (&s, small_f.clone())]);
        let t2 = Telemetry::disabled();
        assert_eq!(batch[0], t2.nr_vs_edge_gap(&s, &template));
        assert_eq!(batch[1], t2.nr_vs_edge_gap(&s, &small_f));
    }

    #[test]
    fn gap_matches_uninstrumented_scenario_gap() {
        let t = Telemetry::disabled();
        let s = tiny_scenario();
        let template = ExperimentConfig::baseline(DesignKind::Edge);
        let ours = t.nr_vs_edge_gap(&s, &template);
        assert_eq!(ours, s.nr_vs_edge_gap(&template));
        assert_eq!(t.snapshot().counters["bench.runs"], 2);
    }
}
