//! Run telemetry shared by every figure/table binary.
//!
//! Each binary accepts four optional flags (anywhere on its command line;
//! unrecognized flags are left for the binary's own parser):
//!
//! - `--telemetry PATH` — write an [`icn_obs::Snapshot`] of every counter,
//!   timer, and the merged request-latency histogram as JSON to `PATH`
//!   when the binary finishes, and print the human-readable table to
//!   stderr.
//! - `--trace PATH` — stream sampled per-request [`icn_obs::TraceRecord`]s
//!   as JSONL to `PATH`. **Tracing forces sequential sweeps**: a streamed
//!   JSONL trace is completion-ordered, so `JOBS > 1` is ignored (with a
//!   stderr warning) while a trace sink is active.
//! - `--sample N` — keep every `N`th trace record (default 64).
//! - `--flight PATH` — write the sweep [`FlightRecorder`] JSON (totals plus
//!   the ring of recent cell completions) to `PATH` at exit. The recorder
//!   runs regardless; the flag only persists it. A panic mid-sweep dumps
//!   the same JSON to stderr.
//!
//! Setting the `ICN_PROFILE` environment variable (to anything but `0`,
//! `false`, or empty) attaches a sampling hot-path [`Profiler`] to every
//! simulator run; the per-phase self/total table goes to stderr at exit.
//! Profiling never changes the printed figures: spans alter no control
//! flow and all profiler output is stderr/sidecar-only.
//!
//! Simulator runs are always instrumented (progress lines with
//! requests/sec + ETA go to stderr); the flags only control what is
//! persisted. With `--no-default-features` the `sim.*` counters, span
//! timers, and profiler spans compile out, but the latency histogram —
//! which [`RunMetrics`] carries unconditionally — is still exported.

use icn_core::config::ExperimentConfig;
use icn_core::design::DesignKind;
use icn_core::instrument::{CellSample, SimObs};
use icn_core::metrics::{Improvement, RunMetrics};
use icn_core::sweep::{run_cells_reported, Scenario, SweepCell};
use icn_obs::{
    install_panic_dump, CellEvent, FlightRecorder, ProfileSnapshot, Profiler, Registry, Snapshot,
    TraceSink,
};
use std::path::PathBuf;
use std::sync::{Arc, Once};

/// Default per-request trace sampling (keep every Nth record).
pub const DEFAULT_TRACE_SAMPLE: u64 = 64;

/// True when the `ICN_PROFILE` environment variable asks for the hot-path
/// span profiler (set, and not `0`/`false`/empty).
pub fn profile_enabled() -> bool {
    match std::env::var("ICN_PROFILE") {
        Ok(v) => !matches!(v.trim(), "" | "0" | "false"),
        Err(_) => false,
    }
}

/// Telemetry collector for one binary invocation: a metric registry, an
/// optional JSON snapshot sink, an optional JSONL trace sink, a sweep
/// flight recorder, and an optional hot-path span profiler.
pub struct Telemetry {
    registry: Registry,
    out: Option<PathBuf>,
    trace: Option<Arc<TraceSink>>,
    flight: Arc<FlightRecorder>,
    flight_out: Option<PathBuf>,
    profiler: Option<Profiler>,
    bin: String,
    warned_trace_seq: Once,
}

impl Telemetry {
    /// Builds a collector from the process command line (see the module
    /// docs for the flags). `bin` labels progress output.
    pub fn from_env(bin: &str) -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let get = |flag: &str| -> Option<String> {
            args.iter()
                .position(|a| a == flag)
                .and_then(|i| args.get(i + 1))
                .cloned()
        };
        let sample = get("--sample")
            .and_then(|s| s.parse().ok())
            .unwrap_or(DEFAULT_TRACE_SAMPLE);
        let trace = get("--trace").map(|path| {
            let sink = TraceSink::to_file(&path, sample)
                .unwrap_or_else(|e| panic!("cannot open trace file {path}: {e}"));
            eprintln!("[{bin}] tracing every {sample}th request to {path}");
            Arc::new(sink)
        });
        let flight = Arc::new(FlightRecorder::new(bin));
        install_panic_dump(Arc::clone(&flight));
        let profiler = profile_enabled().then(|| {
            eprintln!("[{bin}] ICN_PROFILE set: hot-path span profiler attached");
            Profiler::new()
        });
        let t = Self {
            registry: Registry::new(),
            out: get("--telemetry").map(PathBuf::from),
            trace,
            flight,
            flight_out: get("--flight").map(PathBuf::from),
            profiler,
            bin: bin.to_string(),
            warned_trace_seq: Once::new(),
        };
        t.registry.counter("bench.runs"); // always present in the snapshot
        t
    }

    /// A collector that parses nothing and persists nothing (tests).
    pub fn disabled() -> Self {
        Self {
            registry: Registry::new(),
            out: None,
            trace: None,
            flight: Arc::new(FlightRecorder::new("test").silent()),
            flight_out: None,
            profiler: None,
            bin: "test".to_string(),
            warned_trace_seq: Once::new(),
        }
    }

    /// [`Telemetry::disabled`] with the span profiler attached (tests).
    pub fn disabled_with_profiler() -> Self {
        Self {
            profiler: Some(Profiler::new()),
            ..Self::disabled()
        }
    }

    /// The registry runs record into; usable for binary-specific counters
    /// (e.g. `bench.traces_synthesized`).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Instrumentation for one simulator run of `total` requests,
    /// labelled `label` in progress lines and trace records. The label is
    /// `&'static` (design names are), so records borrow it allocation-free.
    pub fn obs(&self, label: &'static str, total: u64) -> SimObs {
        let mut obs = SimObs::new(&self.registry, label).with_progress(label, total);
        if let Some(sink) = &self.trace {
            obs = obs.with_trace(Arc::clone(sink));
        }
        if let Some(profiler) = &self.profiler {
            obs = obs.with_profiler(profiler);
        }
        obs
    }

    /// The sweep flight recorder (always running; `--flight PATH`
    /// persists it, a panic dumps it to stderr).
    pub fn flight(&self) -> &Arc<FlightRecorder> {
        &self.flight
    }

    /// The merged hot-path profile so far, when `ICN_PROFILE` is set.
    pub fn profile_snapshot(&self) -> Option<ProfileSnapshot> {
        self.profiler.as_ref().map(Profiler::snapshot)
    }

    /// Folds one finished run into the collector: bumps `bench.runs` and
    /// merges the run's latency histogram into `sim.latency_milli`
    /// (millicost units, see [`icn_core::metrics::LATENCY_HIST_SCALE`]).
    pub fn record_run(&self, run: &RunMetrics) {
        self.registry.counter("bench.runs").inc();
        self.registry
            .merge_histogram("sim.latency_milli", &run.latency_hist);
    }

    /// Instrumented [`Scenario::improvement`].
    pub fn improvement(&self, s: &Scenario, cfg: ExperimentConfig) -> Improvement {
        self.improvement_detailed(s, cfg).0
    }

    /// Instrumented [`Scenario::improvement_detailed`].
    pub fn improvement_detailed(
        &self,
        s: &Scenario,
        cfg: ExperimentConfig,
    ) -> (Improvement, RunMetrics) {
        let obs = self.obs(cfg.design.name(), s.trace.len() as u64);
        let (imp, run) = s.improvement_instrumented(cfg, obs);
        self.record_run(&run);
        (imp, run)
    }

    /// Runs a batch of sweep cells — in parallel over [`crate::jobs`]
    /// workers — returning `(Improvement, RunMetrics)` per cell in
    /// submission order. Output is bit-identical at any worker count:
    /// simulation results come from [`run_cells_with`]'s ordered merge,
    /// per-worker metric registries fold into this collector with
    /// commutative adds, and per-run latency histograms merge in
    /// submission order. Only wall-clock timer durations vary.
    ///
    /// With `JOBS=1` — or when a `--trace` sink is active, since a
    /// streamed JSONL trace is inherently completion-ordered — this is
    /// exactly the sequential instrumented path (progress lines included).
    pub fn improvement_batch(&self, cells: &[SweepCell<'_>]) -> Vec<(Improvement, RunMetrics)> {
        self.improvement_batch_jobs(cells, crate::jobs())
    }

    /// [`Telemetry::improvement_batch`] with an explicit worker count.
    pub fn improvement_batch_jobs(
        &self,
        cells: &[SweepCell<'_>],
        jobs: usize,
    ) -> Vec<(Improvement, RunMetrics)> {
        if self.trace.is_some() && jobs > 1 {
            self.warned_trace_seq.call_once(|| {
                eprintln!(
                    "[{}] warning: --trace forces a sequential sweep (JOBS={jobs} \
                     ignored) — a streamed JSONL trace is completion-ordered; drop \
                     --trace to parallelize (see EXPERIMENTS.md, \"Parallelism\")",
                    self.bin
                );
            });
        }
        self.flight.add_planned(cells.len() as u64);
        // Per-cell completion accounting feeds the flight recorder; the
        // labels come from the caller's cells, so the panic-dump ring can
        // say *which* configuration each completed cell was.
        let on_done = |sample: CellSample| {
            self.flight.record(CellEvent {
                index: sample.index,
                label: cells[sample.index].cfg.design.name().to_string(),
                requests: sample.requests,
                wall_ns: sample.wall_ns,
                peak_rss_kb: sample.peak_rss_kb,
            });
        };
        let results = if jobs <= 1 || self.trace.is_some() {
            // Sequential: full instrumentation (progress lines, trace
            // sink, profiler) straight into this collector's registry.
            run_cells_reported(
                cells,
                1,
                |_, _, cell| {
                    Some(self.obs(cell.cfg.design.name(), cell.scenario.trace.len() as u64))
                },
                on_done,
            )
        } else {
            // Parallel: per-worker registries and profilers, merged
            // deterministically afterwards — registries in worker-index
            // order (commutative counter/histogram adds), profilers
            // likewise (profile merge is proptest-verified associative
            // and commutative), then each run's latency histogram in
            // submission order — the same order the sequential path
            // records them.
            let workers: Vec<Registry> = (0..jobs).map(|_| Registry::new()).collect();
            let profilers: Vec<Profiler> = (0..jobs).map(|_| Profiler::new()).collect();
            let results = run_cells_reported(
                cells,
                jobs,
                |worker, _idx, cell| {
                    let mut obs = SimObs::new(&workers[worker], cell.cfg.design.name());
                    if self.profiler.is_some() {
                        obs = obs.with_profiler(&profilers[worker]);
                    }
                    Some(obs)
                },
                on_done,
            );
            for r in &workers {
                self.registry.merge_from(r);
            }
            if let Some(profiler) = &self.profiler {
                for w in &profilers {
                    profiler.merge_from(w);
                }
            }
            results
        };
        for (_, run) in &results {
            self.record_run(run);
        }
        results
    }

    /// Batched [`Telemetry::nr_vs_edge_gap`]: one `(scenario, template)`
    /// pair per output row, expanded to an ICN-NR and an EDGE cell each
    /// (the template's design field is overwritten, as in the scalar
    /// form), all run through one [`Telemetry::improvement_batch`].
    pub fn nr_vs_edge_gap_batch(
        &self,
        pairs: &[(&Scenario, ExperimentConfig)],
    ) -> Vec<Improvement> {
        let cells: Vec<SweepCell<'_>> = pairs
            .iter()
            .flat_map(|(s, template)| {
                let mut nr_cfg = template.clone();
                nr_cfg.design = DesignKind::IcnNr;
                let mut edge_cfg = template.clone();
                edge_cfg.design = DesignKind::Edge;
                [
                    SweepCell {
                        scenario: s,
                        cfg: nr_cfg,
                    },
                    SweepCell {
                        scenario: s,
                        cfg: edge_cfg,
                    },
                ]
            })
            .collect();
        self.improvement_batch(&cells)
            .chunks(2)
            .map(|pair| Improvement::gap(&pair[0].0, &pair[1].0))
            .collect()
    }

    /// Instrumented [`Scenario::nr_vs_edge_gap`].
    pub fn nr_vs_edge_gap(&self, s: &Scenario, template: &ExperimentConfig) -> Improvement {
        let mut nr_cfg = template.clone();
        nr_cfg.design = DesignKind::IcnNr;
        let mut edge_cfg = template.clone();
        edge_cfg.design = DesignKind::Edge;
        let nr = self.improvement(s, nr_cfg);
        let edge = self.improvement(s, edge_cfg);
        Improvement::gap(&nr, &edge)
    }

    /// A snapshot of everything recorded so far.
    pub fn snapshot(&self) -> Snapshot {
        self.registry.snapshot()
    }

    /// Flushes the trace sink, persists the flight record and profile,
    /// and writes the JSON snapshot sidecar (plus its human-readable
    /// table to stderr). Call once at the end of main.
    pub fn finish(&self) {
        if self.flight.done() > 0 {
            self.flight.finish();
        }
        if let Some(path) = &self.flight_out {
            match std::fs::write(path, self.flight.to_json()) {
                Ok(()) => eprintln!("flight record written to {}", path.display()),
                Err(e) => {
                    eprintln!(
                        "error: cannot write flight record to {}: {e}",
                        path.display()
                    );
                    std::process::exit(1);
                }
            }
        }
        if let Some(profiler) = &self.profiler {
            eprint!("{}", profiler.snapshot().render_table());
        }
        if let Some(sink) = &self.trace {
            if let Err(e) = sink.flush() {
                eprintln!("warning: trace flush failed: {e}");
            }
            eprintln!(
                "trace: {} records written ({} offered)",
                sink.written(),
                sink.offered()
            );
        }
        let Some(path) = &self.out else { return };
        let snap = self.snapshot();
        match std::fs::write(path, snap.to_json()) {
            Ok(()) => eprintln!("telemetry snapshot written to {}", path.display()),
            Err(e) => {
                eprintln!("error: cannot write telemetry to {}: {e}", path.display());
                std::process::exit(1);
            }
        }
        eprint!("{}", snap.render_table());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icn_topology::AccessTree;
    use icn_workload::origin::OriginPolicy;
    use icn_workload::trace::TraceConfig;

    fn tiny_scenario() -> Scenario {
        let mut cfg = TraceConfig::small();
        cfg.requests = 5_000;
        cfg.objects = 500;
        Scenario::build(
            icn_topology::pop::abilene(),
            AccessTree::new(2, 2),
            cfg,
            OriginPolicy::PopulationProportional,
        )
    }

    #[test]
    fn telemetry_collects_runs_and_latency() {
        let t = Telemetry::disabled();
        let s = tiny_scenario();
        let imp = t.improvement(&s, ExperimentConfig::baseline(DesignKind::Edge));
        assert!(imp.latency_pct > 0.0);
        let snap = t.snapshot();
        assert_eq!(snap.counters["bench.runs"], 1);
        let lat = &snap.histograms["sim.latency_milli"];
        assert_eq!(lat.count, s.trace.len() as u64);
        // The sidecar JSON round-trips.
        let back = Snapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn parallel_batch_matches_sequential_bit_for_bit() {
        let s = tiny_scenario();
        let cells = || -> Vec<SweepCell<'_>> {
            DesignKind::figure6_designs()
                .iter()
                .map(|&d| SweepCell {
                    scenario: &s,
                    cfg: ExperimentConfig::baseline(d),
                })
                .collect()
        };
        let t_seq = Telemetry::disabled();
        let seq = t_seq.improvement_batch_jobs(&cells(), 1);
        let t_par = Telemetry::disabled();
        let par = t_par.improvement_batch_jobs(&cells(), 4);
        assert_eq!(seq.len(), par.len());
        for (i, ((imp_s, run_s), (imp_p, run_p))) in seq.iter().zip(&par).enumerate() {
            assert_eq!(imp_s, imp_p, "cell {i}: improvement");
            assert_eq!(run_s, run_p, "cell {i}: run metrics");
        }
        // The merged telemetry agrees on everything except wall-clock
        // timer durations.
        let snap_seq = t_seq.snapshot();
        let snap_par = t_par.snapshot();
        assert_eq!(snap_seq.counters, snap_par.counters);
        assert_eq!(snap_seq.histograms, snap_par.histograms);
        assert_eq!(
            snap_seq.timers.keys().collect::<Vec<_>>(),
            snap_par.timers.keys().collect::<Vec<_>>()
        );
    }

    #[test]
    fn gap_batch_matches_scalar_gaps() {
        let s = tiny_scenario();
        let t = Telemetry::disabled();
        let template = ExperimentConfig::baseline(DesignKind::Edge);
        let mut small_f = template.clone();
        small_f.f_fraction = 0.01;
        let batch = t.nr_vs_edge_gap_batch(&[(&s, template.clone()), (&s, small_f.clone())]);
        let t2 = Telemetry::disabled();
        assert_eq!(batch[0], t2.nr_vs_edge_gap(&s, &template));
        assert_eq!(batch[1], t2.nr_vs_edge_gap(&s, &small_f));
    }

    #[test]
    fn flight_recorder_sees_every_cell_at_any_worker_count() {
        let s = tiny_scenario();
        let cells: Vec<SweepCell<'_>> = DesignKind::figure6_designs()
            .iter()
            .map(|&d| SweepCell {
                scenario: &s,
                cfg: ExperimentConfig::baseline(d),
            })
            .collect();
        for jobs in [1usize, 4] {
            let t = Telemetry::disabled();
            let results = t.improvement_batch_jobs(&cells, jobs);
            assert_eq!(t.flight().done(), cells.len() as u64, "jobs={jobs}");
            let root = icn_obs::json::parse(&t.flight().to_json()).unwrap();
            let get = |k: &str| root.get(k).and_then(icn_obs::json::Value::as_u64);
            assert_eq!(get("cells_done"), Some(cells.len() as u64));
            assert_eq!(get("cells_planned"), Some(cells.len() as u64));
            let total: u64 = results.iter().map(|(_, r)| r.requests).sum();
            assert_eq!(get("requests"), Some(total));
            let recent = root
                .get("recent")
                .and_then(icn_obs::json::Value::as_arr)
                .unwrap();
            assert_eq!(recent.len(), cells.len());
            // Every cell appears with its design label (order may vary
            // when parallel; the ring holds completion order).
            for (i, cell) in cells.iter().enumerate() {
                assert!(
                    recent.iter().any(|e| {
                        e.get("index").and_then(icn_obs::json::Value::as_u64) == Some(i as u64)
                            && e.get("label").and_then(icn_obs::json::Value::as_str)
                                == Some(cell.cfg.design.name())
                    }),
                    "jobs={jobs}: cell {i} missing from flight ring"
                );
            }
        }
    }

    #[test]
    fn profiler_does_not_perturb_results_and_merges_across_workers() {
        let s = tiny_scenario();
        let cells = || -> Vec<SweepCell<'_>> {
            DesignKind::figure6_designs()
                .iter()
                .map(|&d| SweepCell {
                    scenario: &s,
                    cfg: ExperimentConfig::baseline(d),
                })
                .collect()
        };
        let plain = Telemetry::disabled().improvement_batch_jobs(&cells(), 1);
        for jobs in [1usize, 4] {
            let t = Telemetry::disabled_with_profiler();
            let profiled = t.improvement_batch_jobs(&cells(), jobs);
            // The profiling-never-changes-numbers invariant.
            assert_eq!(profiled, plain, "jobs={jobs}");
            let snap = t.profile_snapshot().unwrap();
            #[cfg(feature = "obs")]
            {
                let req = &snap.phases["sim.request"];
                assert!(req.count > 0, "jobs={jobs}");
                // Child phases nest under the request span.
                let dir = &snap.phases["sim.dir_lookup"];
                assert!(dir.total_ns.sum <= req.total_ns.sum, "jobs={jobs}");
                for phase in snap.phases.values() {
                    assert!(phase.self_ns.sum <= phase.total_ns.sum);
                }
            }
            #[cfg(not(feature = "obs"))]
            assert!(snap.phases.is_empty());
        }
    }

    #[test]
    fn gap_matches_uninstrumented_scenario_gap() {
        let t = Telemetry::disabled();
        let s = tiny_scenario();
        let template = ExperimentConfig::baseline(DesignKind::Edge);
        let ours = t.nr_vs_edge_gap(&s, &template);
        assert_eq!(ours, s.nr_vs_edge_gap(&template));
        assert_eq!(t.snapshot().counters["bench.runs"], 2);
    }
}
