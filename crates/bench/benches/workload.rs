//! Microbenchmarks for workload synthesis: Zipf sampling, trace
//! generation, skew model construction, and Zipf fitting.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use icn_workload::fit::fit_zipf;
use icn_workload::skew::SpatialModel;
use icn_workload::trace::{Locality, Trace, TraceConfig};
use icn_workload::zipf::Zipf;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn workload_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload");
    group.sample_size(20);

    let zipf = Zipf::new(100_000, 1.04);
    let mut rng = StdRng::seed_from_u64(1);
    group.throughput(criterion::Throughput::Elements(1));
    group.bench_function("zipf_sample", |b| {
        b.iter(|| black_box(zipf.sample(&mut rng)))
    });

    let populations: Vec<u64> = icn_topology::pop::att().populations.clone();
    let mut cfg = TraceConfig::small();
    cfg.requests = 100_000;
    cfg.objects = 20_000;
    group.throughput(criterion::Throughput::Elements(cfg.requests as u64));
    group.bench_function("trace_synthesis_irm", |b| {
        b.iter(|| black_box(Trace::synthesize(cfg.clone(), &populations, 32).len()))
    });
    let mut loc_cfg = cfg.clone();
    loc_cfg.locality = Some(Locality::cdn_default());
    group.bench_function("trace_synthesis_locality", |b| {
        b.iter(|| black_box(Trace::synthesize(loc_cfg.clone(), &populations, 32).len()))
    });

    group.throughput(criterion::Throughput::Elements(1));
    group.bench_function("spatial_model_skewed", |b| {
        b.iter(|| black_box(SpatialModel::new(20_000, 108, 0.5, 3)))
    });

    let trace = Trace::synthesize(cfg.clone(), &populations, 32);
    let counts = trace.object_counts();
    group.bench_function("fit_zipf_100k", |b| {
        b.iter(|| black_box(fit_zipf(&counts).unwrap().alpha_mle))
    });
    group.finish();
}

criterion_group!(benches, workload_benches);
criterion_main!(benches);
