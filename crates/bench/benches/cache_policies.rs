//! Microbenchmarks for the per-router cache policies — the simulator's
//! hottest data structure (hundreds of millions of probes per figure run).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use icn_cache::policy::CachePolicy;
use icn_cache::{CompactLru, Fifo, Lfu, Lru};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CAPACITY: usize = 4096;
const OPS: usize = 100_000;

fn zipf_keys(n: usize) -> Vec<u64> {
    let z = icn_workload::zipf::Zipf::new(50_000, 1.04);
    let mut rng = StdRng::seed_from_u64(42);
    (0..n).map(|_| z.sample(&mut rng) as u64).collect()
}

fn bench_policy<C: CachePolicy>(cache: &mut C, keys: &[u64]) -> u64 {
    let mut hits = 0;
    for &k in keys {
        if cache.contains(k) {
            cache.touch(k);
            hits += 1;
        } else {
            cache.insert(k);
        }
    }
    hits
}

fn cache_benches(c: &mut Criterion) {
    let keys = zipf_keys(OPS);
    let mut group = c.benchmark_group("cache_policies");
    group.sample_size(20);
    group.throughput(criterion::Throughput::Elements(OPS as u64));

    group.bench_function("compact_lru", |b| {
        b.iter(|| {
            let mut cache = CompactLru::new(CAPACITY);
            black_box(bench_policy(&mut cache, &keys))
        })
    });
    group.bench_function("generic_lru", |b| {
        b.iter(|| {
            let mut cache: Lru<u64> = Lru::new(CAPACITY);
            let mut hits = 0;
            for &k in &keys {
                if cache.contains(&k) {
                    cache.touch(&k);
                    hits += 1;
                } else {
                    cache.insert(k);
                }
            }
            black_box(hits)
        })
    });
    group.bench_function("lfu", |b| {
        b.iter(|| {
            let mut cache = Lfu::new(CAPACITY);
            black_box(bench_policy(&mut cache, &keys))
        })
    });
    group.bench_function("fifo", |b| {
        b.iter(|| {
            let mut cache = Fifo::new(CAPACITY);
            black_box(bench_policy(&mut cache, &keys))
        })
    });

    // Steady-state probe cost on a warm cache.
    group.bench_function("compact_lru_warm_probe", |b| {
        let mut cache = CompactLru::new(CAPACITY);
        for &k in &keys {
            cache.insert(k);
        }
        let mut rng = StdRng::seed_from_u64(7);
        b.iter(|| {
            let k = rng.gen_range(0..50_000u64);
            black_box(cache.contains(k))
        })
    });
    group.finish();
}

criterion_group!(benches, cache_benches);
criterion_main!(benches);
