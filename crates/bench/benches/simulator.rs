//! End-to-end simulator throughput (requests/second) per design.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use icn_core::config::ExperimentConfig;
use icn_core::design::DesignKind;
use icn_core::sim::Simulator;
use icn_topology::{pop, AccessTree, Network};
use icn_workload::origin::{assign_origins, OriginPolicy};
use icn_workload::trace::{Trace, TraceConfig};

const REQUESTS: usize = 50_000;

fn simulator_benches(c: &mut Criterion) {
    let net = Network::new(pop::abilene(), AccessTree::baseline());
    let mut trace_cfg = TraceConfig::small();
    trace_cfg.requests = REQUESTS;
    trace_cfg.objects = 10_000;
    trace_cfg.alpha = 1.04;
    let trace = Trace::synthesize(trace_cfg, &net.core.populations, net.leaves_per_pop());
    let origins = assign_origins(
        OriginPolicy::PopulationProportional,
        trace.config.objects,
        &net.core.populations,
        1,
    );

    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    group.throughput(criterion::Throughput::Elements(REQUESTS as u64));
    for design in [
        DesignKind::NoCache,
        DesignKind::Edge,
        DesignKind::EdgeCoop,
        DesignKind::IcnSp,
        DesignKind::IcnNr,
    ] {
        group.bench_function(design.name(), |b| {
            b.iter(|| {
                let mut sim = Simulator::new(
                    &net,
                    ExperimentConfig::baseline(design),
                    &origins,
                    &trace.object_sizes,
                );
                sim.run(&trace.requests);
                black_box(sim.metrics().cache_hits)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, simulator_benches);
criterion_main!(benches);
