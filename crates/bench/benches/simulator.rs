//! End-to-end simulator throughput (requests/second) per design.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use icn_core::config::ExperimentConfig;
use icn_core::design::DesignKind;
use icn_core::sim::Simulator;
use icn_topology::{pop, AccessTree, Network};
use icn_workload::origin::{assign_origins, OriginPolicy};
use icn_workload::trace::{Trace, TraceConfig};

const REQUESTS: usize = 50_000;

fn simulator_benches(c: &mut Criterion) {
    let net = Network::new(pop::abilene(), AccessTree::baseline());
    let mut trace_cfg = TraceConfig::small();
    trace_cfg.requests = REQUESTS;
    trace_cfg.objects = 10_000;
    trace_cfg.alpha = 1.04;
    let trace = Trace::synthesize(trace_cfg, &net.core.populations, net.leaves_per_pop());
    let origins = assign_origins(
        OriginPolicy::PopulationProportional,
        trace.config.objects,
        &net.core.populations,
        1,
    );

    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    group.throughput(criterion::Throughput::Elements(REQUESTS as u64));
    for design in [
        DesignKind::NoCache,
        DesignKind::Edge,
        DesignKind::EdgeCoop,
        DesignKind::IcnSp,
        DesignKind::IcnNr,
    ] {
        group.bench_function(design.name(), |b| {
            b.iter(|| {
                let mut sim = Simulator::new(
                    &net,
                    ExperimentConfig::baseline(design),
                    &origins,
                    &trace.object_sizes,
                );
                sim.run(&trace.requests);
                black_box(sim.metrics().cache_hits)
            })
        });
    }
    group.finish();

    // Cooperative sibling lookup under a wide tree (arity 8 → 7 siblings
    // probed per edge miss): guards the scratch-buffer fix that removed the
    // per-miss heap allocation in the sibling walk.
    let wide_net = Network::new(pop::abilene(), AccessTree::new(8, 2));
    let mut wide_cfg = TraceConfig::small();
    wide_cfg.requests = REQUESTS;
    wide_cfg.objects = 10_000;
    wide_cfg.alpha = 1.04;
    let wide_trace = Trace::synthesize(
        wide_cfg,
        &wide_net.core.populations,
        wide_net.leaves_per_pop(),
    );
    let wide_origins = assign_origins(
        OriginPolicy::PopulationProportional,
        wide_trace.config.objects,
        &wide_net.core.populations,
        1,
    );
    let mut coop = c.benchmark_group("sibling-coop");
    coop.sample_size(10);
    coop.throughput(criterion::Throughput::Elements(REQUESTS as u64));
    coop.bench_function("EDGE-Coop/arity8", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(
                &wide_net,
                ExperimentConfig::baseline(DesignKind::EdgeCoop),
                &wide_origins,
                &wide_trace.object_sizes,
            );
            sim.run(&wide_trace.requests);
            black_box(sim.metrics().cache_hits)
        })
    });
    coop.finish();
}

criterion_group!(benches, simulator_benches);
criterion_main!(benches);
