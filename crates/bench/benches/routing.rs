//! Microbenchmarks for the topology layer: distances, path enumeration,
//! and latency-model path costs.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use icn_core::latency::LatencyModel;
use icn_topology::{pop, AccessTree, Network};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn routing_benches(c: &mut Criterion) {
    let net = Network::new(pop::att(), AccessTree::baseline());
    let mut rng = StdRng::seed_from_u64(9);
    let pairs: Vec<(u32, u32)> = (0..1024)
        .map(|_| {
            (
                rng.gen_range(0..net.node_count()),
                rng.gen_range(0..net.node_count()),
            )
        })
        .collect();

    let mut group = c.benchmark_group("routing");
    group.sample_size(30);

    group.bench_function("network_build_att", |b| {
        b.iter(|| black_box(Network::new(pop::att(), AccessTree::baseline())))
    });

    group.bench_function("distance", |b| {
        let mut i = 0;
        b.iter(|| {
            let (a, x) = pairs[i & 1023];
            i += 1;
            black_box(net.distance(a, x))
        })
    });

    group.bench_function("path_cost_progression", |b| {
        let model = LatencyModel::Progression;
        let mut i = 0;
        b.iter(|| {
            let (a, x) = pairs[i & 1023];
            i += 1;
            black_box(model.path_cost(&net, a, x))
        })
    });

    group.bench_function("path_links", |b| {
        let mut links = Vec::with_capacity(32);
        let mut i = 0;
        b.iter(|| {
            let (a, x) = pairs[i & 1023];
            i += 1;
            links.clear();
            net.path_links_into(a, x, &mut links);
            black_box(links.len())
        })
    });

    group.bench_function("sp_path_nodes", |b| {
        let mut nodes = Vec::with_capacity(32);
        let mut i = 0;
        b.iter(|| {
            let (a, x) = pairs[i & 1023];
            i += 1;
            nodes.clear();
            net.sp_path_nodes_into(a, net.pop_of(x), &mut nodes);
            black_box(nodes.len())
        })
    });
    group.finish();
}

criterion_group!(benches, routing_benches);
criterion_main!(benches);
