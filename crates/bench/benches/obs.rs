//! Observability overhead: hot-path primitive costs and the end-to-end
//! price of instrumenting `Simulator::run`.
//!
//! The budget (DESIGN.md) is <5% on instrumented-vs-plain simulator
//! throughput — with or without the span profiler attached. Compare the
//! `simulator/instrumented` and `simulator/profiled` groups against
//! `simulator/plain` here; the primitive benches explain where the
//! nanoseconds go (counter increments and histogram records are a few ns,
//! span timers and profiler spans cost two `Instant::now()` reads plus a
//! thread-local stack frame — which is why the simulator samples them).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use icn_core::config::ExperimentConfig;
use icn_core::design::DesignKind;
use icn_core::instrument::SimObs;
use icn_core::sim::Simulator;
use icn_obs::{AtomicHistogram, Profiler, Registry};
use icn_topology::{pop, AccessTree, Network};
use icn_workload::origin::{assign_origins, OriginPolicy};
use icn_workload::trace::{Trace, TraceConfig};

fn primitive_benches(c: &mut Criterion) {
    let registry = Registry::new();
    let counter = registry.counter("bench.counter");
    let gauge = registry.gauge("bench.gauge");
    let hist = registry.histogram("bench.hist");
    let timer = registry.timer_handle("bench.timer");

    let mut group = c.benchmark_group("obs_primitives");
    group.bench_function("counter_inc", |b| b.iter(|| counter.inc()));
    group.bench_function("gauge_set", |b| b.iter(|| gauge.set(black_box(7))));
    group.bench_function("histogram_record", |b| {
        let mut v = 1u64;
        b.iter(|| {
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
            hist.record(black_box(v >> 32));
        })
    });
    group.bench_function("scoped_timer", |b| b.iter(|| drop(timer.start())));
    group.bench_function("atomic_histogram_record", |b| {
        let h = AtomicHistogram::new();
        let mut v = 1u64;
        b.iter(|| {
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record(black_box(v >> 32));
        })
    });
    let profiler = Profiler::new();
    let phase = profiler.phase("bench.phase");
    group.bench_function("profiler_span", |b| b.iter(|| drop(phase.span())));
    group.bench_function("profiler_nested_span", |b| {
        let child = profiler.phase("bench.child");
        b.iter(|| {
            let _outer = phase.span();
            drop(child.span());
        })
    });
    group.finish();
}

fn simulator_overhead_benches(c: &mut Criterion) {
    const REQUESTS: usize = 50_000;
    let net = Network::new(pop::abilene(), AccessTree::baseline());
    let mut trace_cfg = TraceConfig::small();
    trace_cfg.requests = REQUESTS;
    trace_cfg.objects = 10_000;
    trace_cfg.alpha = 1.04;
    let trace = Trace::synthesize(trace_cfg, &net.core.populations, net.leaves_per_pop());
    let origins = assign_origins(
        OriginPolicy::PopulationProportional,
        trace.config.objects,
        &net.core.populations,
        1,
    );
    let registry = Registry::new();

    let mut group = c.benchmark_group("obs_simulator");
    group.sample_size(10);
    group.throughput(criterion::Throughput::Elements(REQUESTS as u64));
    group.bench_function("plain", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(
                &net,
                ExperimentConfig::baseline(DesignKind::EdgeCoop),
                &origins,
                &trace.object_sizes,
            );
            sim.run(&trace.requests);
            black_box(sim.metrics().cache_hits)
        })
    });
    group.bench_function("instrumented", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(
                &net,
                ExperimentConfig::baseline(DesignKind::EdgeCoop),
                &origins,
                &trace.object_sizes,
            );
            sim.attach_obs(SimObs::new(&registry, "EDGE-Coop"));
            sim.run(&trace.requests);
            black_box(sim.metrics().cache_hits)
        })
    });
    let profiler = Profiler::new();
    group.bench_function("profiled", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(
                &net,
                ExperimentConfig::baseline(DesignKind::EdgeCoop),
                &origins,
                &trace.object_sizes,
            );
            sim.attach_obs(SimObs::new(&registry, "EDGE-Coop").with_profiler(&profiler));
            sim.run(&trace.requests);
            black_box(sim.metrics().cache_hits)
        })
    });
    group.finish();
}

criterion_group!(benches, primitive_benches, simulator_overhead_benches);
criterion_main!(benches);
