//! Microbenchmarks for the in-repo hash-based cryptography.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use idicn::crypto::lamport::KeyPair;
use idicn::crypto::mss::Identity;
use idicn::crypto::sha256::digest;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn crypto_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("crypto");
    group.sample_size(20);

    for size in [1usize << 10, 1 << 16, 1 << 20] {
        let data = vec![0xabu8; size];
        group.throughput(criterion::Throughput::Bytes(size as u64));
        group.bench_function(format!("sha256_{}k", size >> 10), |b| {
            b.iter(|| black_box(digest(&data)))
        });
    }

    group.throughput(criterion::Throughput::Elements(1));
    group.bench_function("lamport_keygen", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| black_box(KeyPair::generate(&mut rng)))
    });

    let kp = KeyPair::generate(&mut StdRng::seed_from_u64(2));
    let msg = digest(b"benchmark message");
    group.bench_function("lamport_sign", |b| {
        b.iter(|| black_box(kp.secret.sign(&msg)))
    });
    let sig = kp.secret.sign(&msg);
    group.bench_function("lamport_verify", |b| {
        b.iter(|| black_box(kp.public.verify(&msg, &sig)))
    });

    let mut id = Identity::generate(&mut StdRng::seed_from_u64(3), 4);
    let mss_sig = id.sign(&msg);
    let root = id.root();
    group.bench_function("mss_verify_h4", |b| {
        b.iter(|| black_box(mss_sig.verify(&msg, &root)))
    });
    group.finish();
}

criterion_group!(benches, crypto_benches);
criterion_main!(benches);
