//! Microbenchmarks for HTTP message parsing/serialization and the
//! Metalink metadata header roundtrip.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use idicn::chunk::ChunkedDigests;
use idicn::crypto::mss::Identity;
use idicn::crypto::sha256::digest;
use idicn::http::{read_request, write_request, Headers, HttpRequest};
use idicn::metalink::Metadata;
use idicn::name::{ContentName, Principal};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::Cursor;

fn http_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("http");
    group.sample_size(30);

    let mut req = HttpRequest::get("http://label.principal.idicn.org/");
    req.headers.set("Host", "label.principal.idicn.org");
    req.headers.set("User-Agent", "idicn-bench/0.1");
    req.headers.set("Accept", "*/*");
    let mut wire = Vec::new();
    write_request(&mut wire, &req).unwrap();

    group.throughput(criterion::Throughput::Bytes(wire.len() as u64));
    group.bench_function("parse_request", |b| {
        b.iter(|| {
            let parsed = read_request(&mut Cursor::new(&wire)).unwrap().unwrap();
            black_box(parsed.target.len())
        })
    });
    group.bench_function("serialize_request", |b| {
        let mut buf = Vec::with_capacity(wire.len());
        b.iter(|| {
            buf.clear();
            write_request(&mut buf, &req).unwrap();
            black_box(buf.len())
        })
    });

    // Metalink metadata roundtrip through headers (signature-heavy).
    let mut id = Identity::generate(&mut StdRng::seed_from_u64(5), 2);
    let content = vec![7u8; 256 * 1024];
    let digests = ChunkedDigests::compute(&content, 64 * 1024);
    let name = ContentName::new("bench", Principal(id.principal_digest())).unwrap();
    let binding = name.binding_bytes(&digests.full);
    let metadata = Metadata {
        signature: id.sign(&digest(&binding)),
        publisher_root: id.root(),
        name,
        digests,
        mirrors: vec!["http://127.0.0.1:1/m".into()],
    };
    group.throughput(criterion::Throughput::Elements(1));
    group.bench_function("metadata_to_headers", |b| {
        b.iter(|| {
            let mut h = Headers::new();
            metadata.to_headers(&mut h);
            black_box(h.len())
        })
    });
    let mut headers = Headers::new();
    metadata.to_headers(&mut headers);
    group.bench_function("metadata_from_headers", |b| {
        b.iter(|| black_box(Metadata::from_headers(&headers).unwrap().digests.piece_size))
    });
    group.bench_function("metadata_verify_256k", |b| {
        b.iter(|| metadata.verify(&content).unwrap())
    });
    group.finish();
}

criterion_group!(benches, http_benches);
criterion_main!(benches);
