//! Property tests for `fit_zipf` over degenerate rank-frequency vectors:
//! whatever the input, the estimator must return either `None` or a fit
//! with a finite, non-negative exponent and an R² inside `[0, 1]` — never
//! NaN, never an estimate stuck at an arbitrary bracket boundary.

use icn_workload::fit::fit_zipf;
use proptest::prelude::*;

proptest! {
    #[test]
    fn degenerate_vectors_yield_sane_fits_or_none(
        counts in prop::collection::vec(0u64..=1_000_000, 0..40),
    ) {
        match fit_zipf(&counts) {
            Some(fit) => {
                prop_assert!(
                    fit.alpha_mle.is_finite() && fit.alpha_mle >= 0.0,
                    "alpha_mle {:?}", fit
                );
                prop_assert!(fit.alpha_regression.is_finite(), "{fit:?}");
                prop_assert!(
                    (0.0..=1.0).contains(&fit.r_squared),
                    "r_squared {:?}", fit
                );
                prop_assert!(fit.support >= 2);
                prop_assert_eq!(fit.total, counts.iter().sum::<u64>());
            }
            None => {
                // Only inputs with fewer than two requested objects are
                // unfittable.
                prop_assert!(counts.iter().filter(|&&c| c > 0).count() < 2);
            }
        }
    }

    #[test]
    fn steep_two_rank_inputs_match_the_closed_form(hi in 2u64..=u64::MAX / 2) {
        // For exactly two ranks the MLE has the closed form
        // α = log2(c1/c2); the adaptive bracket must find it no matter
        // how far past the old fixed [0, 8] bracket it lies.
        let fit = fit_zipf(&[hi, 1]).expect("two distinct objects");
        let expected = (hi as f64).ln() / 2f64.ln();
        prop_assert!(
            (fit.alpha_mle - expected).abs() < 1e-2 * expected.max(1.0),
            "hi={hi}: MLE {} vs closed form {expected}",
            fit.alpha_mle
        );
    }

    #[test]
    fn all_equal_counts_fit_alpha_zero(c in 1u64..=1_000_000, n in 2usize..200) {
        let fit = fit_zipf(&vec![c; n]).expect("n >= 2 objects");
        prop_assert!(fit.alpha_mle < 0.05, "uniform input: {fit:?}");
        prop_assert!((0.0..=1.0).contains(&fit.r_squared));
    }
}
