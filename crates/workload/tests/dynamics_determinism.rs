//! Determinism properties of the non-stationary dynamics: whatever the
//! combination of diurnal / flash / churn knobs, the same seed must
//! produce the same request stream bit for bit, a different seed must
//! not, and dynamics must never break the stream's structural invariants
//! (ids in range, exact length) or the size ⟂ popularity independence
//! that churn remapping relies on.

use icn_workload::dynamics::{Churn, Diurnal, DynamicsConfig, FlashCrowds};
use icn_workload::sizes::SizeModel;
use icn_workload::trace::{Locality, Trace, TraceConfig, TraceIter};
use proptest::prelude::*;

fn cfg_with(
    seed: u64,
    requests: usize,
    objects: u32,
    dynamics: DynamicsConfig,
    locality: bool,
) -> TraceConfig {
    TraceConfig {
        requests,
        objects,
        alpha: 1.0,
        skew: 0.0,
        locality: locality.then_some(Locality { q: 0.5, window: 32 }),
        sizes: SizeModel::Unit,
        seed,
        dynamics: Some(dynamics),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn same_seed_is_bit_identical_any_dynamics(
        seed in 0u64..1_000_000,
        period in 16u64..5_000,
        amplitude in 0.0f64..0.9,
        events in 1u32..6,
        peak in 0.05f64..0.9,
        half_life in 1u64..500,
        interval in 8u64..2_000,
        fraction in 0.0f64..1.0,
        locality in (0usize..2).prop_map(|b| b == 1),
    ) {
        let dynamics = DynamicsConfig {
            diurnal: Some(Diurnal { period, amplitude }),
            flash: Some(FlashCrowds { events, peak, half_life }),
            churn: Some(Churn { interval, fraction }),
        };
        let cfg = cfg_with(seed, 3_000, 800, dynamics, locality);
        let pops = [1_000u64, 2_000, 7_000];
        let a: Vec<_> = TraceIter::new(&cfg, &pops, 4).collect();
        let b: Vec<_> = TraceIter::new(&cfg, &pops, 4).collect();
        prop_assert_eq!(&a, &b, "same seed must be bit-identical");
        prop_assert_eq!(a.len(), 3_000);
        prop_assert!(a.iter().all(|r| r.object < 800 && r.pop < 3 && r.leaf < 4));

        let mut other = cfg.clone();
        other.seed = seed.wrapping_add(1);
        let c: Vec<_> = TraceIter::new(&other, &pops, 4).collect();
        prop_assert_ne!(&a, &c, "different seeds must diverge");
    }

    #[test]
    fn each_dynamic_alone_is_deterministic(
        seed in 0u64..100_000,
        which in 0usize..3,
    ) {
        let dynamics = match which {
            0 => DynamicsConfig::diurnal(2_000),
            1 => DynamicsConfig::flash(2_000),
            _ => DynamicsConfig::churn(2_000),
        };
        let cfg = cfg_with(seed, 2_000, 500, dynamics, true);
        let pops = [5u64, 5];
        let a: Vec<_> = TraceIter::new(&cfg, &pops, 2).collect();
        let b: Vec<_> = TraceIter::new(&cfg, &pops, 2).collect();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn sizes_stay_popularity_independent_under_churn(
        seed in 0u64..50_000,
        interval in 16u64..500,
        fraction in 0.05f64..0.8,
    ) {
        // Sizes are drawn per object id *before* any churn; because churn
        // only permutes which id is requested (never which size an id
        // has), the per-id size table is untouched and the correlation
        // between a request's object size and its popularity stays noise.
        let mut cfg = cfg_with(
            seed,
            20_000,
            1_000,
            DynamicsConfig { diurnal: None, flash: None, churn: Some(Churn { interval, fraction }) },
            false,
        );
        cfg.sizes = SizeModel::BoundedPareto { alpha: 1.2, min: 1 << 10, max: 1 << 26 };
        let churned = Trace::synthesize(cfg.clone(), &[1_000, 9_000], 4);
        cfg.dynamics = None;
        let plain = Trace::synthesize(cfg, &[1_000, 9_000], 4);
        prop_assert_eq!(
            &churned.object_sizes,
            &plain.object_sizes,
            "churn must not touch the per-id size table"
        );
        // Spearman-style check on the churned trace: the mean log-size of
        // requests for the hot half vs the cold half of the id space must
        // be statistically indistinguishable (heavy-tailed sizes make raw
        // means noisy; log tames the tail).
        let mean_log = |t: &Trace, hot: bool| {
            let (mut s, mut n) = (0.0f64, 0u64);
            for r in &t.requests {
                if (r.object < 500) == hot {
                    s += (t.object_sizes[r.object as usize] as f64).ln();
                    n += 1;
                }
            }
            s / n.max(1) as f64
        };
        let (hot, cold) = (mean_log(&churned, true), mean_log(&churned, false));
        // ln sizes span [ln 2^10, ln 2^26] ≈ [6.9, 18]; independence keeps
        // the two request-weighted means within a loose band.
        prop_assert!(
            (hot - cold).abs() < 1.5,
            "size–popularity correlation after churn: hot {hot:.2} vs cold {cold:.2}"
        );
    }
}

#[test]
fn streamed_and_materialized_dynamics_agree() {
    // Trace::synthesize collects TraceIter, so the streaming and batch
    // paths cannot drift — pin that for a fully-dynamic config.
    let dynamics = DynamicsConfig {
        diurnal: DynamicsConfig::diurnal(10_000).diurnal,
        flash: DynamicsConfig::flash(10_000).flash,
        churn: DynamicsConfig::churn(10_000).churn,
    };
    let cfg = cfg_with(99, 10_000, 2_000, dynamics, true);
    let pops = [1_000u64, 2_000, 7_000];
    let streamed: Vec<_> = TraceIter::new(&cfg, &pops, 4).collect();
    let materialized = Trace::synthesize(cfg, &pops, 4);
    assert_eq!(streamed, materialized.requests);
}
