//! Zipf exponent estimation (Figure 1 / Table 2).
//!
//! Two estimators are provided:
//!
//! * **MLE** — maximizes the discrete-Zipf likelihood over the exponent by
//!   bisection on the score function (the standard Clauset-style approach
//!   restricted to a finite support);
//! * **log-log regression** — ordinary least squares of `log(frequency)` on
//!   `log(rank)`, which is what "each curve is almost linear on a log-log
//!   plot" (Figure 1) eyeballs; also yields an R² linearity diagnostic.

/// Result of fitting a Zipf distribution to rank-frequency data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZipfFit {
    /// Maximum-likelihood exponent.
    pub alpha_mle: f64,
    /// Least-squares exponent from the log-log plot.
    pub alpha_regression: f64,
    /// R² of the log-log regression (linearity of Figure 1's curves).
    pub r_squared: f64,
    /// Number of distinct objects with at least one request.
    pub support: usize,
    /// Total number of requests.
    pub total: u64,
}

/// Fits Zipf exponents to per-object request counts (any order; zeros are
/// ignored). Returns `None` when fewer than two distinct objects were
/// requested.
pub fn fit_zipf(counts: &[u64]) -> Option<ZipfFit> {
    let mut freqs: Vec<u64> = counts.iter().copied().filter(|&c| c > 0).collect();
    if freqs.len() < 2 {
        return None;
    }
    freqs.sort_unstable_by(|a, b| b.cmp(a));
    let total: u64 = freqs.iter().sum();
    let n = freqs.len();

    // --- MLE by bisection on the score dL/dα = 0. ---
    // L(α) = -α Σ_i n_i ln(i) - N ln H_n(α), with i the 1-based rank.
    // dL/dα = -Σ_i n_i ln(i) + N · Σ_i ln(i) i^-α / H_n(α).
    let weighted_log_rank: f64 = freqs
        .iter()
        .enumerate()
        .map(|(i, &c)| c as f64 * ((i + 1) as f64).ln())
        .sum();
    let score = |alpha: f64| -> f64 {
        let mut h = 0.0;
        let mut hlog = 0.0;
        for i in 1..=n {
            let x = (i as f64).powf(-alpha);
            h += x;
            hlog += x * (i as f64).ln();
        }
        -weighted_log_rank + total as f64 * hlog / h
    };
    // score is decreasing in α with score(∞) = -weighted_log_rank < 0 for
    // any support ≥ 2, so a root always exists. Start from the bracket
    // [0, 8] that covers every realistic CDN exponent, but *expand* it by
    // doubling when the root lies beyond — steep degenerate inputs (e.g.
    // counts [1000, 1], whose MLE is ln(1000)/ln(2) ≈ 9.97) used to come
    // back stuck at the fixed bracket boundary. `MAX_ALPHA` is a safety
    // rail far past the point where `i^-α` underflows for every i ≥ 2
    // (which forces the score negative), so the expansion terminates.
    const MAX_ALPHA: f64 = 4096.0;
    let (mut lo, mut hi) = (0.0f64, 8.0f64);
    let alpha_mle = if score(lo) <= 0.0 {
        0.0 // empirically flatter than uniform-ish; clamp
    } else {
        while score(hi) >= 0.0 && hi < MAX_ALPHA {
            lo = hi;
            hi *= 2.0;
        }
        for _ in 0..100 {
            let mid = 0.5 * (lo + hi);
            if score(mid) > 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    };
    if !alpha_mle.is_finite() {
        return None;
    }

    // --- Log-log OLS. ---
    let xs: Vec<f64> = (1..=n).map(|i| (i as f64).ln()).collect();
    let ys: Vec<f64> = freqs.iter().map(|&c| (c as f64).ln()).collect();
    let mean_x = xs.iter().sum::<f64>() / n as f64;
    let mean_y = ys.iter().sum::<f64>() / n as f64;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for i in 0..n {
        let dx = xs[i] - mean_x;
        let dy = ys[i] - mean_y;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    let slope = sxy / sxx;
    if !slope.is_finite() {
        return None;
    }
    // Float rounding can push the ratio a hair past 1; R² is a fraction of
    // explained variance by definition, so clamp it into [0, 1].
    let r_squared = if syy == 0.0 {
        1.0
    } else {
        ((sxy * sxy) / (sxx * syy)).clamp(0.0, 1.0)
    };

    Some(ZipfFit {
        alpha_mle,
        alpha_regression: -slope,
        r_squared,
        support: n,
        total,
    })
}

/// Rank-frequency pairs `(rank, count)` for plotting Figure 1, 1-based
/// ranks, descending counts, zeros dropped. `max_points` thins the tail by
/// geometric subsampling so log-log plots stay small.
pub fn rank_frequency(counts: &[u64], max_points: usize) -> Vec<(u64, u64)> {
    let mut freqs: Vec<u64> = counts.iter().copied().filter(|&c| c > 0).collect();
    freqs.sort_unstable_by(|a, b| b.cmp(a));
    let n = freqs.len();
    if n == 0 {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut rank = 1u64;
    let ratio = if n <= max_points {
        1.0
    } else {
        (n as f64).powf(1.0 / max_points as f64)
    };
    while (rank as usize) <= n {
        out.push((rank, freqs[rank as usize - 1]));
        let next = ((rank as f64) * ratio).ceil() as u64;
        rank = next.max(rank + 1);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zipf::Zipf;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_counts(n_objects: usize, alpha: f64, n_requests: usize, seed: u64) -> Vec<u64> {
        let z = Zipf::new(n_objects, alpha);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut counts = vec![0u64; n_objects];
        for _ in 0..n_requests {
            counts[z.sample(&mut rng)] += 1;
        }
        counts
    }

    #[test]
    fn recovers_known_alpha() {
        for &alpha in &[0.7, 0.99, 1.3] {
            let counts = sample_counts(2_000, alpha, 400_000, 11);
            let fit = fit_zipf(&counts).unwrap();
            assert!(
                (fit.alpha_mle - alpha).abs() < 0.05,
                "alpha {alpha}: MLE {}",
                fit.alpha_mle
            );
        }
    }

    #[test]
    fn regression_roughly_agrees_with_mle() {
        let counts = sample_counts(2_000, 1.0, 400_000, 5);
        let fit = fit_zipf(&counts).unwrap();
        // OLS on sampled tails is biased; just require the same ballpark.
        assert!(
            (fit.alpha_regression - fit.alpha_mle).abs() < 0.35,
            "{fit:?}"
        );
        assert!(fit.r_squared > 0.8, "log-log should look linear: {fit:?}");
    }

    #[test]
    fn table2_region_alphas_recoverable() {
        // The Table 2 workflow: synthesize at the paper's alpha, re-fit.
        for &(alpha, _) in &[(0.99, "US"), (0.92, "Europe"), (1.04, "Asia")] {
            let counts = sample_counts(5_000, alpha, 500_000, 2);
            let fit = fit_zipf(&counts).unwrap();
            assert!((fit.alpha_mle - alpha).abs() < 0.05);
        }
    }

    #[test]
    fn degenerate_inputs() {
        assert!(fit_zipf(&[]).is_none());
        assert!(fit_zipf(&[5]).is_none());
        assert!(fit_zipf(&[0, 0, 7, 0]).is_none());
        assert!(fit_zipf(&[3, 2]).is_some());
    }

    #[test]
    fn uniform_counts_fit_alpha_zero() {
        let fit = fit_zipf(&vec![100u64; 500]).unwrap();
        assert!(fit.alpha_mle < 0.02, "uniform data: {fit:?}");
    }

    #[test]
    fn steep_two_point_input_is_not_bracket_stuck() {
        // Regression: counts [1000, 1] have the closed-form two-rank MLE
        // α = ln(1000)/ln(2) ≈ 9.966 — beyond the old fixed bracket
        // [0, 8], which returned exactly 8.0 instead of expanding.
        let fit = fit_zipf(&[1000, 1]).unwrap();
        let expected = 1000f64.ln() / 2f64.ln();
        assert!(
            (fit.alpha_mle - expected).abs() < 1e-3,
            "MLE {} vs closed form {expected}",
            fit.alpha_mle
        );
    }

    #[test]
    fn extremely_steep_inputs_stay_finite() {
        // Even pathological ratios (α ≈ 60) resolve to a finite root, and
        // R² stays a valid fraction.
        let fit = fit_zipf(&[u64::MAX / 2, 1]).unwrap();
        let expected = ((u64::MAX / 2) as f64).ln() / 2f64.ln();
        assert!(fit.alpha_mle.is_finite() && fit.alpha_mle > 8.0);
        assert!(
            (fit.alpha_mle - expected).abs() < 1e-2,
            "MLE {} vs closed form {expected}",
            fit.alpha_mle
        );
        assert!((0.0..=1.0).contains(&fit.r_squared));
    }

    #[test]
    fn rank_frequency_shape() {
        let counts = sample_counts(1_000, 1.0, 50_000, 9);
        let rf = rank_frequency(&counts, 50);
        assert!(rf.len() <= 51);
        assert_eq!(rf[0].0, 1);
        // Monotone ranks, non-increasing frequencies.
        for w in rf.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn rank_frequency_empty() {
        assert!(rank_frequency(&[0, 0], 10).is_empty());
    }
}
