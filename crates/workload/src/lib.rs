//! Request workloads for ICN cache simulation.
//!
//! The paper's measurements come from proprietary CDN request logs (US
//! 1.1M / Europe 3.1M / Asia 1.8M requests) which it shows are well
//! approximated by Zipf popularity distributions (Figure 1, Table 2), and it
//! validates (Table 3) that best-fit synthetic traces reproduce the
//! system-level results within ≤1.67%. This crate synthesizes those traces:
//!
//! * [`zipf`] — Zipf samplers and closed-form CDF helpers;
//! * [`trace`] — request records and the region presets (US/Europe/Asia);
//! * [`skew`] — the spatial popularity-skew model of §5.1 and the paper's
//!   skew metric;
//! * [`sizes`] — heterogeneous object sizes (bounded Pareto), independent
//!   of popularity as the paper observes;
//! * [`fit`] — Zipf exponent estimation (MLE + log-log regression) used to
//!   recover Table 2 from generated traces;
//! * [`origin`] — origin-server assignment of objects to PoPs;
//! * [`flood`] — request-flood (DoS) attack workloads for the §7
//!   resilience experiment;
//! * [`dynamics`] — non-stationary workload dynamics (diurnal cycles,
//!   flash crowds, content churn) layered onto the streaming synthesizer;
//! * [`adapter`] — ingestion of external CDN logs (plain CSV) into traces.

#![warn(missing_docs)]

pub mod adapter;
pub mod dynamics;
pub mod fit;
pub mod flood;
pub mod origin;
pub mod sizes;
pub mod skew;
pub mod trace;
pub mod zipf;

pub use dynamics::DynamicsConfig;
pub use fit::ZipfFit;
pub use origin::OriginPolicy;
pub use sizes::SizeModel;
pub use skew::SpatialModel;
pub use trace::{Request, Trace, TraceConfig};
pub use zipf::Zipf;
