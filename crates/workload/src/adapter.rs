//! External CDN log ingestion.
//!
//! The paper's own evidence base is three proprietary CDN request logs
//! (Table 2). This adapter lets a real log stand in for the synthesizer:
//! it reads a delimited text log (one request per line), interns object
//! keys into popularity ranks (object 0 = most requested, matching the
//! id convention of [`crate::trace`]), and deterministically hashes each
//! client onto a PoP (population-weighted) and a leaf of that PoP's
//! access tree — the same topology mapping the synthesizer uses, so an
//! ingested trace drops straight into the simulator.
//!
//! Only plain (uncompressed) text is supported; gzip input is detected by
//! its magic bytes and rejected with a clear error rather than silently
//! parsed as garbage. Everything is deterministic: the same log bytes and
//! format always produce the same [`Trace`].

use crate::sizes::SizeModel;
use crate::trace::{Request, Trace, TraceConfig};
use std::collections::HashMap;
use std::io::{BufRead, Error, ErrorKind};

/// Column layout of a delimited CDN log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CdnLogFormat {
    /// Field delimiter (`,` for CSV, `\t` for TSV, ` ` for access logs).
    pub delimiter: char,
    /// 0-based column holding the object key (URL, content hash, ...).
    pub object_col: usize,
    /// Column holding the client identifier (IP, session id). `None`
    /// assigns each request a synthetic per-line client.
    pub client_col: Option<usize>,
    /// Column holding the response size in bytes, if any.
    pub size_col: Option<usize>,
    /// Skip the first line as a header.
    pub has_header: bool,
}

impl Default for CdnLogFormat {
    /// `object` in the first CSV column, no client/size columns, header.
    fn default() -> Self {
        Self {
            delimiter: ',',
            object_col: 0,
            client_col: None,
            size_col: None,
            has_header: true,
        }
    }
}

/// FNV-1a 64-bit: a stable, dependency-free string hash. Only used for
/// client → PoP/leaf placement, never for security.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer: decorrelates the leaf pick from the PoP pick.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Reads a delimited CDN log into a [`Trace`] over a network with the
/// given PoP populations and leaves per access tree.
///
/// Object keys are ranked by request count (ties broken by first
/// appearance) and renumbered so id 0 is the most requested object.
/// Clients are hashed onto PoPs proportionally to population and onto
/// leaves uniformly; the same client string always lands on the same
/// leaf. Sizes come from `size_col` (first value seen per object, floored
/// at 1 byte) or default to 1.
///
/// Errors on gzip input (magic bytes `1f 8b`), on lines missing a
/// configured column, and on unparseable size fields.
pub fn read_cdn_log<R: BufRead>(
    mut r: R,
    fmt: &CdnLogFormat,
    populations: &[u64],
    leaves_per_pop: u32,
) -> std::io::Result<Trace> {
    assert!(!populations.is_empty());
    assert!(
        populations.len() <= u16::MAX as usize,
        "too many PoPs for u16"
    );
    assert!(
        leaves_per_pop >= 1 && leaves_per_pop <= u16::MAX as u32,
        "leaves per PoP must fit u16"
    );
    let head = r.fill_buf()?;
    if head.len() >= 2 && head[0] == 0x1f && head[1] == 0x8b {
        return Err(Error::new(
            ErrorKind::InvalidData,
            "gzip-compressed log detected (magic 1f 8b); decompress it first \
             — this adapter reads plain delimited text only",
        ));
    }

    // Population-proportional cumulative weights, as in trace synthesis.
    let total: u64 = populations.iter().sum();
    assert!(total > 0, "zero total population");
    let mut acc = 0.0;
    let cum: Vec<f64> = populations
        .iter()
        .map(|&p| {
            acc += p as f64 / total as f64;
            acc
        })
        .collect();

    let mut intern: HashMap<String, u32> = HashMap::new();
    let mut counts: Vec<u64> = Vec::new();
    let mut sizes_raw: Vec<u32> = Vec::new();
    // (raw object id, pop, leaf) per request; ids are renumbered to
    // popularity ranks after the counts are known.
    let mut records: Vec<(u32, u16, u16)> = Vec::new();

    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        if lineno == 0 && fmt.has_header {
            continue;
        }
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(fmt.delimiter).collect();
        let field = |col: usize| -> std::io::Result<&str> {
            fields.get(col).map(|s| s.trim()).ok_or_else(|| {
                Error::new(
                    ErrorKind::InvalidData,
                    format!("line {lineno}: missing column {col}"),
                )
            })
        };
        let key = field(fmt.object_col)?;
        if key.is_empty() {
            return Err(Error::new(
                ErrorKind::InvalidData,
                format!("line {lineno}: empty object key"),
            ));
        }
        let next_id = intern.len() as u32;
        let raw = *intern.entry(key.to_string()).or_insert(next_id);
        if raw == next_id {
            counts.push(0);
            sizes_raw.push(0);
        }
        counts[raw as usize] += 1;
        if let Some(col) = fmt.size_col {
            let s: u64 = field(col)?.parse().map_err(|_| {
                Error::new(
                    ErrorKind::InvalidData,
                    format!("line {lineno}: bad size field"),
                )
            })?;
            if sizes_raw[raw as usize] == 0 {
                sizes_raw[raw as usize] = s.clamp(1, u32::MAX as u64) as u32;
            }
        }
        let h = match fmt.client_col {
            Some(col) => fnv1a(field(col)?.as_bytes()),
            None => fnv1a(&(records.len() as u64).to_le_bytes()),
        };
        // Top 53 bits → a uniform f64 in [0, 1) for the PoP pick; a
        // decorrelated remix → the leaf pick.
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        let pop = cum.partition_point(|&c| c < u).min(cum.len() - 1) as u16;
        let leaf = (splitmix64(h) % leaves_per_pop as u64) as u16;
        records.push((raw, pop, leaf));
    }

    // Rank objects: most-requested first, first-seen breaks ties.
    let n = counts.len();
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by_key(|&raw| (std::cmp::Reverse(counts[raw as usize]), raw));
    let mut rank_of: Vec<u32> = vec![0; n];
    for (rank, &raw) in order.iter().enumerate() {
        rank_of[raw as usize] = rank as u32;
    }
    let requests: Vec<Request> = records
        .iter()
        .map(|&(raw, pop, leaf)| Request {
            pop,
            leaf,
            object: rank_of[raw as usize],
        })
        .collect();
    let object_sizes: Vec<u32> = order
        .iter()
        .map(|&raw| sizes_raw[raw as usize].max(1))
        .collect();

    Ok(Trace {
        config: TraceConfig {
            requests: requests.len(),
            objects: n as u32,
            alpha: f64::NAN,
            skew: f64::NAN,
            locality: None,
            sizes: SizeModel::Unit,
            seed: 0,
            dynamics: None,
        },
        requests,
        object_sizes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn fmt_ocs() -> CdnLogFormat {
        CdnLogFormat {
            delimiter: ',',
            object_col: 0,
            client_col: Some(1),
            size_col: Some(2),
            has_header: true,
        }
    }

    #[test]
    fn ranks_objects_by_frequency_with_first_seen_ties() {
        let log = "object,client,bytes\n\
                   /b,10.0.0.1,200\n\
                   /a,10.0.0.2,100\n\
                   /a,10.0.0.1,100\n\
                   /c,10.0.0.3,300\n\
                   /a,10.0.0.3,100\n\
                   /b,10.0.0.2,200\n";
        let t = read_cdn_log(BufReader::new(log.as_bytes()), &fmt_ocs(), &[1, 9], 4).unwrap();
        assert_eq!(t.len(), 6);
        assert_eq!(t.config.objects, 3);
        // /a (3 reqs) → 0, /b (2) → 1, /c (1) → 2.
        let objs: Vec<u32> = t.requests.iter().map(|r| r.object).collect();
        assert_eq!(objs, vec![1, 0, 0, 2, 0, 1]);
        // Sizes follow the rank renumbering.
        assert_eq!(t.object_sizes, vec![100, 200, 300]);
    }

    #[test]
    fn clients_land_on_stable_leaves() {
        let log = "object,client,bytes\n\
                   /x,alice,1\n\
                   /y,alice,1\n\
                   /z,alice,1\n\
                   /x,bob,1\n";
        let t = read_cdn_log(BufReader::new(log.as_bytes()), &fmt_ocs(), &[5, 5], 8).unwrap();
        let alice: Vec<(u16, u16)> = t.requests[..3].iter().map(|r| (r.pop, r.leaf)).collect();
        assert!(alice.iter().all(|&pl| pl == alice[0]));
        assert!(t.requests.iter().all(|r| r.pop < 2 && r.leaf < 8));
    }

    #[test]
    fn pop_assignment_tracks_population_weights() {
        // 5000 distinct synthetic clients (no client column) spread over
        // PoPs weighted 1:9 — the heavy PoP must absorb most requests.
        let mut log = String::from("object\n");
        for i in 0..5_000 {
            log.push_str(&format!("/obj{i}\n"));
        }
        let t = read_cdn_log(
            BufReader::new(log.as_bytes()),
            &CdnLogFormat::default(),
            &[1_000, 9_000],
            4,
        )
        .unwrap();
        let heavy = t.requests.iter().filter(|r| r.pop == 1).count() as f64;
        let share = heavy / t.len() as f64;
        assert!((share - 0.9).abs() < 0.03, "heavy-PoP share {share}");
    }

    #[test]
    fn rejects_gzip_magic() {
        let gz = [0x1f, 0x8b, 0x08, 0x00, 0x00];
        let err =
            read_cdn_log(BufReader::new(&gz[..]), &CdnLogFormat::default(), &[1], 1).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::InvalidData);
        assert!(err.to_string().contains("gzip"));
    }

    #[test]
    fn errors_on_missing_columns_and_bad_sizes() {
        let fmt = fmt_ocs();
        let missing = "object,client,bytes\n/a,alice\n";
        assert!(read_cdn_log(BufReader::new(missing.as_bytes()), &fmt, &[1], 1).is_err());
        let bad = "object,client,bytes\n/a,alice,not-a-number\n";
        assert!(read_cdn_log(BufReader::new(bad.as_bytes()), &fmt, &[1], 1).is_err());
    }

    #[test]
    fn header_and_blank_lines_are_skipped_sizes_floor_at_one() {
        let log = "object,client,bytes\n\n/a,c1,0\n\n";
        let t = read_cdn_log(BufReader::new(log.as_bytes()), &fmt_ocs(), &[1], 1).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.object_sizes, vec![1], "size 0 floors to 1 byte");
    }

    #[test]
    fn space_delimited_access_log_layout() {
        let fmt = CdnLogFormat {
            delimiter: ' ',
            object_col: 1,
            client_col: Some(0),
            size_col: None,
            has_header: false,
        };
        let log = "10.0.0.1 /video/1\n10.0.0.2 /video/1\n10.0.0.1 /page/2\n";
        let t = read_cdn_log(BufReader::new(log.as_bytes()), &fmt, &[2, 3], 2).unwrap();
        let objs: Vec<u32> = t.requests.iter().map(|r| r.object).collect();
        assert_eq!(objs, vec![0, 0, 1]);
        assert_eq!(t.object_sizes, vec![1, 1]);
    }

    #[test]
    fn deterministic_across_reads() {
        let log = "object,client,bytes\n/a,x,10\n/b,y,20\n/a,z,10\n";
        let read = || read_cdn_log(BufReader::new(log.as_bytes()), &fmt_ocs(), &[3, 7], 4).unwrap();
        let (a, b) = (read(), read());
        assert_eq!(a.requests, b.requests);
        assert_eq!(a.object_sizes, b.object_sizes);
    }
}
