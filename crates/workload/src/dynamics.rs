//! Non-stationary workload dynamics: diurnal cycles, flash crowds, churn.
//!
//! The static-Zipf IRM synthesizer in [`crate::trace`] models the paper's
//! *daily aggregate* logs, but Wang et al.'s "Good Ruler" critique (see
//! PAPERS.md) argues that stationary workloads systematically mismeasure
//! ICN caching: real popularity drifts over the day, spikes on breaking
//! content, and ages out. This module adds those three effects on top of
//! the streaming [`crate::trace::TraceIter`]:
//!
//! * **Diurnal cycles** — the per-PoP request mix and the Zipf exponent
//!   oscillate over a configurable period, with each PoP phase-shifted
//!   (PoPs peak at different "local times of day").
//! * **Flash crowds** — seeded events in which an otherwise-unpopular
//!   object abruptly captures a fraction of all requests and then decays
//!   exponentially with a configurable half-life.
//! * **Content churn** — every `interval` requests a random slice of the
//!   object universe swaps popularity ranks, modeling new content
//!   displacing old without changing the Zipf *marginal* shape.
//!
//! All dynamics are driven by the request index (logical time) and seeded
//! RNGs — never wall clock — so streams are bit-identical for a given
//! config at any parallelism. Memory is O(phases × objects + events),
//! independent of trace length, matching `TraceIter`'s streaming
//! discipline. Crucially, a `TraceConfig` with `dynamics: None` consumes
//! *exactly* the RNG draw sequence of the pre-dynamics synthesizer, so
//! every existing figure is bit-for-bit unchanged.

use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Number of discrete phases a diurnal period is quantized into. Eight
/// phases keep the precomputed sampler state small while making the cycle
/// clearly non-stationary (3-hour "slots" on a 24-hour period).
pub const DIURNAL_PHASES: usize = 8;

/// How many half-lives a flash event stays active before it is retired
/// from the scan window (intensity has decayed by 2⁻¹⁶ ≈ 1.5e-5 by then).
const FLASH_RETIRE_HALF_LIVES: u64 = 16;

/// Diurnal popularity/request-rate cycle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Diurnal {
    /// Cycle length in requests (logical time). One simulated "day".
    pub period: u64,
    /// Modulation depth in `[0, 1)`: PoP request shares and the Zipf
    /// exponent swing by ±`amplitude` over a period.
    pub amplitude: f64,
}

/// Seeded flash-crowd events: sudden spikes that decay exponentially.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlashCrowds {
    /// Number of events over the trace.
    pub events: u32,
    /// Peak fraction of all requests captured by an event at its onset,
    /// in `(0, 1]`.
    pub peak: f64,
    /// Requests for the event's intensity to halve.
    pub half_life: u64,
}

/// Content churn: periodic rotation of object popularity ranks.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Churn {
    /// Requests between rotations.
    pub interval: u64,
    /// Fraction of the object universe whose ranks are reshuffled per
    /// rotation, in `[0, 1]`.
    pub fraction: f64,
}

/// Composition of the three dynamics; any subset may be active.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct DynamicsConfig {
    /// Diurnal cycle, if any.
    pub diurnal: Option<Diurnal>,
    /// Flash-crowd events, if any.
    pub flash: Option<FlashCrowds>,
    /// Content churn, if any.
    pub churn: Option<Churn>,
}

impl DynamicsConfig {
    /// A diurnal-only preset: four "days" over the trace, ±30% swing.
    pub fn diurnal(requests: usize) -> Self {
        Self {
            diurnal: Some(Diurnal {
                period: (requests as u64 / 4).max(DIURNAL_PHASES as u64),
                amplitude: 0.3,
            }),
            ..Self::default()
        }
    }

    /// A flash-crowd-only preset: four events, each peaking at half of
    /// all requests and decaying over ~1/16 of the trace per half-life —
    /// in aggregate the events capture roughly 18% of the trace's
    /// requests (∫ peak·2^(−t/half_life) dt = peak·half_life/ln 2 each).
    pub fn flash(requests: usize) -> Self {
        Self {
            flash: Some(FlashCrowds {
                events: 4,
                peak: 0.5,
                half_life: (requests as u64 / 16).max(8),
            }),
            ..Self::default()
        }
    }

    /// A churn-only preset: 16 rotations over the trace, each reshuffling
    /// 5% of the universe.
    pub fn churn(requests: usize) -> Self {
        Self {
            churn: Some(Churn {
                interval: (requests as u64 / 16).max(8),
                fraction: 0.05,
            }),
            ..Self::default()
        }
    }

    /// True when no dynamics are configured (equivalent to `None`).
    pub fn is_static(&self) -> bool {
        self.diurnal.is_none() && self.flash.is_none() && self.churn.is_none()
    }
}

#[derive(Debug, Clone)]
struct DiurnalState {
    period: u64,
    /// One Zipf sampler per phase, exponent modulated around the base α.
    zipfs: Vec<Zipf>,
    /// Per-phase cumulative PoP-selection weights (PoPs phase-shifted).
    cums: Vec<Vec<f64>>,
}

impl DiurnalState {
    fn new(cfg: Diurnal, objects: u32, alpha: f64, populations: &[u64]) -> Self {
        assert!(cfg.period >= 1, "diurnal period must be >= 1");
        assert!(
            (0.0..1.0).contains(&cfg.amplitude),
            "diurnal amplitude must be in [0, 1)"
        );
        let total: u64 = populations.iter().sum();
        let k = DIURNAL_PHASES;
        let tau = std::f64::consts::TAU;
        let zipfs = (0..k)
            .map(|i| {
                let phase = tau * i as f64 / k as f64;
                Zipf::new(
                    objects as usize,
                    (alpha * (1.0 + cfg.amplitude * phase.sin())).max(0.0),
                )
            })
            .collect();
        let cums = (0..k)
            .map(|i| {
                // Each PoP's activity peaks at a different phase of the
                // cycle, spread evenly — "local time of day".
                let weights: Vec<f64> = populations
                    .iter()
                    .enumerate()
                    .map(|(p, &pop)| {
                        let phase =
                            tau * (i as f64 / k as f64 + p as f64 / populations.len() as f64);
                        (pop as f64 / total as f64) * (1.0 + cfg.amplitude * phase.sin())
                    })
                    .collect();
                let sum: f64 = weights.iter().sum();
                let mut acc = 0.0;
                let mut cum: Vec<f64> = weights
                    .iter()
                    .map(|w| {
                        acc += w / sum;
                        acc
                    })
                    .collect();
                if let Some(last) = cum.last_mut() {
                    *last = 1.0;
                }
                cum
            })
            .collect();
        Self {
            period: cfg.period,
            zipfs,
            cums,
        }
    }

    fn phase(&self, t: u64) -> usize {
        ((t % self.period) as u128 * DIURNAL_PHASES as u128 / self.period as u128) as usize
    }
}

#[derive(Debug, Clone, Copy)]
struct FlashEvent {
    start: u64,
    object: u32,
}

#[derive(Debug, Clone)]
struct FlashState {
    peak: f64,
    half_life: u64,
    /// All events, sorted by start time.
    events: Vec<FlashEvent>,
    /// Active window `events[lo..hi]`: started but not yet retired. With a
    /// shared half-life, events retire in start order, so two cursors
    /// suffice.
    lo: usize,
    hi: usize,
}

impl FlashState {
    fn new(cfg: FlashCrowds, objects: u32, requests: u64, seed: u64) -> Self {
        assert!(cfg.events >= 1, "flash needs at least one event");
        assert!(
            cfg.peak > 0.0 && cfg.peak <= 1.0,
            "flash peak must be in (0, 1]"
        );
        assert!(cfg.half_life >= 1, "flash half-life must be >= 1");
        // Dedicated RNG: event placement must not perturb the main
        // request-draw stream.
        let mut rng = StdRng::seed_from_u64(seed ^ 0xf1a5_70c1);
        let horizon = requests.max(1);
        // Flash objects come from the cold tail (outside the top 10%), so
        // an event genuinely *changes* what is popular.
        let tail_lo = (objects / 10).min(objects - 1);
        let mut events: Vec<FlashEvent> = (0..cfg.events)
            .map(|_| FlashEvent {
                start: rng.gen_range(0..horizon),
                object: rng.gen_range(tail_lo..objects),
            })
            .collect();
        events.sort_unstable_by_key(|e| (e.start, e.object));
        Self {
            peak: cfg.peak,
            half_life: cfg.half_life,
            events,
            lo: 0,
            hi: 0,
        }
    }

    fn advance(&mut self, t: u64) {
        while self.hi < self.events.len() && self.events[self.hi].start <= t {
            self.hi += 1;
        }
        let retire = self.half_life.saturating_mul(FLASH_RETIRE_HALF_LIVES);
        while self.lo < self.hi && t - self.events[self.lo].start >= retire {
            self.lo += 1;
        }
    }

    fn active(&self) -> bool {
        self.lo < self.hi
    }

    /// Maps a uniform draw `u` to a flash object when it lands inside the
    /// combined intensity of the active events, scanning them in start
    /// order with cumulative intensities.
    fn pick(&self, t: u64, u: f64) -> Option<u32> {
        let mut acc = 0.0;
        for e in &self.events[self.lo..self.hi] {
            let age = (t - e.start) as f64 / self.half_life as f64;
            acc += self.peak * (-age).exp2();
            if u < acc {
                return Some(e.object);
            }
        }
        None
    }
}

#[derive(Debug, Clone)]
struct ChurnState {
    interval: u64,
    swaps_per_rotation: usize,
    /// Current rank → object id permutation (identity at t = 0).
    remap: Vec<u32>,
    rng: StdRng,
    next_rotation: u64,
}

impl ChurnState {
    fn new(cfg: Churn, objects: u32, seed: u64) -> Self {
        assert!(cfg.interval >= 1, "churn interval must be >= 1");
        assert!(
            (0.0..=1.0).contains(&cfg.fraction),
            "churn fraction must be in [0, 1]"
        );
        Self {
            interval: cfg.interval,
            swaps_per_rotation: ((objects as f64 * cfg.fraction / 2.0).round() as usize).max(1),
            remap: (0..objects).collect(),
            // Dedicated RNG: rotations must not perturb the main stream.
            rng: StdRng::seed_from_u64(seed ^ 0xc4u64.rotate_left(32)),
            next_rotation: cfg.interval,
        }
    }

    fn advance(&mut self, t: u64) {
        while t >= self.next_rotation {
            let n = self.remap.len();
            for _ in 0..self.swaps_per_rotation {
                let i = self.rng.gen_range(0..n);
                let j = self.rng.gen_range(0..n);
                self.remap.swap(i, j);
            }
            self.next_rotation += self.interval;
        }
    }

    fn remap(&self, object: u32) -> u32 {
        self.remap[object as usize]
    }
}

/// Live dynamics state carried by a [`crate::trace::TraceIter`].
///
/// Built once per stream from a [`DynamicsConfig`]; all randomness comes
/// from dedicated seeded RNGs (event placement, churn swaps) or from the
/// main trace RNG at well-defined points in the per-request draw order
/// (documented on [`crate::trace::TraceIter`]).
#[derive(Debug, Clone)]
pub struct DynamicsState {
    diurnal: Option<DiurnalState>,
    flash: Option<FlashState>,
    churn: Option<ChurnState>,
}

impl DynamicsState {
    /// Builds the per-stream state. `populations` and `requests` mirror
    /// the owning `TraceIter`'s config; `seed` is the trace seed (the
    /// dedicated flash/churn RNGs derive from it with fixed xors).
    pub fn new(
        cfg: &DynamicsConfig,
        objects: u32,
        alpha: f64,
        populations: &[u64],
        requests: usize,
        seed: u64,
    ) -> Self {
        assert!(objects >= 1, "dynamics need a non-empty universe");
        Self {
            diurnal: cfg
                .diurnal
                .map(|d| DiurnalState::new(d, objects, alpha, populations)),
            flash: cfg
                .flash
                .map(|f| FlashState::new(f, objects, requests as u64, seed)),
            churn: cfg.churn.map(|c| ChurnState::new(c, objects, seed)),
        }
    }

    /// Advances logical time to request index `t`: opens/retires flash
    /// events and applies any due churn rotations. Must be called once per
    /// request, with non-decreasing `t`.
    pub fn advance(&mut self, t: u64) {
        if let Some(f) = &mut self.flash {
            f.advance(t);
        }
        if let Some(c) = &mut self.churn {
            c.advance(t);
        }
    }

    /// The PoP-selection cumulative weights for time `t`, when a diurnal
    /// cycle overrides the static ones.
    pub fn pop_cum(&self, t: u64) -> Option<&[f64]> {
        self.diurnal.as_ref().map(|d| d.cums[d.phase(t)].as_slice())
    }

    /// The Zipf sampler for time `t`, when a diurnal cycle overrides the
    /// static one.
    pub fn zipf(&self, t: u64) -> Option<&Zipf> {
        self.diurnal.as_ref().map(|d| &d.zipfs[d.phase(t)])
    }

    /// True while at least one flash event is active (after `advance(t)`).
    /// Only then does the stream spend an RNG draw on the flash coin.
    pub fn flash_active(&self) -> bool {
        self.flash.as_ref().is_some_and(FlashState::active)
    }

    /// Resolves the flash coin `u` at time `t` to an event's object, if it
    /// landed inside the active events' combined intensity.
    pub fn flash_pick(&self, t: u64, u: f64) -> Option<u32> {
        self.flash.as_ref().and_then(|f| f.pick(t, u))
    }

    /// Applies the current churn permutation to a freshly drawn object id.
    pub fn remap(&self, object: u32) -> u32 {
        match &self.churn {
            Some(c) => c.remap(object),
            None => object,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_active_and_composable() {
        assert!(DynamicsConfig::default().is_static());
        for d in [
            DynamicsConfig::diurnal(10_000),
            DynamicsConfig::flash(10_000),
            DynamicsConfig::churn(10_000),
        ] {
            assert!(!d.is_static());
        }
        let combo = DynamicsConfig {
            diurnal: DynamicsConfig::diurnal(1_000).diurnal,
            flash: DynamicsConfig::flash(1_000).flash,
            churn: DynamicsConfig::churn(1_000).churn,
        };
        let mut s = DynamicsState::new(&combo, 500, 1.0, &[3, 7], 1_000, 9);
        for t in 0..1_000 {
            s.advance(t);
            let _ = s.remap(123);
        }
    }

    #[test]
    fn diurnal_phases_cycle_and_cums_are_valid() {
        let d = DiurnalState::new(
            Diurnal {
                period: 800,
                amplitude: 0.4,
            },
            100,
            1.0,
            &[1, 2, 7],
        );
        assert_eq!(d.phase(0), 0);
        assert_eq!(d.phase(799), DIURNAL_PHASES - 1);
        assert_eq!(d.phase(800), 0); // wraps
        for cum in &d.cums {
            assert_eq!(*cum.last().unwrap(), 1.0);
            assert!(cum.windows(2).all(|w| w[0] <= w[1]));
            assert!(cum.iter().all(|&c| c > 0.0));
        }
        // Phases genuinely differ: the cycle moves the PoP mix.
        assert!(d.cums[0][0] != d.cums[DIURNAL_PHASES / 2][0]);
    }

    #[test]
    fn flash_events_activate_decay_and_retire() {
        let mut f = FlashState::new(
            FlashCrowds {
                events: 3,
                peak: 0.5,
                half_life: 50,
            },
            1_000,
            10_000,
            42,
        );
        assert!(f.events.windows(2).all(|w| w[0].start <= w[1].start));
        assert!(f.events.iter().all(|e| (100..1_000).contains(&e.object)));
        let first = f.events[0].start;
        f.advance(first.saturating_sub(1));
        if first > 0 {
            assert!(!f.active());
        }
        f.advance(first);
        assert!(f.active());
        // At onset, a sub-peak draw hits the event object.
        assert_eq!(f.pick(first, 0.49), Some(f.events[0].object));
        // Far past every event, all are retired.
        f.advance(u64::MAX - 1);
        assert!(!f.active());
    }

    #[test]
    fn flash_intensity_halves_per_half_life() {
        let f = FlashState {
            peak: 0.5,
            half_life: 100,
            events: vec![FlashEvent {
                start: 0,
                object: 7,
            }],
            lo: 0,
            hi: 1,
        };
        // Intensity 0.5 at onset, 0.25 after one half-life.
        assert_eq!(f.pick(0, 0.4999), Some(7));
        assert_eq!(f.pick(100, 0.2499), Some(7));
        assert_eq!(f.pick(100, 0.2501), None);
    }

    #[test]
    fn churn_is_a_permutation_and_rotates_on_schedule() {
        let mut c = ChurnState::new(
            Churn {
                interval: 100,
                fraction: 0.2,
            },
            1_000,
            5,
        );
        let identity: Vec<u32> = (0..1_000).collect();
        assert_eq!(c.remap, identity);
        c.advance(99);
        assert_eq!(c.remap, identity, "no rotation before the interval");
        c.advance(100);
        assert_ne!(c.remap, identity, "first rotation at t = interval");
        let after_first = c.remap.clone();
        c.advance(150);
        assert_eq!(c.remap, after_first, "stable between rotations");
        c.advance(1_000);
        // Always a permutation: sorted remap is the identity.
        let mut sorted = c.remap.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, identity);
    }

    #[test]
    fn churn_catch_up_matches_step_by_step() {
        // Jumping straight to t applies the same rotations as walking
        // every request index (while-loop catch-up).
        let cfg = Churn {
            interval: 64,
            fraction: 0.1,
        };
        let mut a = ChurnState::new(cfg, 300, 77);
        let mut b = ChurnState::new(cfg, 300, 77);
        for t in 0..=700 {
            a.advance(t);
        }
        b.advance(700);
        assert_eq!(a.remap, b.remap);
    }

    #[test]
    fn dedicated_rngs_are_deterministic() {
        let cfg = DynamicsConfig {
            diurnal: None,
            flash: Some(FlashCrowds {
                events: 5,
                peak: 0.3,
                half_life: 20,
            }),
            churn: Some(Churn {
                interval: 50,
                fraction: 0.5,
            }),
        };
        let mk = || DynamicsState::new(&cfg, 2_000, 1.0, &[1], 5_000, 0xabcd);
        let (mut a, mut b) = (mk(), mk());
        for t in 0..5_000u64 {
            a.advance(t);
            b.advance(t);
            assert_eq!(a.flash_active(), b.flash_active());
            assert_eq!(a.remap(t as u32 % 2_000), b.remap(t as u32 % 2_000));
        }
    }
}
