//! Object size models.
//!
//! The paper's traces span "regular text, images, multimedia, software
//! binaries" — heavy-tailed sizes with no strong size–popularity
//! correlation (§5.1 reports heterogeneous sizes change results by < 1%).
//! Sizes are drawn per **object** (not per request) so every transfer of an
//! object moves the same number of bytes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// How object sizes are assigned.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SizeModel {
    /// All objects have the same size (the baseline: congestion counts
    /// transfers, so unit size reproduces the paper's default metric).
    Unit,
    /// Bounded Pareto in bytes: heavy-tailed, independent of popularity.
    BoundedPareto {
        /// Tail index (smaller ⇒ heavier tail); the web-object classic is ~1.2.
        alpha: f64,
        /// Minimum size in bytes.
        min: u32,
        /// Maximum size in bytes.
        max: u32,
    },
}

impl SizeModel {
    /// A typical web-object mix: 1 KiB – 100 MiB, tail index 1.2.
    pub fn web_default() -> Self {
        SizeModel::BoundedPareto {
            alpha: 1.2,
            min: 1 << 10,
            max: 100 << 20,
        }
    }

    /// Draws a size per object id. Object ids are global-popularity ranks,
    /// and the draw is independent of the id, so size ⟂ popularity.
    pub fn generate(&self, objects: u32, seed: u64) -> Vec<u32> {
        match *self {
            SizeModel::Unit => vec![1; objects as usize],
            SizeModel::BoundedPareto { alpha, min, max } => {
                assert!(alpha > 0.0 && min >= 1 && max > min);
                let mut rng = StdRng::seed_from_u64(seed);
                let (l, h) = (min as f64, max as f64);
                let la = l.powf(alpha);
                let ha = h.powf(alpha);
                (0..objects)
                    .map(|_| {
                        // Inverse-CDF of the bounded Pareto.
                        let u: f64 = rng.gen();
                        let x = (-(u * (ha - la) - ha) / (ha * la)).powf(-1.0 / alpha);
                        x.clamp(l, h) as u32
                    })
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_sizes() {
        let s = SizeModel::Unit.generate(10, 0);
        assert_eq!(s, vec![1; 10]);
    }

    #[test]
    fn pareto_within_bounds() {
        let m = SizeModel::BoundedPareto {
            alpha: 1.2,
            min: 1024,
            max: 1 << 30,
        };
        let sizes = m.generate(10_000, 7);
        assert!(sizes.iter().all(|&s| (1024..=1 << 30).contains(&s)));
    }

    #[test]
    fn pareto_is_heavy_tailed() {
        let m = SizeModel::BoundedPareto {
            alpha: 1.2,
            min: 1024,
            max: 1 << 30,
        };
        let sizes = m.generate(50_000, 3);
        let mean = sizes.iter().map(|&s| s as f64).sum::<f64>() / sizes.len() as f64;
        let mut sorted = sizes.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2] as f64;
        // Heavy tail: mean far above median.
        assert!(mean > 3.0 * median, "mean {mean} vs median {median}");
    }

    #[test]
    fn deterministic() {
        let m = SizeModel::web_default();
        assert_eq!(m.generate(100, 9), m.generate(100, 9));
        assert_ne!(m.generate(100, 9), m.generate(100, 10));
    }
}
