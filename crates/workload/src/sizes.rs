//! Object size models.
//!
//! The paper's traces span "regular text, images, multimedia, software
//! binaries" — heavy-tailed sizes with no strong size–popularity
//! correlation (§5.1 reports heterogeneous sizes change results by < 1%).
//! Sizes are drawn per **object** (not per request) so every transfer of an
//! object moves the same number of bytes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// How object sizes are assigned.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SizeModel {
    /// All objects have the same size (the baseline: congestion counts
    /// transfers, so unit size reproduces the paper's default metric).
    Unit,
    /// Bounded Pareto in bytes: heavy-tailed, independent of popularity.
    BoundedPareto {
        /// Tail index (smaller ⇒ heavier tail); the web-object classic is ~1.2.
        alpha: f64,
        /// Minimum size in bytes.
        min: u32,
        /// Maximum size in bytes.
        max: u32,
    },
}

impl SizeModel {
    /// A typical web-object mix: 1 KiB – 100 MiB, tail index 1.2.
    pub fn web_default() -> Self {
        SizeModel::BoundedPareto {
            alpha: 1.2,
            min: 1 << 10,
            max: 100 << 20,
        }
    }

    /// Draws a size per object id. Object ids are global-popularity ranks,
    /// and the draw is independent of the id, so size ⟂ popularity — and
    /// stays so under any deterministic permutation of object ids (e.g.
    /// the churn remap in [`crate::dynamics`]).
    pub fn generate(&self, objects: u32, seed: u64) -> Vec<u32> {
        match *self {
            SizeModel::Unit => vec![1; objects as usize],
            SizeModel::BoundedPareto { alpha, min, max } => {
                assert!(alpha > 0.0 && min >= 1 && max > min);
                let mut rng = StdRng::seed_from_u64(seed);
                (0..objects)
                    .map(|_| bounded_pareto_inv(rng.gen(), alpha, min, max))
                    .collect()
            }
        }
    }
}

/// Inverse CDF of the bounded Pareto on `[min, max]` with tail index
/// `alpha`, evaluated at `u ∈ [0, 1]`. Always returns a size within the
/// bounds.
///
/// The naive form computes `max^alpha`, which overflows to infinity for
/// large tail indices; the whole expression then collapses to NaN, and
/// `NaN as u32` is 0 — a size *below* `min`. This form only raises the
/// ratio `min/max ≤ 1` to `alpha` (which can underflow to 0, the exact
/// limit value, but never overflow); the final clamp absorbs float
/// rounding at the bounds, and a non-finite guard maps the `u → 1`
/// supremum to `max`.
pub fn bounded_pareto_inv(u: f64, alpha: f64, min: u32, max: u32) -> u32 {
    if u >= 1.0 {
        return max; // the supremum of the support
    }
    let (l, h) = (min as f64, max as f64);
    let r = (l / h).powf(alpha);
    let x = l * (1.0 - u * (1.0 - r)).powf(-1.0 / alpha);
    if x.is_finite() {
        x.clamp(l, h) as u32
    } else {
        max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_sizes() {
        let s = SizeModel::Unit.generate(10, 0);
        assert_eq!(s, vec![1; 10]);
    }

    #[test]
    fn pareto_within_bounds() {
        let m = SizeModel::BoundedPareto {
            alpha: 1.2,
            min: 1024,
            max: 1 << 30,
        };
        let sizes = m.generate(10_000, 7);
        assert!(sizes.iter().all(|&s| (1024..=1 << 30).contains(&s)));
    }

    #[test]
    fn pareto_is_heavy_tailed() {
        let m = SizeModel::BoundedPareto {
            alpha: 1.2,
            min: 1024,
            max: 1 << 30,
        };
        let sizes = m.generate(50_000, 3);
        let mean = sizes.iter().map(|&s| s as f64).sum::<f64>() / sizes.len() as f64;
        let mut sorted = sizes.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2] as f64;
        // Heavy tail: mean far above median.
        assert!(mean > 3.0 * median, "mean {mean} vs median {median}");
    }

    #[test]
    fn deterministic() {
        let m = SizeModel::web_default();
        assert_eq!(m.generate(100, 9), m.generate(100, 9));
        assert_ne!(m.generate(100, 9), m.generate(100, 10));
    }

    #[test]
    fn huge_tail_index_stays_within_bounds() {
        // Regression: alpha = 400 made the old inverse CDF compute
        // max^alpha = inf, collapse to NaN, and emit size 0 (< min) for
        // every object. The ratio form keeps every draw in-bounds.
        let m = SizeModel::BoundedPareto {
            alpha: 400.0,
            min: 1024,
            max: 1 << 30,
        };
        let sizes = m.generate(2_000, 11);
        assert!(
            sizes.iter().all(|&s| (1024..=1 << 30).contains(&s)),
            "out-of-bounds sizes: {:?}",
            sizes
                .iter()
                .filter(|&&s| s < 1024)
                .take(3)
                .collect::<Vec<_>>()
        );
        // A huge tail index concentrates essentially all mass just above
        // the lower bound (analytically ~99.8% below min + 16 at α=400).
        assert!(sizes.iter().filter(|&&s| s <= 1040).count() > 1_900);
    }

    #[test]
    fn inverse_cdf_extreme_draws_hit_the_bounds_exactly() {
        for &(alpha, min, max) in &[
            (1.2f64, 1u32 << 10, 100u32 << 20),
            (0.1, 1, 2),
            (400.0, 7, 1 << 30),
        ] {
            assert_eq!(bounded_pareto_inv(0.0, alpha, min, max), min);
            assert_eq!(bounded_pareto_inv(1.0, alpha, min, max), max);
            // Largest f64 strictly below 1.
            let u = 1.0 - f64::EPSILON / 2.0;
            let s = bounded_pareto_inv(u, alpha, min, max);
            assert!((min..=max).contains(&s), "alpha={alpha}: {s}");
        }
    }
}
