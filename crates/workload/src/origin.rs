//! Origin-server assignment of objects to PoPs (§4.1).
//!
//! Each PoP serves as the origin for a subset of the object universe; the
//! number of objects it hosts is proportional to its population (the paper
//! also tried uniform assignment "and found consistent results", which we
//! expose as [`OriginPolicy::Uniform`]).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// How objects are assigned to origin PoPs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OriginPolicy {
    /// Each object's origin PoP is drawn proportionally to population.
    PopulationProportional,
    /// Each object's origin PoP is drawn uniformly.
    Uniform,
}

/// Assigns an origin PoP to every object. Returns `origins[object] = pop`.
pub fn assign_origins(
    policy: OriginPolicy,
    objects: u32,
    populations: &[u64],
    seed: u64,
) -> Vec<u16> {
    assert!(!populations.is_empty());
    assert!(populations.len() <= u16::MAX as usize);
    let mut rng = StdRng::seed_from_u64(seed);
    let n = populations.len();
    match policy {
        OriginPolicy::Uniform => (0..objects).map(|_| rng.gen_range(0..n) as u16).collect(),
        OriginPolicy::PopulationProportional => {
            let total: u64 = populations.iter().sum();
            assert!(total > 0);
            let mut cum = Vec::with_capacity(n);
            let mut acc = 0.0;
            for &p in populations {
                acc += p as f64 / total as f64;
                cum.push(acc);
            }
            if let Some(last) = cum.last_mut() {
                *last = 1.0;
            }
            (0..objects)
                .map(|_| {
                    let u: f64 = rng.gen();
                    cum.partition_point(|&c| c < u).min(n - 1) as u16
                })
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proportional_counts_track_population() {
        let pops = [1_000u64, 9_000];
        let origins = assign_origins(OriginPolicy::PopulationProportional, 100_000, &pops, 3);
        let big = origins.iter().filter(|&&p| p == 1).count();
        let frac = big as f64 / 100_000.0;
        assert!((frac - 0.9).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn uniform_counts_are_even() {
        let pops = [1_000u64, 9_000];
        let origins = assign_origins(OriginPolicy::Uniform, 100_000, &pops, 3);
        let big = origins.iter().filter(|&&p| p == 1).count();
        let frac = big as f64 / 100_000.0;
        assert!((frac - 0.5).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn all_pops_valid_and_deterministic() {
        let pops = [5u64, 5, 5, 5];
        let a = assign_origins(OriginPolicy::PopulationProportional, 1_000, &pops, 7);
        let b = assign_origins(OriginPolicy::PopulationProportional, 1_000, &pops, 7);
        assert_eq!(a, b);
        assert!(a.iter().all(|&p| p < 4));
    }
}
