//! Request traces: records, synthesis, and the paper's region presets.
//!
//! A trace is an ordered sequence of [`Request`]s. Synthesis follows §4.1:
//! each request is assigned to a PoP with probability proportional to metro
//! population, lands on a uniformly random leaf of that PoP's access tree,
//! and asks for an object drawn from the (possibly spatially skewed)
//! Zipf popularity distribution. Object ids are global popularity ranks
//! (object 0 is globally most popular).

use crate::sizes::SizeModel;
use crate::skew::SpatialModel;
use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::io::{BufRead, Write};

/// One content request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Request {
    /// PoP where the request enters the network.
    pub pop: u16,
    /// Leaf index within the PoP's access tree (0-based).
    pub leaf: u16,
    /// Requested object (global popularity rank).
    pub object: u32,
}

/// Temporal locality of the request stream at each leaf.
///
/// Real CDN edge logs are much more repetitive than an independent-draws
/// (IRM) Zipf stream with the same fitted exponent: client sessions and
/// regional bursts re-reference recently requested objects. The Zipf fit of
/// Figure 1 / Table 2 constrains only the *marginal* popularity, so the
/// synthesizer models locality separately: with probability `q` a request
/// replays one of the last `window` objects requested at the same leaf
/// (uniformly), and otherwise draws fresh from the Zipf marginal. `q` is
/// calibrated once against the paper's published design gaps (see
/// EXPERIMENTS.md); `q = 0` recovers pure IRM.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Locality {
    /// Probability that a request re-references the leaf's recent history.
    pub q: f64,
    /// Per-leaf history length (in requests).
    pub window: usize,
}

/// Parameters for synthesizing a trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Number of requests.
    pub requests: usize,
    /// Universe size `O`.
    pub objects: u32,
    /// Zipf exponent α.
    pub alpha: f64,
    /// Spatial skew in `[0, 1]` (§5.1); 0 = homogeneous.
    pub skew: f64,
    /// Temporal locality; `None` = pure IRM.
    pub locality: Option<Locality>,
    /// Object size model.
    pub sizes: SizeModel,
    /// RNG seed.
    pub seed: u64,
}

impl TraceConfig {
    /// A small default suitable for tests and the quickstart example.
    pub fn small() -> Self {
        Self {
            requests: 50_000,
            objects: 5_000,
            alpha: 1.0,
            skew: 0.0,
            locality: None,
            sizes: SizeModel::Unit,
            seed: 42,
        }
    }
}

impl Locality {
    /// The locality level calibrated against the paper's published design
    /// gaps (Table 3 / Figure 6; the calibration run is recorded in
    /// EXPERIMENTS.md).
    pub fn cdn_default() -> Self {
        Self {
            q: 0.65,
            window: 256,
        }
    }
}

/// The paper's three CDN vantage points (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Region {
    /// US log: 1.1M requests, best-fit α = 0.99.
    Us,
    /// Europe log: 3.1M requests, best-fit α = 0.92.
    Europe,
    /// Asia log: 1.8M requests, best-fit α = 1.04 (used for the §4 baseline).
    Asia,
}

impl Region {
    /// Region name as printed in Table 2.
    pub fn name(self) -> &'static str {
        match self {
            Region::Us => "US",
            Region::Europe => "Europe",
            Region::Asia => "Asia",
        }
    }

    /// Paper-reported request count for the daily log.
    pub fn paper_requests(self) -> usize {
        match self {
            Region::Us => 1_100_000,
            Region::Europe => 3_100_000,
            Region::Asia => 1_800_000,
        }
    }

    /// Paper-reported best-fit Zipf exponent (Table 2).
    pub fn paper_alpha(self) -> f64 {
        match self {
            Region::Us => 0.99,
            Region::Europe => 0.92,
            Region::Asia => 1.04,
        }
    }

    /// All three regions in Table 2 order.
    pub fn all() -> [Region; 3] {
        [Region::Us, Region::Europe, Region::Asia]
    }

    /// A synthesis config for this region, scaled by `scale ∈ (0, 1]` to
    /// fit the experiment budget. The request:object ratio (200:1) and the
    /// locality level are calibrated once against the paper's published
    /// design gaps — the ratio keeps per-router caches capacity-bound at
    /// the paper's F = 5%, which the budget-normalization results (Figure
    /// 10, Table 4) depend on; see EXPERIMENTS.md.
    pub fn config(self, scale: f64) -> TraceConfig {
        assert!(scale > 0.0 && scale <= 1.0);
        let requests = ((self.paper_requests() as f64) * scale).round() as usize;
        TraceConfig {
            requests,
            objects: ((requests as f64) / 200.0).round().max(100.0) as u32,
            alpha: self.paper_alpha(),
            skew: 0.0,
            locality: Some(Locality::cdn_default()),
            sizes: SizeModel::Unit,
            seed: 0x1c_0de + self as u64,
        }
    }
}

/// A deterministic streaming generator of synthesized requests.
///
/// This is [`Trace::synthesize`]'s generation loop lifted into an
/// iterator: the same config, populations, and leaf count produce the
/// same request sequence *by construction* (`synthesize` simply collects
/// this iterator). Memory is O(PoPs × leaves × locality-window) for the
/// per-leaf history ring buffers — independent of trace length — so a
/// full SCALE=1.0 workload can be fed straight into
/// `Simulator::run_streamed` without ever materializing the request
/// vector.
#[derive(Debug, Clone)]
pub struct TraceIter {
    rng: StdRng,
    zipf: Zipf,
    spatial: SpatialModel,
    /// Cumulative population weights for PoP selection.
    cum: Vec<f64>,
    leaves_per_pop: u32,
    loc_q: f64,
    loc_window: usize,
    /// Per-leaf recent-history ring buffers for the locality component.
    history: Vec<Vec<u32>>,
    hist_pos: Vec<usize>,
    remaining: usize,
}

impl TraceIter {
    /// A generator over a network with the given PoP populations and
    /// leaves per access tree. Validates the same invariants as
    /// [`Trace::synthesize`].
    pub fn new(config: &TraceConfig, populations: &[u64], leaves_per_pop: u32) -> Self {
        assert!(!populations.is_empty());
        assert!(leaves_per_pop >= 1);
        assert!(
            populations.len() <= u16::MAX as usize,
            "too many PoPs for u16"
        );
        assert!(leaves_per_pop <= u16::MAX as u32, "too many leaves for u16");
        let rng = StdRng::seed_from_u64(config.seed);
        let zipf = Zipf::new(config.objects as usize, config.alpha);
        let spatial = SpatialModel::new(
            config.objects,
            populations.len() as u32,
            config.skew,
            config.seed ^ 0x5b5b_5b5b,
        );
        let mut cum: Vec<f64> = Vec::with_capacity(populations.len());
        let total: u64 = populations.iter().sum();
        assert!(total > 0, "zero total population");
        let mut acc = 0.0;
        for &p in populations {
            acc += p as f64 / total as f64;
            cum.push(acc);
        }
        if let Some(last) = cum.last_mut() {
            *last = 1.0;
        }
        let (loc_q, loc_window) = match config.locality {
            Some(l) => {
                assert!((0.0..=1.0).contains(&l.q), "locality q must be in [0,1]");
                assert!(l.window >= 1, "locality window must be >= 1");
                (l.q, l.window)
            }
            None => (0.0, 1),
        };
        let n_leaves = populations.len() * leaves_per_pop as usize;
        let history: Vec<Vec<u32>> = vec![Vec::new(); if loc_q > 0.0 { n_leaves } else { 0 }];
        let hist_pos: Vec<usize> = vec![0; history.len()];
        Self {
            rng,
            zipf,
            spatial,
            cum,
            leaves_per_pop,
            loc_q,
            loc_window,
            history,
            hist_pos,
            remaining: config.requests,
        }
    }
}

impl Iterator for TraceIter {
    type Item = Request;

    fn next(&mut self) -> Option<Request> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let u: f64 = self.rng.gen();
        let pop = self.cum.partition_point(|&c| c < u).min(self.cum.len() - 1) as u16;
        let leaf = self.rng.gen_range(0..self.leaves_per_pop) as u16;
        let leaf_slot = pop as usize * self.leaves_per_pop as usize + leaf as usize;
        let object = if self.loc_q > 0.0
            && !self.history[leaf_slot].is_empty()
            && self.rng.gen::<f64>() < self.loc_q
        {
            // Replay a recent request from this leaf.
            let h = &self.history[leaf_slot];
            h[self.rng.gen_range(0..h.len())]
        } else {
            let rank = self.zipf.sample(&mut self.rng) as u32;
            self.spatial.object_for_rank(pop as u32, rank)
        };
        if self.loc_q > 0.0 {
            let h = &mut self.history[leaf_slot];
            if h.len() < self.loc_window {
                h.push(object);
            } else {
                let p = &mut self.hist_pos[leaf_slot];
                h[*p] = object;
                *p = (*p + 1) % self.loc_window;
            }
        }
        Some(Request { pop, leaf, object })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for TraceIter {}

/// A synthesized (or loaded) request trace plus per-object sizes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Trace {
    /// The synthesis parameters (informational for loaded traces).
    pub config: TraceConfig,
    /// The request sequence.
    pub requests: Vec<Request>,
    /// Size of each object, indexed by object id.
    pub object_sizes: Vec<u32>,
}

impl Trace {
    /// Synthesizes a trace over a network with the given PoP populations and
    /// leaves per access tree. Equivalent to collecting [`TraceIter`] —
    /// which is exactly what it does, so the streaming and materialized
    /// paths cannot drift apart.
    pub fn synthesize(config: TraceConfig, populations: &[u64], leaves_per_pop: u32) -> Self {
        let requests: Vec<Request> = TraceIter::new(&config, populations, leaves_per_pop).collect();
        let object_sizes = config.sizes.generate(config.objects, config.seed ^ 0xa5a5);
        Self {
            config,
            requests,
            object_sizes,
        }
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// True when the trace has no requests.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Per-object request counts (rank-frequency data for fitting).
    pub fn object_counts(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.config.objects as usize];
        for r in &self.requests {
            counts[r.object as usize] += 1;
        }
        counts
    }

    /// Writes the trace as CSV (`pop,leaf,object` lines with a header).
    pub fn write_csv<W: Write>(&self, mut w: W) -> std::io::Result<()> {
        writeln!(w, "pop,leaf,object")?;
        for r in &self.requests {
            writeln!(w, "{},{},{}", r.pop, r.leaf, r.object)?;
        }
        Ok(())
    }

    /// Reads a CSV trace written by [`Trace::write_csv`]. Sizes default to
    /// unit; `config` records only what can be inferred.
    pub fn read_csv<R: BufRead>(r: R) -> std::io::Result<Self> {
        let mut requests = Vec::new();
        let mut max_object = 0u32;
        for (i, line) in r.lines().enumerate() {
            let line = line?;
            if i == 0 && line.starts_with("pop") {
                continue;
            }
            if line.trim().is_empty() {
                continue;
            }
            let mut it = line.split(',');
            let parse_err =
                || std::io::Error::new(std::io::ErrorKind::InvalidData, format!("bad line {i}"));
            let pop = it
                .next()
                .and_then(|s| s.trim().parse().ok())
                .ok_or_else(parse_err)?;
            let leaf = it
                .next()
                .and_then(|s| s.trim().parse().ok())
                .ok_or_else(parse_err)?;
            let object: u32 = it
                .next()
                .and_then(|s| s.trim().parse().ok())
                .ok_or_else(parse_err)?;
            max_object = max_object.max(object);
            requests.push(Request { pop, leaf, object });
        }
        let objects = max_object + 1;
        Ok(Self {
            config: TraceConfig {
                requests: requests.len(),
                objects,
                alpha: f64::NAN,
                skew: f64::NAN,
                locality: None,
                sizes: SizeModel::Unit,
                seed: 0,
            },
            requests,
            object_sizes: vec![1; objects as usize],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pops() -> Vec<u64> {
        vec![1_000_000, 2_000_000, 7_000_000]
    }

    #[test]
    fn synthesis_basics() {
        let t = Trace::synthesize(TraceConfig::small(), &pops(), 8);
        assert_eq!(t.len(), 50_000);
        assert!(t.requests.iter().all(|r| r.pop < 3 && r.leaf < 8));
        assert!(t.requests.iter().all(|r| r.object < t.config.objects));
        assert_eq!(t.object_sizes.len(), t.config.objects as usize);
    }

    #[test]
    fn pop_assignment_follows_population() {
        let t = Trace::synthesize(TraceConfig::small(), &pops(), 4);
        let mut counts = [0usize; 3];
        for r in &t.requests {
            counts[r.pop as usize] += 1;
        }
        let n = t.len() as f64;
        assert!((counts[0] as f64 / n - 0.1).abs() < 0.01);
        assert!((counts[2] as f64 / n - 0.7).abs() < 0.01);
    }

    #[test]
    fn leaves_roughly_uniform() {
        let t = Trace::synthesize(TraceConfig::small(), &pops(), 4);
        let mut counts = [0usize; 4];
        for r in &t.requests {
            counts[r.leaf as usize] += 1;
        }
        let n = t.len() as f64;
        for c in counts {
            assert!((c as f64 / n - 0.25).abs() < 0.02);
        }
    }

    #[test]
    fn object_zero_is_most_popular_without_skew() {
        let t = Trace::synthesize(TraceConfig::small(), &pops(), 4);
        let counts = t.object_counts();
        let max = counts.iter().copied().max().unwrap();
        assert_eq!(counts[0], max);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = Trace::synthesize(TraceConfig::small(), &pops(), 4);
        let b = Trace::synthesize(TraceConfig::small(), &pops(), 4);
        assert_eq!(a.requests, b.requests);
        let mut cfg = TraceConfig::small();
        cfg.seed += 1;
        let c = Trace::synthesize(cfg, &pops(), 4);
        assert_ne!(a.requests, c.requests);
    }

    #[test]
    fn csv_roundtrip() {
        let mut cfg = TraceConfig::small();
        cfg.requests = 500;
        let t = Trace::synthesize(cfg, &pops(), 4);
        let mut buf = Vec::new();
        t.write_csv(&mut buf).unwrap();
        let back = Trace::read_csv(std::io::BufReader::new(&buf[..])).unwrap();
        assert_eq!(t.requests, back.requests);
    }

    #[test]
    fn region_presets_match_table2() {
        assert_eq!(Region::Us.paper_alpha(), 0.99);
        assert_eq!(Region::Europe.paper_alpha(), 0.92);
        assert_eq!(Region::Asia.paper_alpha(), 1.04);
        let cfg = Region::Asia.config(0.1);
        assert_eq!(cfg.requests, 180_000);
        assert!(cfg.objects > 0);
    }

    #[test]
    fn locality_raises_leaf_repeat_rate() {
        let mut base = TraceConfig::small();
        base.objects = 50_000; // large universe so IRM repeats are rare
        let mut local = base.clone();
        local.locality = Some(Locality {
            q: 0.6,
            window: 128,
        });

        fn leaf_repeat_rate(t: &Trace, leaves: u16) -> f64 {
            let mut seen: Vec<std::collections::HashSet<u32>> =
                vec![Default::default(); 3 * leaves as usize];
            let mut repeats = 0usize;
            for r in &t.requests {
                let slot = r.pop as usize * leaves as usize + r.leaf as usize;
                if !seen[slot].insert(r.object) {
                    repeats += 1;
                }
            }
            repeats as f64 / t.len() as f64
        }

        let t_irm = Trace::synthesize(base, &pops(), 4);
        let t_loc = Trace::synthesize(local, &pops(), 4);
        let r_irm = leaf_repeat_rate(&t_irm, 4);
        let r_loc = leaf_repeat_rate(&t_loc, 4);
        assert!(
            r_loc > r_irm + 0.15,
            "locality should raise repeats: irm {r_irm:.3} vs loc {r_loc:.3}"
        );
    }

    #[test]
    fn locality_preserves_zipf_marginal() {
        // The Table 2 validation path: a localized trace must still fit a
        // Zipf exponent close to the configured one.
        let mut cfg = TraceConfig::small();
        cfg.requests = 200_000;
        cfg.objects = 10_000;
        cfg.alpha = 1.04;
        cfg.locality = Some(Locality::cdn_default());
        let t = Trace::synthesize(cfg, &pops(), 4);
        let fit = crate::fit::fit_zipf(&t.object_counts()).unwrap();
        assert!(
            (fit.alpha_mle - 1.04).abs() < 0.15,
            "marginal drifted: fitted {}",
            fit.alpha_mle
        );
    }

    #[test]
    fn skewed_trace_differs_across_pops() {
        let mut cfg = TraceConfig::small();
        cfg.skew = 1.0;
        let t = Trace::synthesize(cfg, &pops(), 4);
        // With full skew, the globally-ranked object 0 is no longer the top
        // object at every pop.
        let mut per_pop: Vec<std::collections::HashMap<u32, u64>> = vec![Default::default(); 3];
        for r in &t.requests {
            *per_pop[r.pop as usize].entry(r.object).or_insert(0) += 1;
        }
        let tops: Vec<u32> = per_pop
            .iter()
            .map(|m| m.iter().max_by_key(|&(_, &c)| c).map(|(&o, _)| o).unwrap())
            .collect();
        assert!(
            tops.iter().any(|&t| t != tops[0]),
            "expected different top objects per pop, got {tops:?}"
        );
    }
}
